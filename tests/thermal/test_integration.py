"""Thermal loop end-to-end: parity, emergencies, Arrhenius coupling.

The acceptance properties of the thermal subsystem as wired through
the full system: with unreachable envelopes a thermal-on run prices
every execute *identically* to a thermal-off run (the model observes,
never perturbs); a forced per-vault emergency degrades through the
existing reroute path with availability 1.0 and an exact
clean + reroute + throttle ledger decomposition; and at a fixed seed a
hotter stack never sees fewer latent flips than a cooler one, on any
vault (the thinned deposit construction).
"""

import numpy as np
import pytest

from repro.core import MealibSystem, ParamStore
from repro.faults import FaultInjector
from repro.thermal import (AMBIENT_K, NOMINAL, OFFLINE, THROTTLED,
                           ThermalConfig)


def make_system(thermal=None, faults=None, stack=64 << 20):
    return MealibSystem(stack_bytes=stack, faults=faults,
                        thermal=thermal)


def axpy_plan(system, n=65536):
    from repro.accel import AxpyParams

    xb, x = system.space.alloc_array((n,), np.float32)
    yb, y = system.space.alloc_array((n,), np.float32)
    x[:] = 1.0
    y[:] = 1.0
    params = AxpyParams(n=n, alpha=2.0, x_pa=xb.pa, y_pa=yb.pa)
    store = ParamStore()
    store.add("w.para", params.pack())
    core = system.layer.accelerator("AXPY")
    streams = core.streams(params)
    return system.runtime.acc_plan(
        "PASS { COMP AXPY w.para }", store,
        in_size=sum(s.total_bytes for s in streams if not s.is_write),
        out_size=sum(s.total_bytes for s in streams if s.is_write))


def run_executes(system, executes=6, n=65536):
    plan = axpy_plan(system, n)
    return [system.runtime.acc_execute(plan, functional=False)
            for _ in range(executes)]


# -- parity: the model observes, never perturbs -------------------------------


def test_unreachable_envelope_prices_identically_to_thermal_off():
    off = make_system()
    on = make_system(thermal=ThermalConfig(envelope=10_000.0,
                                           critical=20_000.0))
    res_off = run_executes(off)
    res_on = run_executes(on)
    # bit-identical pricing, execute by execute
    assert [(r.time, r.energy) for r in res_on] == [
        (r.time, r.energy) for r in res_off]
    for category in ("accelerator", "invocation"):
        assert on.ledger.total(category) == off.ledger.total(category)
    assert on.ledger.total("throttle").time == 0.0
    assert on.runtime.counters.throttled_executes == 0
    # ...while the thermal model really did integrate the run
    assert on.thermal.elapsed > 0.0
    assert on.thermal.peak_vault_temp > AMBIENT_K
    assert off.thermal is None


def test_thermal_run_is_reproducible():
    cfg = ThermalConfig()
    a = make_system(thermal=cfg)
    b = make_system(thermal=cfg)
    run_executes(a)
    run_executes(b)
    assert np.array_equal(a.thermal.temps, b.thermal.temps)
    assert a.thermal.t_logic == b.thermal.t_logic


# -- throttling: pricing and decomposition ------------------------------------


def throttling_config(**overrides):
    """Envelopes one vault can never cool out of: vault 3 throttles at
    the very first poll (ambient sits above its envelope) and stays
    throttled (release sits below the ambient floor)."""
    kw = dict(vault_envelopes={3: AMBIENT_K - 1.0})
    kw.update(overrides)
    return ThermalConfig(**kw)


def test_throttled_execute_is_the_clean_execute_plus_the_stretch():
    clean_sys = make_system()
    clean = run_executes(clean_sys, executes=1)[0]
    system = make_system(thermal=throttling_config())
    assert system.governor.state[3] == THROTTLED
    hot = run_executes(system, executes=1)[0]
    throttle = system.ledger.total("throttle")
    assert throttle.time > 0.0 and throttle.energy > 0.0
    assert hot.time == pytest.approx(clean.time + throttle.time)
    assert hot.energy == pytest.approx(clean.energy + throttle.energy)
    # the accelerator category keeps exactly the nominal share:
    # frequency-only DVFS does not reprice the work, only the stretch
    assert (system.ledger.total("accelerator")
            == clean_sys.ledger.total("accelerator"))
    assert system.runtime.counters.throttled_executes == 1
    assert system.governor.stats.time_throttled == pytest.approx(
        throttle.time)


def test_forced_emergency_degrades_through_the_reroute_path():
    # vault 9's critical threshold sits below ambient: it goes offline
    # at assembly, before the first execute; vault 3 stays throttled.
    # The run must survive on the accelerated path with an exact
    # clean + reroute + throttle decomposition.
    cfg = throttling_config(
        vault_envelopes={3: AMBIENT_K - 1.0, 9: AMBIENT_K - 10.0},
        vault_criticals={9: AMBIENT_K - 5.0})
    system = make_system(thermal=cfg)
    assert system.governor.state[9] == OFFLINE
    assert system.layer.failed_tiles() == [9]
    clean_sys = make_system()
    executes = 4
    clean = run_executes(clean_sys, executes=executes)
    hot = run_executes(system, executes=executes)
    counters = system.runtime.counters
    assert counters.availability == 1.0
    assert counters.fallbacks == 0
    assert counters.degraded_executes == executes
    assert system.ledger.total("fallback").time == 0.0
    reroute = system.ledger.total("reroute")
    throttle = system.ledger.total("throttle")
    assert reroute.time > 0.0 and throttle.time > 0.0
    total_hot = sum(r.time for r in hot)
    total_clean = sum(r.time for r in clean)
    assert total_hot == pytest.approx(
        total_clean + reroute.time + throttle.time)
    energy_hot = sum(r.energy for r in hot)
    energy_clean = sum(r.energy for r in clean)
    assert energy_hot == pytest.approx(
        energy_clean + reroute.energy + throttle.energy)


def test_offlined_vault_recovers_when_it_cools():
    # trip vault 5 offline with a reachable critical, then let the idle
    # fallback path cool the stack: the governor repairs its own tile
    cfg = ThermalConfig()
    system = make_system(thermal=cfg)
    model, gov = system.thermal, system.governor
    model.temps[5] = cfg.critical + 1.0
    gov.poll()
    assert system.layer.tiles[5].failed
    model.advance(5e-3)                  # long idle cool-down
    gov.poll()
    assert gov.state[5] == NOMINAL
    assert not system.layer.tiles[5].failed
    assert gov.stats.recoveries == 1


# -- thermal-aware reroute tie-break ------------------------------------------


def test_reroute_prefers_the_coolest_equidistant_tile():
    system = make_system(thermal=ThermalConfig(envelope=10_000.0,
                                               critical=20_000.0))
    layer = system.layer
    layer.mark_tile_failed(0)
    # vault 0's one-hop candidates on the 4x4 grid are tiles 1 and 4;
    # topological choice is the lower index
    assert layer.reroute_map()[0] == 1
    system.thermal.temps[1] = AMBIENT_K + 20.0
    assert layer.reroute_map()[0] == 4   # coolest wins
    system.thermal.temps[4] = AMBIENT_K + 30.0
    assert layer.reroute_map()[0] == 1
    # equal temperatures fall back to the deterministic index order
    system.thermal.temps[4] = system.thermal.temps[1]
    assert layer.reroute_map()[0] == 1
    # without a thermal model the historical choice is untouched
    layer.thermal = None
    system.thermal.temps[1] = AMBIENT_K + 500.0
    assert layer.reroute_map()[0] == 1


# -- Arrhenius coupling -------------------------------------------------------


ARRHENIUS = dict(arrhenius_doubling=1.0, arrhenius_cap=8.0,
                 envelope=10_000.0, critical=20_000.0)


def test_hotter_stack_never_sees_fewer_flips_on_any_vault():
    rate = 2e-5
    seed = 11
    cool = make_system(
        thermal=ThermalConfig(g_sink=50.0, **ARRHENIUS),
        faults=FaultInjector(seed=seed, latent_flip_rate=rate))
    hot = make_system(
        thermal=ThermalConfig(g_sink=0.05, **ARRHENIUS),
        faults=FaultInjector(seed=seed, latent_flip_rate=rate))
    run_executes(cool, executes=8)
    run_executes(hot, executes=8)
    assert hot.thermal.max_temp > cool.thermal.max_temp + 1.0
    by_cool = cool.faults.latent_deposits_by_vault
    by_hot = hot.faults.latent_deposits_by_vault
    total_cool = sum(by_cool.values())
    total_hot = sum(by_hot.values())
    assert total_cool > 0                # candidates actually landed
    # pointwise: the hot run accepts a superset of the cool run's flips
    for vault in range(16):
        assert by_hot.get(vault, 0) >= by_cool.get(vault, 0), (
            f"vault {vault} lost flips by running hotter")
    assert total_hot > total_cool        # and strictly more somewhere


def test_thermal_coupling_keeps_the_candidate_stream_seeded():
    # two runs with *different* envelopes (different throttle activity)
    # still draw identical flip candidates: acceptance, not placement,
    # is what temperature modulates
    rate = 2e-5
    a = make_system(
        thermal=ThermalConfig(**ARRHENIUS),
        faults=FaultInjector(seed=7, latent_flip_rate=rate))
    cfg_b = dict(ARRHENIUS)
    cfg_b["envelope"] = AMBIENT_K - 1.0  # throttles from the first poll
    b = make_system(
        thermal=ThermalConfig(**cfg_b),
        faults=FaultInjector(seed=7, latent_flip_rate=rate))
    run_executes(a, executes=4)
    run_executes(b, executes=4)
    assert b.runtime.counters.throttled_executes == 4
    assert a.runtime.counters.throttled_executes == 0
    # the dedicated latent stream consumed identically in both runs
    state_a = a.faults._latent_rng.bit_generator.state
    state_b = b.faults._latent_rng.bit_generator.state
    assert state_a == state_b


def test_legacy_deposit_path_untouched_without_thermal():
    rate = 2e-5
    plain = make_system(faults=FaultInjector(seed=5,
                                             latent_flip_rate=rate))
    run_executes(plain, executes=4)
    assert plain.faults.stats.latent_flips_deposited > 0
    # no vault attribution on the legacy path
    assert plain.faults.latent_deposits_by_vault == {}
