"""Envelope-governor battery: the nominal/throttled/offline machine.

The load-bearing properties: crossing the envelope throttles and only
cooling ``hysteresis`` kelvin below it releases (so the state can never
oscillate while the temperature wanders inside one envelope band);
crossing the critical threshold offlines the vault through the existing
tile-failure path; the governor repairs only tiles *it* offlined; and
the lockstep pass slowdown is set by the slowest serving vault.
"""

import pytest

from repro.accel.layer import AcceleratorLayer
from repro.thermal import (AMBIENT_K, NOMINAL, OFFLINE, PowerGovernor,
                           THROTTLED, ThermalConfig, ThermalModel)


def make_governor(**overrides):
    cfg = ThermalConfig(**overrides)
    layer = AcceleratorLayer()
    model = ThermalModel(cfg)
    return PowerGovernor(model, layer, cfg), model, layer


def set_temp(model, vault, temp):
    model.temps[vault] = temp


# -- throttle transitions -----------------------------------------------------


def test_crossing_the_envelope_throttles():
    gov, model, _ = make_governor(envelope=348.0)
    assert gov.state[0] == NOMINAL
    assert gov.throttle_factor(0) == 1.0
    set_temp(model, 0, 349.0)
    gov.poll()
    assert gov.state[0] == THROTTLED
    assert gov.throttle_factor(0) == gov.config.throttle_factor
    assert gov.any_throttled
    assert gov.stats.throttle_events == 1


def test_release_needs_the_full_hysteresis_band():
    gov, model, _ = make_governor(envelope=348.0, hysteresis=3.0)
    set_temp(model, 0, 349.0)
    gov.poll()
    assert gov.state[0] == THROTTLED
    # cooled below the envelope but inside the band: still throttled
    set_temp(model, 0, 346.0)
    gov.poll()
    assert gov.state[0] == THROTTLED
    set_temp(model, 0, 344.9)            # below envelope - hysteresis
    gov.poll()
    assert gov.state[0] == NOMINAL
    assert gov.stats.releases == 1


def test_hysteresis_never_oscillates_within_one_band():
    # temperature wandering anywhere inside (release, envelope] after
    # the first trip must produce exactly one throttle event and zero
    # releases, however many polls run
    gov, model, _ = make_governor(envelope=348.0, hysteresis=3.0)
    set_temp(model, 0, 348.5)
    gov.poll()
    band = [347.9, 345.2, 348.0, 346.1, 347.5, 345.1, 347.99]
    for temp in band * 3:
        set_temp(model, 0, temp)
        gov.poll()
    assert gov.stats.throttle_events == 1
    assert gov.stats.releases == 0
    assert gov.state[0] == THROTTLED


def test_pass_slowdown_is_the_slowest_serving_vault():
    gov, model, _ = make_governor(envelope=348.0, throttle_factor=0.5)
    serving = list(range(16))
    assert gov.pass_slowdown(serving) == 1.0
    assert gov.pass_slowdown([]) == 1.0
    set_temp(model, 7, 350.0)
    gov.poll()
    assert gov.throttled_vaults(serving) == [7]
    assert gov.pass_slowdown(serving) == 0.5
    # a pass not touching vault 7 runs at full speed
    assert gov.pass_slowdown([0, 1, 2]) == 1.0


# -- offline and recovery -----------------------------------------------------


def test_critical_offlines_through_the_tile_failure_path():
    gov, model, layer = make_governor(critical=368.0)
    assert layer.healthy
    set_temp(model, 4, 369.0)
    gov.poll()
    assert gov.state[4] == OFFLINE
    assert gov.offline == [4]
    assert layer.tiles[4].failed          # the existing reroute path
    assert layer.failed_tiles() == [4]
    assert gov.stats.offline_events == 1


def test_offline_vault_recovers_after_cooling_through_release():
    gov, model, layer = make_governor(envelope=348.0, hysteresis=3.0,
                                      critical=368.0)
    set_temp(model, 4, 369.0)
    gov.poll()
    assert layer.tiles[4].failed
    # inside the band: still offline
    set_temp(model, 4, 346.0)
    gov.poll()
    assert gov.state[4] == OFFLINE
    set_temp(model, 4, AMBIENT_K)
    gov.poll()
    assert gov.state[4] == NOMINAL
    assert not layer.tiles[4].failed
    assert gov.stats.recoveries == 1


def test_governor_never_repairs_a_genuinely_dead_tile():
    gov, model, layer = make_governor()
    layer.mark_tile_failed(2)             # injected hard failure
    set_temp(model, 2, 400.0)
    gov.poll()
    assert gov.state[2] == OFFLINE        # tracked, but not re-failed
    assert gov.stats.offline_events == 1
    set_temp(model, 2, AMBIENT_K)
    gov.poll()
    # cooled right down — but the tile was not the governor's to repair
    assert layer.tiles[2].failed
    assert gov.state[2] == OFFLINE
    assert gov.stats.recoveries == 0


def test_per_vault_override_forces_an_emergency_on_one_vault():
    # a sub-ambient critical on vault 9 trips at the very first poll
    # while every other vault stays nominal at ambient
    gov, model, layer = make_governor(
        vault_envelopes={9: AMBIENT_K - 10.0},
        vault_criticals={9: AMBIENT_K - 5.0})
    gov.poll()
    assert gov.state[9] == OFFLINE
    assert layer.failed_tiles() == [9]
    assert all(gov.state[v] == NOMINAL for v in range(16) if v != 9)
    # floored at ambient, it can never cool below the release point:
    # the emergency is permanent
    for _ in range(5):
        model.advance(50e-6)
        gov.poll()
    assert gov.state[9] == OFFLINE


def test_throttle_stats_accumulate_per_vault():
    gov, _, _ = make_governor()
    gov.stats.note_throttled(2e-6, [3, 5])
    gov.stats.note_throttled(1e-6, [5])
    assert gov.stats.time_throttled == pytest.approx(3e-6)
    assert gov.stats.time_throttled_by_vault[3] == pytest.approx(2e-6)
    assert gov.stats.time_throttled_by_vault[5] == pytest.approx(3e-6)
