"""RC-integrator battery: physics properties the governor relies on.

The load-bearing properties: with zero power the network cools
*monotonically* to ambient (never below — the heatsink is an infinite
reservoir); under constant power every node settles to a bounded steady
state; halving the integration step does not change the trajectory
beyond tolerance (the integrator is converged, not dt-lucky); and the
Arrhenius factor is clamped to ``[1, cap]``.
"""

import numpy as np
import pytest

from repro.thermal import AMBIENT_K, ThermalConfig, ThermalModel


def make_model(**overrides):
    return ThermalModel(ThermalConfig(**overrides))


# -- config validation --------------------------------------------------------


@pytest.mark.parametrize("bad", [
    dict(c_vault=0.0), dict(c_logic=-1.0), dict(g_sink=0.0),
    dict(g_lat=-0.1), dict(dt=0.0), dict(throttle_factor=0.0),
    dict(throttle_factor=1.5), dict(hysteresis=-1.0),
    dict(critical=340.0, envelope=350.0), dict(arrhenius_cap=0.5),
    dict(leak_doubling=0.0), dict(arrhenius_doubling=0.0),
])
def test_config_rejects_invalid_knobs(bad):
    with pytest.raises(ValueError):
        ThermalConfig(**bad)


def test_per_vault_overrides_win():
    cfg = ThermalConfig(envelope=348.0, critical=368.0,
                        vault_envelopes={3: 330.0},
                        vault_criticals={3: 335.0})
    assert cfg.envelope_of(3) == 330.0
    assert cfg.critical_of(3) == 335.0
    assert cfg.envelope_of(0) == 348.0
    assert cfg.critical_of(0) == 368.0


def test_model_rejects_bad_grid_and_bad_power():
    with pytest.raises(ValueError):
        ThermalModel(ThermalConfig(), vaults=15, cols=4)
    model = make_model()
    with pytest.raises(ValueError):
        model.advance(-1.0)
    with pytest.raises(ValueError):
        model.advance(1e-6, vault_power=[1.0] * 3)
    with pytest.raises(ValueError):
        model.advance(1e-6, vault_power=[-1.0] * 16)
    with pytest.raises(ValueError):
        model.advance(1e-6, logic_power=-1.0)


# -- monotone cool-down -------------------------------------------------------


def heat_up(model, watts=2.0, steps=50, dt=5e-6):
    power = [watts] * model.vaults
    for _ in range(steps):
        model.advance(dt, power, logic_power=watts)


def test_zero_power_cools_monotonically_to_ambient():
    model = make_model(p_leak_ref=0.0)
    heat_up(model)
    assert model.max_temp > AMBIENT_K + 1.0
    prev = model.temps.copy()
    prev_logic = model.t_logic
    for _ in range(200):
        model.advance(5e-6)
        assert np.all(model.temps <= prev + 1e-12)
        assert model.t_logic <= prev_logic + 1e-12
        assert np.all(model.temps >= AMBIENT_K)
        assert model.t_logic >= AMBIENT_K
        prev = model.temps.copy()
        prev_logic = model.t_logic
    # long enough and it is back at ambient to solver precision
    for _ in range(100):
        model.advance(50e-6)
    assert model.max_temp == pytest.approx(AMBIENT_K, abs=1e-6)


def test_leakage_feedback_still_relaxes_to_ambient():
    # with leakage on, the zero-*dynamic*-power fixed point sits just
    # above ambient (leakage self-heating), but cooling from a hot
    # start stays monotone down to it
    model = make_model()
    heat_up(model)
    prev = model.max_temp
    for _ in range(300):
        model.advance(10e-6)
        assert model.max_temp <= prev + 1e-12
        prev = model.max_temp
    assert AMBIENT_K <= model.max_temp < AMBIENT_K + 1.0


# -- bounded steady state -----------------------------------------------------


def test_constant_power_reaches_a_bounded_steady_state():
    model = make_model(p_leak_ref=0.0)
    power = [1.0] * model.vaults
    for _ in range(400):
        model.advance(10e-6, power, logic_power=1.0)
    before = model.temps.copy()
    model.advance(10e-6, power, logic_power=1.0)
    # converged: one more step moves nothing measurable
    assert np.allclose(model.temps, before, atol=1e-9)
    # and the steady state is the analytic bound: every watt must leave
    # through g_sink or g_logic_sink, so no node can sit further above
    # ambient than total power over the weakest serial path
    cfg = model.config
    bound = (model.vaults + 1) * 1.0 / min(cfg.g_sink, cfg.g_logic_sink)
    assert model.max_temp < AMBIENT_K + bound


def test_hotter_input_means_hotter_steady_state():
    cool = make_model()
    hot = make_model()
    for _ in range(300):
        cool.advance(10e-6, [0.5] * 16)
        hot.advance(10e-6, [1.0] * 16)
    assert hot.max_temp > cool.max_temp + 0.1


# -- dt invariance ------------------------------------------------------------


def test_halving_dt_changes_nothing_beyond_tolerance():
    coarse = make_model()
    fine = make_model(dt=ThermalConfig().dt / 2.0)
    power = [1.5] * 16
    for _ in range(60):
        coarse.advance(7e-6, power, logic_power=0.8)
        fine.advance(7e-6, power, logic_power=0.8)
    assert fine.max_temp > AMBIENT_K + 1.0     # the run actually heated
    assert np.allclose(coarse.temps, fine.temps, rtol=1e-3)
    assert coarse.t_logic == pytest.approx(fine.t_logic, rel=1e-3)


def test_split_advance_equals_one_advance():
    # advancing one long interval or the same interval in chunks lands
    # on the same trajectory when the internal substep grid divides
    # both durations exactly; binary-representable values make the
    # ceil() step count exact, so the grids coincide bit-for-bit
    dt = 2.0 ** -22                      # ~0.24us, below the clamp
    chunk = 4 * dt
    one = make_model(dt=dt)
    many = make_model(dt=dt)
    power = [2.0] * 16
    one.advance(8 * chunk, power)
    for _ in range(8):
        many.advance(chunk, power)
    assert np.allclose(one.temps, many.temps, rtol=1e-12)
    assert one.elapsed == pytest.approx(many.elapsed)


# -- lateral coupling and peaks ----------------------------------------------


def test_heat_spreads_to_grid_neighbours():
    model = make_model(p_leak_ref=0.0)
    power = [0.0] * 16
    power[5] = 4.0                       # interior vault of the 4x4 grid
    for _ in range(200):
        model.advance(10e-6, power)
    temps = model.temps
    assert temps[5] == model.max_temp
    # its mesh neighbours (1, 4, 6, 9) run warmer than the far corner
    for n in (1, 4, 6, 9):
        assert temps[n] > temps[15] + 1e-3
    assert temps[15] > AMBIENT_K         # but even the far corner warmed


def test_peak_tracking_survives_cooldown():
    model = make_model(p_leak_ref=0.0)
    heat_up(model, watts=3.0)
    peak = model.peak_vault_temp
    assert peak > AMBIENT_K + 1.0
    for _ in range(300):
        model.advance(20e-6)
    assert model.max_temp < peak         # cooled back down...
    assert model.peak_vault_temp == peak  # ...but the peak is remembered
    assert model.peak_temperatures()[0] >= AMBIENT_K


# -- Arrhenius factor ---------------------------------------------------------


def test_arrhenius_factor_is_clamped_and_monotone():
    model = make_model(arrhenius_doubling=10.0, arrhenius_cap=8.0)
    assert model.arrhenius_factor(0) == 1.0          # at ambient
    model.temps[0] = AMBIENT_K + 10.0
    assert model.arrhenius_factor(0) == pytest.approx(2.0)
    model.temps[0] = AMBIENT_K + 20.0
    assert model.arrhenius_factor(0) == pytest.approx(4.0)
    model.temps[0] = AMBIENT_K + 1000.0
    assert model.arrhenius_factor(0) == 8.0          # capped
    assert len(model.arrhenius_factors()) == model.vaults
