"""Property-based compiler consistency: randomized loop-nest programs
must compute identical results on the host library and on MEALib."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import run_original, run_translated, translate


@settings(max_examples=10, deadline=None)
@given(rows=st.integers(min_value=1, max_value=6),
       n=st.sampled_from([16, 32, 64]),
       alpha=st.floats(min_value=-3, max_value=3, allow_nan=False),
       seed=st.integers(min_value=0, max_value=1000))
def test_saxpy_nest_consistency(rows, n, alpha, seed):
    src = f"""
#define ROWS {rows}
#define N {n}
float x[ROWS][N];
float y[ROWS][N];
int i;
#pragma omp parallel for
for (i = 0; i < ROWS; i++)
  cblas_saxpy(N, {alpha!r}, &x[i][0], 1, &y[i][0], 1);
"""
    rng = np.random.default_rng(seed)
    inputs = {"x": rng.standard_normal((rows, n)).astype(np.float32),
              "y": rng.standard_normal((rows, n)).astype(np.float32)}
    orig = run_original(src, inputs=inputs)
    trans = run_translated(src, inputs=inputs)
    np.testing.assert_allclose(orig.buffers["y"], trans.buffers["y"],
                               rtol=1e-5, atol=1e-6)
    ref = (np.float32(alpha) * inputs["x"] + inputs["y"]).reshape(-1)
    np.testing.assert_allclose(orig.buffers["y"], ref, rtol=1e-4,
                               atol=1e-5)


@settings(max_examples=8, deadline=None)
@given(a=st.integers(min_value=1, max_value=4),
       b=st.integers(min_value=1, max_value=4),
       t=st.sampled_from([4, 8, 16]),
       seed=st.integers(min_value=0, max_value=100))
def test_cdotc_nest_consistency(a, b, t, seed):
    src = f"""
#define A {a}
#define B {b}
#define T {t}
complex w[A][B][T];
complex s[A][B][T];
complex out[A][B];
int i;
int j;
#pragma omp parallel for
for (i = 0; i < A; i++)
  for (j = 0; j < B; j++)
    cblas_cdotc_sub(T, &w[i][j][0], 1, &s[i][j][0], 1, &out[i][j]);
"""
    rng = np.random.default_rng(seed)
    w = (rng.standard_normal((a, b, t))
         + 1j * rng.standard_normal((a, b, t))).astype(np.complex64)
    s = (rng.standard_normal((a, b, t))
         + 1j * rng.standard_normal((a, b, t))).astype(np.complex64)
    orig = run_original(src, inputs={"w": w, "s": s})
    trans = run_translated(src, inputs={"w": w, "s": s})
    np.testing.assert_allclose(orig.buffers["out"],
                               trans.buffers["out"], rtol=1e-3,
                               atol=1e-3)
    ref = np.einsum("abt,abt->ab", np.conj(w), s).reshape(-1)
    np.testing.assert_allclose(orig.buffers["out"], ref, rtol=1e-3,
                               atol=1e-3)


@settings(max_examples=8, deadline=None)
@given(rows=st.sampled_from([4, 8]), cols=st.sampled_from([4, 16, 32]),
       seed=st.integers(min_value=0, max_value=50))
def test_corner_turn_consistency(rows, cols, seed):
    src = f"""
#define R {rows}
#define C {cols}
complex *src_buf;
complex *dst_buf;
fftwf_plan p;
fftw_iodim hm[2] = {{{{R, C, 1}}, {{C, 1, R}}}};
src_buf = malloc(sizeof(complex) * R * C);
dst_buf = malloc(sizeof(complex) * R * C);
p = fftwf_plan_guru_dft(0, NULL, 2, hm, src_buf, dst_buf,
                        FFTW_FORWARD, FFTW_WISDOM_ONLY);
fftwf_execute(p);
"""
    rng = np.random.default_rng(seed)
    data = (rng.standard_normal((rows, cols))
            + 1j * rng.standard_normal((rows, cols))).astype(np.complex64)
    orig = run_original(src, inputs={"src_buf": data})
    trans = run_translated(src, inputs={"src_buf": data})
    ref = data.T.reshape(-1)
    np.testing.assert_allclose(orig.buffers["dst_buf"], ref)
    np.testing.assert_allclose(trans.buffers["dst_buf"], ref)


def test_descriptor_count_is_deterministic():
    src = """
#define N 64
float x[N];
float y[N];
cblas_saxpy(N, 1.0, &x[0], 1, &y[0], 1);
"""
    counts = {translate(src).descriptor_count() for _ in range(3)}
    assert counts == {1}
