"""Translation validation for the schedule rewrite layer.

The rewrite engine's contract is checked the strong way: for every
corpus program and for a randomized battery of generated chains, the
original and rewritten programs are *executed* and must agree
bit-for-bit, the system ledger must decompose exactly into its
categories, every applied rewrite must carry prover-named certificate
facts, and rewrites-off must be the identity translation.
"""

import math
from pathlib import Path

import numpy as np
import pytest

from repro.compiler import FusedStep, run_translated, translate
from repro.compiler.interp import _DTYPES
from repro.compiler.passes import DescriptorStep
from repro.core.system import MealibSystem

CORPUS_DIR = Path(__file__).resolve().parents[2] / "examples" / "legacy"

#: Every analysis-clean corpus program (oob_stride is rejected by
#: design; racy_saxpy demotes and keeps no certified accel step).
CORPUS = ("dot_reduction.c", "fusable_chain.c", "illegal_fusion.c",
          "sar_64.c", "sar_fns.c", "saxpy_nest.c", "stap_small.c")


def make_inputs(tp, seed=11):
    """Deterministic inputs satisfying each corpus program's domain
    (knots strictly increasing, sites inside the knot span)."""
    rng = np.random.default_rng(seed)
    knots_count = next((info.count
                        for name, info in tp.env.buffers.items()
                        if "knot" in name), None)
    inputs = {}
    for name, info in tp.env.buffers.items():
        if info.elem_type not in _DTYPES:
            continue
        dt = _DTYPES[info.elem_type]
        n = info.count
        if "knot" in name:
            arr = np.arange(n, dtype=dt)
        elif "site" in name and knots_count:
            arr = np.clip((np.arange(n) % knots_count) + 0.3,
                          0, knots_count - 1.5).astype(dt)
        elif np.issubdtype(dt, np.complexfloating):
            arr = (rng.standard_normal(n)
                   + 1j * rng.standard_normal(n)).astype(dt)
        elif np.issubdtype(dt, np.integer):
            arr = np.zeros(n, dtype=dt)
        else:
            arr = rng.standard_normal(n).astype(dt)
        if info.shape is not None:
            arr = arr.reshape(info.shape)
        inputs[name] = arr
    return inputs


def assert_ledger_decomposes(system):
    """The ledger total is exactly the sum of its category totals."""
    total = system.total()
    cats = {e.category for e in system.ledger.entries}
    time = sum(system.ledger.total(c).time for c in cats)
    energy = sum(system.ledger.total(c).energy for c in cats)
    assert math.isclose(time, total.time, rel_tol=1e-9, abs_tol=1e-18)
    assert math.isclose(energy, total.energy, rel_tol=1e-9,
                        abs_tol=1e-18)


def assert_certificates_complete(tp):
    """Every fused step carries a certificate; every applied decision
    and every rewrite fact names its prover."""
    for item in tp.items:
        if not isinstance(item, DescriptorStep):
            continue
        for step in item.items:
            if isinstance(step, FusedStep):
                assert step.certificate is not None
                assert all(f.prover for f in step.certificate.facts)
    for decision in tp.rewrites:
        if decision.applied:
            assert decision.prover, decision


@pytest.mark.parametrize("name", CORPUS)
def test_corpus_rewrite_is_translation_validated(name):
    source = (CORPUS_DIR / name).read_text()
    off_tp = translate(source, rewrite=False)
    on_tp = translate(source, rewrite=True)
    assert off_tp.rewrites == ()
    assert_certificates_complete(on_tp)

    inputs = make_inputs(off_tp)
    sys_off = MealibSystem()
    sys_on = MealibSystem()
    off = run_translated(off_tp, system=sys_off, inputs=dict(inputs))
    on = run_translated(on_tp, system=sys_on, inputs=dict(inputs))
    assert set(off.buffers) == set(on.buffers)
    for buf in sorted(off.buffers):
        np.testing.assert_array_equal(off.buffers[buf],
                                      on.buffers[buf], err_msg=buf)
    assert_ledger_decomposes(sys_off)
    assert_ledger_decomposes(sys_on)


@pytest.mark.parametrize("name", CORPUS)
def test_corpus_rewrites_off_matches_default_translation(name):
    source = (CORPUS_DIR / name).read_text()
    base = translate(source)
    off = translate(source, rewrite=False)
    assert base.items == off.items
    assert base.demoted_steps == off.demoted_steps
    assert [d.code for d in base.diagnostics] \
        == [d.code for d in off.diagnostics]


# -- randomized chain battery -------------------------------------------------

def chain_source(chunks, alpha, match, with_mid):
    """A producer loop feeding a transpose loop, optionally with an
    independent loop in between (hoist) and optionally broken by a
    broadcast read (illegal)."""
    mid = ("for (i = 0; i < CHUNKS; ++i)\n"
           f"  cblas_saxpy(CHUNK, {alpha + 1.0:.3f}, &u[i][0], 1, "
           "&v[i][0], 1);\n") if with_mid else ""
    idx = "i" if match else "0"
    return f"""
#define R 16
#define C 16
#define CHUNK 256
#define CHUNKS {chunks}
float gain[CHUNKS][CHUNK];
float acc[CHUNKS][CHUNK];
float img[CHUNKS][CHUNK];
float u[CHUNKS][CHUNK];
float v[CHUNKS][CHUNK];
int i;
for (i = 0; i < CHUNKS; ++i)
  cblas_saxpy(CHUNK, {alpha:.3f}, &gain[i][0], 1, &acc[i][0], 1);
{mid}for (i = 0; i < CHUNKS; ++i)
  mkl_somatcopy(R, C, 1.0, &acc[{idx}][0], &img[i][0]);
"""


@pytest.mark.parametrize("seed", range(8))
def test_randomized_chains_validate(seed):
    rng = np.random.default_rng(100 + seed)
    chunks = int(rng.choice([4, 8, 16]))
    alpha = float(rng.uniform(0.25, 2.0))
    match = bool(seed % 2 == 0)
    with_mid = bool((seed // 2) % 2 == 0)
    source = chain_source(chunks, alpha, match, with_mid)

    tp = translate(source, rewrite=True)
    fused = [s for item in tp.items if isinstance(item, DescriptorStep)
             for s in item.items if isinstance(s, FusedStep)]
    if match:
        assert len(fused) == 1 and fused[0].iterations == chunks
        assert any(r.primitive == "fuse" and r.applied
                   for r in tp.rewrites)
        if with_mid:
            assert any(r.primitive == "reorder" and r.applied
                       for r in tp.rewrites)
    else:
        assert fused == []
        rejected = [r for r in tp.rewrites
                    if r.primitive == "fuse" and not r.applied]
        assert rejected and rejected[0].code == "MEA019"
        assert "dependence" in rejected[0].reason
    assert_certificates_complete(tp)

    names = ("gain", "acc", "img", "u", "v")
    inputs = {n: rng.standard_normal((chunks, 256)).astype(np.float32)
              for n in names}
    off = run_translated(translate(source), inputs=dict(inputs))
    on = run_translated(tp, inputs=dict(inputs))
    for n in names:
        np.testing.assert_array_equal(off.buffers[n], on.buffers[n],
                                      err_msg=n)
