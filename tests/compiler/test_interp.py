"""End-to-end: original vs translated execution must agree numerically.

This is the paper's central software claim — legacy code gains the
accelerators without reimplementation *and computes the same results*.
"""

import numpy as np
import pytest

from repro.compiler import run_original, run_translated, translate
from repro.compiler.interp import baseline_timing

RNG = np.random.default_rng(5)


def crand(*shape):
    return (RNG.standard_normal(shape)
            + 1j * RNG.standard_normal(shape)).astype(np.complex64)


def both(src, inputs, check, rtol=1e-3, atol=1e-4):
    orig = run_original(src, inputs=inputs)
    trans = run_translated(src, inputs=inputs)
    for name in check:
        np.testing.assert_allclose(orig.buffers[name],
                                   trans.buffers[name], rtol=rtol,
                                   atol=atol, err_msg=name)
    return orig, trans


def test_saxpy():
    src = """
#define N 512
float *x;
float *y;
x = malloc(sizeof(float) * N);
y = malloc(sizeof(float) * N);
cblas_saxpy(N, 3.0, x, 1, y, 1);
"""
    inputs = {"x": RNG.standard_normal(512).astype(np.float32),
              "y": RNG.standard_normal(512).astype(np.float32)}
    orig, _ = both(src, inputs, ["y"])
    ref = 3.0 * inputs["x"] + inputs["y"]
    np.testing.assert_allclose(orig.buffers["y"], ref, rtol=1e-5)


def test_gemv():
    src = """
#define M 48
#define N 32
float a[M][N];
float x[N];
float y[M];
cblas_sgemv(CblasRowMajor, CblasNoTrans, M, N, 1.5, &a[0][0], N,
            &x[0], 1, 0.5, &y[0], 1);
"""
    inputs = {"a": RNG.standard_normal((48, 32)).astype(np.float32),
              "x": RNG.standard_normal(32).astype(np.float32),
              "y": RNG.standard_normal(48).astype(np.float32)}
    orig, _ = both(src, inputs, ["y"])
    ref = 1.5 * inputs["a"] @ inputs["x"] + 0.5 * inputs["y"]
    np.testing.assert_allclose(orig.buffers["y"], ref, rtol=1e-3)


def test_spmv():
    from repro.mkl import random_geometric_graph
    g = random_geometric_graph(128, seed=4)
    src = f"""
#define M 128
float vals[{max(g.nnz, 1)}];
long rowptr[129];
long colidx[{max(g.nnz, 1)}];
float x[M];
float y[M];
mkl_scsrgemv(M, &vals[0], &rowptr[0], &colidx[0], &x[0], &y[0]);
"""
    x = RNG.standard_normal(128).astype(np.float32)
    inputs = {"vals": g.data, "rowptr": g.indptr, "colidx": g.indices,
              "x": x}
    orig, _ = both(src, inputs, ["y"])
    np.testing.assert_allclose(orig.buffers["y"], g.to_dense() @ x,
                               rtol=1e-3, atol=1e-4)


def test_simatcopy():
    src = """
#define N 64
float a[N][N];
mkl_simatcopy(N, N, 1.0, &a[0][0]);
"""
    a = RNG.standard_normal((64, 64)).astype(np.float32)
    orig, _ = both(src, {"a": a}, ["a"])
    np.testing.assert_array_equal(orig.buffers["a"].reshape(64, 64), a.T)


def test_resmp_then_fft_chain():
    src = """
#define N 64
#define B 8
float knots[N];
float sites[B][N];
complex lines[B][N];
complex interp[B][N];
complex image[B][N];
fftwf_plan p;
fftw_iodim dims[1] = {{N, 1, 1}};
fftw_iodim hm[1] = {{B, N, N}};
dfsInterpolate1D(B, N, &knots[0], &lines[0][0], N, &sites[0][0],
                 &interp[0][0]);
p = fftwf_plan_guru_dft(1, dims, 1, hm, interp, image, FFTW_FORWARD,
                        FFTW_WISDOM_ONLY);
fftwf_execute(p);
"""
    knots = np.arange(64, dtype=np.float32)
    sites = np.clip(knots[None, :] + 0.3, 0, 63).repeat(8, 0)
    inputs = {"knots": knots, "sites": sites.astype(np.float32),
              "lines": crand(8, 64)}
    translated = translate(src)
    assert translated.descriptor_count() == 1
    both(src, inputs, ["interp", "image"], rtol=1e-2, atol=1e-2)


def test_strided_cdotc_nest():
    src = """
#define A 3
#define B 4
#define T 8
#define C 6
complex w[A][B][T];
complex s[A][B][T][C];
complex out[A][B][C];
int i;
int j;
int k;
#pragma omp parallel for
for (i = 0; i < A; i++)
  for (j = 0; j < B; j++)
    for (k = 0; k < C; k++)
      cblas_cdotc_sub(T, &w[i][j][0], 1, &s[i][j][0][k], C,
                      &out[i][j][k]);
"""
    w, s = crand(3, 4, 8), crand(3, 4, 8, 6)
    orig, trans = both(src, {"w": w, "s": s}, ["out"], rtol=1e-2,
                       atol=1e-3)
    # independent reference
    ref = np.einsum("ijt,ijtk->ijk", np.conj(w), s)
    np.testing.assert_allclose(orig.buffers["out"].reshape(3, 4, 6), ref,
                               rtol=1e-3, atol=1e-3)


def test_host_calls_inside_loops():
    src = """
#define D 2
#define N 8
#define K 12
complex snap[D][N][K];
complex cov[D][N][N];
int d;
for (d = 0; d < D; d++) {
  cblas_cherk(N, K, 1.0, &snap[d][0][0], 0.0, &cov[d][0][0]);
}
"""
    snap = crand(2, 8, 12)
    orig, trans = both(src, {"snap": snap}, ["cov"], rtol=1e-2,
                       atol=1e-2)
    ref0 = snap[0] @ snap[0].conj().T
    got = orig.buffers["cov"].reshape(2, 8, 8)[0]
    il = np.tril_indices(8)
    np.testing.assert_allclose(got[il], ref0[il], rtol=1e-3, atol=1e-3)


def test_translated_faster_at_scale():
    """At a bandwidth-dominated size the accelerated run must win."""
    src = """
#define N 4194304
float *x;
float *y;
x = malloc(sizeof(float) * N);
y = malloc(sizeof(float) * N);
cblas_saxpy(N, 2.0, x, 1, y, 1);
"""
    base = baseline_timing(src)
    trans = run_translated(src, functional=False)
    assert trans.result.time < base.result.time


def test_timing_only_run_skips_buffers():
    src = """
#define N 1024
float *x;
float *y;
x = malloc(sizeof(float) * N);
y = malloc(sizeof(float) * N);
cblas_saxpy(N, 2.0, x, 1, y, 1);
"""
    out = run_translated(src, functional=False)
    assert out.buffers == {}
    assert out.result.time > 0


def test_library_call_count_reported():
    src = """
#define R 16
#define N 64
float x[R][N];
float y[R][N];
int i;
#pragma omp parallel for
for (i = 0; i < R; i++)
  cblas_saxpy(N, 1.0, &x[i][0], 1, &y[i][0], 1);
"""
    out = run_translated(src, functional=False)
    assert out.library_calls == 16
    assert out.descriptors == 1
