"""MEA015/MEA016 static bounds rules and rewrite-safety certificates."""

import json
from pathlib import Path

import pytest

from repro.compiler import (AnalysisRejected, HostCallStep, translate)
from repro.compiler.analysis import analyze_source
from repro.compiler.analyze import main as analyze_main
from repro.compiler.recognizer import AccelCallStep

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "legacy"


def codes_of(source):
    return sorted({d.code for d in analyze_source(source).report})


# -- MEA015: provable out-of-bounds -------------------------------------------

# iteration 7 reads src[112..127] and writes out[112..127] of
# 100-element buffers: every offset variable is an exact loop variable,
# so the violation is provable and the program must be rejected
OOB_STRIDE = """
#define N 16
#define CHUNKS 8
float src[100];
float out[100];
int i;
for (i = 0; i < CHUNKS; i++) {
  cblas_saxpy(N, 1.0, &src[i * 16], 1, &out[i * 16], 1);
}
"""

# identical shape over 128-element buffers: max byte touched is 511
# of [0, 512) — provably inside, no finding at all
IN_BOUNDS_STRIDE = """
#define N 16
#define CHUNKS 8
float src[128];
float out[128];
int i;
for (i = 0; i < CHUNKS; i++) {
  cblas_saxpy(N, 1.0, &src[i * 16], 1, &out[i * 16], 1);
}
"""

# one-past-the-end by a single element on the write side only
OOB_BY_ONE = """
#define N 8
float src[8];
float out[7];
cblas_saxpy(N, 1.0, &src[0], 1, &out[0], 1);
"""


def test_mea015_strided_overrun_detected():
    report = analyze_source(OOB_STRIDE).report
    diags = report.by_code("MEA015")
    assert diags and all(str(d.severity) == "error" for d in diags)
    assert any("src" in d.buffers for d in diags)
    assert all(d.prover == "interval-bounds" for d in diags)


def test_mea015_rejects_translation():
    with pytest.raises(AnalysisRejected) as excinfo:
        translate(OOB_STRIDE)
    assert excinfo.value.code == "MEA015"


def test_mea015_clean_when_footprint_fits():
    assert codes_of(IN_BOUNDS_STRIDE) == []


def test_mea015_off_by_one_element():
    report = analyze_source(OOB_BY_ONE).report
    diags = report.by_code("MEA015")
    assert diags
    assert all("out" in d.buffers for d in diags)
    assert "[0, 31]" in diags[0].message         # bytes touched
    assert "[0, 28)" in diags[0].message         # allocation


# -- MEA016: possibly out-of-bounds -------------------------------------------

# the base offset is a runtime scalar the range analysis cannot bound:
# the footprint may or may not fit, so the call demotes with a warning
UNBOUNDED_OFFSET = """
#define N 16
float src[100];
float out[100];
int k;
cblas_saxpy(N, 1.0, &src[k], 1, &out[0], 1);
"""

# the same scalar bound by a constant initialiser: provably inside
BOUNDED_OFFSET = """
#define N 16
float src[100];
float out[100];
int k = 4;
cblas_saxpy(N, 1.0, &src[k], 1, &out[0], 1);
"""


def test_mea016_unbounded_offset_warns_and_demotes():
    report = analyze_source(UNBOUNDED_OFFSET).report
    diags = report.by_code("MEA016")
    assert diags and all(str(d.severity) == "warning" for d in diags)
    assert "k" in diags[0].message
    t = translate(UNBOUNDED_OFFSET)
    assert t.demoted_steps
    assert any(isinstance(i, HostCallStep) and i.demoted
               for i in t.items)
    assert t.certificates == ()


def test_mea016_clean_when_scalar_is_constant():
    assert codes_of(BOUNDED_OFFSET) == []


# -- MEA017: prover fallback --------------------------------------------------

# mismatched strides: the write walks 12-byte steps, the read 20-byte
# steps of the same buffer. They do collide (20*3 == 12*5), but no
# symbolic prover can see it: the gcd lattice admits the collision,
# and Banerjee's ">" direction stays feasible. Only the bounded
# enumeration fallback decides — which must be surfaced as MEA017
# alongside the race findings it produced.
INTERLEAVED_RACE = """
#define M 8
float a[256];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_saxpy(1, 1.0, &a[i * 5], 1, &a[i * 3], 1);
}
"""


def test_mea017_rides_along_with_fallback_verdicts():
    report = analyze_source(INTERLEAVED_RACE).report
    infos = report.by_code("MEA017")
    assert infos and all(str(d.severity) == "info" for d in infos)
    assert all(d.prover == "enumeration" for d in infos)
    assert "enumeration decided" in infos[0].message


def test_mea017_never_fires_on_clean_corpus():
    for name in ("saxpy_nest.c", "sar_fns.c", "stap_small.c"):
        source = (EXAMPLES / name).read_text()
        assert "MEA017" not in codes_of(source), name


# -- certificates -------------------------------------------------------------

CLEAN_NEST = """
#define L 8
#define B 4
#define MF 32
float det_in[L][B][MF];
float det_out[L][B][MF];
#pragma omp parallel for
for (l = 0; l < L; l++) {
  for (b = 0; b < B; b++) {
    cblas_saxpy(MF, 1.0, &det_in[l][b][0], 1, &det_out[l][b][0], 1);
  }
}
"""


def test_every_offloaded_step_carries_a_certificate():
    result = analyze_source(CLEAN_NEST)
    accel_steps = [i for i, s in enumerate(result.schedule.steps)
                   if isinstance(s, AccelCallStep)]
    certified = sorted(c.step_index for c in result.certificates)
    assert certified == accel_steps
    cert = result.certificates[0]
    assert cert.accel == "AXPY"
    kinds = cert.kinds()
    assert "iteration-disjoint" in kinds
    assert "bounds-respected" in kinds
    facts = {f.kind: f.prover for f in cert.facts}
    assert facts["iteration-disjoint"] in (
        "mixed-radix", "gcd", "banerjee", "constant-distance")
    assert facts["bounds-respected"] == "interval-bounds"


def test_translate_attaches_certificates():
    t = translate(CLEAN_NEST)
    assert t.demoted_steps == ()
    assert len(t.certificates) == 1
    lowered = [s for s in t.schedule.steps
               if isinstance(s, AccelCallStep)]
    assert lowered
    t_unchecked = translate(CLEAN_NEST, analyze=False)
    assert t_unchecked.certificates == ()


def test_clean_corpus_certificates_cover_all_offloads():
    for path in sorted(EXAMPLES.glob("*.c")):
        if path.name in ("racy_saxpy.c", "oob_stride.c"):
            continue
        result = analyze_source(path.read_text())
        offloaded = {i for i, s in enumerate(result.schedule.steps)
                     if isinstance(s, AccelCallStep)}
        demoted = {d.step_index for d in result.report
                   if d.step_index is not None
                   and str(d.severity) == "error"}
        certified = {c.step_index for c in result.certificates}
        assert offloaded - demoted <= certified, path.name


def test_json_output_carries_certificates(tmp_path, capsys):
    f = tmp_path / "clean.c"
    f.write_text(CLEAN_NEST)
    assert analyze_main([str(f), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    certs = payload[0]["certificates"]
    assert certs and certs[0]["accel"] == "AXPY"
    kinds = {fact["kind"] for fact in certs[0]["facts"]}
    assert "iteration-disjoint" in kinds
    assert all("prover" in fact for fact in certs[0]["facts"])


def test_sarif_output_carries_certificates(tmp_path, capsys):
    f = tmp_path / "clean.c"
    f.write_text(CLEAN_NEST)
    assert analyze_main([str(f), "--sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    certs = log["runs"][0]["properties"]["certificates"]
    assert str(f) in certs
    assert certs[str(f)][0]["facts"]


def test_dot_reduction_example_certified():
    source = (EXAMPLES / "dot_reduction.c").read_text()
    result = analyze_source(source)
    assert not result.report.has_errors
    assert result.certificates
    kinds = result.certificates[0].kinds()
    assert "recognized-reduction" in kinds
    facts = {f.kind: f.prover for f in result.certificates[0].facts}
    assert facts["recognized-reduction"] == "loop-serialisation"


def test_oob_example_rejected():
    source = (EXAMPLES / "oob_stride.c").read_text()
    result = analyze_source(source)
    assert result.certificates == ()
    assert "MEA015" in {d.code for d in result.report}
    assert analyze_main([str(EXAMPLES / "oob_stride.c")]) == 1
