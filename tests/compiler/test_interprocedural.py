"""Interprocedural analysis and the OpenMP race detector.

Covers the whole-program side of the offload-safety checker: the C
subset's user-defined ``void`` functions, the call graph, per-function
effect summaries, and the race classification of accelerated calls
collapsed out of ``#pragma omp parallel for`` nests. Every new code
MEA008–MEA012 gets at least one triggering program and one clean
near-miss.
"""

import numpy as np
import pytest

from repro.compiler import (AccelCallStep, AnalysisRejected,
                            HostCallStep, RecognizerError, parse_source,
                            run_original, run_translated, translate)
from repro.compiler.analysis import (analyze_source, build_call_graph,
                                     compute_summaries)
from repro.core import MealibSystem


def codes_of(source):
    return sorted({d.code for d in analyze_source(source).report})


def report_of(source):
    return analyze_source(source).report


# -- fixtures -----------------------------------------------------------------

# clean multi-function program: an omp nest calling a helper whose
# saxpy lands on a disjoint row per iteration
CLEAN_FN = """
#define N 64
#define M 8
float a[M][N];
float b[M][N];
void scale_row(float* x, float* y, int n) {
  cblas_saxpy(n, 2.0, x, 1, y, 1);
}
#pragma omp parallel for
for (i = 0; i < M; i++) {
  scale_row(&a[i][0], &b[i][0], N);
}
"""

# MEA008: every iteration accumulates into a window overlapping its
# neighbour's (windows of 8 floats advancing by 4)
WW_RACE = """
#define M 8
float a[128];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_saxpy(8, 1.0, &a[64], 1, &a[i*4], 1);
}
"""

# MEA009: the write window of iteration i exactly covers the x-read
# window of iteration i+1; writes themselves stay disjoint
RW_RACE = """
#define M 8
float a[256];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_saxpy(4, 1.0, &a[i*4], 1, &a[i*4+4], 1);
}
"""

# same shape with the write windows pushed far past every read window
RW_DISJOINT = """
#define M 8
float a[256];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_saxpy(4, 1.0, &a[i*4], 1, &a[i*4+128], 1);
}
"""

# recognized reduction: AXPY accumulating into one shared vector
REDUCTION = """
#define N 16
#define M 8
float a[M][N];
float b[N];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_saxpy(N, 1.0, &a[i][0], 1, &b[0], 1);
}
"""

# DOT-family reduction: every iteration deposits its partial result
# into the one shared *_sub scalar; the LOOP descriptor serialises the
# deposits, so the offload reproduces the serial final value
DOT_SUB_REDUCTION = """
#define N 16
#define M 8
float a[M][N];
float b[N];
float out[4];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_sdot_sub(N, &a[i][0], 1, &b[0], 1, &out[0]);
}
"""

# unrecognized: GEMV with beta == 0 *overwrites* the shared y from
# every iteration — not an accumulation, so the final value races
UNRECOGNIZED_REDUCTION = """
#define N 16
#define M 8
float a[N][N];
float x[N];
float y[N];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_sgemv(CblasRowMajor, CblasNoTrans, N, N, 1.0, &a[0][0], N,
              &x[0], 1, 0.0, &y[0], 1);
}
"""

DISJOINT_NEST = """
#define N 16
#define M 8
float a[M][N];
float b[M][N];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_saxpy(N, 1.0, &a[i][0], 1, &b[i][0], 1);
}
"""

# mutual recursion: no summary can exist, and a branchless recursive
# chain cannot terminate — rejected outright with MEA011
RECURSIVE = """
#define N 8
float x[N];
float y[N];
void f(float* a, float* b) {
  g(a, b);
}
void g(float* a, float* b) {
  f(a, b);
}
f(&x[0], &y[0]);
"""

NONRECURSIVE_CHAIN = """
#define N 8
float x[N];
float y[N];
void inner(float* a, float* b) {
  cblas_saxpy(N, 2.0, a, 1, b, 1);
}
void outer(float* a, float* b) {
  inner(a, b);
}
outer(&x[0], &y[0]);
"""

# MEA011: `src`/`dst` escape into FFTW plan state inside the callee,
# then an omp nest touches them — conservative demotion
ESCAPE_UNDER_OMP = """
#define N 8
#define M 4
complex src[N];
complex dst[N];
complex w[M][N];
fftw_iodim dims = {N, 1, 1};
fftwf_plan p;
void mk_plan(complex* a, complex* b) {
  p = fftwf_plan_guru_dft(1, dims, 0, NULL, a, b, FFTW_FORWARD, FFTW_ESTIMATE);
}
mk_plan(&src[0], &dst[0]);
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_cdotc_sub(N, &w[i][0], 1, &src[0], 1, &dst[i]);
}
fftwf_execute(p);
fftwf_destroy_plan(p);
"""

# negative: the plan is made in the main body, so the escape is
# visible to the intra-procedural alias machinery and classification
# proceeds normally (the nest itself is iteration-disjoint reads)
ESCAPE_IN_MAIN = """
#define N 8
#define M 4
complex src[N];
complex dst[N];
complex w[M][N];
fftw_iodim dims = {N, 1, 1};
fftwf_plan p;
p = fftwf_plan_guru_dft(1, dims, 0, NULL, &src[0], &dst[0], FFTW_FORWARD, FFTW_ESTIMATE);
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_cdotc_sub(N, &w[i][0], 1, &src[0], 1, &dst[i]);
}
fftwf_execute(p);
fftwf_destroy_plan(p);
"""

# MEA012: the callee's saxpy reads a buffer main already freed
USE_AFTER_FREE_VIA_CALLEE = """
#define N 64
float* x;
float y[N];
void consume(float* p, float* q) {
  cblas_saxpy(N, 2.0, p, 1, q, 1);
}
x = malloc(N * sizeof(float));
free(x);
consume(&x[0], &y[0]);
"""

USE_THEN_FREE_VIA_CALLEE = """
#define N 64
float* x;
float y[N];
void consume(float* p, float* q) {
  cblas_saxpy(N, 2.0, p, 1, q, 1);
}
x = malloc(N * sizeof(float));
consume(&x[0], &y[0]);
free(x);
"""

# double free where the second free happens through a helper
DOUBLE_FREE_VIA_CALLEE = """
#define N 64
float* x;
float y[N];
void release(float* p) {
  free(p);
}
x = malloc(N * sizeof(float));
cblas_saxpy(N, 2.0, &y[0], 1, x, 1);
release(&x[0]);
free(x);
"""

SINGLE_FREE_VIA_CALLEE = """
#define N 64
float* x;
float y[N];
void release(float* p) {
  free(p);
}
x = malloc(N * sizeof(float));
cblas_saxpy(N, 2.0, &y[0], 1, x, 1);
release(&x[0]);
"""


# -- frontend: functions, call graph, summaries -------------------------------

def test_parse_functions_and_function_map():
    program = parse_source(CLEAN_FN)
    fmap = program.function_map()
    assert set(fmap) == {"scale_row"}
    params = fmap["scale_row"].params
    assert [(p.name, p.pointer) for p in params] == [
        ("x", True), ("y", True), ("n", False)]


def test_call_graph_topo_and_recursion():
    graph = build_call_graph(parse_source(NONRECURSIVE_CHAIN))
    order = graph.topo_order()
    assert order.index("inner") < order.index("outer")
    assert not graph.recursive()
    assert graph.chain_to("inner") == ("outer", "inner")

    cyclic = build_call_graph(parse_source(RECURSIVE))
    assert cyclic.recursive() == {"f", "g"}


def test_summaries_bind_param_targets():
    program = parse_source(CLEAN_FN)
    schedule_env = translate(CLEAN_FN, analyze=False).env
    summaries = compute_summaries(program, schedule_env)
    summary = summaries["scale_row"]
    assert summary.available
    assert ("param", "x") in summary.reads()
    assert ("param", "y") in summary.writes()


def test_recursive_summary_unavailable():
    program = parse_source(RECURSIVE)
    graph = build_call_graph(program)
    assert graph.unavailable() >= {"f", "g"}


# -- clean multi-function programs --------------------------------------------

def test_clean_multifunction_program_analyzes_clean():
    assert codes_of(CLEAN_FN) == []


def test_collapsed_call_carries_chain_and_omp():
    t = translate(CLEAN_FN)
    accels = [s for s in t.schedule.steps
              if isinstance(s, AccelCallStep)]
    assert accels and accels[0].chain == ("scale_row",)
    assert accels[0].omp and accels[0].looped
    assert t.demoted_steps == ()


def test_multifunction_execution_matches_original():
    rng = np.random.default_rng(11)
    a = rng.standard_normal((8, 64)).astype(np.float32)
    b = rng.standard_normal((8, 64)).astype(np.float32)
    inputs = {"a": a.copy(), "b": b.copy()}
    orig = run_original(CLEAN_FN, inputs=inputs)
    trans = run_translated(CLEAN_FN, inputs=inputs)
    np.testing.assert_array_equal(orig.buffers["b"], trans.buffers["b"])
    np.testing.assert_array_equal(
        trans.buffers["b"].reshape(8, 64), b + 2.0 * a)


def test_nested_chain_execution_matches_original():
    rng = np.random.default_rng(12)
    x = rng.standard_normal(8).astype(np.float32)
    y = rng.standard_normal(8).astype(np.float32)
    orig = run_original(NONRECURSIVE_CHAIN, inputs={"x": x, "y": y})
    trans = run_translated(NONRECURSIVE_CHAIN, inputs={"x": x, "y": y})
    np.testing.assert_array_equal(orig.buffers["y"], trans.buffers["y"])


# -- MEA008 write-write race --------------------------------------------------

def test_mea008_overlapping_writes():
    diags = report_of(WW_RACE).by_code("MEA008")
    assert diags and str(diags[0].severity) == "error"
    assert "a" in diags[0].buffers


def test_mea008_clean_on_disjoint_rows():
    assert "MEA008" not in codes_of(DISJOINT_NEST)


# -- MEA009 read-write race ---------------------------------------------------

def test_mea009_write_covers_neighbour_read():
    assert "MEA009" in codes_of(RW_RACE)


def test_mea009_clean_when_windows_disjoint():
    assert "MEA009" not in codes_of(RW_DISJOINT)


# -- MEA010 reductions --------------------------------------------------------

def test_mea010_recognized_reduction_is_info():
    diags = report_of(REDUCTION).by_code("MEA010")
    assert diags and all(str(d.severity) == "info" for d in diags)
    assert not report_of(REDUCTION).has_errors


def test_mea010_recognized_reduction_stays_offloaded():
    t = translate(REDUCTION)
    assert t.demoted_steps == ()
    assert not any(isinstance(i, HostCallStep) for i in t.items)
    assert t.items


def test_mea010_dot_sub_reduction_is_info_and_offloaded():
    diags = report_of(DOT_SUB_REDUCTION).by_code("MEA010")
    assert diags and all(str(d.severity) == "info" for d in diags)
    t = translate(DOT_SUB_REDUCTION)
    assert t.demoted_steps == ()
    assert not any(isinstance(i, HostCallStep) for i in t.items)


def test_mea010_unrecognized_shared_update_is_error():
    diags = report_of(UNRECOGNIZED_REDUCTION).by_code("MEA010")
    assert diags and any(str(d.severity) == "error" for d in diags)


def test_mea010_absent_on_disjoint_nest():
    assert "MEA010" not in codes_of(DISJOINT_NEST)


# -- MEA011 summary unavailable / conservative demotion -----------------------

def test_mea011_recursion_is_rejected():
    with pytest.raises(RecognizerError) as excinfo:
        analyze_source(RECURSIVE)
    assert excinfo.value.code == "MEA011"
    assert "f -> g -> f" in str(excinfo.value)


def test_mea011_nonrecursive_chain_is_fine():
    assert codes_of(NONRECURSIVE_CHAIN) == []


def test_mea011_escape_inside_callee_demotes():
    report = report_of(ESCAPE_UNDER_OMP)
    diags = report.by_code("MEA011")
    assert diags and diags[0].chain == ("mk_plan",)
    t = translate(ESCAPE_UNDER_OMP)
    assert t.demoted_steps
    assert any(isinstance(i, HostCallStep) and i.demoted
               for i in t.items)


def test_mea011_escape_in_main_not_flagged():
    assert "MEA011" not in codes_of(ESCAPE_IN_MAIN)


# -- MEA012 interprocedural lifecycle -----------------------------------------

def test_mea012_use_after_free_via_callee():
    diags = report_of(USE_AFTER_FREE_VIA_CALLEE).by_code("MEA012")
    assert diags and diags[0].chain == ("consume",)
    assert "inside consume()" in diags[0].message


def test_mea012_rejects_translation():
    with pytest.raises(AnalysisRejected) as excinfo:
        translate(USE_AFTER_FREE_VIA_CALLEE)
    assert excinfo.value.code == "MEA012"


def test_mea012_clean_when_use_precedes_free():
    assert codes_of(USE_THEN_FREE_VIA_CALLEE) == []


def test_double_free_via_callee_still_caught():
    assert "MEA004" in codes_of(DOUBLE_FREE_VIA_CALLEE)


def test_single_free_via_callee_clean():
    assert codes_of(SINGLE_FREE_VIA_CALLEE) == []


# -- demotion keeps the ledger decomposition ----------------------------------

def test_demoted_racy_call_runs_on_host_ledger():
    t = translate(WW_RACE)
    assert t.demoted_steps
    system = MealibSystem()
    rng = np.random.default_rng(13)
    a = rng.standard_normal(128).astype(np.float32)
    out = run_translated(t, system=system, inputs={"a": a.copy()})
    assert system.ledger.total("accelerator").time == 0
    assert system.ledger.total("host").time > 0
    # semantics preserved: the host library runs iterations in order
    orig = run_original(WW_RACE, inputs={"a": a.copy()})
    np.testing.assert_array_equal(orig.buffers["a"], out.buffers["a"])


def test_clean_nest_charges_the_accelerator():
    system = MealibSystem()
    rng = np.random.default_rng(14)
    a = rng.standard_normal((8, 64)).astype(np.float32)
    b = rng.standard_normal((8, 64)).astype(np.float32)
    run_translated(CLEAN_FN, system=system,
                   inputs={"a": a, "b": b})
    assert system.ledger.total("accelerator").time > 0
