"""Lexer, parser, and semantic-layer tests."""

import pytest

from repro.compiler import (CParseError, SemanticError, build_env,
                            parse_source)
from repro.compiler.affine import Affine, AffineError
from repro.compiler.cast import (Assign, Call, ExprStmt, For, Ident, Num,
                                 VarDecl, walk_calls)


class TestParser:
    def test_defines(self):
        prog = parse_source("#define N 64\n#define M 0x10\nint x;")
        assert prog.defines == (("N", 64), ("M", 16))

    def test_decl_forms(self):
        prog = parse_source(
            "float *x;\ncomplex cube[4][8];\nint n = 3;\n")
        ptr, arr, scalar = prog.stmts
        assert ptr == VarDecl(ctype="float", name="x", pointer=True)
        assert arr.dims == (Num(4), Num(8))
        assert scalar.init == Num(3)

    def test_malloc_assignment(self):
        prog = parse_source(
            "float *x;\nx = malloc(sizeof(float) * 100);\n")
        assign = prog.stmts[1]
        assert isinstance(assign, Assign)
        assert assign.value.func == "malloc"

    def test_for_canonicalisation(self):
        prog = parse_source(
            "int i;\nfor (i = 0; i < 10; i++) free(i);\n")
        loop = prog.stmts[1]
        assert isinstance(loop, For)
        assert loop.var == "i" and loop.step == 1
        assert loop.bound == Num(10)

    def test_le_bound_becomes_plus_one(self):
        prog = parse_source(
            "int i;\nfor (i = 0; i <= 9; ++i) free(i);\n")
        loop = prog.stmts[1]
        assert loop.bound.op == "+"

    def test_pragma_marks_loop(self):
        prog = parse_source(
            "int i;\n#pragma omp parallel for\n"
            "for (i = 0; i < 4; i++) free(i);\n")
        assert prog.stmts[1].pragma_omp

    def test_nested_index_and_addrof(self):
        prog = parse_source("float a[2][3];\nfree(&a[1][2]);\n")
        call = walk_calls(prog.stmts)[0]
        assert call.func == "free"

    def test_comments_stripped(self):
        prog = parse_source(
            "// comment\nint x; /* multi\nline */ int y;\n")
        assert len(prog.stmts) == 2

    def test_operator_precedence(self):
        prog = parse_source("int n = 2 + 3 * 4;")
        env = build_env(prog)
        assert env.constants["n"] == 14

    @pytest.mark.parametrize("bad", [
        "int x",                                  # missing semicolon
        "for (i = 0; j < 4; i++) free(i);",       # mismatched cond var
        "for (i = 0; i > 4; i++) free(i);",       # unsupported cond
        "for (i = 0; i < 4; i--) free(i);",       # unsupported step
        "#define X\nint x;",                      # malformed define
        "int @;",                                 # bad char
        "1 + 2;",                                 # unassignable expr? ok
    ][:6])
    def test_malformed(self, bad):
        with pytest.raises(CParseError):
            parse_source(bad)


class TestSemantics:
    def test_constants_from_defines_and_decls(self):
        env = build_env(parse_source(
            "#define N 8\nint m = N * 2;\nfloat a[m];\n"))
        assert env.constants["m"] == 16
        assert env.buffers["a"].count == 16

    def test_sizeof(self):
        env = build_env(parse_source("int x;"))
        from repro.compiler.cast import Sizeof
        assert env.eval_const(Sizeof("complex")) == 8
        assert env.eval_const(Sizeof("float")) == 4

    def test_array_shape_and_strides(self):
        env = build_env(parse_source("complex c[4][8][2];"))
        info = env.buffers["c"]
        assert info.shape == (4, 8, 2)
        assert info.row_strides() == (16, 2, 1)
        assert info.total_bytes == 4 * 8 * 2 * 8

    def test_affine_address_of_nested_index(self):
        env = build_env(parse_source("float a[4][8];"))
        prog = parse_source("float a[4][8];\nfree(&a[i][j]);\n")
        env = build_env(prog)
        call = walk_calls(prog.stmts)[0]
        buf, affine = env.buffer_address(call.args[0])
        assert buf == "a"
        assert affine.coef("i") == 8 * 4      # row stride in bytes
        assert affine.coef("j") == 4

    def test_unknown_buffer(self):
        env = build_env(parse_source("int x;"))
        with pytest.raises(SemanticError):
            env.buffer_address(Ident("ghost"))

    def test_non_constant_rejected(self):
        env = build_env(parse_source("int x;"))
        with pytest.raises(SemanticError):
            env.eval_const(Ident("runtime_var"))

    def test_iodim_initialiser(self):
        env = build_env(parse_source(
            "#define N 4\n"
            "fftw_iodim dims[2] = {{N, 1, 1}, {8, N, N}};\n"))
        dims = env.iodims["dims"]
        assert (dims[0].n, dims[0].istride, dims[0].ostride) == (4, 1, 1)
        assert (dims[1].n, dims[1].istride, dims[1].ostride) == (8, 4, 4)


class TestAffine:
    def test_arith(self):
        a = Affine.var("i").scale(4).add(Affine.constant(100))
        assert a.evaluate({"i": 3}) == 112
        assert a.coef("i") == 4
        assert not a.is_constant

    def test_mul_rejects_bilinear(self):
        with pytest.raises(AffineError):
            Affine.var("i").mul(Affine.var("j"))

    def test_sub(self):
        a = Affine.var("i").sub(Affine.var("i"))
        assert a.is_constant

    def test_unbound_variable(self):
        with pytest.raises(AffineError):
            Affine.var("i").evaluate({})
