"""Differential battery: symbolic dependence tower vs brute force.

Randomized small-bound affine footprints where exhaustive ground truth
is computable. Two properties are pinned, across >600 trials:

* **soundness** — a verdict from the symbolic tower alone
  (``allow_enumeration=False``) never contradicts brute force: every
  ``disjoint`` is really disjoint, every ``overlap``/``exact`` really
  overlaps;
* **completeness parity** — with the enumeration fallback enabled (the
  production configuration, budgets identical to the historical
  enumerator) every small-bound query is *decided*, and the decision
  equals ground truth. Since the old prover was pure enumeration, this
  is exactly the "every verdict previously proven by enumeration is
  reproduced" acceptance bar.
"""

import random
from itertools import product

from repro.compiler.affine import Affine
from repro.compiler.analysis.deptest import (_cross_enumerate,
                                             _substitute_points,
                                             _sweep_affine,
                                             cross_iteration_verdict,
                                             same_iteration_verdict)
from repro.compiler.analysis.ranges import Interval

RNG = random.Random(0xA11CE)

VARS = ("i", "j", "k")


def _rand_case(rng, nvars, with_invariant=False):
    loop_ranges = {}
    for v in VARS[:nvars]:
        trips = rng.randint(1, 5)
        loop_ranges[v] = Interval.bounded(0, trips - 1)
    inv_ranges = {}
    inv_vars = ()
    if with_invariant:
        inv_vars = ("s",)
        inv_ranges["s"] = Interval.bounded(0, rng.randint(0, 3))

    def rand_affine():
        coefs = {}
        for v in list(loop_ranges) + list(inv_vars):
            if rng.random() < 0.75:
                coefs[v] = rng.randint(-6, 6)
        return Affine(const=rng.randint(-8, 8),
                      coefs={k: c for k, c in coefs.items() if c})

    a_off, b_off = rand_affine(), rand_affine()
    a_ext, b_ext = rng.randint(1, 8), rng.randint(1, 8)
    return loop_ranges, inv_ranges, a_off, a_ext, b_off, b_ext


def _points(ranges):
    names = list(ranges)
    axes = [range(ranges[v].lo, ranges[v].hi + 1) for v in names]
    for values in product(*axes):
        yield dict(zip(names, values))


def _windows_overlap(a, ea, b, eb):
    return a < b + eb and b < a + ea


def _brute_same(a_off, a_ext, b_off, b_ext, ranges):
    """(any overlap, always the identical interval)."""
    hit, always_exact = False, True
    for pt in _points(ranges):
        a, b = a_off.evaluate(pt), b_off.evaluate(pt)
        if _windows_overlap(a, a_ext, b, b_ext):
            hit = True
        if not (a == b and a_ext == b_ext):
            always_exact = False
    return hit, always_exact


def _brute_cross(w_off, w_ext, f_off, f_ext, loop_ranges, inv_ranges):
    """Any overlap between w at one iteration and f at a different
    one, for some shared value of the invariant symbols."""
    inv_points = list(_points(inv_ranges)) if inv_ranges else [{}]
    pts = list(_points(loop_ranges))
    for inv in inv_points:
        for pi in pts:
            for pj in pts:
                if pi == pj:
                    continue
                w = w_off.evaluate({**pi, **inv})
                f = f_off.evaluate({**pj, **inv})
                if _windows_overlap(w, w_ext, f, f_ext):
                    return True
    return False


def _old_same_verdict(a_off, a_ext, b_off, b_ext, ranges):
    """What the historical pure-enumeration prover answered (None =
    its budgets were exceeded and it said 'unknown')."""
    window = Interval(-(b_ext - 1), a_ext - 1)
    d = _substitute_points(b_off.sub(a_off), ranges)
    if d.is_constant:
        return "overlap" if window.contains(d.const) else "disjoint"
    return _sweep_affine(d, ranges, window)


def _old_cross_verdict(w_off, w_ext, f_off, f_ext, loop_ranges):
    window = Interval(-(f_ext - 1), w_ext - 1)
    dd = _substitute_points(f_off.sub(w_off), loop_ranges)
    return _cross_enumerate(w_off, f_off, window, loop_ranges,
                            loop_ranges, dd)


def test_same_iteration_differential_battery():
    trials = 350
    decided_symbolically = 0
    for _ in range(trials):
        ranges, _, a_off, a_ext, b_off, b_ext = _rand_case(
            RNG, RNG.randint(1, 3))
        truth, exact = _brute_same(a_off, a_ext, b_off, b_ext, ranges)

        sym = same_iteration_verdict(a_off, a_ext, b_off, b_ext,
                                     ranges, allow_enumeration=False)
        if sym.relation == "disjoint":
            assert not truth, (a_off, b_off, ranges)
        elif sym.relation in ("overlap", "exact"):
            assert truth, (a_off, b_off, ranges)
        if sym.relation == "exact":
            assert exact, (a_off, b_off, ranges)
        if sym.decided:
            decided_symbolically += 1

        # parity: wherever the old enumerator decided, the new tower
        # decides the same relation (exact counts as overlap)
        full = same_iteration_verdict(a_off, a_ext, b_off, b_ext,
                                      ranges)
        if full.decided:
            assert (full.relation in ("overlap", "exact")) == truth
        old = _old_same_verdict(a_off, a_ext, b_off, b_ext, ranges)
        if old is not None:
            assert full.decided
            assert (full.relation in ("overlap", "exact")) \
                == (old == "overlap")
    # the tower must carry real weight, not defer everything
    assert decided_symbolically > trials // 4


def test_cross_iteration_differential_battery():
    trials = 350
    decided_symbolically = 0
    for _ in range(trials):
        loop_ranges, _, w_off, w_ext, f_off, f_ext = _rand_case(
            RNG, RNG.randint(1, 3))
        truth = _brute_cross(w_off, w_ext, f_off, f_ext,
                             loop_ranges, {})

        sym = cross_iteration_verdict(w_off, w_ext, f_off, f_ext,
                                      loop_ranges,
                                      allow_enumeration=False)
        if sym.relation == "disjoint":
            assert not truth, (w_off, f_off, loop_ranges)
        elif sym.relation == "overlap":
            assert truth, (w_off, f_off, loop_ranges)
        if sym.decided:
            decided_symbolically += 1

        full = cross_iteration_verdict(w_off, w_ext, f_off, f_ext,
                                       loop_ranges)
        if full.decided:
            assert (full.relation == "overlap") == truth
        old = _old_cross_verdict(w_off, w_ext, f_off, f_ext,
                                 loop_ranges)
        if old is not None:
            # identical-or-strictly-more-precise than the historical
            # enumeration-only prover
            assert full.decided
            assert (full.relation == "overlap") == (old == "overlap")
    assert decided_symbolically > trials // 8


def test_cross_iteration_with_invariant_symbols():
    # a bounded iteration-invariant scalar appears in both offsets:
    # it takes the same value on both sides, so equal coefficients
    # cancel; the verdict must still match ground truth
    trials = 120
    for _ in range(trials):
        loop_ranges, inv_ranges, w_off, w_ext, f_off, f_ext = \
            _rand_case(RNG, RNG.randint(1, 2), with_invariant=True)
        truth = _brute_cross(w_off, w_ext, f_off, f_ext,
                             loop_ranges, inv_ranges)

        sym = cross_iteration_verdict(w_off, w_ext, f_off, f_ext,
                                      loop_ranges, inv_ranges,
                                      allow_enumeration=False)
        if sym.relation == "disjoint":
            assert not truth, (w_off, f_off, loop_ranges, inv_ranges)
        elif sym.relation == "overlap":
            assert truth, (w_off, f_off, loop_ranges, inv_ranges)


def test_unbounded_invariant_symbol_cancels():
    # &x[s + i] against itself across iterations: s is unknown and
    # unbounded, but identical on both sides — the tower must still
    # prove stride-16 windows of extent 16 disjoint
    off = Affine(const=0, coefs={"s": 4, "i": 16})
    v = cross_iteration_verdict(off, 16, off, 16,
                                {"i": Interval.bounded(0, 7)},
                                allow_enumeration=False)
    assert v.relation == "disjoint"
    assert not v.fallback


def test_unbounded_invariant_difference_is_unknown_without_fallback():
    # different coefficients on an unbounded symbol: nothing can decide
    w = Affine(const=0, coefs={"s": 4})
    f = Affine(const=0, coefs={"s": 8})
    v = cross_iteration_verdict(w, 4, f, 4,
                                {"i": Interval.bounded(0, 3)})
    assert v.relation == "unknown"
    assert v.prover == "none" and v.fallback


def test_gcd_proof_on_stride_mismatch():
    # w touches bytes 8i, f touches 8j+4: distance is 4 mod 8, never 0
    w = Affine(const=0, coefs={"i": 8})
    f = Affine(const=4, coefs={"j": 8})
    v = cross_iteration_verdict(
        w, 4, f, 4,
        {"i": Interval.bounded(0, 100), "j": Interval.bounded(0, 100)},
        allow_enumeration=False)
    assert v.relation == "disjoint"
    assert v.prover in ("gcd", "banerjee")


def test_banerjee_direction_bounds():
    # same stride vector, windows separated by more than any feasible
    # iteration distance can close: only the direction-bounds pass
    # (not the pure lattice) can see it
    w = Affine(const=0, coefs={"i": 4})
    f = Affine(const=4096, coefs={"i": 4})
    v = cross_iteration_verdict(w, 4, f, 4,
                                {"i": Interval.bounded(0, 7)},
                                allow_enumeration=False)
    assert v.relation == "disjoint"
    assert v.prover == "banerjee"


def test_mixed_radix_overlap_proof():
    # stride 8 with extent 16: neighbouring iterations provably collide
    off = Affine(const=0, coefs={"i": 8})
    v = cross_iteration_verdict(off, 16, off, 16,
                                {"i": Interval.bounded(0, 7)},
                                allow_enumeration=False)
    assert v.relation == "overlap"
    assert v.prover == "mixed-radix"
