"""The verified schedule rewrite layer: fuse / reorder / split.

Every rewrite must be gated by the legality checker, logged as an
MEA018/MEA019 decision, and carried on a machine-checked certificate
whose facts name the prover that discharged each obligation.  The
translation-validation half (original-vs-rewritten functional
equality over the whole corpus) lives in
``test_rewrite_validation.py``; this file pins the primitives, the
decision log, and the CLI plumbing.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.compiler import (FusedStep, RewriteConfig, run_translated,
                            translate)
from repro.compiler.analyze import main as analyze_main
from repro.compiler.diagnostics import CODE_TITLES
from repro.compiler.passes import DescriptorStep

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "legacy"
FUSABLE = (CORPUS / "fusable_chain.c").read_text()
ILLEGAL = (CORPUS / "illegal_fusion.c").read_text()

HOIST_CHAIN = """
#define R 16
#define C 16
#define N 256
float x[N];
float y[N];
float img[N];
float a[N];
float b[N];
cblas_saxpy(N, 2.0, &x[0], 1, &y[0], 1);
cblas_saxpy(N, 3.0, &a[0], 1, &b[0], 1);
mkl_somatcopy(R, C, 1.0, &y[0], &img[0]);
"""

LARGE_AXPY = """
#define N 262144
float *x;
float *y;
x = malloc(sizeof(float) * N);
y = malloc(sizeof(float) * N);
cblas_saxpy(N, 3.0, x, 1, y, 1);
"""


def scheduled_steps(tp):
    return [s for item in tp.items if isinstance(item, DescriptorStep)
            for s in item.items]


def fused_steps(tp):
    return [s for s in scheduled_steps(tp) if isinstance(s, FusedStep)]


def chain_inputs(shape=(8, 256), seed=7):
    rng = np.random.default_rng(seed)
    return {name: rng.standard_normal(shape).astype(np.float32)
            for name in ("gain", "acc", "img")}


# -- the fuse primitive -------------------------------------------------------

def test_fusion_applied_with_certificate():
    tp = translate(FUSABLE, rewrite=True)
    fused = fused_steps(tp)
    assert len(fused) == 1
    step = fused[0]
    assert step.looped and step.iterations == 8
    assert step.intermediates == ("acc",)
    assert [s.accel for s in step.steps] == ["AXPY", "RESHP"]

    cert = step.certificate
    assert cert is not None
    kinds = {f.kind for f in cert.facts}
    assert {"fuse-linkage-exact", "fuse-cross-iteration-disjoint",
            "fuse-intermediate-dead"} <= kinds
    # every rewrite obligation names the prover that discharged it
    assert all(f.prover for f in cert.facts
               if f.kind.startswith("fuse-"))
    # the merged certificate keeps the members' own analysis facts
    assert any(not f.kind.startswith("fuse-") for f in cert.facts)

    applied = [r for r in tp.rewrites if r.applied]
    assert [r.primitive for r in applied] == ["fuse"]
    assert applied[0].code == "MEA018"
    assert applied[0].prover
    assert "acc" in applied[0].buffers
    # fusion halves the descriptor count of the two-loop program
    assert tp.descriptor_count() < translate(FUSABLE).descriptor_count()


def test_fusion_preserves_numerics_and_saves_energy():
    ins = chain_inputs()
    off = run_translated(translate(FUSABLE), inputs=dict(ins))
    on = run_translated(translate(FUSABLE, rewrite=True),
                        inputs=dict(ins))
    for name in ("acc", "img"):
        np.testing.assert_array_equal(off.buffers[name],
                                      on.buffers[name])
    # the elided DRAM round-trip of 'acc' is real energy
    assert on.result.energy < off.result.energy
    assert on.result.time < off.result.time


def test_fused_step_prices_skipped_dram_traffic():
    tp = translate(FUSABLE, rewrite=True)
    step = fused_steps(tp)[0]
    # 8 iterations x 256 floats written + re-read = 2 * 8 KiB
    assert step.dram_bytes_skipped(tp.env) == 2 * 8 * 256 * 4


def test_illegal_fusion_rejected_with_named_dependence():
    tp = translate(ILLEGAL, rewrite=True)
    assert fused_steps(tp) == []
    assert not any(r.applied for r in tp.rewrites)
    rejected = [r for r in tp.rewrites if r.primitive == "fuse"]
    assert rejected and rejected[0].code == "MEA019"
    assert "blocking dependence" in rejected[0].reason
    assert rejected[0].buffers == ("acc",)
    codes = [d.code for d in tp.diagnostics]
    assert "MEA019" in codes and "MEA018" not in codes

    ins = chain_inputs(seed=11)
    off = run_translated(translate(ILLEGAL), inputs=dict(ins))
    on = run_translated(tp, inputs=dict(ins))
    for name in ("acc", "img"):
        np.testing.assert_array_equal(off.buffers[name],
                                      on.buffers[name])


# -- the reorder primitive ----------------------------------------------------

def test_hoist_reorders_past_independent_step_then_fuses():
    tp = translate(HOIST_CHAIN, rewrite=True)
    prims = [(r.primitive, r.applied) for r in tp.rewrites]
    assert ("reorder", True) in prims and ("fuse", True) in prims
    reorder = next(r for r in tp.rewrites if r.primitive == "reorder")
    assert "hoisted past 1 independent step" in reorder.detail
    assert reorder.prover == "alias-partition"
    fused = fused_steps(tp)
    assert len(fused) == 1 and not fused[0].looped
    assert fused[0].intermediates == ("y",)

    rng = np.random.default_rng(2)
    ins = {n: rng.standard_normal(256).astype(np.float32)
           for n in ("x", "y", "a", "b")}
    off = run_translated(translate(HOIST_CHAIN), inputs=dict(ins))
    on = run_translated(tp, inputs=dict(ins))
    for name in ("y", "b", "img"):
        np.testing.assert_array_equal(off.buffers[name],
                                      on.buffers[name])


# -- the split primitive ------------------------------------------------------

def test_split_tiles_large_axpy_exactly():
    tp = translate(LARGE_AXPY, rewrite=True)
    split = [r for r in tp.rewrites if r.primitive == "split"]
    assert split and split[0].applied and split[0].code == "MEA018"
    (step,) = scheduled_steps(tp)
    assert step.trips == (8,) and step.looped
    kinds = {f.kind for f in step.certificate.facts}
    assert {"split-exact-partition", "carried-dependence-free"} <= kinds

    rng = np.random.default_rng(3)
    x = rng.standard_normal(262144).astype(np.float32)
    y = rng.standard_normal(262144).astype(np.float32)
    on = run_translated(tp, inputs={"x": x, "y": y})
    off = run_translated(translate(LARGE_AXPY),
                         inputs={"x": x, "y": y})
    np.testing.assert_array_equal(on.buffers["y"], off.buffers["y"])
    np.testing.assert_allclose(on.buffers["y"], 3.0 * x + y,
                               rtol=1e-5)


def test_split_respects_size_threshold():
    small = LARGE_AXPY.replace("262144", "1024")
    tp = translate(small, rewrite=True)
    assert not any(r.primitive == "split" for r in tp.rewrites)
    (step,) = scheduled_steps(tp)
    assert not step.looped


# -- configuration and gating -------------------------------------------------

def test_rewrite_requires_the_analyzer():
    with pytest.raises(ValueError):
        translate(FUSABLE, analyze=False, rewrite=True)


def test_rewrites_off_is_the_identity():
    base = translate(FUSABLE)
    off = translate(FUSABLE, rewrite=False)
    assert base.rewrites == () and off.rewrites == ()
    assert base.items == off.items
    assert [d.code for d in base.diagnostics] \
        == [d.code for d in off.diagnostics]


def test_config_disables_individual_primitives():
    tp = translate(FUSABLE, rewrite=True,
                   rewrite_config=RewriteConfig(fuse=False))
    assert fused_steps(tp) == []
    assert not any(r.primitive == "fuse" and r.applied
                   for r in tp.rewrites)
    tp2 = translate(LARGE_AXPY, rewrite=True,
                    rewrite_config=RewriteConfig(split=False))
    assert not any(r.primitive == "split" for r in tp2.rewrites)


def test_rewrite_codes_registered():
    assert CODE_TITLES["MEA018"] == "schedule rewrite applied"
    assert CODE_TITLES["MEA019"] == "schedule rewrite rejected"


# -- CLI plumbing -------------------------------------------------------------

def test_cli_json_rewrites_gated_by_flag(tmp_path, capsys):
    path = tmp_path / "fusable.c"
    path.write_text(FUSABLE)
    assert analyze_main([str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "rewrites" not in payload[0]          # backward compatible

    assert analyze_main([str(path), "--json", "--rewrite"]) == 0
    payload = json.loads(capsys.readouterr().out)
    rewrites = payload[0]["rewrites"]
    applied = [r for r in rewrites if r["applied"]]
    assert applied and applied[0]["code"] == "MEA018"
    assert applied[0]["primitive"] == "fuse" and applied[0]["prover"]
    codes = {d["code"] for d in payload[0]["diagnostics"]}
    assert "MEA018" in codes


def test_cli_no_rewrite_flag(tmp_path, capsys):
    path = tmp_path / "fusable.c"
    path.write_text(FUSABLE)
    assert analyze_main([str(path), "--no-rewrite", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "rewrites" not in payload[0]


def test_cli_sarif_rewrite_properties(tmp_path, capsys):
    ok = tmp_path / "fusable.c"
    bad = tmp_path / "illegal.c"
    ok.write_text(FUSABLE)
    bad.write_text(ILLEGAL)
    assert analyze_main([str(ok), str(bad), "--sarif",
                         "--rewrite"]) == 0
    log = json.loads(capsys.readouterr().out)
    props = log["runs"][0]["properties"]
    assert {str(ok), str(bad)} <= set(props["rewrites"])
    assert any(r["code"] == "MEA019" for r in props["rewrites"][str(bad)])
    rules = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
    assert {"MEA018", "MEA019"} <= rules

    assert analyze_main([str(ok), "--sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert "rewrites" not in log["runs"][0]["properties"]
