"""Tests for the offload-safety analysis framework.

Every stable diagnostic code gets one triggering program and one clean
near-miss; plus the demotion/rejection wiring in ``translate`` and the
no-op property: analysis never changes the schedule of a program it
finds clean.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.apps.sar import SarConfig, sar_source
from repro.apps.stap import PRESETS, stap_source
from repro.compiler import (AccelCallStep, AnalysisRejected,
                            HostCallStep, PlanDestroyStep, parse_source,
                            recognize, run_original, run_translated,
                            translate)
from repro.compiler.analysis import (analyze_source, build_cfg,
                                     check_program)
from repro.compiler.analyze import main as analyze_main


def codes_of(source):
    return sorted({d.code for d in analyze_source(source).report})


# -- MEA001 use-before-init ---------------------------------------------------

USE_BEFORE_INIT = """
#define N 64
float* x;
float y[N];
cblas_saxpy(N, 2.0, &y[0], 1, x, 1);
x = malloc(N * sizeof(float));
free(x);
"""

INIT_THEN_USE = """
#define N 64
float* x;
float y[N];
x = malloc(N * sizeof(float));
cblas_saxpy(N, 2.0, &y[0], 1, x, 1);
free(x);
"""


def test_mea001_use_before_init():
    assert "MEA001" in codes_of(USE_BEFORE_INIT)


def test_mea001_clean_when_alloc_first():
    assert "MEA001" not in codes_of(INIT_THEN_USE)


# -- MEA002 in-place alias ----------------------------------------------------

ALIASED_SAXPY = """
#define N 256
float x[N];
cblas_saxpy(N, 2.0, &x[0], 1, &x[0], 1);
"""

DISJOINT_SAXPY = """
#define N 256
float x[N];
float y[N];
cblas_saxpy(N, 2.0, &x[0], 1, &y[0], 1);
"""

# src == dst exactly: an in-place transpose RESHP supports
INPLACE_TRANSPOSE = """
#define R 16
float a[R][R];
mkl_simatcopy(R, R, 1.0, &a[0][0]);
"""

# partial overlap between src and dst windows of the same buffer
OVERLAPPING_TRANSPOSE = """
#define R 8
float a[128];
mkl_somatcopy(R, R, 1.0, &a[0], &a[32]);
"""


def test_mea002_aliased_saxpy():
    report = analyze_source(ALIASED_SAXPY).report
    diags = report.by_code("MEA002")
    assert diags and diags[0].step_index is not None
    assert "x" in diags[0].buffers


def test_mea002_clean_on_disjoint_buffers():
    assert "MEA002" not in codes_of(DISJOINT_SAXPY)


def test_mea002_allows_exact_inplace_reshp():
    assert codes_of(INPLACE_TRANSPOSE) == []


def test_mea002_partial_overlap_is_error():
    assert "MEA002" in codes_of(OVERLAPPING_TRANSPOSE)


# -- MEA003 use-after-free ----------------------------------------------------

USE_AFTER_FREE = """
#define N 64
float* x;
float y[N];
x = malloc(N * sizeof(float));
free(x);
cblas_saxpy(N, 2.0, x, 1, &y[0], 1);
"""


def test_mea003_use_after_free():
    assert "MEA003" in codes_of(USE_AFTER_FREE)


def test_mea003_clean_when_freed_last():
    assert "MEA003" not in codes_of(INIT_THEN_USE)


# -- MEA004 double-free -------------------------------------------------------

DOUBLE_FREE = """
#define N 64
float* x;
float y[N];
x = malloc(N * sizeof(float));
cblas_saxpy(N, 2.0, &y[0], 1, x, 1);
free(x);
free(x);
"""


def test_mea004_double_free():
    assert "MEA004" in codes_of(DOUBLE_FREE)


def test_mea004_single_free_clean():
    assert "MEA004" not in codes_of(INIT_THEN_USE)


# -- MEA005 loop-carried dependence (serial nests) ----------------------------

# an omp nest accumulating into a shared output: since the race
# detector grew reduction recognition this is MEA010-info, not MEA005
SHARED_OUTPUT_NEST = """
#define N 16
#define M 8
float a[M][N];
float b[N];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_saxpy(N, 1.0, &a[i][0], 1, &b[0], 1);
}
"""

# the same shape with NO pragma: compaction of the serial loop still
# requires iteration independence, so MEA005 keeps firing here
SERIAL_SHARED_NEST = """
#define N 16
#define M 8
float a[M][N];
float b[N];
for (i = 0; i < M; i++) {
  cblas_saxpy(N, 1.0, &a[i][0], 1, &b[0], 1);
}
"""

TILED_NEST = """
#define N 16
#define M 8
float a[M][N];
float b[M][N];
#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_saxpy(N, 1.0, &a[i][0], 1, &b[i][0], 1);
}
"""


def test_mea005_shared_output_across_serial_iterations():
    report = analyze_source(SERIAL_SHARED_NEST).report
    diags = report.by_code("MEA005")
    assert diags and diags[0].step_index is not None


def test_mea005_defers_to_race_detector_under_omp():
    assert "MEA005" not in codes_of(SHARED_OUTPUT_NEST)


def test_mea005_clean_on_exact_tiling():
    assert "MEA005" not in codes_of(TILED_NEST)


# -- MEA006 plan executed after destroy ---------------------------------------

PLAN_PREFIX = """
#define N 8
complex src[N];
complex dst[N];
fftw_iodim dims = {N, 1, 1};
fftwf_plan p;
p = fftwf_plan_guru_dft(1, dims, 0, NULL, src, dst, FFTW_FORWARD, FFTW_ESTIMATE);
"""

EXECUTE_AFTER_DESTROY = PLAN_PREFIX + """
fftwf_destroy_plan(p);
fftwf_execute(p);
"""

DESTROY_AFTER_EXECUTE = PLAN_PREFIX + """
fftwf_execute(p);
fftwf_destroy_plan(p);
"""


def test_mea006_execute_after_destroy():
    assert "MEA006" in codes_of(EXECUTE_AFTER_DESTROY)


def test_mea006_destroy_after_execute_clean():
    assert codes_of(DESTROY_AFTER_EXECUTE) == []


# -- MEA007 dead buffer -------------------------------------------------------

DEAD_BUFFER = """
#define N 64
float* x;
float y[N];
float z[N];
x = malloc(N * sizeof(float));
cblas_saxpy(N, 2.0, &y[0], 1, &z[0], 1);
free(x);
"""


def test_mea007_dead_buffer_warns():
    report = analyze_source(DEAD_BUFFER).report
    diags = report.by_code("MEA007")
    assert diags and all(str(d.severity) == "warning" for d in diags)
    assert not report.has_errors


def test_mea007_consumed_buffer_clean():
    assert "MEA007" not in codes_of(INIT_THEN_USE)


# -- demotion and rejection wiring --------------------------------------------

def test_aliased_call_is_demoted_to_host():
    t = translate(ALIASED_SAXPY)
    assert t.demoted_steps
    hosts = [i for i in t.items if isinstance(i, HostCallStep)]
    assert hosts and hosts[0].demoted and hosts[0].accel == "AXPY"
    assert not any(isinstance(i, AccelCallStep) for i in t.items)


def test_demoted_call_still_computes():
    rng = np.random.default_rng(7)
    inputs = {"x": rng.standard_normal(256).astype(np.float32)}
    out = run_translated(ALIASED_SAXPY, inputs=inputs)
    np.testing.assert_allclose(out.buffers["x"], inputs["x"] * 3.0,
                               rtol=1e-6)
    assert out.result.time > 0 and out.result.energy > 0


def test_demoted_matches_original_interpreter():
    rng = np.random.default_rng(8)
    inputs = {"x": rng.standard_normal(256).astype(np.float32)}
    orig = run_original(ALIASED_SAXPY, inputs=inputs)
    trans = run_translated(ALIASED_SAXPY, inputs=inputs)
    np.testing.assert_allclose(orig.buffers["x"], trans.buffers["x"],
                               rtol=1e-6)


def test_lifecycle_error_rejects_program():
    with pytest.raises(AnalysisRejected) as excinfo:
        translate(USE_AFTER_FREE)
    assert excinfo.value.code == "MEA003"


def test_analyze_false_skips_the_checker():
    t = translate(ALIASED_SAXPY, analyze=False)
    assert not t.demoted_steps
    assert len(t.diagnostics) == 0


def test_looped_fft_demotes_and_destroy_step_is_inert():
    src = PLAN_PREFIX + """
#pragma omp parallel for
for (i = 0; i < 4; i++) {
  fftwf_execute(p);
}
fftwf_destroy_plan(p);
"""
    t = translate(src)
    assert t.demoted_steps
    assert any(isinstance(i, PlanDestroyStep) for i in t.items)
    rng = np.random.default_rng(9)
    vec = (rng.standard_normal(8)
           + 1j * rng.standard_normal(8)).astype(np.complex64)
    out = run_translated(src, inputs={"src": vec})
    np.testing.assert_allclose(out.buffers["dst"],
                               np.fft.fft(vec).astype(np.complex64),
                               rtol=1e-4, atol=1e-4)


# -- the clean-program property -----------------------------------------------

CLEAN_SOURCES = {
    "init-then-use": INIT_THEN_USE,
    "disjoint-saxpy": DISJOINT_SAXPY,
    "inplace-transpose": INPLACE_TRANSPOSE,
    "tiled-nest": TILED_NEST,
    "plan-lifecycle": DESTROY_AFTER_EXECUTE,
    "stap-small": stap_source(PRESETS["small"]),
    "stap-medium": stap_source(PRESETS["medium"]),
    "sar-64": sar_source(SarConfig(64)),
}


@pytest.mark.parametrize("name", sorted(CLEAN_SOURCES))
def test_examples_are_diagnostic_free(name):
    source = CLEAN_SOURCES[name]
    assert codes_of(source) == []


@pytest.mark.parametrize("name", sorted(CLEAN_SOURCES))
def test_analysis_never_changes_a_clean_schedule(name):
    source = CLEAN_SOURCES[name]
    checked = translate(source)
    unchecked = translate(source, analyze=False)
    assert checked.demoted_steps == ()
    assert checked.items == unchecked.items
    assert checked.schedule.steps == unchecked.schedule.steps


# -- report plumbing and CFG shape --------------------------------------------

def test_report_json_roundtrip():
    report = analyze_source(ALIASED_SAXPY).report
    payload = json.loads(report.to_json())
    assert payload["schema"] == "mea-analysis/v1"
    assert payload["error_count"] >= 1
    diag = payload["diagnostics"][0]
    assert diag["code"] == "MEA002" and diag["line"] == 4


def test_cfg_loop_structure():
    program = parse_source(TILED_NEST)
    cfg = build_cfg(program)
    headers = [b for b in cfg.blocks if b.kind == "header"]
    assert len(headers) == 1
    header = headers[0]
    # back edge: some block inside the loop returns to the header
    assert any(header.bid in cfg.block(p).succs
               for p in header.preds if p != cfg.entry)
    body = [b for b in cfg.blocks if b.loop_vars == ("i",)]
    assert body, "loop body blocks carry the loop variable"


def test_check_program_direct_entry():
    program = parse_source(DOUBLE_FREE)
    schedule = recognize(program)
    report = check_program(program, schedule)
    assert report.by_code("MEA004")


# -- CLI ---------------------------------------------------------------------

def test_cli_clean_and_dirty(tmp_path, capsys):
    clean = tmp_path / "clean.c"
    clean.write_text(DISJOINT_SAXPY)
    dirty = tmp_path / "dirty.c"
    dirty.write_text(ALIASED_SAXPY)
    assert analyze_main([str(clean)]) == 0
    assert analyze_main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "clean (0 diagnostics)" in out
    assert "MEA002" in out


def test_cli_json_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.c"
    dirty.write_text(ALIASED_SAXPY)
    assert analyze_main([str(dirty), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["file"] == str(dirty)
    assert payload[0]["diagnostics"][0]["code"] == "MEA002"


def test_cli_unparseable_source(tmp_path):
    bad = tmp_path / "bad.c"
    bad.write_text("float x[;\n")
    assert analyze_main([str(bad)]) == 1


def test_cli_missing_file(tmp_path):
    assert analyze_main([str(tmp_path / "nope.c")]) == 1


# -- CLI: multi-file, SARIF, deterministic ordering ---------------------------

# lifecycle checks run before aliasing, so the MEA003 on the later
# line is *generated* before the MEA002 on the earlier one — only the
# final position sort makes the report order deterministic
UNSORTED_FINDINGS = """
#define N 64
float a[N];
float* x;
float y[N];
cblas_saxpy(N, 2.0, &a[0], 1, &a[0], 1);
x = malloc(N * sizeof(float));
free(x);
cblas_saxpy(N, 2.0, &y[0], 1, x, 1);
"""


def test_diagnostics_sorted_by_position():
    diags = list(analyze_source(UNSORTED_FINDINGS).report)
    assert [d.code for d in diags[:2]] == ["MEA002", "MEA003"]
    keys = [(d.loc.line, d.loc.col or 0, d.code)
            for d in diags if d.loc is not None]
    assert keys == sorted(keys)


def test_cli_multi_file_exit_and_listing(tmp_path, capsys):
    clean = tmp_path / "clean.c"
    clean.write_text(DISJOINT_SAXPY)
    dirty = tmp_path / "dirty.c"
    dirty.write_text(ALIASED_SAXPY)
    assert analyze_main([str(clean), str(dirty)]) == 1
    out = capsys.readouterr().out
    assert f"{clean}: clean (0 diagnostics)" in out
    assert str(dirty) in out and "MEA002" in out


def test_cli_sarif_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.c"
    dirty.write_text(ALIASED_SAXPY)
    clean = tmp_path / "clean.c"
    clean.write_text(DISJOINT_SAXPY)
    assert analyze_main([str(dirty), str(clean), "--sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    driver = log["runs"][0]["tool"]["driver"]
    assert driver["name"] == "mea-analyze"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {"MEA001", "MEA008", "MEA012"} <= rule_ids
    results = log["runs"][0]["results"]
    assert results and results[0]["ruleId"] == "MEA002"
    assert results[0]["level"] == "error"
    where = results[0]["locations"][0]["physicalLocation"]
    assert where["artifactLocation"]["uri"] == str(dirty)
    assert where["region"]["startLine"] == 4


def test_cli_sarif_clean_exit_zero(tmp_path, capsys):
    clean = tmp_path / "clean.c"
    clean.write_text(DISJOINT_SAXPY)
    assert analyze_main([str(clean), "--sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"] == []


def test_cli_json_and_sarif_conflict(tmp_path):
    clean = tmp_path / "c.c"
    clean.write_text(DISJOINT_SAXPY)
    with pytest.raises(SystemExit):
        analyze_main([str(clean), "--json", "--sarif"])


# -- the checked-in example corpus --------------------------------------------

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "legacy"
CLEAN_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.c")
                        if p.name not in ("racy_saxpy.c",
                                          "oob_stride.c"))


@pytest.mark.parametrize("name", CLEAN_EXAMPLES)
def test_clean_example_file_passes_cli(name):
    assert analyze_main([str(EXAMPLES / name)]) == 0


def test_racy_example_fails_cli(capsys):
    assert analyze_main([str(EXAMPLES / "racy_saxpy.c")]) == 1
    out = capsys.readouterr().out
    assert "MEA008" in out and "via main -> accumulate" in out
