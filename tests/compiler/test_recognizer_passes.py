"""Recognizer, chaining, loop compaction, descriptor grouping."""

import pytest

from repro.compiler import (AccelCallStep, AllocStep, ChainStep,
                            DescriptorStep, FreeStep, HostCallStep,
                            RecognizerError, recognize, parse_source,
                            translate)

SAXPY_LOOP = """
#define ROWS 8
#define N 128
float x[ROWS][N];
float y[ROWS][N];
int i;
#pragma omp parallel for
for (i = 0; i < ROWS; i++)
  cblas_saxpy(N, 2.0, &x[i][0], 1, &y[i][0], 1);
"""


def test_loop_compaction_strides():
    schedule = recognize(parse_source(SAXPY_LOOP))
    (step,) = schedule.accel_steps()
    assert step.accel == "AXPY"
    assert step.trips == (8,)
    assert step.loop_vars == ("i",)
    table = step.proto.stride_table(step.loop_vars, step.trips)
    assert table.deltas["x_pa"] == (128 * 4,)
    assert table.deltas["y_pa"] == (128 * 4,)


def test_multi_level_nest():
    src = """
#define A 4
#define B 8
#define N 32
complex w[A][B][N];
complex s[A][B][N];
complex out[A][B];
int i;
int j;
#pragma omp parallel for
for (i = 0; i < A; i++)
  for (j = 0; j < B; j++)
    cblas_cdotc_sub(N, &w[i][j][0], 1, &s[i][j][0], 1, &out[i][j]);
"""
    schedule = recognize(parse_source(src))
    (step,) = schedule.accel_steps()
    assert step.trips == (4, 8)
    assert step.calls == 32
    table = step.proto.stride_table(step.loop_vars, step.trips)
    assert table.deltas["x_pa"] == (8 * 32 * 8, 32 * 8)
    assert table.deltas["out_pa"] == (8 * 8, 8)


def test_total_library_calls():
    schedule = recognize(parse_source(SAXPY_LOOP))
    assert schedule.total_library_calls() == 8


def test_host_functions_not_accelerated():
    src = """
#define N 16
complex a[N][N];
complex c[N][N];
cblas_cherk(N, N, 1.0, &a[0][0], 0.0, &c[0][0]);
"""
    schedule = recognize(parse_source(src))
    assert isinstance(schedule.steps[0], HostCallStep)
    assert not schedule.accel_steps()


def test_alloc_free_steps():
    src = """
float *x;
x = malloc(sizeof(float) * 64);
free(x);
"""
    schedule = recognize(parse_source(src))
    assert isinstance(schedule.steps[0], AllocStep)
    assert isinstance(schedule.steps[1], FreeStep)
    assert schedule.env.buffers["x"].count == 64


def test_unknown_function_rejected():
    with pytest.raises(RecognizerError):
        recognize(parse_source("mystery_call(3);"))


def test_non_unit_stride_saxpy_rejected():
    src = """
float x[64];
float y[64];
cblas_saxpy(16, 1.0, &x[0], 2, &y[0], 1);
"""
    with pytest.raises(RecognizerError):
        recognize(parse_source(src))


def test_nonzero_loop_start_rejected():
    src = """
#define N 16
float x[8][N];
float y[8][N];
int i;
for (i = 1; i < 8; i++)
  cblas_saxpy(N, 1.0, &x[i][0], 1, &y[i][0], 1);
"""
    with pytest.raises(RecognizerError):
        recognize(parse_source(src))


CHAIN_SRC = """
#define R 8
#define C 16
complex *a;
complex *b;
complex *c;
fftwf_plan p1;
fftwf_plan p2;
fftw_iodim hm[2] = {{R, C, 1}, {C, 1, R}};
fftw_iodim dims[1] = {{R, 1, 1}};
fftw_iodim hmf[1] = {{C, R, R}};
a = malloc(sizeof(complex) * R * C);
b = malloc(sizeof(complex) * R * C);
c = malloc(sizeof(complex) * R * C);
p1 = fftwf_plan_guru_dft(0, NULL, 2, hm, a, b, FFTW_FORWARD,
                         FFTW_WISDOM_ONLY);
p2 = fftwf_plan_guru_dft(1, dims, 1, hmf, b, c, FFTW_FORWARD,
                         FFTW_WISDOM_ONLY);
fftwf_execute(p1);
fftwf_execute(p2);
"""


def test_plan_chaining():
    translated = translate(CHAIN_SRC)
    descriptors = [i for i in translated.items
                   if isinstance(i, DescriptorStep)]
    assert len(descriptors) == 1
    (chain,) = descriptors[0].items
    assert isinstance(chain, ChainStep)
    assert [s.accel for s in chain.steps] == ["RESHP", "FFT"]


def test_rank0_plan_is_transpose():
    translated = translate(CHAIN_SRC)
    descriptors = [i for i in translated.items
                   if isinstance(i, DescriptorStep)]
    reshp = descriptors[0].items[0].steps[0]
    assert reshp.proto.scalars["rows"] == 8
    assert reshp.proto.scalars["cols"] == 16


def test_no_chain_when_no_dataflow():
    src = """
#define N 128
float x[N];
float y[N];
float u[N];
float v[N];
cblas_saxpy(N, 1.0, &x[0], 1, &y[0], 1);
cblas_saxpy(N, 1.0, &u[0], 1, &v[0], 1);
"""
    translated = translate(src)
    descriptors = [i for i in translated.items
                   if isinstance(i, DescriptorStep)]
    # same descriptor (adjacent accel steps), but two separate passes
    assert len(descriptors) == 1
    assert len(descriptors[0].items) == 2
    assert all(isinstance(s, AccelCallStep)
               for s in descriptors[0].items)


def test_looped_step_gets_own_descriptor():
    src = SAXPY_LOOP + """
float u[128];
float v[128];
cblas_saxpy(128, 1.0, &u[0], 1, &v[0], 1);
"""
    translated = translate(src)
    descriptors = [i for i in translated.items
                   if isinstance(i, DescriptorStep)]
    assert len(descriptors) == 2


def test_spmv_recognised():
    src = """
#define M 64
float vals[960];
long rowptr[65];
long colidx[960];
float x[M];
float y[M];
mkl_scsrgemv(M, &vals[0], &rowptr[0], &colidx[0], &x[0], &y[0]);
"""
    schedule = recognize(parse_source(src))
    (step,) = schedule.accel_steps()
    assert step.accel == "SPMV"
    assert step.proto.scalars["nnz"] == 960
