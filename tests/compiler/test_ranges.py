"""Unit tests for the interval lattice and the CFG value-range pass."""

from repro.compiler.analysis.cfg import build_cfg
from repro.compiler.analysis.ranges import (EMPTY, TOP, Interval,
                                            ValueRanges, affine_interval,
                                            loop_headers)
from repro.compiler.cparser import parse_source
from repro.compiler.recognizer import recognize
from repro.compiler.affine import Affine


# -- the Interval lattice -----------------------------------------------------

def test_interval_predicates():
    assert Interval.bounded(2, 5).is_bounded
    assert Interval.point(3).is_point
    assert EMPTY.is_empty and not EMPTY.is_bounded
    assert not TOP.is_bounded and not TOP.is_empty
    assert Interval(None, 7).contains(-100)
    assert not Interval(0, 7).contains(8)
    assert Interval.bounded(2, 5).width() == 4
    assert TOP.width() is None
    assert EMPTY.width() == 0


def test_interval_arithmetic():
    a, b = Interval.bounded(1, 3), Interval.bounded(-2, 4)
    assert a.add(b) == Interval.bounded(-1, 7)
    assert a.shift(10) == Interval.bounded(11, 13)
    assert a.neg() == Interval.bounded(-3, -1)
    assert a.scale(-2) == Interval.bounded(-6, -2)
    assert a.scale(0) == Interval.point(0)
    assert Interval(None, 5).scale(2) == Interval(None, 10)
    assert Interval(None, 5).neg() == Interval(-5, None)
    assert EMPTY.add(a).is_empty


def test_interval_lattice_ops():
    a, b = Interval.bounded(0, 3), Interval.bounded(2, 8)
    assert a.join(b) == Interval.bounded(0, 8)
    assert a.meet(b) == Interval.bounded(2, 3)
    assert a.meet(Interval.bounded(5, 9)).is_empty
    assert a.join(EMPTY) == a and EMPTY.meet(a).is_empty
    assert TOP.meet(a) == a and a.join(TOP) == TOP


def test_interval_widening():
    old, new = Interval.bounded(0, 4), Interval.bounded(0, 5)
    assert old.widen(new) == Interval(0, None)      # hi escaped
    assert old.widen(Interval.bounded(-1, 4)) == Interval(None, 4)
    assert old.widen(Interval.bounded(0, 4)) == old  # stable


def test_affine_interval():
    aff = Affine(const=3, coefs={"i": 2, "j": -1})
    ranges = {"i": Interval.bounded(0, 4), "j": Interval.bounded(1, 2)}
    assert affine_interval(aff, ranges) == Interval.bounded(1, 10)
    assert affine_interval(aff, {"i": Interval.bounded(0, 4)}) == TOP


# -- the CFG dataflow ---------------------------------------------------------

def _vranges(src):
    program = parse_source(src)
    schedule = recognize(program)
    cfg = build_cfg(program)
    return cfg, ValueRanges(cfg, schedule.env)


LOOP = """
#define N 16
float x[N];
float y[N];
int i;
for (i = 0; i < N; i++) {
  cblas_saxpy(1, 1.0, &x[i], 1, &y[i], 1);
}
cblas_saxpy(N, 1.0, &x[0], 1, &y[0], 1);
"""


def test_loop_var_exact_inside_body():
    cfg, vr = _vranges(LOOP)
    body = [b for b in cfg.blocks
            if b.kind == "block" and "i" in b.loop_vars]
    assert body
    for blk in body:
        assert vr.var_at(blk.bid, "i") == Interval.bounded(0, 15)


def test_loop_var_narrowed_after_exit():
    cfg, vr = _vranges(LOOP)
    after = [b for b in cfg.blocks
             if b.kind == "block" and "i" not in b.loop_vars
             and any(cfg.block(p).kind == "header" for p in b.preds)]
    assert after
    for blk in after:
        assert vr.var_at(blk.bid, "i") == Interval.point(16)


def test_trip_interval_of_constant_loop():
    cfg, vr = _vranges(LOOP)
    headers = loop_headers(cfg)
    assert headers
    bid, loop = headers[0]
    assert loop.var == "i"
    assert vr.trip_interval(bid) == Interval.point(16)


def test_runtime_scalar_stays_top_and_const_is_point():
    _, vr = _vranges("""
#define N 8
float x[N];
float y[N];
int k;
int m = 40;
cblas_saxpy(N, 1.0, &x[0], 1, &y[0], 1);
""")
    assert vr.global_range("k") == TOP
    assert vr.global_range("m") == Interval.point(40)
    assert vr.global_range("N") == Interval.point(8)


def test_widening_terminates_on_unbounded_loop():
    # bound is a runtime scalar: the body range must widen to [0, +inf)
    # instead of iterating forever
    program = parse_source("""
#define N 8
float x[N];
float y[N];
int k;
int i;
for (i = 0; i < k; i++) {
  cblas_saxpy(1, 1.0, &x[0], 1, &y[0], 1);
}
""")
    cfg = build_cfg(program)
    from repro.compiler.semantics import build_env
    vr = ValueRanges(cfg, build_env(program))
    body = [b for b in cfg.blocks
            if b.kind == "block" and "i" in b.loop_vars]
    assert body
    for blk in body:
        r = vr.var_at(blk.bid, "i")
        assert r.lo == 0 and r.hi is None


def test_nested_loops_each_var_boxed():
    cfg, vr = _vranges("""
#define L 4
#define B 3
float a[L][B];
float b[L][B];
for (l = 0; l < L; l++) {
  for (bb = 0; bb < B; bb++) {
    cblas_saxpy(B, 1.0, &a[l][0], 1, &b[l][0], 1);
  }
}
""")
    inner = [blk for blk in cfg.blocks
             if blk.kind == "block" and "bb" in blk.loop_vars]
    assert inner
    for blk in inner:
        assert vr.var_at(blk.bid, "l") == Interval.bounded(0, 3)
        assert vr.var_at(blk.bid, "bb") == Interval.bounded(0, 2)
