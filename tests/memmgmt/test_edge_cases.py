"""Allocator/driver edge cases: double free, unknown base, exhaustion.

The command-space exhaustion case goes through the full runtime path
(`acc_plan` until the descriptor space is gone) and checks that the
failure is a clean error which leaves the runtime usable — including
after slots are released with `acc_destroy`.
"""

import numpy as np
import pytest

from repro.accel import AxpyParams
from repro.core import MealibSystem, ParamStore
from repro.core.config_unit import ConfigurationUnit
from repro.core.runtime import MealibRuntime
from repro.accel.layer import AcceleratorLayer
from repro.memmgmt import AllocationError
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memmgmt.driver import DriverError, MealibDriver
from repro.memsys.dram3d import StackedDram


def small_command_space_runtime(command_bytes=4096):
    """A runtime whose descriptor (command) space is tiny."""
    driver = MealibDriver(stack_bytes=32 << 20, command_bytes=command_bytes)
    space = UnifiedAddressSpace(driver)
    layer = AcceleratorLayer()
    cu = ConfigurationUnit(layer, space, StackedDram())
    return MealibRuntime(space, cu)


def axpy_store(space, n=64):
    xb, _ = space.alloc_array((n,), np.float32)
    yb, _ = space.alloc_array((n,), np.float32)
    store = ParamStore()
    store.add("a.para", AxpyParams(n=n, alpha=2.0, x_pa=xb.pa,
                                   y_pa=yb.pa).pack())
    return store


class TestDriverFreeEdgeCases:
    def test_double_free_raises_cleanly(self):
        system = MealibSystem(stack_bytes=32 << 20)
        buf = system.space.alloc(4096)
        system.space.free(buf)
        with pytest.raises(AllocationError):
            system.space.free(buf)
        # the driver state is intact: fresh allocations still work
        again = system.space.alloc(4096)
        arr = system.space.va_ndarray(again, np.uint8, (4096,))
        arr[:] = 7
        assert system.space.pa_read(again.pa, 4)[0] == 7

    def test_free_of_unknown_base_raises(self):
        driver = MealibDriver(stack_bytes=32 << 20)
        with pytest.raises(AllocationError):
            driver._mem_free(0x123456)

    def test_munmap_of_unmapped_va_raises(self):
        driver = MealibDriver(stack_bytes=32 << 20)
        with pytest.raises(DriverError):
            driver.munmap(0xDEAD000)


class TestCommandSpaceExhaustion:
    def test_acc_plan_exhaustion_is_clean_and_recoverable(self):
        runtime = small_command_space_runtime(command_bytes=4096)
        store = axpy_store(runtime.space)
        plans = []
        with pytest.raises(AllocationError):
            for _ in range(1000):
                plans.append(runtime.acc_plan(
                    "PASS { COMP AXPY a.para }", store,
                    in_size=512, out_size=256))
        assert plans                       # some fit before exhaustion
        # the failure corrupted nothing: every earlier plan still executes
        result = runtime.acc_execute(plans[0])
        assert result.time > 0
        # and releasing slots makes planning possible again
        for plan in plans:
            runtime.acc_destroy(plan)
        revived = runtime.acc_plan("PASS { COMP AXPY a.para }", store,
                                   in_size=512, out_size=256)
        assert runtime.acc_execute(revived).time > 0

    def test_failed_plan_does_not_leak_slot(self):
        runtime = small_command_space_runtime(command_bytes=4096)
        store = ParamStore()               # missing a.para: encode fails
        free_before = runtime._command_alloc.free_bytes
        for _ in range(50):
            with pytest.raises(Exception):
                runtime.acc_plan("PASS { COMP AXPY a.para }", store,
                                 in_size=512, out_size=256)
        assert runtime._command_alloc.free_bytes == free_before
