"""Tests for the sparse simulated physical memory."""

import numpy as np
import pytest

from repro.memmgmt import PhysicalMemory, PhysMemError


@pytest.fixture
def mem():
    m = PhysicalMemory(1 << 20)
    m.add_region(0x1000, 0x2000)
    return m


def test_capacity_positive():
    with pytest.raises(ValueError):
        PhysicalMemory(0)


def test_read_write_roundtrip(mem):
    mem.write(0x1000, b"hello world")
    assert mem.read(0x1000, 11) == b"hello world"


def test_unbacked_access_raises(mem):
    with pytest.raises(PhysMemError):
        mem.read(0x100, 4)
    with pytest.raises(PhysMemError):
        mem.read(0x4000, 4)


def test_cross_region_end_raises(mem):
    with pytest.raises(PhysMemError):
        mem.read(0x2FFE, 8)


def test_overlapping_region_rejected(mem):
    with pytest.raises(PhysMemError):
        mem.add_region(0x1800, 0x100)
    with pytest.raises(PhysMemError):
        mem.add_region(0x800, 0x1000)


def test_region_outside_capacity():
    m = PhysicalMemory(0x1000)
    with pytest.raises(PhysMemError):
        m.add_region(0x800, 0x1000)


def test_remove_region(mem):
    mem.remove_region(0x1000)
    with pytest.raises(PhysMemError):
        mem.read(0x1000, 1)
    with pytest.raises(PhysMemError):
        mem.remove_region(0x1000)


def test_zero_initialised(mem):
    assert mem.read(0x1000, 16) == b"\x00" * 16


def test_view_is_zero_copy(mem):
    view = mem.view(0x1000, 8)
    view[:] = 7
    assert mem.read(0x1000, 8) == b"\x07" * 8


def test_ndarray_view_aliases_storage(mem):
    arr = mem.ndarray(0x1000, np.float32, (4,))
    arr[:] = [1.0, 2.0, 3.0, 4.0]
    arr2 = mem.ndarray(0x1000, np.float32, (4,))
    np.testing.assert_array_equal(arr2, [1.0, 2.0, 3.0, 4.0])


def test_ndarray_2d(mem):
    arr = mem.ndarray(0x1000, np.int32, (4, 8))
    assert arr.shape == (4, 8)
    arr[2, 3] = 42
    flat = mem.ndarray(0x1000, np.int32, (32,))
    assert flat[2 * 8 + 3] == 42


def test_regions_listing(mem):
    mem.add_region(0x8000, 0x1000)
    assert mem.regions() == [(0x1000, 0x2000), (0x8000, 0x1000)]
