"""Integration tests: driver + unified address space."""

import numpy as np
import pytest

from repro.memmgmt import (DriverError, IoctlRequest, MappedBuffer,
                           MealibDriver, UnifiedAddressSpace)


@pytest.fixture
def space():
    return UnifiedAddressSpace(MealibDriver(stack_bytes=64 << 20,
                                            command_bytes=1 << 16))


def test_command_space_mapped_at_install(space):
    assert space.driver.live_mappings >= 1
    assert space.command_pa == 0
    assert space.command_bytes == 1 << 16


def test_alloc_gives_dual_view(space):
    buf = space.alloc(4096)
    assert buf.size == 4096
    assert space.driver.virt_to_phys(buf.va, buf.size) == buf.pa


def test_cpu_and_accelerator_see_same_bytes(space):
    """The paper's core shared-memory property: CPU writes via VA, the
    accelerator reads the same bytes via PA — one copy of the data."""
    buf = space.alloc(64)
    space.va_write(buf.va, b"datacube")
    assert space.pa_read(buf.pa, 8) == b"datacube"
    space.pa_write(buf.pa + 8, b"!")
    assert space.va_read(buf.va + 8, 1) == b"!"


def test_ndarray_views_alias(space):
    buf, cpu = space.alloc_array((16,), np.float32)
    acc = space.pa_ndarray(buf.pa, np.float32, (16,))
    cpu[:] = np.arange(16, dtype=np.float32)
    np.testing.assert_array_equal(acc, np.arange(16, dtype=np.float32))


def test_free_releases(space):
    buf = space.alloc(4096)
    space.free(buf)
    with pytest.raises(Exception):
        space.pa_read(buf.pa, 1)


def test_allocations_physically_contiguous(space):
    buf = space.alloc(3 * 4096 + 17)
    # translate across the full span: raises if not contiguous
    assert space.driver.virt_to_phys(buf.va, buf.size) == buf.pa


def test_ioctl_rejects_bad_request(space):
    with pytest.raises(DriverError):
        space.driver.ioctl("bogus", 0)  # type: ignore[arg-type]
    with pytest.raises(DriverError):
        space.driver.ioctl(IoctlRequest.MEM_ALLOC, 0)


def test_mmap_guard_pages_keep_mappings_apart(space):
    b1 = space.alloc(4096)
    b2 = space.alloc(4096)
    assert abs(b2.va - b1.va) >= 4096 * 2


def test_mapped_buffer_translation():
    buf = MappedBuffer(va=0x1000, pa=0x9000, size=256)
    assert buf.va_to_pa(0x1080) == 0x9080
    with pytest.raises(ValueError):
        buf.va_to_pa(0x2000)
    with pytest.raises(ValueError):
        MappedBuffer(va=0, pa=0, size=0)


def test_driver_rejects_command_space_bigger_than_stack():
    with pytest.raises(ValueError):
        MealibDriver(stack_bytes=1 << 20, command_bytes=1 << 20)


def test_munmap(space):
    pa = space.driver.ioctl(IoctlRequest.MEM_ALLOC, 4096)
    va = space.driver.mmap(pa, 4096)
    space.driver.munmap(va)
    with pytest.raises(DriverError):
        space.driver.munmap(va)


def test_many_alloc_free_cycles(space):
    for _ in range(50):
        bufs = [space.alloc(8192) for _ in range(8)]
        for b in bufs:
            space.free(b)
    assert space.driver.live_mappings == 1   # only the command space
