"""Tests for the page table and VA→PA translation."""

import pytest

from repro.memmgmt import PAGE_SIZE, PageTable, TranslationError


@pytest.fixture
def pt():
    t = PageTable()
    t.map_range(0x10000, 0x40000, 4 * PAGE_SIZE)
    return t


def test_page_size_must_be_pow2():
    with pytest.raises(ValueError):
        PageTable(page_size=1000)


def test_translate_identity_offset(pt):
    assert pt.translate(0x10000) == 0x40000
    assert pt.translate(0x10000 + 123) == 0x40000 + 123
    assert pt.translate(0x10000 + PAGE_SIZE) == 0x40000 + PAGE_SIZE


def test_unmapped_raises(pt):
    with pytest.raises(TranslationError):
        pt.translate(0x90000)


def test_unaligned_map_raises(pt):
    with pytest.raises(TranslationError):
        pt.map_range(0x123, 0x40000, PAGE_SIZE)
    with pytest.raises(TranslationError):
        pt.map_range(0x20000, 0x41, PAGE_SIZE)


def test_double_map_raises(pt):
    with pytest.raises(TranslationError):
        pt.map_range(0x10000, 0x80000, PAGE_SIZE)


def test_unmap(pt):
    pt.unmap_range(0x10000, 4 * PAGE_SIZE)
    with pytest.raises(TranslationError):
        pt.translate(0x10000)
    with pytest.raises(TranslationError):
        pt.unmap_range(0x10000, PAGE_SIZE)


def test_translate_range_contiguous(pt):
    assert pt.translate_range(0x10000, 4 * PAGE_SIZE) == 0x40000


def test_translate_range_detects_discontiguity():
    t = PageTable()
    t.map_range(0x10000, 0x40000, PAGE_SIZE)
    t.map_range(0x10000 + PAGE_SIZE, 0x90000, PAGE_SIZE)
    with pytest.raises(TranslationError):
        t.translate_range(0x10000, 2 * PAGE_SIZE)


def test_partial_page_mapping_rounds_up():
    t = PageTable()
    t.map_range(0, 0x5000, 100)       # rounds to one page
    assert t.translate(99) == 0x5000 + 99
    assert t.mapped_pages == 1


def test_mapping_size_positive():
    t = PageTable()
    with pytest.raises(TranslationError):
        t.map_range(0, 0, 0)
