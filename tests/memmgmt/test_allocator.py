"""Unit and property tests for the contiguous allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memmgmt import AllocationError, ContiguousAllocator


def test_basic_alloc_free():
    a = ContiguousAllocator(0x1000, 0x10000)
    p = a.alloc(256)
    assert p >= 0x1000
    assert a.free(p) == 256
    assert a.free_bytes == 0x10000


def test_alignment_honoured():
    a = ContiguousAllocator(0, 1 << 20)
    for align in (64, 4096, 65536):
        p = a.alloc(100, align=align)
        assert p % align == 0


def test_bad_alignment():
    a = ContiguousAllocator(0, 1024)
    with pytest.raises(AllocationError):
        a.alloc(10, align=3)


def test_zero_size_rejected():
    a = ContiguousAllocator(0, 1024)
    with pytest.raises(AllocationError):
        a.alloc(0)


def test_exhaustion():
    a = ContiguousAllocator(0, 1024)
    a.alloc(1024, align=1)
    with pytest.raises(AllocationError):
        a.alloc(1, align=1)


def test_double_free():
    a = ContiguousAllocator(0, 1024)
    p = a.alloc(64)
    a.free(p)
    with pytest.raises(AllocationError):
        a.free(p)


def test_free_unknown():
    a = ContiguousAllocator(0, 1024)
    with pytest.raises(AllocationError):
        a.free(0x40)


def test_allocations_do_not_overlap():
    a = ContiguousAllocator(0, 1 << 16)
    spans = []
    for size in (100, 200, 300, 4000, 64):
        p = a.alloc(size)
        for q, s in spans:
            assert p + size <= q or q + s <= p
        spans.append((p, size))


def test_coalescing_allows_big_realloc():
    a = ContiguousAllocator(0, 1 << 16)
    ptrs = [a.alloc(1 << 12, align=1) for _ in range(16)]
    for p in ptrs:
        a.free(p)
    # after freeing everything, the full span must be allocatable again
    big = a.alloc(1 << 16, align=1)
    assert big == 0


def test_allocation_size_lookup():
    a = ContiguousAllocator(0, 1024)
    p = a.alloc(128)
    assert a.allocation_size(p) == 128
    with pytest.raises(AllocationError):
        a.allocation_size(p + 1)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=2048),
                min_size=1, max_size=40))
def test_alloc_free_all_restores_capacity(sizes):
    a = ContiguousAllocator(0x4000, 1 << 20)
    ptrs = []
    for s in sizes:
        ptrs.append(a.alloc(s))
    assert a.live_allocations == len(sizes)
    for p in ptrs:
        a.free(p)
    assert a.free_bytes == 1 << 20
    assert a.live_allocations == 0


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_interleaved_alloc_free_invariants(data):
    a = ContiguousAllocator(0, 1 << 18)
    live = {}
    for _ in range(30):
        do_alloc = data.draw(st.booleans()) or not live
        if do_alloc:
            size = data.draw(st.integers(min_value=1, max_value=4096))
            try:
                p = a.alloc(size)
            except AllocationError:
                continue
            # no overlap with anything live
            for q, s in live.items():
                assert p + size <= q or q + s <= p
            live[p] = size
        else:
            p = data.draw(st.sampled_from(sorted(live)))
            a.free(p)
            del live[p]
    assert a.live_allocations == len(live)
