"""Golden fault-free regression baselines.

Runs a fixed workload matrix (DOT, AXPY, GEMV, SPMV, FFT, RESMP at
three sizes) through a pristine :class:`MealibSystem` and asserts the
modelled time, energy and ledger totals match the checked-in JSON
*exactly* — bit-for-bit and joule-for-joule. Any PR that drifts the
calibrated fault-free model must regenerate the baselines on purpose:

    PYTHONPATH=src python tests/test_golden_baselines.py

The fault paths (reroute, retry, fallback) are free to grow; this
suite pins the path every paper figure is built on.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.core import MealibSystem, ParamStore
from repro.eval.workloads import TABLE2

GOLDEN_PATH = Path(__file__).parent / "golden_baselines.json"

SCHEMA = "golden-baselines/v1"

#: The pinned workload matrix: op x data-set scale.
OPS = ("DOT", "AXPY", "GEMV", "SPMV", "FFT", "RESMP")
SCALES = (0.004, 0.016, 0.064)

#: Ledger categories that must stay exactly zero on a fault-free run.
RESILIENCE_CATEGORIES = ("fault", "retry", "reroute", "fallback")

#: Ledger categories recorded in the golden file.
LEDGER_CATEGORIES = ("invocation", "accelerator")


def run_workload(op: str, scale: float):
    """One op at one scale on a fresh, fault-free system."""
    system = MealibSystem(stack_bytes=64 << 20)
    params = TABLE2[op].params(scale)
    core = system.layer.accelerator(op)
    streams = core.streams(params)
    in_size = sum(s.total_bytes for s in streams if not s.is_write)
    out_size = sum(s.total_bytes for s in streams if s.is_write)
    store = ParamStore()
    store.add("w.para", params.pack())
    plan = system.runtime.acc_plan(
        f"PASS {{ COMP {op} w.para }}", store,
        in_size=in_size, out_size=out_size)
    result = system.runtime.acc_execute(plan, functional=False)
    for category in RESILIENCE_CATEGORIES:
        total = system.ledger.total(category)
        assert total.time == 0.0 and total.energy == 0.0, (
            f"fault-free {op}@{scale} leaked into {category!r}")
    ledger = {}
    for category in LEDGER_CATEGORIES:
        total = system.ledger.total(category)
        ledger[category] = [total.time, total.energy]
    return {"time": result.time, "energy": result.energy,
            "ledger": ledger}


def compute_baselines():
    return {
        "schema": SCHEMA,
        "note": ("Exact fault-free time/energy/ledger values. "
                 "Regenerate deliberately with: PYTHONPATH=src python "
                 "tests/test_golden_baselines.py"),
        "workloads": {f"{op}@{scale}": run_workload(op, scale)
                      for op in OPS for scale in SCALES},
    }


def load_golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — regenerate with: PYTHONPATH=src "
        "python tests/test_golden_baselines.py")
    return load_golden()


def test_schema_and_coverage(golden):
    assert golden["schema"] == SCHEMA
    expected = {f"{op}@{scale}" for op in OPS for scale in SCALES}
    assert set(golden["workloads"]) == expected


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("op", OPS)
def test_fault_free_model_matches_golden_exactly(golden, op, scale):
    recorded = golden["workloads"][f"{op}@{scale}"]
    fresh = run_workload(op, scale)
    # exact float equality on purpose: JSON round-trips IEEE doubles
    # losslessly, so any mismatch is genuine model drift
    assert fresh["time"] == recorded["time"], (
        f"{op}@{scale} time drifted: {fresh['time']!r} != "
        f"{recorded['time']!r}")
    assert fresh["energy"] == recorded["energy"], (
        f"{op}@{scale} energy drifted: {fresh['energy']!r} != "
        f"{recorded['energy']!r}")
    for category in LEDGER_CATEGORIES:
        assert fresh["ledger"][category] == recorded["ledger"][category], (
            f"{op}@{scale} ledger[{category}] drifted")


def test_runs_are_reproducible_within_session():
    assert run_workload("AXPY", SCALES[0]) == run_workload(
        "AXPY", SCALES[0])


def main(argv=None):
    baselines = compute_baselines()
    with GOLDEN_PATH.open("w") as fh:
        json.dump(baselines, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(baselines['workloads'])} baselines "
          f"to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
