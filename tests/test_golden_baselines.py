"""Golden fault-free and degraded-mode regression baselines.

Runs a fixed workload matrix (DOT, AXPY, GEMV, SPMV, FFT, RESMP at
three sizes) through a pristine :class:`MealibSystem` and asserts the
modelled time, energy and ledger totals match the checked-in JSON
*exactly* — bit-for-bit and joule-for-joule. A second, seeded matrix
pins the *degraded* paths: every op once with one dead tile (per-vault
fallback reroutes its stripes) and once with one failed mesh link
(adaptive rerouting detours around it). A third pins the *scrub-on*
path: every op under seeded latent cell upsets with the background
patrol scrubber armed (in-datapath SECDED adjudication + patrol
draining, both deterministic from the injector's dedicated PRNG
stream). A fourth pins the *thermal-on* path: every op heating the
per-vault RC network under a tight power envelope, with throttle
pricing and Arrhenius-thinned deposits both deterministic. The
thermal-off sections are computed exactly as in schema v3 — the
thermal subsystem must never perturb them. Every section additionally
reruns with the descriptor-keyed schedule cache armed
(``schedule_cache=True``) and must stay byte-identical to the very
same golden entries — cached replay is an optimization of the
simulation, never a different model. Any PR that drifts any
model must regenerate the baselines on purpose:

    PYTHONPATH=src python tests/test_golden_baselines.py
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import MealibSystem, ParamStore
from repro.eval.workloads import TABLE2
from repro.faults import FaultInjector, ScrubConfig
from repro.thermal import AMBIENT_K, ThermalConfig

GOLDEN_PATH = Path(__file__).parent / "golden_baselines.json"

SCHEMA = "golden-baselines/v4"

#: The pinned workload matrix: op x data-set scale.
OPS = ("DOT", "AXPY", "GEMV", "SPMV", "FFT", "RESMP")
SCALES = (0.004, 0.016, 0.064)

#: Degraded-mode matrix: every op at one scale, one fault each.
DEGRADED_SCALE = 0.016
DEGRADED_MODES = ("dead-tile", "failed-link")
FAULT_SEED = 4

#: Scrub-on matrix: seeded latent upsets + patrol every 2nd execute.
SCRUB_INTERVAL = 2
SCRUB_EXECUTES = 4
SCRUB_RATE = 1e-5

#: Thermal-on matrix: a tight envelope just above ambient so the
#: heavier ops really throttle, plus seeded Arrhenius-thinned upsets.
THERMAL_MARGIN = 0.5
THERMAL_EXECUTES = 4
THERMAL_RATE = 1e-5

#: Ledger categories that must stay exactly zero on a fault-free run.
RESILIENCE_CATEGORIES = ("fault", "retry", "reroute", "fallback")

#: Ledger categories recorded in the golden file.
LEDGER_CATEGORIES = ("invocation", "accelerator")


def _execute_op(system: MealibSystem, op: str, scale: float):
    """Build and execute one op's descriptor on the given system."""
    params = TABLE2[op].params(scale)
    core = system.layer.accelerator(op)
    streams = core.streams(params)
    in_size = sum(s.total_bytes for s in streams if not s.is_write)
    out_size = sum(s.total_bytes for s in streams if s.is_write)
    store = ParamStore()
    store.add("w.para", params.pack())
    plan = system.runtime.acc_plan(
        f"PASS {{ COMP {op} w.para }}", store,
        in_size=in_size, out_size=out_size)
    return system.runtime.acc_execute(plan, functional=False)


def run_workload(op: str, scale: float, cache: bool = False):
    """One op at one scale on a fresh, fault-free system."""
    system = MealibSystem(stack_bytes=64 << 20, schedule_cache=cache)
    result = _execute_op(system, op, scale)
    for category in RESILIENCE_CATEGORIES:
        total = system.ledger.total(category)
        assert total.time == 0.0 and total.energy == 0.0, (
            f"fault-free {op}@{scale} leaked into {category!r}")
    ledger = {}
    for category in LEDGER_CATEGORIES:
        total = system.ledger.total(category)
        ledger[category] = [total.time, total.energy]
    return {"time": result.time, "energy": result.energy,
            "ledger": ledger}


def run_degraded(op: str, mode: str, cache: bool = False):
    """One op on a system with a single seeded hardware fault."""
    system = MealibSystem(stack_bytes=64 << 20,
                          faults=FaultInjector(seed=FAULT_SEED),
                          schedule_cache=cache)
    if mode == "dead-tile":
        system.layer.mark_tile_failed(0)
    elif mode == "failed-link":
        noc = system.layer.noc
        links = noc.links()
        rng = np.random.default_rng(FAULT_SEED)
        idx = int(rng.permutation(len(links))[0])
        noc.fail_link(*links[idx])
    else:
        raise ValueError(f"unknown degraded mode {mode!r}")
    result = _execute_op(system, op, DEGRADED_SCALE)
    counters = system.runtime.counters
    reroute = system.ledger.total("reroute")
    fallback = system.ledger.total("fallback")
    return {"time": result.time, "energy": result.energy,
            "availability": counters.availability,
            "reroute": [reroute.time, reroute.energy],
            "fallback": [fallback.time, fallback.energy]}


def run_scrubbed(op: str, cache: bool = False):
    """One op under seeded latent upsets with patrol scrubbing armed.

    Every layer of the new machinery runs: deposits land each execute
    (dedicated PRNG stream, so the sequence is exact), the in-datapath
    SECDED guard adjudicates the operand footprint at each fetch, and
    the patrol pass drains whatever sits at rest every
    ``SCRUB_INTERVAL`` executes, charging the ``scrub`` ledger.
    """
    faults = FaultInjector(seed=FAULT_SEED, latent_flip_rate=SCRUB_RATE)
    system = MealibSystem(stack_bytes=64 << 20, faults=faults,
                          scrub=ScrubConfig(interval=SCRUB_INTERVAL),
                          schedule_cache=cache)
    time = energy = 0.0
    for _ in range(SCRUB_EXECUTES):
        result = _execute_op(system, op, DEGRADED_SCALE)
        time += result.time
        energy += result.energy
    counters = system.runtime.counters
    fault = system.ledger.total("fault")
    scrub = system.ledger.total("scrub")
    return {"time": time, "energy": energy,
            "fault": [fault.time, fault.energy],
            "scrub": [scrub.time, scrub.energy],
            "scrub_passes": counters.scrub_passes,
            "ecc_corrections": counters.ecc_corrections,
            "demand_corrected": system.datapath.stats.words_corrected,
            "scrub_corrected": system.scrubber.stats.words_corrected,
            "deposited": faults.stats.latent_flips_deposited}


def run_thermal(op: str, cache: bool = False):
    """One op heating the RC network under a tight power envelope.

    Every thermal layer runs deterministically: the per-pass joule
    attribution drives the RC integration, the governor throttles once
    the envelope (``THERMAL_MARGIN`` kelvin above ambient) is crossed
    and prices the DVFS stretch into the ``throttle`` ledger, and the
    seeded latent upsets deposit through the Arrhenius thinning path.
    The accelerator ledger keeps exactly the nominal share.
    """
    faults = FaultInjector(seed=FAULT_SEED, latent_flip_rate=THERMAL_RATE)
    system = MealibSystem(
        stack_bytes=64 << 20, faults=faults,
        thermal=ThermalConfig(envelope=AMBIENT_K + THERMAL_MARGIN),
        schedule_cache=cache)
    time = energy = 0.0
    for _ in range(THERMAL_EXECUTES):
        result = _execute_op(system, op, DEGRADED_SCALE)
        time += result.time
        energy += result.energy
    counters = system.runtime.counters
    throttle = system.ledger.total("throttle")
    accelerator = system.ledger.total("accelerator")
    return {"time": time, "energy": energy,
            "peak_vault_k": system.thermal.peak_vault_temp,
            "peak_logic_k": system.thermal.peak_logic,
            "throttle": [throttle.time, throttle.energy],
            "accelerator": [accelerator.time, accelerator.energy],
            "throttle_events": system.governor.stats.throttle_events,
            "throttled_executes": counters.throttled_executes,
            "availability": counters.availability,
            "retries": counters.retries,
            "ecc_corrections": counters.ecc_corrections,
            "deposited": faults.stats.latent_flips_deposited}


def compute_baselines():
    return {
        "schema": SCHEMA,
        "note": ("Exact fault-free, seeded degraded-mode, seeded "
                 "scrub-on and seeded thermal-on time/energy/ledger "
                 "values. Regenerate deliberately with: PYTHONPATH=src "
                 "python tests/test_golden_baselines.py"),
        "workloads": {f"{op}@{scale}": run_workload(op, scale)
                      for op in OPS for scale in SCALES},
        "degraded": {f"{op}@{mode}": run_degraded(op, mode)
                     for op in OPS for mode in DEGRADED_MODES},
        "scrubbed": {op: run_scrubbed(op) for op in OPS},
        "thermal": {op: run_thermal(op) for op in OPS},
    }


def load_golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — regenerate with: PYTHONPATH=src "
        "python tests/test_golden_baselines.py")
    return load_golden()


def test_schema_and_coverage(golden):
    assert golden["schema"] == SCHEMA
    expected = {f"{op}@{scale}" for op in OPS for scale in SCALES}
    assert set(golden["workloads"]) == expected
    degraded = {f"{op}@{mode}" for op in OPS for mode in DEGRADED_MODES}
    assert set(golden["degraded"]) == degraded
    assert set(golden["scrubbed"]) == set(OPS)
    assert set(golden["thermal"]) == set(OPS)


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("op", OPS)
def test_fault_free_model_matches_golden_exactly(golden, op, scale):
    recorded = golden["workloads"][f"{op}@{scale}"]
    fresh = run_workload(op, scale)
    # exact float equality on purpose: JSON round-trips IEEE doubles
    # losslessly, so any mismatch is genuine model drift
    assert fresh["time"] == recorded["time"], (
        f"{op}@{scale} time drifted: {fresh['time']!r} != "
        f"{recorded['time']!r}")
    assert fresh["energy"] == recorded["energy"], (
        f"{op}@{scale} energy drifted: {fresh['energy']!r} != "
        f"{recorded['energy']!r}")
    for category in LEDGER_CATEGORIES:
        assert fresh["ledger"][category] == recorded["ledger"][category], (
            f"{op}@{scale} ledger[{category}] drifted")


def test_runs_are_reproducible_within_session():
    assert run_workload("AXPY", SCALES[0]) == run_workload(
        "AXPY", SCALES[0])


@pytest.mark.parametrize("mode", DEGRADED_MODES)
@pytest.mark.parametrize("op", OPS)
def test_degraded_model_matches_golden_exactly(golden, op, mode):
    recorded = golden["degraded"][f"{op}@{mode}"]
    fresh = run_degraded(op, mode)
    assert fresh == recorded, (
        f"{op}@{mode} degraded baseline drifted: {fresh!r} != "
        f"{recorded!r}")


@pytest.mark.parametrize("op", OPS)
def test_scrubbed_model_matches_golden_exactly(golden, op):
    recorded = golden["scrubbed"][op]
    fresh = run_scrubbed(op)
    assert fresh == recorded, (
        f"{op} scrub-on baseline drifted: {fresh!r} != {recorded!r}")


@pytest.mark.parametrize("op", OPS)
def test_scrubbed_runs_really_scrub(golden, op):
    point = golden["scrubbed"][op]
    # the patrol fired on schedule and charged the scrub ledger
    assert point["scrub_passes"] == SCRUB_EXECUTES // SCRUB_INTERVAL
    assert point["scrub"][0] > 0.0 and point["scrub"][1] > 0.0
    # seeded upsets really landed and were adjudicated somewhere
    assert point["deposited"] > 0
    assert point["scrub_corrected"] + point["demand_corrected"] > 0


@pytest.mark.parametrize("op", OPS)
def test_thermal_model_matches_golden_exactly(golden, op):
    recorded = golden["thermal"][op]
    fresh = run_thermal(op)
    assert fresh == recorded, (
        f"{op} thermal-on baseline drifted: {fresh!r} != {recorded!r}")


@pytest.mark.parametrize("op", OPS)
def test_thermal_runs_really_heat_and_never_drop(golden, op):
    point = golden["thermal"][op]
    # the RC network really integrated the run above ambient...
    assert point["peak_vault_k"] > AMBIENT_K
    assert point["peak_logic_k"] > AMBIENT_K
    # ...and throttling is pricing, never refusal
    assert point["availability"] == 1.0
    # the stretch is priced into `throttle` exactly when it happened
    throttled = point["throttled_executes"] > 0
    assert (point["throttle"][0] > 0.0) == throttled
    assert (point["throttle"][1] > 0.0) == throttled


def test_some_op_crosses_the_tight_envelope(golden):
    # the pinned margin is chosen so the heavier ops genuinely trip the
    # governor: the matrix pins real throttle pricing, not a no-op
    assert any(point["throttled_executes"] > 0
               for point in golden["thermal"].values())


@pytest.mark.parametrize("op", OPS)
def test_throttle_never_reprices_the_nominal_share(op):
    # paired fault-free runs (the v3 sections of the golden file are
    # computed with no thermal model at all; their exact-match tests
    # above already prove thermal-off is unperturbed): under a tight
    # envelope the accelerator ledger stays bit-identical to the
    # thermal-off run's, and the total is exactly the clean total plus
    # the ledgered DVFS stretch — frequency-only throttling never
    # reprices the nominal share
    hot_sys = MealibSystem(
        stack_bytes=64 << 20,
        thermal=ThermalConfig(envelope=AMBIENT_K + THERMAL_MARGIN))
    clean_sys = MealibSystem(stack_bytes=64 << 20)
    hot_time = hot_energy = clean_time = clean_energy = 0.0
    for _ in range(THERMAL_EXECUTES):
        hot = _execute_op(hot_sys, op, DEGRADED_SCALE)
        clean = _execute_op(clean_sys, op, DEGRADED_SCALE)
        hot_time += hot.time
        hot_energy += hot.energy
        clean_time += clean.time
        clean_energy += clean.energy
    assert (hot_sys.ledger.total("accelerator")
            == clean_sys.ledger.total("accelerator"))
    throttle = hot_sys.ledger.total("throttle")
    assert hot_sys.runtime.counters.throttled_executes > 0
    assert hot_time == pytest.approx(clean_time + throttle.time,
                                     rel=1e-12)
    assert hot_energy == pytest.approx(clean_energy + throttle.energy,
                                       rel=1e-12)


# -- the full v4 matrix again, with the schedule cache armed ------------------
#
# The cache must be joule-exact and bit-identical: every section of the
# golden file is recomputed on a cache-enabled system and compared to
# the *same* recorded entries the cache-off tests above pin. The
# scrubbed/thermal sections repeat each descriptor four times, so they
# really exercise replay-under-invalidation (deposits, governor state
# changes and patrol repairs all bump epochs mid-matrix).


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("op", OPS)
def test_fault_free_cache_on_matches_golden_exactly(golden, op, scale):
    recorded = golden["workloads"][f"{op}@{scale}"]
    fresh = run_workload(op, scale, cache=True)
    assert fresh == recorded, (
        f"{op}@{scale} drifted with schedule cache on: {fresh!r} != "
        f"{recorded!r}")


@pytest.mark.parametrize("mode", DEGRADED_MODES)
@pytest.mark.parametrize("op", OPS)
def test_degraded_cache_on_matches_golden_exactly(golden, op, mode):
    recorded = golden["degraded"][f"{op}@{mode}"]
    fresh = run_degraded(op, mode, cache=True)
    assert fresh == recorded, (
        f"{op}@{mode} drifted with schedule cache on: {fresh!r} != "
        f"{recorded!r}")


@pytest.mark.parametrize("op", OPS)
def test_scrubbed_cache_on_matches_golden_exactly(golden, op):
    recorded = golden["scrubbed"][op]
    fresh = run_scrubbed(op, cache=True)
    assert fresh == recorded, (
        f"{op} scrub-on drifted with schedule cache on: {fresh!r} != "
        f"{recorded!r}")


@pytest.mark.parametrize("op", OPS)
def test_thermal_cache_on_matches_golden_exactly(golden, op):
    recorded = golden["thermal"][op]
    fresh = run_thermal(op, cache=True)
    assert fresh == recorded, (
        f"{op} thermal-on drifted with schedule cache on: {fresh!r} != "
        f"{recorded!r}")


@pytest.mark.parametrize("op", OPS)
def test_dead_tile_reroutes_without_fallback(golden, op):
    point = golden["degraded"][f"{op}@dead-tile"]
    # one dead tile costs reroute bandwidth, never the accelerated path
    assert point["availability"] == 1.0
    assert point["fallback"] == [0.0, 0.0]
    assert point["reroute"][0] > 0.0


@pytest.mark.parametrize("op", OPS)
def test_degraded_never_beats_fault_free(golden, op):
    clean = golden["workloads"][f"{op}@{DEGRADED_SCALE}"]
    for mode in DEGRADED_MODES:
        point = golden["degraded"][f"{op}@{mode}"]
        assert point["time"] >= clean["time"], (
            f"{op}@{mode} is faster than the fault-free run")


def main(argv=None):
    baselines = compute_baselines()
    with GOLDEN_PATH.open("w") as fh:
        json.dump(baselines, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(baselines['workloads'])} baselines "
          f"to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
