"""Property tests for the adaptive mesh router under link failures.

For every (src, dst) pair, under up to six random seeded link
failures: the route is loop-free, crosses only healthy links between
adjacent routers, and collapses to the XY hop count when nothing is
failed; pairs the failures disconnect raise the typed
:class:`NocUnreachableError` instead of hanging.
"""

import numpy as np
import pytest

from repro.accel import LinkHealth, MeshNoc, NocUnreachableError


def fresh_noc():
    return MeshNoc()


def fail_random_links(noc, k, seed):
    rng = np.random.default_rng(seed)
    links = noc.links()
    picks = rng.choice(len(links), size=k, replace=False)
    for i in picks:
        noc.fail_link(*links[int(i)])
    return [links[int(i)] for i in picks]


def assert_route_well_formed(noc, src, dst, path):
    assert path[0] == src and path[-1] == dst
    assert len(set(path)) == len(path), f"loop in route {path}"
    for a, b in zip(path, path[1:]):
        assert noc.hops(a, b) == 1, f"{a}->{b} not adjacent in {path}"
        assert noc.health.is_healthy(a, b), f"{a}->{b} is failed"


class TestHealthyMesh:
    def test_routes_match_xy_hop_count(self):
        noc = fresh_noc()
        for src in range(noc.tiles):
            for dst in range(noc.tiles):
                path = noc.route(src, dst)
                assert_route_well_formed(noc, src, dst, path)
                assert len(path) - 1 == noc.hops(src, dst)
                assert noc.route_hops(src, dst) == noc.hops(src, dst)

    def test_transfer_costs_match_pre_overlay_model(self):
        # the overlay must not perturb the calibrated fault-free model
        noc = fresh_noc()
        assert noc.transfer_time(4096, 5, 5) == 0.0
        assert noc.transfer_time(1 << 20, 0, 15) == (
            6 * noc.hop_latency + (1 << 20) / noc.link_bw)
        assert noc.transfer_energy(1024, 0, 15) == (
            1024 * 6 * noc.energy_per_byte_hop)

    def test_full_bisection_bandwidth(self):
        noc = fresh_noc()
        assert noc.bisection_bandwidth() == 4 * noc.link_bw


class TestDegradedMesh:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", range(1, 7))
    def test_routes_avoid_failed_links(self, k, seed):
        noc = fresh_noc()
        failed = fail_random_links(noc, k, seed=1000 * k + seed)
        assert noc.failed_links == frozenset(failed)
        for src in range(noc.tiles):
            for dst in range(noc.tiles):
                try:
                    path = noc.route(src, dst)
                except NocUnreachableError as exc:
                    assert exc.src == src and exc.dst == dst
                    continue
                assert_route_well_formed(noc, src, dst, path)
                # detours never undershoot the Manhattan distance
                assert len(path) - 1 >= noc.hops(src, dst)

    @pytest.mark.parametrize("seed", range(8))
    def test_reachability_is_symmetric(self, seed):
        noc = fresh_noc()
        fail_random_links(noc, 6, seed=seed)
        for src in range(noc.tiles):
            reach = noc.reachable(src)
            assert src in reach
            for dst in reach:
                assert src in noc.reachable(dst)

    def test_detour_lengthens_route(self):
        noc = fresh_noc()
        noc.fail_link(0, 1)            # XY route 0 -> 3 starts with 0-1
        path = noc.route(0, 3)
        assert_route_well_formed(noc, 0, 3, path)
        assert len(path) - 1 > noc.hops(0, 3)
        assert noc.transfer_time(1 << 10, 0, 3) > (
            3 * noc.hop_latency + (1 << 10) / noc.link_bw)

    def test_unreachable_raises_typed_error(self):
        noc = fresh_noc()
        # sever tile 0 completely (corner: two links)
        noc.fail_link(0, 1)
        noc.fail_link(0, 4)
        with pytest.raises(NocUnreachableError):
            noc.route(0, 15)
        with pytest.raises(NocUnreachableError):
            noc.route(15, 0)
        assert noc.reachable(0) == {0}

    def test_restore_heals_the_route(self):
        noc = fresh_noc()
        noc.fail_link(0, 1)
        noc.fail_link(0, 4)
        noc.restore_link(0, 4)
        path = noc.route(0, 3)
        assert_route_well_formed(noc, 0, 3, path)
        noc.restore_link(0, 1)
        assert not noc.degraded
        assert len(noc.route(0, 3)) - 1 == noc.hops(0, 3)

    def test_bisection_bandwidth_degrades(self):
        noc = fresh_noc()
        noc.fail_link(1, 2)            # crosses the vertical cut
        assert noc.bisection_bandwidth() == 3 * noc.link_bw
        noc.fail_link(5, 6)
        assert noc.bisection_bandwidth() == 2 * noc.link_bw
        noc.fail_link(4, 5)            # does not cross either cut
        assert noc.bisection_bandwidth() == 2 * noc.link_bw

    def test_fail_link_validates_adjacency(self):
        noc = fresh_noc()
        with pytest.raises(ValueError):
            noc.fail_link(0, 2)
        with pytest.raises(ValueError):
            noc.fail_link(0, 16)

    def test_link_health_overlay_is_shared_state(self):
        noc = fresh_noc()
        health = LinkHealth()
        assert not health.degraded
        noc.fail_link(2, 3)
        assert noc.health.degraded
        noc.health.restore_all()
        assert not noc.degraded
