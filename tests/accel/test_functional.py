"""Functional correctness of every accelerator against the software
library, executed over the unified address space (the paper's key
property: accelerators compute on the same bytes the CPU sees)."""

import numpy as np
import pytest

from repro.accel import (AxpyAccelerator, AxpyParams, DTYPE_C64,
                         DotAccelerator, DotParams, FftAccelerator,
                         FftParams, GemvAccelerator, GemvParams,
                         ReshpAccelerator, ReshpParams, ResmpAccelerator,
                         ResmpParams, SpmvAccelerator, SpmvParams)
from repro.memmgmt import MealibDriver, UnifiedAddressSpace
from repro.mkl import interpolate_1d, random_geometric_graph

RNG = np.random.default_rng(42)


@pytest.fixture
def space():
    return UnifiedAddressSpace(MealibDriver(stack_bytes=256 << 20))


def test_axpy_functional(space):
    n = 4096
    xb, x = space.alloc_array((n,), np.float32)
    yb, y = space.alloc_array((n,), np.float32)
    x[:] = RNG.standard_normal(n)
    y[:] = RNG.standard_normal(n)
    ref = 2.5 * x + y
    AxpyAccelerator().run(space, AxpyParams(n=n, alpha=2.5, x_pa=xb.pa,
                                            y_pa=yb.pa))
    np.testing.assert_allclose(y, ref, rtol=1e-6)


def test_dot_functional_real(space):
    n = 2048
    xb, x = space.alloc_array((n,), np.float32)
    yb, y = space.alloc_array((n,), np.float32)
    ob, out = space.alloc_array((1,), np.float32)
    x[:] = RNG.standard_normal(n)
    y[:] = RNG.standard_normal(n)
    DotAccelerator().run(space, DotParams(n=n, x_pa=xb.pa, y_pa=yb.pa,
                                          out_pa=ob.pa))
    assert out[0] == pytest.approx(float(np.dot(x, y)), rel=1e-4)


def test_dot_functional_complex_strided(space):
    """The STAP shape: cdotc with a strided second operand."""
    n, stride = 64, 7
    xb, x = space.alloc_array((n,), np.complex64)
    yb, y = space.alloc_array((n * stride,), np.complex64)
    ob, out = space.alloc_array((1,), np.complex64)
    x[:] = RNG.standard_normal(n) + 1j * RNG.standard_normal(n)
    y[:] = (RNG.standard_normal(n * stride)
            + 1j * RNG.standard_normal(n * stride))
    DotAccelerator().run(space, DotParams(
        n=n, x_pa=xb.pa, y_pa=yb.pa, out_pa=ob.pa, incy=stride,
        dtype=DTYPE_C64))
    assert complex(out[0]) == pytest.approx(
        complex(np.vdot(x, y[::stride])), rel=1e-3)


def test_gemv_functional(space):
    m, n = 64, 96
    ab, a = space.alloc_array((m, n), np.float32)
    xb, x = space.alloc_array((n,), np.float32)
    yb, y = space.alloc_array((m,), np.float32)
    a[:] = RNG.standard_normal((m, n))
    x[:] = RNG.standard_normal(n)
    y[:] = RNG.standard_normal(m)
    ref = 1.5 * (a @ x) + 0.5 * y
    GemvAccelerator().run(space, GemvParams(
        m=m, n=n, alpha=1.5, beta=0.5, a_pa=ab.pa, x_pa=xb.pa,
        y_pa=yb.pa))
    np.testing.assert_allclose(y, ref, rtol=1e-4)


def test_spmv_functional(space):
    g = random_geometric_graph(400, seed=8)
    ib, indptr = space.alloc_array((g.rows + 1,), np.int64)
    jb, indices = space.alloc_array((max(g.nnz, 1),), np.int64)
    db, data = space.alloc_array((max(g.nnz, 1),), np.float32)
    xb, x = space.alloc_array((g.shape[1],), np.float32)
    yb, y = space.alloc_array((g.rows,), np.float32)
    indptr[:] = g.indptr
    indices[: g.nnz] = g.indices
    data[: g.nnz] = g.data
    x[:] = RNG.standard_normal(g.shape[1])
    SpmvAccelerator().run(space, SpmvParams(
        rows=g.rows, cols=g.shape[1], nnz=g.nnz, indptr_pa=ib.pa,
        indices_pa=jb.pa, data_pa=db.pa, x_pa=xb.pa, y_pa=yb.pa))
    np.testing.assert_allclose(y, g.to_dense() @ x, rtol=1e-3, atol=1e-4)


def test_fft_functional(space):
    n, batch = 256, 8
    sb, src = space.alloc_array((batch, n), np.complex64)
    db_, dst = space.alloc_array((batch, n), np.complex64)
    src[:] = (RNG.standard_normal((batch, n))
              + 1j * RNG.standard_normal((batch, n)))
    FftAccelerator().run(space, FftParams(n=n, batch=batch, src_pa=sb.pa,
                                          dst_pa=db_.pa))
    np.testing.assert_allclose(dst, np.fft.fft(src, axis=-1), rtol=1e-3,
                               atol=1e-3)


def test_resmp_functional(space):
    blocks, n = 4, 128
    kb, knots = space.alloc_array((n,), np.float32)
    ib, series = space.alloc_array((blocks, n), np.complex64)
    stb, sites = space.alloc_array((blocks, n), np.float32)
    ob, out = space.alloc_array((blocks, n), np.complex64)
    knots[:] = np.arange(n, dtype=np.float32)
    series[:] = (RNG.standard_normal((blocks, n))
                 + 1j * RNG.standard_normal((blocks, n)))
    sites[:] = np.linspace(0, n - 1, n, dtype=np.float32) + 0.25
    ResmpAccelerator().run(space, ResmpParams(
        blocks=blocks, n_in=n, n_out=n, in_pa=ib.pa, sites_pa=stb.pa,
        out_pa=ob.pa, knots_pa=kb.pa))
    for b in range(blocks):
        ref = interpolate_1d(knots.astype(np.float64), series[b],
                             sites[b].astype(np.float64))
        np.testing.assert_allclose(out[b], ref, rtol=1e-3, atol=1e-3)


def test_reshp_functional_out_of_place(space):
    rows, cols = 48, 80
    sb, src = space.alloc_array((rows, cols), np.float32)
    db_, dst = space.alloc_array((cols, rows), np.float32)
    src[:] = RNG.standard_normal((rows, cols))
    ReshpAccelerator().run(space, ReshpParams(
        rows=rows, cols=cols, elem_bytes=4, src_pa=sb.pa, dst_pa=db_.pa))
    np.testing.assert_array_equal(dst, src.T)


def test_reshp_functional_in_place(space):
    n = 32
    sb, src = space.alloc_array((n, n), np.complex64)
    src[:] = (RNG.standard_normal((n, n))
              + 1j * RNG.standard_normal((n, n)))
    ref = src.T.copy()
    ReshpAccelerator().run(space, ReshpParams(
        rows=n, cols=n, elem_bytes=8, src_pa=sb.pa, dst_pa=sb.pa))
    np.testing.assert_array_equal(src, ref)


def test_reshp_in_place_must_be_square(space):
    sb, _ = space.alloc_array((4, 8), np.float32)
    with pytest.raises(ValueError):
        ReshpAccelerator().run(space, ReshpParams(
            rows=4, cols=8, elem_bytes=4, src_pa=sb.pa, dst_pa=sb.pa))


def test_reshp_bad_elem_size(space):
    sb, _ = space.alloc_array((4, 4), np.float32)
    with pytest.raises(ValueError):
        ReshpAccelerator().run(space, ReshpParams(
            rows=4, cols=4, elem_bytes=3, src_pa=sb.pa, dst_pa=sb.pa))


def test_cpu_sees_accelerator_results(space):
    """End-to-end shared memory: CPU writes via VA views, accelerator
    computes via PA, CPU reads the result via VA — no copies anywhere."""
    n = 1024
    xb, x_cpu = space.alloc_array((n,), np.float32)
    yb, y_cpu = space.alloc_array((n,), np.float32)
    x_cpu[:] = 1.0
    y_cpu[:] = 2.0
    AxpyAccelerator().run(space, AxpyParams(n=n, alpha=3.0, x_pa=xb.pa,
                                            y_pa=yb.pa))
    np.testing.assert_array_equal(y_cpu, np.full(n, 5.0, np.float32))
