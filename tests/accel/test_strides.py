"""Mixed-radix stride tables and parameter shifting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import AxpyParams, DotParams
from repro.accel.base import (StrideTable, linear_strides, pack_strides,
                              shift_params, unpack_strides)


def test_linear_table():
    table = linear_strides(AxpyParams, {"x_pa": 64})
    assert table.trips == (0,)
    assert table.deltas["x_pa"] == (64,)
    assert table.deltas["y_pa"] == (0,)
    assert table.offsets(5) == {"x_pa": 320, "y_pa": 0}


def test_linear_rejects_unknown_field():
    with pytest.raises(ValueError):
        linear_strides(AxpyParams, {"z_pa": 64})


def test_table_arity_checked():
    with pytest.raises(ValueError):
        StrideTable(trips=(2, 3), deltas={"x_pa": (1,)})


def test_mixed_radix_offsets():
    # trips (2, 3): iteration order (0,0)(0,1)(0,2)(1,0)...
    table = StrideTable(trips=(2, 3),
                        deltas={"x_pa": (100, 10), "y_pa": (0, 1)})
    assert table.total == 6
    assert table.offsets(0) == {"x_pa": 0, "y_pa": 0}
    assert table.offsets(2) == {"x_pa": 20, "y_pa": 2}
    assert table.offsets(3) == {"x_pa": 100, "y_pa": 0}
    assert table.offsets(5) == {"x_pa": 120, "y_pa": 2}


def test_pack_unpack_roundtrip():
    table = StrideTable(
        trips=(4, 8),
        deltas={"x_pa": (512, 8), "y_pa": (0, 16), "out_pa": (8, 1)})
    blob = pack_strides(DotParams, table)
    back = unpack_strides(DotParams, blob)
    assert back.trips == (4, 8)
    assert back.deltas["x_pa"] == (512, 8)
    assert back.deltas["out_pa"] == (8, 1)


def test_pack_accepts_mapping():
    blob = pack_strides(AxpyParams, {"y_pa": 32})
    back = unpack_strides(AxpyParams, blob)
    assert back.deltas["y_pa"] == (32,)


def test_shift_params():
    base = AxpyParams(n=16, alpha=1.0, x_pa=1000, y_pa=2000)
    shifted = shift_params(base, {"x_pa": 64, "y_pa": 128}, 3)
    assert shifted.x_pa == 1000 + 192
    assert shifted.y_pa == 2000 + 384
    assert shifted.n == 16
    assert shift_params(base, {"x_pa": 64}, 0) is base
    assert shift_params(base, None, 7) is base


@settings(max_examples=50)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=35))
def test_offsets_match_nested_loops(t0, t1, i):
    """Mixed-radix offsets must equal what the source loop nest does."""
    table = StrideTable(trips=(t0, t1),
                        deltas={"x_pa": (17, 3), "y_pa": (5, 0)})
    if i >= t0 * t1:
        i = i % (t0 * t1)
    outer, inner = divmod(i, t1)
    expected_x = 17 * outer + 3 * inner
    expected_y = 5 * outer
    assert table.offsets(i) == {"x_pa": expected_x, "y_pa": expected_y}
