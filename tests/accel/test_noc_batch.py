"""Differential tests for the vectorized NoC hop kernels.

``hops_batch``/``route_hops_batch``/``mean_hops`` must agree exactly
with the retained per-pair scalar paths (``hops``/``route_hops``),
healthy and degraded, and the health-change hook must fire only on
genuine link-state transitions.
"""

import numpy as np
import pytest

from repro.accel import MeshNoc, NocUnreachableError


def test_hops_batch_matches_scalar_all_pairs():
    noc = MeshNoc()
    srcs = np.arange(noc.tiles)
    for dst in range(noc.tiles):
        got = noc.hops_batch(srcs, dst)
        assert got.dtype == np.int64
        assert got.tolist() == [noc.hops(s, dst) for s in range(noc.tiles)]


def test_hops_batch_accepts_lists_and_empty():
    noc = MeshNoc()
    assert noc.hops_batch([5, 0, 5], 5).tolist() == [0, 2, 0]
    assert noc.hops_batch(np.array([], dtype=np.int64), 0).size == 0


def test_hops_batch_rejects_out_of_range():
    noc = MeshNoc()
    with pytest.raises(ValueError):
        noc.hops_batch([0, noc.tiles], 0)
    with pytest.raises(ValueError):
        noc.hops_batch([-1], 0)


def test_route_hops_batch_healthy_matches_scalar():
    noc = MeshNoc()
    srcs = np.arange(noc.tiles)
    for dst in range(noc.tiles):
        assert noc.route_hops_batch(srcs, dst).tolist() == [
            noc.route_hops(s, dst) for s in range(noc.tiles)]


@pytest.mark.parametrize("seed", range(6))
def test_route_hops_batch_degraded_matches_scalar(seed):
    noc = MeshNoc()
    rng = np.random.default_rng(seed)
    links = noc.links()
    for i in rng.choice(len(links), size=4, replace=False):
        noc.fail_link(*links[int(i)])
    for dst in range(noc.tiles):
        reachable = [s for s in range(noc.tiles)
                     if dst in noc.reachable(s)]
        got = noc.route_hops_batch(np.array(reachable), dst)
        assert got.tolist() == [noc.route_hops(s, dst) for s in reachable]


def test_route_hops_batch_degraded_unreachable_raises():
    noc = MeshNoc()
    noc.fail_link(0, 1)
    noc.fail_link(0, 4)               # tile 0 fully severed
    with pytest.raises(NocUnreachableError):
        noc.route_hops_batch(np.array([3, 0]), 15)


def test_mean_hops_matches_double_loop():
    for noc in (MeshNoc(), MeshNoc(rows=2, cols=3), MeshNoc(rows=1,
                                                            cols=1)):
        total = sum(noc.hops(a, b) for a in range(noc.tiles)
                    for b in range(noc.tiles) if a != b)
        pairs = noc.tiles * (noc.tiles - 1)
        want = total / pairs if pairs else 0.0
        assert noc.mean_hops() == want


def test_health_hook_fires_only_on_transitions():
    noc = MeshNoc()
    fired = []
    noc.health.on_change = lambda: fired.append(1)
    noc.fail_link(0, 1)
    assert len(fired) == 1
    noc.fail_link(0, 1)               # already failed: no event
    assert len(fired) == 1
    noc.restore_link(0, 1)
    assert len(fired) == 2
    noc.restore_link(0, 1)            # already healthy: no event
    assert len(fired) == 2
    noc.health.restore_all()          # nothing failed: no event
    assert len(fired) == 2
    noc.fail_link(1, 2)
    noc.fail_link(2, 3)
    assert len(fired) == 4
    noc.health.restore_all()          # one event for the bulk restore
    assert len(fired) == 5
