"""Accelerator timing/energy models, params packing, layer assembly."""

import pytest

from repro.accel import (ACCELERATOR_TYPES, AcceleratorLayer,
                         AxpyAccelerator, AxpyParams, DotParams,
                         FftAccelerator, FftParams, GemvParams,
                         LAYER_AREA_BUDGET_MM2, MeshNoc, ReshpParams,
                         ResmpParams, SpmvAccelerator, SpmvParams)
from repro.memsys import StackedDram, haswell_memory

DEVICE = StackedDram()


def sample_params(name):
    return {
        "AXPY": AxpyParams(n=1 << 20, alpha=2.0, x_pa=0, y_pa=1 << 23),
        "DOT": DotParams(n=1 << 20, x_pa=0, y_pa=1 << 23, out_pa=1 << 24),
        "GEMV": GemvParams(m=2048, n=2048, alpha=1.0, beta=0.0, a_pa=0,
                           x_pa=1 << 24, y_pa=(1 << 24) + 8192),
        "SPMV": SpmvParams(rows=1 << 16, cols=1 << 16, nnz=15 << 16,
                           indptr_pa=0, indices_pa=1 << 20,
                           data_pa=1 << 23, x_pa=1 << 24, y_pa=1 << 25),
        "RESMP": ResmpParams(blocks=128, n_in=1024, n_out=1024, in_pa=0,
                             sites_pa=1 << 21, out_pa=1 << 22,
                             knots_pa=1 << 23),
        "FFT": FftParams(n=2048, batch=256, src_pa=0, dst_pa=1 << 23),
        "RESHP": ReshpParams(rows=4096, cols=4096, elem_bytes=4, src_pa=0,
                             dst_pa=1 << 26),
    }[name]


@pytest.mark.parametrize("accel_type", ACCELERATOR_TYPES)
def test_params_pack_roundtrip(accel_type):
    core = accel_type()
    params = sample_params(core.name)
    packed = core.pack_params(params)
    assert isinstance(packed, bytes)
    assert core.unpack_params(packed) == params


@pytest.mark.parametrize("accel_type", ACCELERATOR_TYPES)
def test_model_produces_sane_results(accel_type):
    core = accel_type()
    params = sample_params(core.name)
    execution = core.model(DEVICE, params)
    assert execution.result.time > 0
    assert execution.result.energy > 0
    assert 1.0 < execution.result.power < 60.0


@pytest.mark.parametrize("accel_type", ACCELERATOR_TYPES)
def test_streams_cover_profile_bytes(accel_type):
    """The access streams and the profile must agree on payload within
    2x (streams may add metadata like CSR row pointers)."""
    core = accel_type()
    params = sample_params(core.name)
    prof = core.profile(params)
    stream_bytes = sum(s.total_bytes for s in core.streams(params))
    assert 0.5 * prof.bytes_total <= stream_bytes <= 2.0 * prof.bytes_total


def test_higher_bandwidth_is_faster():
    core = AxpyAccelerator()
    params = sample_params("AXPY")
    slow = core.model(haswell_memory(), params).result.time
    fast = core.model(DEVICE, params).result.time
    assert fast < slow


def test_frequency_scaling_when_compute_bound():
    params = FftParams(n=1024, batch=64, src_pa=0, dst_pa=1 << 22)
    slow = FftAccelerator(tiles=1, freq_hz=0.4e9)
    fast = FftAccelerator(tiles=1, freq_hz=2.0e9)
    t_slow = slow.model(DEVICE, params)
    t_fast = fast.model(DEVICE, params)
    assert t_fast.result.time < t_slow.result.time


def test_more_tiles_more_compute():
    core1 = FftAccelerator(tiles=2)
    core16 = FftAccelerator(tiles=16)
    assert core16.compute_rate() == pytest.approx(8 * core1.compute_rate())


def test_invalid_construction():
    with pytest.raises(ValueError):
        AxpyAccelerator(tiles=0)
    with pytest.raises(ValueError):
        AxpyAccelerator(freq_hz=0)
    with pytest.raises(ValueError):
        FftAccelerator(block_elems=0)


class TestLayer:
    def test_all_accelerators_deployed(self):
        layer = AcceleratorLayer()
        assert layer.names == sorted(
            ["AXPY", "DOT", "GEMV", "SPMV", "RESMP", "FFT", "RESHP"])

    def test_area_within_budget(self):
        """Table 5: all components fit the 68 mm^2 HMC logic die."""
        layer = AcceleratorLayer()
        assert layer.layer_area_mm2() < LAYER_AREA_BUDGET_MM2
        assert layer.layer_area_mm2() > 0.5 * LAYER_AREA_BUDGET_MM2

    def test_lookup_by_opcode(self):
        layer = AcceleratorLayer()
        assert layer.by_opcode(1).name == "AXPY"
        assert layer.by_opcode(6).name == "FFT"
        with pytest.raises(KeyError):
            layer.by_opcode(99)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            AcceleratorLayer().accelerator("GEMM")

    def test_opcodes_unique(self):
        opcodes = [t.opcode for t in ACCELERATOR_TYPES]
        assert len(set(opcodes)) == len(opcodes)

    def test_fft_and_spmv_are_largest(self):
        """Table 5's area ordering: FFT and SPMV dominate."""
        layer = AcceleratorLayer()
        areas = {name: layer.accelerator(name).area_mm2()
                 for name in layer.names if name != "RESHP"}
        ranked = sorted(areas, key=areas.get, reverse=True)
        assert set(ranked[:2]) == {"FFT", "SPMV"}


class TestNoc:
    def test_hops_xy(self):
        noc = MeshNoc()
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 3) == 3
        assert noc.hops(0, 15) == 6    # corner to corner in 4x4

    def test_transfer_time_zero_for_same_tile(self):
        assert MeshNoc().transfer_time(4096, 5, 5) == 0.0

    def test_transfer_scales_with_bytes(self):
        noc = MeshNoc()
        assert noc.transfer_time(1 << 20, 0, 15) > noc.transfer_time(
            1 << 10, 0, 15)

    def test_energy_scales_with_hops(self):
        noc = MeshNoc()
        assert noc.transfer_energy(1024, 0, 15) > noc.transfer_energy(
            1024, 0, 1)

    def test_bad_tile(self):
        with pytest.raises(ValueError):
            MeshNoc().hops(0, 16)

    def test_mean_hops_reasonable(self):
        assert 2.0 < MeshNoc().mean_hops() < 3.0
