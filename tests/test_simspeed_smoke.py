"""Smoke test for the schedule-cache simulation-speed bench.

Runs ``benchmarks/bench_simspeed.py`` main with a small loop and
asserts the JSON schema, the cache-off parity gate (the bench itself
asserts bit-identity before emitting), and a conservative speedup
floor — the full bench's acceptance floor is 10x at its default loop
length; even at 24 executes the replay path must clear 5x with wide
margin (the per-call replay is >100x, so the floor tolerates a noisy
shared CI box).
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import bench_simspeed as simspeed  # noqa: E402

EXECUTES = 24

OP_KEYS = {
    "cold_wall_s", "cached_wall_s", "speedup", "hits", "misses",
    "hit_rate", "cached_executes", "model_time_s", "model_energy_j",
}


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("simspeed") / "BENCH_simspeed.json"
    rc = simspeed.main(["--executes", str(EXECUTES),
                        "--ops", "DOT", "GEMV",
                        "--json", str(out)])
    assert rc == 0
    with out.open() as fh:
        return json.load(fh)


def test_schema_is_stable(payload):
    assert payload["schema"] == simspeed.SCHEMA
    assert set(payload) == {"schema", "executes", "scale", "ops",
                            "speedup_min", "speedup_max"}
    assert set(payload["ops"]) == {"DOT", "GEMV"}
    for point in payload["ops"].values():
        assert set(point) == OP_KEYS


def test_cached_replay_clears_the_speedup_floor(payload):
    # the bench's run already asserted per-call and ledger parity; the
    # smoke floor is deliberately below the full run's 10x acceptance
    # threshold to leave headroom for timing noise on a loaded machine
    assert payload["speedup_min"] >= 5.0, (
        f"schedule-cache replay too slow: {payload['speedup_min']:.2f}x")


def test_every_repeat_hits_the_cache(payload):
    for op, point in payload["ops"].items():
        assert point["misses"] == 1, op
        assert point["hits"] == EXECUTES - 1, op
        assert point["cached_executes"] == EXECUTES - 1, op
        assert point["hit_rate"] == (EXECUTES - 1) / EXECUTES, op
        assert point["model_time_s"] > 0.0
        assert point["model_energy_j"] > 0.0


def test_stdout_mode_round_trips(capsys):
    rc = simspeed.main(["--executes", "4", "--ops", "AXPY",
                        "--json", "-"])
    assert rc == 0
    out = json.loads(capsys.readouterr().out)
    assert out["schema"] == simspeed.SCHEMA
    assert out["ops"]["AXPY"]["hits"] == 3
