"""Resampling (spline) and transpose routines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mkl import (ResampleError, fit_cubic_spline, interpolate_1d,
                       resample_flops, simatcopy, somatcopy, thomas_solve)


class TestThomas:
    def test_solves_reference_system(self):
        rng = np.random.default_rng(0)
        n = 50
        lower = rng.random(n)
        upper = rng.random(n)
        diag = 4.0 + rng.random(n)          # diagonally dominant
        rhs = rng.random(n)
        x = thomas_solve(lower, diag, upper, rhs)
        full = np.diag(diag) + np.diag(upper[:-1], 1) + np.diag(
            lower[1:], -1)
        np.testing.assert_allclose(full @ x, rhs, rtol=1e-9)

    def test_singular_rejected(self):
        with pytest.raises(ResampleError):
            thomas_solve(np.zeros(2), np.zeros(2), np.zeros(2), np.ones(2))

    def test_length_mismatch(self):
        with pytest.raises(ResampleError):
            thomas_solve(np.zeros(2), np.ones(3), np.zeros(3), np.ones(3))


class TestSpline:
    def test_interpolates_knots_exactly(self):
        x = np.linspace(0, 10, 20)
        y = np.sin(x)
        spline = fit_cubic_spline(x, y)
        np.testing.assert_allclose(spline.evaluate(x), y, atol=1e-10)

    def test_close_to_scipy(self):
        scipy_interp = pytest.importorskip("scipy.interpolate")
        x = np.linspace(0, 4 * np.pi, 64)
        y = np.sin(x)
        sites = np.linspace(0.2, 4 * np.pi - 0.2, 200)
        ours = interpolate_1d(x, y, sites)
        ref = scipy_interp.CubicSpline(x, y, bc_type="natural")(sites)
        np.testing.assert_allclose(ours, ref, atol=1e-8)

    def test_smooth_function_accuracy(self):
        x = np.linspace(0, 1, 100)
        y = x ** 2
        sites = np.linspace(0.05, 0.95, 500)
        got = interpolate_1d(x, y, sites)
        np.testing.assert_allclose(got, sites ** 2, atol=1e-4)

    def test_linear_mode(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 2.0, 4.0])
        got = interpolate_1d(x, y, np.array([0.5, 1.5]), method="linear")
        np.testing.assert_allclose(got, [1.0, 3.0])

    def test_complex_input(self):
        x = np.linspace(0, 1, 32)
        y = (np.cos(6 * x) + 1j * np.sin(6 * x)).astype(np.complex64)
        sites = np.linspace(0.1, 0.9, 64)
        got = interpolate_1d(x, y, sites)
        assert got.dtype == np.complex64
        np.testing.assert_allclose(got, np.cos(6 * sites)
                                   + 1j * np.sin(6 * sites), atol=1e-2)

    def test_sites_clamped_to_range(self):
        x = np.linspace(0, 1, 10)
        y = x.copy()
        got = interpolate_1d(x, y, np.array([-1.0, 2.0]))
        np.testing.assert_allclose(got, [0.0, 1.0], atol=1e-12)

    def test_too_few_knots(self):
        with pytest.raises(ResampleError):
            fit_cubic_spline(np.array([0.0, 1.0]), np.array([0.0, 1.0]))

    def test_non_increasing_knots(self):
        with pytest.raises(ResampleError):
            fit_cubic_spline(np.array([0.0, 0.0, 1.0]), np.zeros(3))

    def test_unknown_method(self):
        with pytest.raises(ResampleError):
            interpolate_1d(np.arange(4.0), np.arange(4.0),
                           np.array([1.0]), method="quintic")

    def test_flops_positive(self):
        assert resample_flops(100, 200) > 0
        assert resample_flops(0, 10, "linear") == 40.0

    @settings(max_examples=20)
    @given(st.integers(min_value=3, max_value=60))
    def test_spline_reproduces_lines_exactly(self, n):
        x = np.linspace(0, 1, n)
        y = 3 * x + 1
        sites = np.linspace(0, 1, 2 * n)
        np.testing.assert_allclose(interpolate_1d(x, y, sites),
                                   3 * sites + 1, atol=1e-9)


class TestTranspose:
    def test_out_of_place(self):
        rng = np.random.default_rng(1)
        rows, cols = 100, 70
        a = rng.random(rows * cols).astype(np.float32)
        b = np.zeros(rows * cols, dtype=np.float32)
        somatcopy(rows, cols, 1.0, a, b)
        np.testing.assert_array_equal(b.reshape(cols, rows),
                                      a.reshape(rows, cols).T)

    def test_out_of_place_alpha(self):
        a = np.arange(6, dtype=np.float32)
        b = np.zeros(6, dtype=np.float32)
        somatcopy(2, 3, 2.0, a, b)
        np.testing.assert_array_equal(b.reshape(3, 2),
                                      2 * a.reshape(2, 3).T)

    def test_in_place_square(self):
        rng = np.random.default_rng(2)
        n = 130                      # crosses tile boundaries
        a = rng.random(n * n).astype(np.float32)
        ref = a.reshape(n, n).T.copy()
        simatcopy(n, n, 1.0, a)
        np.testing.assert_array_equal(a.reshape(n, n), ref)

    def test_in_place_rectangular(self):
        rng = np.random.default_rng(3)
        rows, cols = 20, 50
        a = rng.random(rows * cols).astype(np.float32)
        ref = a.reshape(rows, cols).T.reshape(-1).copy()
        simatcopy(rows, cols, 1.0, a)
        np.testing.assert_array_equal(a, ref)

    def test_involution(self):
        rng = np.random.default_rng(4)
        n = 64
        a = rng.random(n * n).astype(np.float32)
        orig = a.copy()
        simatcopy(n, n, 1.0, a)
        simatcopy(n, n, 1.0, a)
        np.testing.assert_array_equal(a, orig)
