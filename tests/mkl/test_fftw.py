"""FFT kernel and FFTW-style planner, verified against numpy.fft."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mkl import (FFTW_BACKWARD, FFTW_FORWARD, FftwError, IoDim,
                       execute, fft_flops, fft_radix2, plan_dft_1d,
                       plan_guru_dft)

RNG = np.random.default_rng(3)


def randc(*shape):
    return (RNG.standard_normal(shape)
            + 1j * RNG.standard_normal(shape)).astype(np.complex64)


class TestKernel:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256, 1024])
    def test_matches_numpy(self, n):
        x = randc(n)
        np.testing.assert_allclose(fft_radix2(x[None, :])[0], np.fft.fft(x),
                                   rtol=1e-3, atol=1e-3)

    def test_batched(self):
        x = randc(16, 128)
        np.testing.assert_allclose(fft_radix2(x), np.fft.fft(x, axis=-1),
                                   rtol=1e-3, atol=1e-3)

    def test_backward_is_unscaled_inverse(self):
        x = randc(64)
        back = fft_radix2(fft_radix2(x[None])[0][None], FFTW_BACKWARD)[0]
        np.testing.assert_allclose(back / 64, x, rtol=1e-3, atol=1e-3)

    def test_non_pow2_rejected(self):
        with pytest.raises(FftwError):
            fft_radix2(randc(12)[None])

    def test_linearity(self):
        a, b = randc(32), randc(32)
        lhs = fft_radix2((2 * a + 3 * b)[None])[0]
        rhs = 2 * fft_radix2(a[None])[0] + 3 * fft_radix2(b[None])[0]
        np.testing.assert_allclose(lhs, rhs, rtol=1e-3, atol=1e-3)

    def test_parseval(self):
        x = randc(256)
        fx = fft_radix2(x[None])[0]
        assert np.sum(np.abs(fx) ** 2) == pytest.approx(
            256 * np.sum(np.abs(x) ** 2), rel=1e-3)

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=8))
    def test_impulse_gives_flat_spectrum(self, log_n):
        n = 1 << log_n
        x = np.zeros(n, dtype=np.complex64)
        x[0] = 1.0
        np.testing.assert_allclose(fft_radix2(x[None])[0],
                                   np.ones(n), rtol=1e-4, atol=1e-4)

    def test_flops_formula(self):
        assert fft_flops(1024) == pytest.approx(5 * 1024 * 10)
        assert fft_flops(8, batch=4) == pytest.approx(4 * 5 * 8 * 3)
        assert fft_flops(1) == 0.0


class TestPlanner:
    def test_simple_plan(self):
        src, dst = randc(256), np.zeros(256, np.complex64)
        plan = plan_dft_1d(256, src, dst)
        execute(plan)
        np.testing.assert_allclose(dst, np.fft.fft(src), rtol=1e-3,
                                   atol=1e-3)

    def test_batched_plan(self):
        batch, n = 8, 64
        src = randc(batch * n)
        dst = np.zeros(batch * n, np.complex64)
        plan = plan_guru_dft(1, [IoDim(n, 1, 1)], 1,
                             [IoDim(batch, n, n)], src, dst)
        execute(plan)
        ref = np.fft.fft(src.reshape(batch, n), axis=-1).reshape(-1)
        np.testing.assert_allclose(dst, ref, rtol=1e-3, atol=1e-3)
        assert plan.batch == batch
        assert plan.fft_length == n

    def test_strided_transform(self):
        """Column FFT of a row-major matrix: istride = row length."""
        rows, cols = 32, 16
        src = randc(rows * cols)
        dst = np.zeros(rows * cols, np.complex64)
        plan = plan_guru_dft(1, [IoDim(rows, cols, cols)], 1,
                             [IoDim(cols, 1, 1)], src, dst)
        execute(plan)
        ref = np.fft.fft(src.reshape(rows, cols), axis=0).reshape(-1)
        np.testing.assert_allclose(dst, ref, rtol=1e-3, atol=1e-3)

    def test_rank0_is_strided_copy(self):
        """The STAP corner-turn: rank-0 guru plan = layout change."""
        rows, cols = 8, 4
        src = randc(rows * cols)
        dst = np.zeros(rows * cols, np.complex64)
        # transpose via two howmany dims with swapped strides
        plan = plan_guru_dft(0, None, 2,
                             [IoDim(rows, cols, 1), IoDim(cols, 1, rows)],
                             src, dst)
        execute(plan)
        ref = src.reshape(rows, cols).T.reshape(-1)
        np.testing.assert_allclose(dst, ref)
        assert plan.is_copy
        assert plan.flops == 0.0

    def test_bad_rank(self):
        with pytest.raises(FftwError):
            plan_guru_dft(2, [IoDim(4, 1, 1), IoDim(4, 1, 1)], 0, [],
                          randc(16), randc(16))

    def test_rank_dims_mismatch(self):
        with pytest.raises(FftwError):
            plan_guru_dft(1, [], 0, [], randc(4), randc(4))

    def test_bad_sign(self):
        with pytest.raises(FftwError):
            plan_dft_1d(4, randc(4), randc(4), sign=3)

    def test_real_arrays_rejected(self):
        with pytest.raises(FftwError):
            plan_dft_1d(4, np.zeros(4, np.float32),
                        np.zeros(4, np.complex64))

    def test_iodim_positive(self):
        with pytest.raises(FftwError):
            IoDim(0, 1, 1)

    def test_backward_plan(self):
        src = randc(128)
        mid = np.zeros(128, np.complex64)
        out = np.zeros(128, np.complex64)
        execute(plan_dft_1d(128, src, mid, FFTW_FORWARD))
        execute(plan_dft_1d(128, mid, out, FFTW_BACKWARD))
        np.testing.assert_allclose(out / 128, src, rtol=1e-3, atol=1e-3)


class TestBluestein:
    """Arbitrary-length DFT extension (chirp-z)."""

    @pytest.mark.parametrize("n", [3, 5, 7, 12, 100, 257, 1000])
    def test_matches_numpy(self, n):
        from repro.mkl import fft_bluestein
        x = randc(n).astype(np.complex128)
        np.testing.assert_allclose(fft_bluestein(x[None])[0],
                                   np.fft.fft(x), rtol=1e-6, atol=1e-7)

    def test_pow2_falls_back_to_radix2(self):
        from repro.mkl import fft_bluestein
        x = randc(64)
        np.testing.assert_allclose(fft_bluestein(x[None])[0],
                                   np.fft.fft(x), rtol=1e-3, atol=1e-3)

    def test_batched(self):
        from repro.mkl import fft_bluestein
        x = randc(4, 21).astype(np.complex128)
        np.testing.assert_allclose(fft_bluestein(x),
                                   np.fft.fft(x, axis=-1), rtol=1e-6,
                                   atol=1e-7)

    def test_roundtrip(self):
        from repro.mkl import fft_bluestein
        from repro.mkl.fftw import FFTW_BACKWARD
        x = randc(30).astype(np.complex128)
        fx = fft_bluestein(x[None])[0]
        back = fft_bluestein(fx[None], FFTW_BACKWARD)[0] / 30
        np.testing.assert_allclose(back, x, rtol=1e-6, atol=1e-7)
