"""BLAS routines verified against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mkl import (cdotc, cherk, cpotrf_lower, ctrsm_left_lower,
                       ctrsm_left_upper, saxpy, scopy, sdot, sgemv)

RNG = np.random.default_rng(7)


def randf(n):
    return RNG.standard_normal(n).astype(np.float32)


def randc(*shape):
    return (RNG.standard_normal(shape)
            + 1j * RNG.standard_normal(shape)).astype(np.complex64)


class TestLevel1:
    def test_saxpy_unit_stride(self):
        x, y = randf(100), randf(100)
        ref = 2.5 * x + y
        saxpy(100, 2.5, x, 1, y, 1)
        np.testing.assert_allclose(y, ref, rtol=1e-6)

    def test_saxpy_strided(self):
        x, y = randf(300), randf(200)
        ref = y.copy()
        ref[::2] += 1.5 * x[::3]
        saxpy(100, 1.5, x, 3, y, 2)
        np.testing.assert_allclose(y, ref, rtol=1e-6)

    def test_saxpy_negative_stride(self):
        x, y = randf(10), randf(10)
        ref = y.copy()
        ref += 1.0 * x[::-1]
        saxpy(10, 1.0, x, -1, y, 1)
        np.testing.assert_allclose(y, ref, rtol=1e-6)

    def test_sdot(self):
        x, y = randf(1000), randf(1000)
        assert sdot(1000, x, 1, y, 1) == pytest.approx(
            float(np.dot(x, y)), rel=1e-4)

    def test_sdot_strided(self):
        x, y = randf(64), randf(32)
        assert sdot(16, x, 4, y, 2) == pytest.approx(
            float(np.dot(x[::4], y[::2])), rel=1e-4)

    def test_scopy(self):
        x, y = randf(50), np.zeros(50, np.float32)
        scopy(50, x, 1, y, 1)
        np.testing.assert_array_equal(x, y)

    def test_cdotc_conjugates_first_arg(self):
        x, y = randc(64), randc(64)
        assert cdotc(64, x, 1, y, 1) == pytest.approx(
            complex(np.vdot(x, y)), rel=1e-4)

    def test_cdotc_strided_like_stap(self):
        # STAP calls cblas_cdotc_sub with incy = TBS over the snapshots
        x, y = randc(8), randc(8 * 13)
        got = cdotc(8, x, 1, y, 13)
        assert got == pytest.approx(complex(np.vdot(x, y[::13])), rel=1e-4)

    def test_zero_increment_rejected(self):
        x = randf(4)
        with pytest.raises(ValueError):
            sdot(4, x, 0, x, 1)

    def test_too_small_array_rejected(self):
        x = randf(4)
        with pytest.raises(ValueError):
            sdot(10, x, 1, x, 1)

    @settings(max_examples=50)
    @given(st.integers(min_value=1, max_value=64),
           st.floats(min_value=-4, max_value=4, allow_nan=False))
    def test_saxpy_property(self, n, alpha):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n).astype(np.float32)
        y = rng.standard_normal(n).astype(np.float32)
        ref = np.float32(alpha) * x + y
        saxpy(n, alpha, x, 1, y, 1)
        np.testing.assert_allclose(y, ref, rtol=1e-5, atol=1e-6)


class TestGemv:
    def test_notrans(self):
        m, n = 37, 53
        a, x, y = randf(m * n), randf(n), randf(m)
        ref = 2.0 * (a.reshape(m, n) @ x) + 0.5 * y
        sgemv(False, m, n, 2.0, a, n, x, 1, 0.5, y, 1)
        np.testing.assert_allclose(y, ref, rtol=1e-4)

    def test_trans(self):
        m, n = 16, 8
        a, x, y = randf(m * n), randf(m), randf(n)
        ref = 1.0 * (a.reshape(m, n).T @ x) + 0.0 * y
        sgemv(True, m, n, 1.0, a, n, x, 1, 0.0, y, 1)
        np.testing.assert_allclose(y, ref, rtol=1e-4)

    def test_lda_padding(self):
        m, n, lda = 4, 3, 8
        a = randf(m * lda)
        x, y = randf(n), np.zeros(m, np.float32)
        ref = a.reshape(m, lda)[:, :n] @ x
        sgemv(False, m, n, 1.0, a, lda, x, 1, 0.0, y, 1)
        np.testing.assert_allclose(y, ref, rtol=1e-4)

    def test_bad_lda(self):
        with pytest.raises(ValueError):
            sgemv(False, 4, 8, 1.0, randf(32), 4, randf(8), 1, 0.0,
                  randf(4), 1)


class TestLevel3:
    def test_cherk_lower_matches_reference(self):
        n, k = 40, 12
        a = randc(n, k)
        c = randc(n, n)
        c = (c + c.conj().T) / 2          # start Hermitian
        ref = 1.5 * (a @ a.conj().T) + 0.25 * c
        got = c.copy().reshape(-1)
        cherk(False, n, k, 1.5, a.reshape(-1), 0.25, got)
        got = got.reshape(n, n)
        il = np.tril_indices(n)
        np.testing.assert_allclose(got[il], ref[il], rtol=1e-3, atol=1e-4)

    def test_cherk_upper_leaves_lower_untouched(self):
        n, k = 10, 4
        a, c = randc(n, k), randc(n, n)
        before = c.copy()
        buf = c.reshape(-1)
        cherk(True, n, k, 1.0, a.reshape(-1), 0.0, buf)
        after = buf.reshape(n, n)
        il = np.tril_indices(n, -1)
        np.testing.assert_array_equal(after[il], before[il])

    def test_ctrsm_lower_solves(self):
        n, m = 32, 5
        lmat = np.tril(randc(n, n)) + 4 * np.eye(n)
        b = randc(n, m)
        x = b.copy().reshape(-1)
        ctrsm_left_lower(n, m, 1.0, lmat.reshape(-1), x)
        np.testing.assert_allclose(lmat @ x.reshape(n, m), b, rtol=1e-3,
                                   atol=1e-4)

    def test_ctrsm_upper_solves(self):
        n, m = 32, 5
        umat = np.triu(randc(n, n)) + 4 * np.eye(n)
        b = randc(n, m)
        x = b.copy().reshape(-1)
        ctrsm_left_upper(n, m, 1.0, umat.reshape(-1), x)
        np.testing.assert_allclose(umat @ x.reshape(n, m), b, rtol=1e-3,
                                   atol=1e-4)

    def test_ctrsm_alpha(self):
        n, m = 8, 2
        lmat = np.tril(randc(n, n)) + 4 * np.eye(n)
        b = randc(n, m)
        x = b.copy().reshape(-1)
        ctrsm_left_lower(n, m, 2.0, lmat.reshape(-1), x)
        np.testing.assert_allclose(lmat @ x.reshape(n, m), 2.0 * b,
                                   rtol=1e-3, atol=1e-4)

    def test_cholesky_roundtrip(self):
        n = 48
        a = randc(n, n)
        spd = a @ a.conj().T + n * np.eye(n)
        buf = spd.astype(np.complex64).reshape(-1).copy()
        cpotrf_lower(n, buf)
        lmat = buf.reshape(n, n)
        np.testing.assert_allclose(lmat @ lmat.conj().T, spd, rtol=1e-2,
                                   atol=1e-2)

    def test_cholesky_then_trsm_solves_system(self):
        """The STAP pipeline: factor R, then two triangular solves."""
        n, m = 24, 3
        a = randc(n, n)
        spd = (a @ a.conj().T + n * np.eye(n)).astype(np.complex64)
        b = randc(n, m)
        buf = spd.reshape(-1).copy()
        cpotrf_lower(n, buf)
        x = b.copy().reshape(-1)
        ctrsm_left_lower(n, m, 1.0, buf, x)
        lmat = buf.reshape(n, n)
        uh = np.conj(lmat.T).copy().reshape(-1)
        ctrsm_left_upper(n, m, 1.0, uh, x)
        np.testing.assert_allclose(spd @ x.reshape(n, m), b, rtol=5e-2,
                                   atol=5e-2)
