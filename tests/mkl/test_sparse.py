"""CSR sparse structure, SpMV, and the RGG generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mkl import (CsrMatrix, SparseError, random_geometric_graph,
                       scsrgemv, spmv_flops)


def small_csr():
    # [[1, 0, 2], [0, 0, 0], [3, 4, 0]]
    return CsrMatrix(
        indptr=np.array([0, 2, 2, 4]),
        indices=np.array([0, 2, 0, 1]),
        data=np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32),
        shape=(3, 3),
    )


class TestCsr:
    def test_to_dense(self):
        dense = small_csr().to_dense()
        np.testing.assert_array_equal(
            dense, [[1, 0, 2], [0, 0, 0], [3, 4, 0]])

    def test_nnz(self):
        assert small_csr().nnz == 4
        assert small_csr().avg_row_nnz == pytest.approx(4 / 3)

    def test_bad_indptr_length(self):
        with pytest.raises(SparseError):
            CsrMatrix(np.array([0, 1]), np.array([0]),
                      np.array([1.0], dtype=np.float32), (3, 3))

    def test_decreasing_indptr(self):
        with pytest.raises(SparseError):
            CsrMatrix(np.array([0, 2, 1, 1]), np.array([0]),
                      np.array([1.0], dtype=np.float32), (3, 3))

    def test_column_out_of_range(self):
        with pytest.raises(SparseError):
            CsrMatrix(np.array([0, 1, 1, 1]), np.array([5]),
                      np.array([1.0], dtype=np.float32), (3, 3))

    def test_indptr_end_mismatch(self):
        with pytest.raises(SparseError):
            CsrMatrix(np.array([0, 1, 1, 3]), np.array([0]),
                      np.array([1.0], dtype=np.float32), (3, 3))


class TestSpmv:
    def test_matches_dense(self):
        a = small_csr()
        x = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        y = np.zeros(3, dtype=np.float32)
        scsrgemv(a, x, y)
        np.testing.assert_allclose(y, a.to_dense() @ x, rtol=1e-6)

    def test_empty_rows_give_zero(self):
        a = small_csr()
        x = np.ones(3, dtype=np.float32)
        y = np.full(3, 99.0, dtype=np.float32)
        scsrgemv(a, x, y)
        assert y[1] == 0.0

    def test_small_vectors_rejected(self):
        a = small_csr()
        with pytest.raises(SparseError):
            scsrgemv(a, np.ones(2, np.float32), np.zeros(3, np.float32))

    def test_flops(self):
        assert spmv_flops(small_csr()) == 8.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=200))
    def test_random_csr_matches_dense(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 30))
        cols = int(rng.integers(1, 30))
        dense = rng.random((rows, cols)).astype(np.float32)
        dense[dense < 0.7] = 0
        indptr = np.zeros(rows + 1, dtype=np.int64)
        indices, data = [], []
        for r in range(rows):
            nz = np.nonzero(dense[r])[0]
            indices.extend(nz)
            data.extend(dense[r, nz])
            indptr[r + 1] = len(indices)
        a = CsrMatrix(indptr, np.array(indices, dtype=np.int64),
                      np.array(data, dtype=np.float32), (rows, cols))
        x = rng.random(cols).astype(np.float32)
        y = np.zeros(rows, dtype=np.float32)
        scsrgemv(a, x, y)
        np.testing.assert_allclose(y, dense @ x, rtol=1e-4, atol=1e-5)


class TestRgg:
    def test_structure(self):
        g = random_geometric_graph(500, seed=1)
        assert g.shape == (500, 500)
        assert g.nnz > 0
        # rgg matrices average ~15 neighbours in this regime
        assert 5 < g.avg_row_nnz < 40

    def test_symmetric_pattern(self):
        g = random_geometric_graph(300, seed=2)
        dense = g.to_dense()
        np.testing.assert_array_equal(dense != 0, dense.T != 0)

    def test_no_self_loops(self):
        g = random_geometric_graph(200, seed=3)
        assert all(g.to_dense()[i, i] == 0 for i in range(200))

    def test_deterministic_by_seed(self):
        g1 = random_geometric_graph(100, seed=9)
        g2 = random_geometric_graph(100, seed=9)
        np.testing.assert_array_equal(g1.indices, g2.indices)

    def test_radius_controls_density(self):
        sparse = random_geometric_graph(400, radius=0.02, seed=4)
        dense = random_geometric_graph(400, radius=0.15, seed=4)
        assert dense.nnz > sparse.nnz
