"""Operation profiles: flop/byte accounting used by all platform models."""

import pytest

from repro.mkl import (OpProfile, axpy_profile, cdotc_profile,
                       cherk_profile, ctrsm_profile, dot_profile,
                       fft2d_profile, fft_profile, gemv_profile,
                       random_geometric_graph, reshp_profile,
                       resmp_profile, spmv_profile)


def test_axpy_counts():
    p = axpy_profile(1000)
    assert p.flops == 2000
    assert p.bytes_read == 8000
    assert p.bytes_written == 4000
    assert p.pattern == "stream"


def test_dot_writes_nothing():
    p = dot_profile(100)
    assert p.bytes_written == 0
    assert p.flops == 200


def test_cdotc_is_complex_rate():
    p = cdotc_profile(10)
    assert p.flops == 80
    assert p.bytes_read == 160


def test_gemv_matrix_dominates():
    p = gemv_profile(1000, 1000)
    assert p.bytes_read > 1000 * 1000 * 4
    assert p.flops == 2e6


def test_spmv_gather_pattern():
    g = random_geometric_graph(300, seed=5)
    p = spmv_profile(g)
    assert p.pattern == "gather"
    assert p.flops == 2.0 * g.nnz
    assert p.bytes_read > g.nnz * 8


def test_fft_profile():
    p = fft_profile(1024, batch=4)
    assert p.flops == pytest.approx(4 * 5 * 1024 * 10)
    assert p.bytes_read == 4 * 1024 * 8
    assert p.bytes_read == p.bytes_written


def test_fft2d_two_passes():
    p = fft2d_profile(256, 256)
    assert p.passes == 2
    assert p.bytes_read == 2 * 256 * 256 * 8


def test_reshp_zero_flops():
    p = reshp_profile(512, 512)
    assert p.flops == 0.0
    assert p.pattern == "transpose"
    assert p.arithmetic_intensity == 0.0


def test_resmp_scales_with_blocks():
    one = resmp_profile(256, 256, blocks=1)
    many = resmp_profile(256, 256, blocks=8)
    assert many.flops == pytest.approx(8 * one.flops)


def test_level3_is_compute_bound():
    """cherk/ctrsm must have much higher arithmetic intensity than the
    memory-bounded ops — that's why the paper leaves them on the host."""
    memory_bound = max(axpy_profile(1 << 20).arithmetic_intensity,
                       gemv_profile(4096, 4096).arithmetic_intensity,
                       fft_profile(8192).arithmetic_intensity)
    assert cherk_profile(512, 128).arithmetic_intensity > 4 * memory_bound
    assert ctrsm_profile(512, 128).arithmetic_intensity > 4 * memory_bound


def test_bad_pattern_rejected():
    with pytest.raises(ValueError):
        OpProfile("X", 1.0, 1, 1, pattern="zigzag")


def test_negative_quantities_rejected():
    with pytest.raises(ValueError):
        OpProfile("X", -1.0, 1, 1)
