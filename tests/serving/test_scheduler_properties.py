"""Randomized property battery for the multi-tenant scheduler.

Three invariants, each under a wide randomized sweep of tenant mixes,
QoS classes, admission depths, concurrency widths, batching policies
and arrival patterns (320 seeded trials total — every trial is
deterministic from its index):

1. **exact decomposition** — the per-tenant ledger slices partition
   the system ledger exactly and their per-category sums reproduce the
   system totals joule for joule, whatever the schedule interleaving;
2. **solo bit-identity** — serving N tenants together produces, for
   every request, the *same* per-call :class:`ExecResult` bits as
   serving that tenant's stream alone (contention is priced into the
   ledger and the latency, never into the call's result);
3. **FIFO within tenant + no starvation** — requests of one tenant
   dispatch in admission order, every admitted request completes, and
   an aged bulk request overtakes a sustained interactive flood after
   a bounded wait.
"""

import math

import numpy as np
import pytest

from repro.core import MealibSystem
from repro.eval.workloads import TABLE2
from repro.serving import (BatchPolicy, QosClass, ServingRuntime,
                           TenantConfig)

OPS = ("AXPY", "DOT", "GEMV")
SCALE = 0.004
QOS = (QosClass.INTERACTIVE, QosClass.STANDARD, QosClass.BULK)

N_DECOMPOSITION = 120
N_IDENTITY = 100
N_FAIRNESS = 100


def _system():
    return MealibSystem(stack_bytes=32 << 20, schedule_cache=True)


def _random_serving(rng, system, n_tenants, max_concurrency,
                    batching):
    tenants = [TenantConfig(f"t{i}", QosClass(int(rng.choice(QOS))),
                            max_queue_depth=int(rng.integers(2, 17)))
               for i in range(n_tenants)]
    return ServingRuntime(system, tenants,
                          max_concurrency=max_concurrency,
                          batching=batching, functional=False)


def _random_trace(rng, n_requests):
    """(op, arrival) pairs with clustered arrivals (forces queueing)."""
    gaps = rng.exponential(2e-4, size=n_requests)
    gaps[rng.random(n_requests) < 0.4] = 0.0       # bursts
    times = np.cumsum(gaps)
    ops = [OPS[int(rng.integers(len(OPS)))] for _ in range(n_requests)]
    return list(zip(ops, (float(t) for t in times)))


@pytest.mark.parametrize("trial", range(N_DECOMPOSITION))
def test_tenant_decomposition_is_exact(trial):
    rng = np.random.default_rng((9001, trial))
    n_tenants = int(rng.integers(2, 5))
    batching = (BatchPolicy(max_batch=int(rng.integers(2, 6)))
                if rng.random() < 0.5 else None)
    system = _system()
    serving = _random_serving(rng, system, n_tenants,
                              max_concurrency=int(rng.integers(1, 5)),
                              batching=batching)
    for i in range(n_tenants):
        for op, t in _random_trace(rng, int(rng.integers(2, 6))):
            serving.submit(f"t{i}", op, TABLE2[op].params(SCALE),
                           arrival=t)
    serving.run()
    # the machine-checked invariant: exact entry partition + fsum
    # equality per category, time and energy both
    serving.verify_tenant_decomposition()
    # every admitted request completed with a sane latency
    for r in serving.requests:
        if not r.shed:
            assert r.latency >= 0.0 and math.isfinite(r.latency)
    # the tenant ledgers are views of the very system entries
    attributed = sum(len(serving.tenant_ledger(f"t{i}").entries)
                     for i in range(n_tenants))
    assert attributed == len(system.ledger.entries)


@pytest.mark.parametrize("trial", range(N_IDENTITY))
def test_shared_serving_matches_each_stream_alone(trial):
    rng = np.random.default_rng((9002, trial))
    n_tenants = int(rng.integers(2, 4))
    traces = {f"t{i}": _random_trace(rng, int(rng.integers(2, 5)))
              for i in range(n_tenants)}
    width = int(rng.integers(1, 5))

    # deep queues on purpose: this property compares completed calls
    # one-to-one, so no trial may shed
    shared = ServingRuntime(
        _system(),
        [TenantConfig(t, QosClass(int(rng.choice(QOS))),
                      max_queue_depth=64) for t in traces],
        max_concurrency=width, functional=False)
    for tenant, trace in traces.items():
        for op, t in trace:
            shared.submit(tenant, op, TABLE2[op].params(SCALE),
                          arrival=t)
    shared.run()
    shared.verify_tenant_decomposition()

    for tenant, trace in traces.items():
        solo = ServingRuntime(_system(), [TenantConfig(tenant)],
                              max_concurrency=1, functional=False)
        for op, t in trace:
            solo.submit(tenant, op, TABLE2[op].params(SCALE),
                        arrival=t)
        solo.run()
        shared_reqs = [r for r in shared.requests
                       if r.tenant == tenant and not r.shed]
        solo_reqs = [r for r in solo.requests if not r.shed]
        # admission depths are >= trace length here, so nothing shed
        assert len(shared_reqs) == len(solo_reqs) == len(trace)
        for a, b in zip(shared_reqs, solo_reqs):
            # bit-identical per-call results: contention never touches
            # the solo decomposition (the scrub convention)
            assert a.result.time == b.result.time
            assert a.result.energy == b.result.energy
        # and the solo run really paid zero contention
        assert solo.system.contention_total().time == 0.0


@pytest.mark.parametrize("trial", range(N_FAIRNESS))
def test_fifo_within_tenant_and_no_starvation(trial):
    rng = np.random.default_rng((9003, trial))
    flood_n = int(rng.integers(10, 21))
    flood_gaps = rng.exponential(1e-4, size=flood_n)
    flood_times = [float(t) for t in np.cumsum(flood_gaps)]
    quantum = max(flood_times) / 8.0
    system = _system()
    serving = ServingRuntime(
        system,
        [TenantConfig("fg", QosClass.INTERACTIVE, max_queue_depth=64),
         TenantConfig("bg", QosClass.BULK, max_queue_depth=64)],
        max_concurrency=1, aging_quantum=quantum, functional=False)
    bulk = serving.submit("bg", "AXPY", TABLE2["AXPY"].params(SCALE),
                          arrival=0.0)
    flood = [serving.submit("fg", "AXPY",
                            TABLE2["AXPY"].params(SCALE), arrival=t)
             for t in flood_times]
    serving.run()
    serving.verify_tenant_decomposition()
    # no starvation: everything admitted completed
    for r in serving.requests:
        assert not r.shed
        assert math.isfinite(r.finish)
    # FIFO within tenant: dispatch order is admission order
    starts = [r.start for r in flood]
    assert starts == sorted(starts)
    # bounded wait: aging promotes the bulk request past the flood —
    # any interactive request arriving 3+ quanta in can no longer beat
    # it (bulk aged to effective priority below a fresh interactive
    # head, and ties break by earlier arrival)
    late = [r for r in flood if r.arrival >= 3.0 * quantum]
    assert late, "trial degenerated: no flood tail to overtake"
    assert bulk.start <= min(r.start for r in late), (
        "aged bulk request starved behind the interactive flood")
