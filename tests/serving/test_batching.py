"""Batching equivalence and tenant-tagged cache staleness.

The batcher coalesces adjacent small same-op calls into one multi-PASS
descriptor (one PASS per member — see :mod:`repro.serving.batching`).
That transformation must be *exactly* equivalent where it matters:

* functional results — batched and unbatched runs write bit-identical
  output buffers;
* ``accelerator`` ledger totals — every member pass is modeled
  independently, so the batched totals equal the unbatched totals to
  the last bit, while the ``invocation`` total strictly shrinks (the
  whole point of coalescing);

and it must respect its own policy: never across ops, never past
``max_batch``, never for calls above the small-call threshold.

The second half pins the tenant-tagged schedule-cache staleness path:
health and governor epoch bumps between serves must be *caught* —
counted as stale evictions in the dispatching tenant's tagged stats,
re-simulated, and never silently replayed.
"""

import numpy as np
import pytest

from repro.accel.axpy import AxpyParams
from repro.core import MealibSystem
from repro.eval.workloads import TABLE2
from repro.serving import (BatchPolicy, ServingRuntime, TenantConfig,
                           coalesce)

N_CALLS = 6
VECTOR_N = 4096
SCALE = 0.004


def _system():
    return MealibSystem(stack_bytes=32 << 20)


def _alloc_axpy_calls(system, rng):
    """N_CALLS real AXPY instances on freshly allocated buffers; the
    allocation order fixes the physical addresses, so two systems built
    the same way get bit-identical operand layouts."""
    calls = []
    views = []
    for i in range(N_CALLS):
        bx, x = system.space.alloc_array((VECTOR_N,), np.float32)
        by, y = system.space.alloc_array((VECTOR_N,), np.float32)
        x[:] = rng.standard_normal(VECTOR_N).astype(np.float32)
        y[:] = rng.standard_normal(VECTOR_N).astype(np.float32)
        calls.append(("AXPY", AxpyParams(n=VECTOR_N, alpha=1.5 + i,
                                         x_pa=bx.pa, y_pa=by.pa)))
        views.append(y)
    return calls, views


def _serve(system, calls, batching):
    serving = ServingRuntime(system, [TenantConfig("t")],
                             max_concurrency=1, batching=batching,
                             functional=True)
    for op, params in calls:
        serving.submit("t", op, params, arrival=0.0)
    serving.run()
    serving.verify_tenant_decomposition()
    return serving


def test_batched_run_is_functionally_exact():
    batched_sys = _system()
    unbatched_sys = _system()
    calls_a, views_a = _alloc_axpy_calls(batched_sys,
                                         np.random.default_rng(11))
    calls_b, views_b = _alloc_axpy_calls(unbatched_sys,
                                         np.random.default_rng(11))
    served_a = _serve(batched_sys, calls_a,
                      BatchPolicy(max_batch=N_CALLS))
    served_b = _serve(unbatched_sys, calls_b, None)
    # bit-identical outputs, member by member
    for i, (ya, yb) in enumerate(zip(views_a, views_b)):
        assert ya.tobytes() == yb.tobytes(), f"call {i} diverged"
    # everything rode one coalesced descriptor vs. N solo ones
    assert all(r.batch_size == N_CALLS for r in served_a.requests)
    assert batched_sys.runtime.counters.executes == 1
    assert unbatched_sys.runtime.counters.executes == N_CALLS


def test_batched_ledger_totals_are_exact():
    batched_sys = _system()
    unbatched_sys = _system()
    calls_a, _ = _alloc_axpy_calls(batched_sys,
                                   np.random.default_rng(12))
    calls_b, _ = _alloc_axpy_calls(unbatched_sys,
                                   np.random.default_rng(12))
    _serve(batched_sys, calls_a, BatchPolicy(max_batch=N_CALLS))
    _serve(unbatched_sys, calls_b, None)
    # accelerator totals: bit-identical (one PASS per member, each
    # modeled exactly as its solo descriptor would be)
    a = batched_sys.ledger.total("accelerator")
    b = unbatched_sys.ledger.total("accelerator")
    assert a.time == b.time and a.energy == b.energy
    # invocation totals: strictly smaller batched — the coalescing win
    inv_a = batched_sys.ledger.total("invocation")
    inv_b = unbatched_sys.ledger.total("invocation")
    assert inv_a.time < inv_b.time
    assert inv_a.energy < inv_b.energy


def test_batches_never_cross_ops_or_max_batch():
    system = _system()
    serving = ServingRuntime(system, [TenantConfig("t")],
                             max_concurrency=1,
                             batching=BatchPolicy(max_batch=3),
                             functional=False)
    ops = ["AXPY", "AXPY", "AXPY", "AXPY", "DOT", "DOT", "AXPY"]
    for op in ops:
        serving.submit("t", op, TABLE2[op].params(SCALE), arrival=0.0)
    serving.run()
    sizes = [r.batch_size for r in serving.requests]
    # FIFO + policy: AXPYx3 (cap), AXPY alone, DOTx2, AXPY alone
    assert sizes == [3, 3, 3, 1, 2, 2, 1]
    for r in serving.requests:
        batch_ops = {q.op for q in serving.requests
                     if q.start == r.start}
        assert len(batch_ops) == 1, "a batch mixed ops"


def test_large_calls_are_never_batched():
    system = _system()
    policy = BatchPolicy(max_batch=8, max_bytes=1 << 10)  # tiny cap
    serving = ServingRuntime(system, [TenantConfig("t")],
                             max_concurrency=1, batching=policy,
                             functional=False)
    for _ in range(4):
        serving.submit("t", "AXPY", TABLE2["AXPY"].params(SCALE),
                       arrival=0.0)
    serving.run()
    assert all(r.batch_size == 1 for r in serving.requests)


# -- tenant-tagged stale-cache regression -------------------------------------


def _cached_serving(system):
    return ServingRuntime(system, [TenantConfig("t")],
                          max_concurrency=1, functional=False)


def test_health_epoch_bump_is_caught_per_tenant():
    system = MealibSystem(stack_bytes=32 << 20, schedule_cache=True)
    serving = _cached_serving(system)
    plan = coalesce(system, [("AXPY", TABLE2["AXPY"].params(SCALE))])
    for i in range(3):
        serving.submit_plan("t", plan, arrival=float(i))
    serving.run()
    tagged = system.schedule_cache.stats_for("t")
    assert (tagged.hits, tagged.misses, tagged.stale_evictions) \
        == (2, 1, 0)
    healthy = serving.requests[0].result

    # the classic stale hole: a transient link flap leaves the serving/
    # reroute sets — and therefore the cache KEY — exactly as before,
    # but bumps the health epoch twice; the tenant's next serve must
    # stale-evict and re-simulate, never silently replay
    noc = system.layer.noc
    link = noc.healthy_links()[0]
    noc.fail_link(*link)
    noc.restore_link(*link)
    serving.submit_plan("t", plan, arrival=3.0)
    serving.run()
    tagged = system.schedule_cache.stats_for("t")
    assert tagged.stale_evictions == 1
    assert (tagged.hits, tagged.misses) == (2, 2)
    # the world really is back to healthy, so the re-simulation agrees
    assert serving.requests[-1].result.time == healthy.time
    assert serving.requests[-1].result.energy == healthy.energy

    # a permanent health change (dead tile) alters the key itself: a
    # tagged miss, and the re-simulated run really pays reroute
    system.layer.mark_tile_failed(0)
    serving.submit_plan("t", plan, arrival=4.0)
    serving.run()
    tagged = system.schedule_cache.stats_for("t")
    assert tagged.misses == 3
    degraded = serving.requests[-1].result
    assert degraded.time > healthy.time
    assert system.ledger.total("reroute").time > 0.0


def test_governor_epoch_bump_is_caught_per_tenant():
    system = MealibSystem(stack_bytes=32 << 20, schedule_cache=True)
    serving = _cached_serving(system)
    plan = coalesce(system, [("DOT", TABLE2["DOT"].params(SCALE))])
    for i in range(2):
        serving.submit_plan("t", plan, arrival=float(i))
    serving.run()

    # a governor state transition fires the cache's thermal hook (the
    # PowerGovernor wires on_state_change to exactly this)
    system.schedule_cache.invalidate_thermal()

    serving.submit_plan("t", plan, arrival=2.0)
    serving.run()
    tagged = system.schedule_cache.stats_for("t")
    assert tagged.stale_evictions == 1
    assert (tagged.hits, tagged.misses) == (1, 2)
    # the re-simulated call replays bit-identically thereafter
    serving.submit_plan("t", plan, arrival=3.0)
    serving.run()
    tagged = system.schedule_cache.stats_for("t")
    assert tagged.hits == 2
    results = [r.result for r in serving.requests]
    assert all(r.time == results[0].time for r in results)
    assert all(r.energy == results[0].energy for r in results)


def test_tenant_tags_split_cache_traffic():
    system = MealibSystem(stack_bytes=32 << 20, schedule_cache=True)
    serving = ServingRuntime(system,
                             [TenantConfig("a"), TenantConfig("b")],
                             max_concurrency=1, functional=False)
    plan = coalesce(system, [("AXPY", TABLE2["AXPY"].params(SCALE))])
    for i in range(4):
        serving.submit_plan("a" if i % 2 == 0 else "b", plan,
                            arrival=float(i))
    serving.run()
    stats_a = system.schedule_cache.stats_for("a")
    stats_b = system.schedule_cache.stats_for("b")
    # a took the cold miss, b rides a's entry; global = sum of tags
    assert (stats_a.hits, stats_a.misses) == (1, 1)
    assert (stats_b.hits, stats_b.misses) == (2, 0)
    glob = system.schedule_cache.stats
    assert glob.hits == stats_a.hits + stats_b.hits
    assert glob.misses == stats_a.misses + stats_b.misses
