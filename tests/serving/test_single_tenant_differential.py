"""Differential: one tenant served is *byte-identical* to the direct
:class:`MealibSystem` path.

The serving runtime promises a solo synchronous caller pays exactly
nothing for the multi-tenant machinery. This file proves it the hard
way: the same call sequence runs once through the direct runtime API
and once through a 1-tenant ``ServingRuntime`` at concurrency 1, on
identically-built systems, and *everything observable* must match bit
for bit — every per-call :class:`ExecResult`, every ledger entry
(category, label, time, energy, in order), and every resilience
counter. The matrix covers the hardened configurations of the golden
v4 baselines: schedule cache on, seeded latent faults with patrol
scrub, and the thermal RC network with a tight throttling envelope.
"""

import pytest

from repro.core import MealibSystem
from repro.eval.workloads import TABLE2
from repro.faults import FaultInjector, ScrubConfig
from repro.serving import ServingRuntime, TenantConfig, coalesce
from repro.thermal import AMBIENT_K, ThermalConfig

SCALE = 0.016
FAULT_SEED = 4
THERMAL_MARGIN = 0.5

#: The call sequence both paths execute (repeats exercise the cache and
#: accumulate heat/latent upsets across calls).
CALLS = ("DOT", "AXPY", "GEMV", "AXPY", "RESMP", "GEMV", "AXPY", "DOT")

CONFIGS = ("plain", "cache", "faults-scrub", "faults-scrub-cache",
           "thermal", "thermal-cache")


def _build(config):
    kwargs = {"stack_bytes": 64 << 20}
    if "faults" in config:
        kwargs["faults"] = FaultInjector(seed=FAULT_SEED,
                                         latent_flip_rate=1e-5)
        kwargs["scrub"] = ScrubConfig(interval=2)
    if "thermal" in config:
        kwargs["faults"] = FaultInjector(seed=FAULT_SEED,
                                         latent_flip_rate=1e-5)
        kwargs["thermal"] = ThermalConfig(
            envelope=AMBIENT_K + THERMAL_MARGIN)
    if "cache" in config:
        kwargs["schedule_cache"] = True
    return MealibSystem(**kwargs)


def _run_direct(system):
    results = []
    for op in CALLS:
        plan = coalesce(system, [(op, TABLE2[op].params(SCALE))])
        results.append(system.runtime.acc_execute(plan,
                                                  functional=False))
        system.runtime.acc_destroy(plan)
    return results


def _run_served(system):
    serving = ServingRuntime(system, [TenantConfig("solo")],
                             max_concurrency=1, functional=False)
    for i, op in enumerate(CALLS):
        serving.submit("solo", op, TABLE2[op].params(SCALE),
                       arrival=float(i))  # strictly FIFO, one at a time
    serving.run()
    serving.verify_tenant_decomposition()
    assert all(not r.shed for r in serving.requests)
    return [r.result for r in serving.requests]


def _assert_systems_identical(direct, served):
    assert len(served.ledger.entries) == len(direct.ledger.entries)
    for i, (a, b) in enumerate(zip(direct.ledger.entries,
                                   served.ledger.entries)):
        assert (a.category, a.label) == (b.category, b.label), (
            f"ledger entry {i} diverged: {a!r} != {b!r}")
        assert a.result.time == b.result.time, f"entry {i} time"
        assert a.result.energy == b.result.energy, f"entry {i} energy"
    assert direct.runtime.counters == served.runtime.counters
    # serving a solo stream prices zero contention
    assert served.contention_total().time == 0.0
    assert served.contention_total().energy == 0.0


@pytest.mark.parametrize("config", CONFIGS)
def test_served_solo_stream_is_byte_identical(config):
    direct = _build(config)
    served = _build(config)
    direct_results = _run_direct(direct)
    served_results = _run_served(served)
    for i, (a, b) in enumerate(zip(direct_results, served_results)):
        assert a.time == b.time and a.energy == b.energy, (
            f"{config}: call {i} ({CALLS[i]}) diverged")
    _assert_systems_identical(direct, served)


@pytest.mark.parametrize("config", ("cache", "faults-scrub-cache",
                                    "thermal-cache"))
def test_served_repeated_plan_is_byte_identical(config):
    """The repeated-call shape (``submit_plan``) — consecutive serves
    of one plan must replay the schedule cache exactly like a direct
    execute loop does."""
    executes = 6
    params = TABLE2["AXPY"].params(SCALE)

    direct = _build(config)
    plan_a = coalesce(direct, [("AXPY", params)])
    direct_results = [direct.runtime.acc_execute(plan_a,
                                                 functional=False)
                      for _ in range(executes)]

    served = _build(config)
    serving = ServingRuntime(served, [TenantConfig("solo")],
                             max_concurrency=1, functional=False)
    plan_b = coalesce(served, [("AXPY", params)])
    for i in range(executes):
        serving.submit_plan("solo", plan_b, arrival=float(i))
    serving.run()
    serving.verify_tenant_decomposition()

    for a, r in zip(direct_results, serving.requests):
        assert a.time == r.result.time
        assert a.energy == r.result.energy
    _assert_systems_identical(direct, served)
    # the serving path really rode the cache, tagged per tenant
    tagged = served.schedule_cache.stats_for("solo")
    assert tagged.lookups == executes
    assert tagged.hits == direct.schedule_cache.stats.hits


def test_thermal_state_matches_after_serving():
    """The served system's RC network integrates the same heat."""
    direct = _build("thermal")
    served = _build("thermal")
    _run_direct(direct)
    _run_served(served)
    vaults = direct.device.units
    assert [direct.thermal.temperature(v) for v in range(vaults)] == \
        [served.thermal.temperature(v) for v in range(vaults)]
    assert (direct.governor.stats.throttle_events
            == served.governor.stats.throttle_events)
