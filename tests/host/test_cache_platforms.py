"""Cache-flush model and accelerated-platform wiring."""

import pytest

from repro.accel import AxpyAccelerator, AxpyParams
from repro.host import (CacheHierarchy, mealib_platform, msas, psas)


class TestCacheFlush:
    def test_flush_has_base_latency(self):
        c = CacheHierarchy()
        res = c.flush_cost(working_set_bytes=0)
        assert res.time == pytest.approx(c.base_latency)

    def test_flush_bounded_by_llc(self):
        c = CacheHierarchy()
        huge = c.flush_cost(working_set_bytes=1 << 34)
        expected = c.base_latency + (c.llc_bytes * c.dirty_fraction
                                     ) / c.flush_bw
        assert huge.time == pytest.approx(expected)

    def test_small_working_set_cheaper(self):
        c = CacheHierarchy()
        small = c.flush_cost(working_set_bytes=64 * 1024)
        big = c.flush_cost(working_set_bytes=1 << 30)
        assert small.time < big.time

    def test_energy_positive(self):
        assert CacheHierarchy().flush_cost(1 << 20).energy > 0

    def test_invalid_dirty_fraction(self):
        with pytest.raises(ValueError):
            CacheHierarchy(dirty_fraction=1.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CacheHierarchy(llc_bytes=0)


class TestAcceleratedSystems:
    def setup_method(self):
        self.params = AxpyParams(n=1 << 22, alpha=1.0, x_pa=0,
                                 y_pa=1 << 24)
        self.core = AxpyAccelerator()

    def test_bandwidth_hierarchy(self):
        """More bandwidth -> faster: PSAS < MSAS < MEALib."""
        t_psas = psas().run(self.core, self.params).result.time
        t_msas = msas().run(self.core, self.params).result.time
        t_mea = mealib_platform().run(self.core, self.params).result.time
        assert t_mea < t_msas < t_psas

    def test_interface_power_included(self):
        system = mealib_platform()
        with_iface = system.run(self.core, self.params).result
        bare = self.core.model(system.device, self.params).result
        extra = with_iface.energy - bare.energy
        assert extra == pytest.approx(
            system.interface_power * with_iface.time)

    def test_platform_names(self):
        assert psas().name == "PSAS"
        assert msas().name == "MSAS"
        assert mealib_platform().name == "MEALib"

    def test_mealib_power_in_table5_envelope(self):
        """Per-op MEALib power must land in the paper's 8-24 W band."""
        big = AxpyParams(n=1 << 26, alpha=1.0, x_pa=0, y_pa=1 << 29)
        res = mealib_platform().run(self.core, big).result
        assert 8.0 < res.power < 30.0
