"""Host CPU roofline model tests."""

import pytest

from repro.host import CpuModel, CpuSpec, haswell, xeon_phi
from repro.mkl import axpy_profile, dot_profile, gemv_profile, reshp_profile


def test_haswell_peak_gflops_matches_paper():
    # the paper quotes 112 GFLOPS at 3.5 GHz
    assert haswell().spec.peak_gflops == pytest.approx(112.0)


def test_memory_bound_op_limited_by_bandwidth():
    cpu = haswell()
    p = axpy_profile(1 << 26)
    res = cpu.run_profile(p)
    traffic = p.bytes_read + cpu.spec.rfo_factor * p.bytes_written
    t_mem = traffic / (cpu.spec.peak_bw * cpu.spec.bw_eff["stream"])
    assert res.time == pytest.approx(t_mem)


def test_power_in_measured_envelope():
    """RAPL on the i7-4770K under MKL load lands in the 40-50 W range."""
    res = haswell().run_profile(dot_profile(1 << 26))
    assert 35.0 < res.power < 55.0


def test_single_thread_op_draws_less_power():
    multi = haswell().run_profile(dot_profile(1 << 26))
    single = haswell().run_profile(reshp_profile(4096, 4096))
    assert single.power < multi.power


def test_profile_thread_hint_honoured():
    cpu = haswell()
    hinted = cpu.run_profile(reshp_profile(4096, 4096))      # threads=1
    forced = cpu.run_profile(reshp_profile(4096, 4096), threads=4)
    assert hinted.power < forced.power


def test_phi_not_much_faster_than_haswell():
    """The paper's headline observation about the evaluated MKL on Phi."""
    p = axpy_profile(1 << 28)
    t_h = haswell().run_profile(p).time
    t_phi = xeon_phi().run_profile(p).time
    assert 1.0 < t_h / t_phi < 4.0


def test_phi_terrible_at_transpose():
    p = reshp_profile(16384, 16384)
    t_h = haswell().run_profile(p).time
    t_phi = xeon_phi().run_profile(p).time
    assert t_phi > 10 * t_h


def test_phi_less_energy_efficient():
    p = dot_profile(1 << 28)
    e_h = haswell().run_profile(p).energy
    e_phi = xeon_phi().run_profile(p).energy
    assert e_phi > e_h


def test_naive_slower_than_library():
    cpu = haswell()
    p = gemv_profile(4096, 4096)
    lib = cpu.run_profile(p)
    naive = cpu.run_naive(p, threads=1)
    assert naive.time > lib.time


def test_interpreter_slowdown_compounds():
    cpu = haswell()
    p = dot_profile(1 << 20)
    plain = cpu.run_naive(p, threads=1)
    interp = cpu.run_naive(p, threads=1, interpreter_slowdown=30.0)
    assert interp.time > 5 * plain.time


def test_threads_clamped_to_cores():
    cpu = haswell()
    res_over = cpu.run_profile(dot_profile(1 << 20), threads=64)
    res_max = cpu.run_profile(dot_profile(1 << 20), threads=4)
    assert res_over.time == pytest.approx(res_max.time)
    assert res_over.power == pytest.approx(res_max.power)


def test_idle_draw():
    cpu = haswell()
    res = cpu.idle_draw(2.0)
    assert res.time == 2.0
    assert res.energy == pytest.approx(2.0 * cpu.spec.p_idle)


def test_custom_spec_round_trip():
    spec = CpuSpec(name="toy", cores=2, freq_hz=1e9, flops_per_cycle=4,
                   peak_bw=10e9)
    cpu = CpuModel(spec)
    assert cpu.spec.peak_gflops == pytest.approx(8.0)
    res = cpu.run_profile(axpy_profile(1 << 20))
    assert res.time > 0 and res.energy > 0
