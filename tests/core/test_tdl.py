"""TDL parsing, printing, and tree invariants."""

import pytest

from repro.core import (Comp, Loop, Pass, TdlError, TdlProgram, format_tdl,
                        parse_tdl)

SAMPLE = """
LOOP 128 {
  PASS {
    COMP RESMP reshape.para
    COMP FFT fft.para
  }
}
PASS {
  COMP AXPY axpy.para
}
"""


def test_parse_structure():
    prog = parse_tdl(SAMPLE)
    assert len(prog.blocks) == 2
    loop, solo = prog.blocks
    assert isinstance(loop, Loop)
    assert loop.count == 128
    assert loop.body[0].comps[0].accel == "RESMP"
    assert loop.body[0].comps[1].param_file == "fft.para"
    assert isinstance(solo, Pass)
    assert not solo.chained
    assert loop.body[0].chained


def test_roundtrip():
    prog = parse_tdl(SAMPLE)
    assert parse_tdl(format_tdl(prog)) == prog


def test_comments_ignored():
    prog = parse_tdl("# header\nPASS { # inline\n COMP DOT d.para\n}\n")
    assert prog.blocks[0].comps[0].accel == "DOT"


def test_invocation_count():
    prog = parse_tdl(SAMPLE)
    assert prog.invocation_count() == 128 * 2 + 1


def test_comps_listing():
    prog = parse_tdl(SAMPLE)
    assert [c.accel for c in prog.comps()] == ["RESMP", "FFT", "AXPY"]


@pytest.mark.parametrize("bad", [
    "",
    "PASS { }",
    "LOOP { PASS { COMP A a } }",
    "LOOP 0 { PASS { COMP A a } }",
    "LOOP 4 { }",
    "PASS { COMP FFT }",
    "COMP FFT f.para",
    "PASS { COMP FFT f.para",
    "LOOP abc { PASS { COMP FFT f.para } }",
])
def test_malformed_rejected(bad):
    with pytest.raises(TdlError):
        parse_tdl(bad)


def test_tree_validation():
    with pytest.raises(TdlError):
        Pass(comps=())
    with pytest.raises(TdlError):
        Loop(count=2, body=())
    with pytest.raises(TdlError):
        Loop(count=-1, body=(Pass(comps=(Comp("FFT", "f"),)),))
    with pytest.raises(TdlError):
        TdlProgram(blocks=())
    with pytest.raises(TdlError):
        Comp(accel="", param_file="x")


def test_loop_only_contains_passes():
    with pytest.raises(TdlError):
        Loop(count=2, body=(Comp("FFT", "f"),))


def test_pass_only_contains_comps():
    with pytest.raises(TdlError):
        Pass(comps=(Pass(comps=(Comp("FFT", "f"),)),))
