"""Invocation cost model and looped-stream coalescing in the CU."""

import pytest

from repro.accel import DotAccelerator, DotParams, DTYPE_C64
from repro.accel.base import StrideTable
from repro.core.config_unit import (CompInstance,
                                    _coalesce_looped_stream,
                                    _comp_streams_aggregated,
                                    _stream_footprint)
from repro.core.invocation import InvocationModel
from repro.memsys.trace import StreamSpec


class TestInvocationModel:
    def setup_method(self):
        self.model = InvocationModel()

    def test_components_add_up(self):
        total = self.model.total(1024, 1 << 20)
        parts = (self.model.flush_cost(1 << 20)
                 .plus(self.model.descriptor_cost(1024))
                 .plus(self.model.doorbell_cost()))
        assert total.time == pytest.approx(parts.time)
        assert total.energy == pytest.approx(parts.energy)

    def test_flush_excludable(self):
        with_f = self.model.total(1024, 1 << 20, include_flush=True)
        without = self.model.total(1024, 1 << 20, include_flush=False)
        assert without.time < with_f.time

    def test_bigger_descriptor_costs_more(self):
        small = self.model.descriptor_cost(64)
        big = self.model.descriptor_cost(1 << 16)
        assert big.time > small.time

    def test_overhead_microsecond_scale(self):
        """Per-invocation overhead must be tens of microseconds — the
        scale that makes Fig 12b's software loop lose by ~10x."""
        total = self.model.total(4096, 1 << 20)
        assert 5e-6 < total.time < 500e-6


class TestStreamFootprint:
    def test_seq(self):
        s = StreamSpec(base=0, n_elems=64, elem_bytes=4)
        assert _stream_footprint(s) == 256

    def test_strided(self):
        s = StreamSpec(base=0, n_elems=32, elem_bytes=8, kind="strided",
                       stride=2048)
        assert _stream_footprint(s) == 32 * 2048

    def test_blocked(self):
        s = StreamSpec(base=0, n_elems=128, elem_bytes=4, kind="blocked",
                       block_elems=64, block_stride=4096)
        assert _stream_footprint(s) == 2 * 4096


class TestCoalescing:
    def test_invariant_operand_read_once(self):
        """delta 0 at a loop level = LM reuse: total elements shrink."""
        s = StreamSpec(base=0, n_elems=32, elem_bytes=8)
        out = _coalesce_looped_stream(s, (0,), (16,), 16)
        assert out.n_elems == 32            # one read serves all trips

    def test_dense_strided_tiling_becomes_seq(self):
        """STAP's snapshot columns: stride 2048, advance 8/iter over
        256 iterations covers the block densely."""
        s = StreamSpec(base=0, n_elems=32, elem_bytes=8, kind="strided",
                       stride=2048)
        out = _coalesce_looped_stream(s, (8,), (256,), 256)
        assert out.kind == "seq"
        assert out.n_elems == 32 * 256

    def test_concatenation(self):
        s = StreamSpec(base=0, n_elems=64, elem_bytes=4)
        out = _coalesce_looped_stream(s, (256,), (10,), 10)
        assert out.n_elems == 640

    def test_unmatched_delta_falls_back(self):
        s = StreamSpec(base=0, n_elems=64, elem_bytes=4)
        out = _coalesce_looped_stream(s, (12345,), (10,), 10)
        assert out.n_elems == 640           # conservative scaling

    def test_stap_dot_nest_reads_each_buffer_once(self):
        """End-to-end: the 4-deep STAP dot nest coalesces to unique
        bytes (wts + snapshots + prods read/written once)."""
        tdof, tbs, n_sv, pairs = 32, 64, 8, 6
        core = DotAccelerator()
        params = DotParams(n=tdof, x_pa=0, y_pa=1 << 20, out_pa=1 << 24,
                           incy=tbs, dtype=DTYPE_C64)
        # dims: (pair, sv, cell); deltas per addr field in bytes
        table = StrideTable(
            trips=(pairs, n_sv, tbs),
            deltas={"x_pa": (n_sv * tdof * 8, tdof * 8, 0),
                    "y_pa": (tdof * tbs * 8, 0, 8),
                    "out_pa": (n_sv * tbs * 8, tbs * 8, 8)})
        comp = CompInstance(core=core, params=params, strides=table)
        count = pairs * n_sv * tbs
        streams = _comp_streams_aggregated(comp, count)
        x_stream = next(s for s in streams if s.base == 0)
        y_stream = next(s for s in streams if s.base == 1 << 20)
        assert x_stream.total_bytes == pairs * n_sv * tdof * 8
        assert y_stream.total_bytes == pairs * tdof * tbs * 8
