"""Property test: any aligned single-word corruption is detected.

The CR checksum (CRC32 over the descriptor with the mutable command
word and the checksum word itself zeroed) must flag *every* corrupted
32-bit word of a sealed descriptor — detection rate 1.0, not "high".
"""

import struct

import numpy as np
import pytest

from repro.accel import AxpyParams, FftParams
from repro.core import (CMD_START, DescriptorIntegrityError, ParamStore,
                        descriptor_checksum, encode, parse_tdl,
                        set_command, verify_integrity)
from repro.core.descriptor import CHECKSUM_OFFSET, COMMAND_OFFSET

TRIALS = 600


def sealed_descriptor():
    store = ParamStore()
    store.add("a.para", AxpyParams(n=64, alpha=1.5, x_pa=0x1000,
                                   y_pa=0x2000).pack())
    store.add("f.para", FftParams(n=64, batch=2, src_pa=0x3000,
                                  dst_pa=0x4000).pack())
    prog = parse_tdl(
        "LOOP 4 { PASS { COMP AXPY a.para } }\n"
        "PASS { COMP FFT f.para }\n")
    desc = encode(prog, store, base_pa=0x100)
    raw = bytearray(desc.data)
    set_command(raw, CMD_START)      # doorbell rung, as the CU sees it
    return bytes(raw)


def test_sealed_descriptor_verifies():
    raw = sealed_descriptor()
    verify_integrity(raw)            # must not raise
    assert struct.unpack_from("<I", raw, CHECKSUM_OFFSET)[0] \
        == descriptor_checksum(raw)


def test_command_word_excluded_from_seal():
    # ringing/clearing the doorbell must not invalidate the checksum
    raw = bytearray(sealed_descriptor())
    for command in (0, 1, 0xFFFF):
        struct.pack_into("<I", raw, COMMAND_OFFSET, command)
        verify_integrity(bytes(raw))


def test_single_word_corruption_always_detected():
    raw = sealed_descriptor()
    n_words = len(raw) // 4
    rng = np.random.default_rng(0xC0FFEE)
    detected = 0
    trials = 0
    while trials < TRIALS:
        word = int(rng.integers(0, n_words))
        if word * 4 == COMMAND_OFFSET:
            continue                 # mutable word: corruption there is
        trials += 1                  # repaired by the next doorbell write
        original = raw[word * 4:word * 4 + 4]
        replacement = bytes(rng.integers(0, 256, 4, dtype=np.uint8))
        if replacement == original:
            detected += 1            # no-op corruption: nothing to detect
            continue
        mutated = bytearray(raw)
        mutated[word * 4:word * 4 + 4] = replacement
        with pytest.raises(DescriptorIntegrityError):
            verify_integrity(bytes(mutated))
        detected += 1
    assert trials >= 500
    assert detected == trials        # 100% detection


def test_single_bit_corruption_always_detected():
    raw = sealed_descriptor()
    rng = np.random.default_rng(7)
    for _ in range(TRIALS):
        bit = int(rng.integers(0, len(raw) * 8))
        if bit // 8 in range(COMMAND_OFFSET, COMMAND_OFFSET + 4):
            continue
        mutated = bytearray(raw)
        mutated[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(DescriptorIntegrityError):
            verify_integrity(bytes(mutated))


def test_truncated_descriptor_rejected():
    raw = sealed_descriptor()
    with pytest.raises(DescriptorIntegrityError):
        verify_integrity(raw[:12])
