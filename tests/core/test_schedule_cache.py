"""Schedule-cache battery: property, stale-entry and invalidation tests.

Three layers of evidence that descriptor-keyed schedule caching is
*free* — purely a speedup, never a semantic change:

* a *property* battery drives 300 randomized descriptors (op x shape x
  stride x placement) through a cache-on and a cache-off system in
  lockstep and asserts every replayed execution is bit-identical to the
  fresh simulation, call by call and ledger by ledger;
* *stale-cache regressions* fire every invalidation source the system
  wires — injected faults, link failures, tile failures, governor
  throttle/offline/recovery, patrol-scrub repairs — and assert the
  affected entries are evicted and re-simulated;
* a *deliberately-stale* test constructs the nastiest case: a hazard
  that comes and goes between two identical calls (link flap-style
  fail + restore), leaving the *key* bit-identical while the world the
  entry was computed in changed. The entry must be caught as stale,
  never silently replayed.
"""

import dataclasses

import numpy as np
import pytest

from repro.accel.base import pack_strides
from repro.core import MealibSystem, ParamStore, ScheduleCache
from repro.eval.workloads import TABLE2
from repro.faults import FaultInjector, ScrubConfig
from repro.thermal import AMBIENT_K, ThermalConfig

OPS = ("DOT", "AXPY", "GEMV", "SPMV", "FFT", "RESMP", "RESHP")

#: Ledger categories compared between cache-on and cache-off systems.
CATEGORIES = ("invocation", "accelerator", "fault", "retry", "reroute",
              "fallback", "scrub", "throttle")

TRIALS = 300


def make_system(**kwargs):
    return MealibSystem(stack_bytes=64 << 20, **kwargs)


def random_descriptor(rng):
    """One random (op, shape, stride, placement) descriptor spec.

    Shape comes from a continuous scale draw, placement from an aligned
    base shift applied to every operand address, and stride/loop
    structure from randomly wrapping the vector ops in a strided LOOP.
    """
    op = OPS[int(rng.integers(len(OPS)))]
    scale = float(rng.uniform(0.001, 0.004))
    params = TABLE2[op].params(scale)
    shift = int(rng.integers(0, 1 << 17)) * 64          # <= 8 MB, aligned
    params_type = type(params)
    params = dataclasses.replace(
        params, **{f: getattr(params, f) + shift
                   for f in params_type.ADDR_FIELDS})
    loop = 1
    strides = b""
    if op in ("AXPY", "DOT") and rng.random() < 0.5:
        loop = int(rng.integers(2, 5))
        elem = params.n * 4
        deltas = {f: (4 if f == "out_pa" else elem)
                  for f in params_type.ADDR_FIELDS}
        strides = pack_strides(params_type, deltas)
    if loop > 1:
        text = f"LOOP {loop} {{ PASS {{ COMP {op} w.para }} }}"
    else:
        text = f"PASS {{ COMP {op} w.para }}"
    return op, params, strides, text


def run_trial(system, spec, executes=2):
    """Plan one descriptor, execute it ``executes`` times, destroy it."""
    op, params, strides, text = spec
    core = system.layer.accelerator(op)
    streams = core.streams(params)
    in_size = sum(s.total_bytes for s in streams if not s.is_write)
    out_size = sum(s.total_bytes for s in streams if s.is_write)
    store = ParamStore()
    store.add("w.para", params.pack() + strides)
    plan = system.runtime.acc_plan(text, store, in_size=in_size,
                                   out_size=out_size)
    results = [system.runtime.acc_execute(plan, functional=False)
               for _ in range(executes)]
    system.runtime.acc_destroy(plan)
    return results


def assert_ledgers_identical(a, b):
    for category in CATEGORIES:
        assert a.ledger.total(category) == b.ledger.total(category), (
            f"ledger[{category}] diverged between cache-on and "
            f"cache-off systems")


# -- property battery: cached replay == fresh simulation ----------------------


def test_property_battery_replay_bit_identical_over_300_trials():
    """300 randomized descriptors, each executed twice on a cache-on
    and a cache-off system in lockstep: every per-call ExecResult and
    every ledger category must match exactly, and every second call on
    the cached system must be a hit."""
    rng = np.random.default_rng(20260808)
    on = make_system(schedule_cache=True)
    off = make_system()
    for trial in range(TRIALS):
        spec = random_descriptor(rng)
        hits_before = on.schedule_cache.stats.hits
        got_on = run_trial(on, spec)
        got_off = run_trial(off, spec)
        assert got_on == got_off, (
            f"trial {trial} ({spec[0]}): cached replay diverged from "
            f"fresh simulation: {got_on!r} != {got_off!r}")
        assert on.schedule_cache.stats.hits == hits_before + 1, (
            f"trial {trial}: the repeated call did not hit the cache")
    assert_ledgers_identical(on, off)
    assert on.runtime.counters.cached_executes == TRIALS
    stats = on.schedule_cache.stats
    assert stats.hits == TRIALS
    assert stats.stale_evictions == 0
    # 300 distinct descriptors through a 256-entry LRU really overflow
    assert stats.capacity_evictions > 0
    assert len(on.schedule_cache) == on.schedule_cache.capacity


def test_replay_marks_cache_hit_and_counter():
    system = make_system(schedule_cache=True)
    rng = np.random.default_rng(7)
    run_trial(system, random_descriptor(rng), executes=3)
    assert system.runtime.counters.cached_executes == 2
    assert system.schedule_cache.stats.hits == 2
    assert system.schedule_cache.stats.misses == 1
    assert system.schedule_cache.hit_rate == pytest.approx(2 / 3)


# -- stale-cache regressions: every invalidation source -----------------------


AXPY_SPEC = ("AXPY", TABLE2["AXPY"].params(0.002), b"",
             "PASS { COMP AXPY w.para }")


def test_injected_fault_invalidates(tmp_path):
    faults = FaultInjector(seed=11)
    system = make_system(faults=faults, schedule_cache=True)
    run_trial(system, AXPY_SPEC)
    assert system.schedule_cache.stats.hits == 1
    # new latent flips landing must bump the fault epoch...
    faults.plant_latent_flips(64, [3])
    assert system.schedule_cache.stats.invalidations["fault"] == 1
    # ...and the next identical call must be caught stale, not replayed
    run_trial(system, AXPY_SPEC)
    assert system.schedule_cache.stats.stale_evictions >= 1


def test_link_failure_and_restore_invalidate():
    system = make_system(schedule_cache=True)
    cache = system.schedule_cache
    run_trial(system, AXPY_SPEC)
    system.layer.noc.fail_link(0, 1)
    assert cache.stats.invalidations["health"] == 1
    system.layer.noc.restore_link(0, 1)
    assert cache.stats.invalidations["health"] == 2
    # restoring a link that is not failed is not a transition
    system.layer.noc.restore_link(0, 1)
    assert cache.stats.invalidations["health"] == 2


def test_tile_failure_and_repair_invalidate():
    system = make_system(schedule_cache=True)
    cache = system.schedule_cache
    system.layer.mark_tile_failed(3)
    assert cache.stats.invalidations["health"] == 1
    system.layer.mark_tile_failed(3)          # already failed: no-op
    assert cache.stats.invalidations["health"] == 1
    system.layer.repair_tile(3)
    assert cache.stats.invalidations["health"] == 2


def test_deliberately_stale_entry_is_caught_not_replayed():
    """The nastiest staleness: a link fails and is restored *between*
    two identical calls. Serving tiles, reroutes, slowdown — the whole
    key — are bit-identical to the cached entry's, so only the epoch
    check stands between the second call and silently replaying an
    entry computed in a different world. It must be caught."""
    cached = make_system(schedule_cache=True)
    fresh = make_system()
    first_on = run_trial(cached, AXPY_SPEC, executes=1)
    first_off = run_trial(fresh, AXPY_SPEC, executes=1)
    assert first_on == first_off
    for system in (cached, fresh):
        system.layer.noc.fail_link(5, 6)
        system.layer.noc.restore_link(5, 6)
    second_on = run_trial(cached, AXPY_SPEC, executes=1)
    second_off = run_trial(fresh, AXPY_SPEC, executes=1)
    assert second_on == second_off
    stats = cached.schedule_cache.stats
    assert stats.stale_evictions == 1, (
        "the flapped-link entry was not caught as stale")
    assert stats.hits == 0
    assert stats.invalidations["health"] == 2


def test_degraded_key_separates_health_states():
    """Dead-tile and healthy executions never share entries, and the
    degraded replay is bit-identical to a fresh degraded simulation."""
    cached = make_system(schedule_cache=True)
    fresh = make_system()
    assert run_trial(cached, AXPY_SPEC) == run_trial(fresh, AXPY_SPEC)
    for system in (cached, fresh):
        system.layer.mark_tile_failed(0)
    got_on = run_trial(cached, AXPY_SPEC)
    got_off = run_trial(fresh, AXPY_SPEC)
    assert got_on == got_off
    assert got_on[0].time > 0.0
    # second degraded call replays the degraded entry
    assert cached.schedule_cache.stats.hits >= 2
    assert_ledgers_identical(cached, fresh)


def test_governor_transitions_invalidate_and_stay_identical():
    """A tight envelope makes the governor throttle mid-run: every
    state transition must bump the thermal epoch, and the cached run
    must stay bit-identical to the uncached one through the throttle
    and release transitions."""
    config = ThermalConfig(envelope=AMBIENT_K + 0.5)
    cached = make_system(thermal=config, schedule_cache=True)
    fresh = make_system(thermal=config)
    got_on = run_trial(cached, ("GEMV", TABLE2["GEMV"].params(0.016),
                                b"", "PASS { COMP GEMV w.para }"),
                       executes=4)
    got_off = run_trial(fresh, ("GEMV", TABLE2["GEMV"].params(0.016),
                                b"", "PASS { COMP GEMV w.para }"),
                        executes=4)
    assert got_on == got_off
    assert_ledgers_identical(cached, fresh)
    assert fresh.governor.stats.throttle_events > 0, (
        "the scenario no longer throttles; pick a heavier op")
    assert cached.schedule_cache.stats.invalidations["thermal"] > 0
    assert (cached.governor.stats.__dict__
            == fresh.governor.stats.__dict__)


def test_scrub_repair_invalidates():
    faults = FaultInjector(seed=5)
    system = make_system(faults=faults,
                         scrub=ScrubConfig(interval=1000),
                         schedule_cache=True)
    run_trial(system, AXPY_SPEC)
    faults.plant_latent_flips(128, [1])
    fault_invals = system.schedule_cache.stats.invalidations["fault"]
    assert fault_invals == 1
    system.scrubber.scrub()
    assert system.schedule_cache.stats.invalidations["scrub"] == 1
    # an empty patrol pass repairs nothing: no invalidation
    system.scrubber.scrub()
    assert system.schedule_cache.stats.invalidations["scrub"] == 1


def test_scrubbed_campaign_identical_with_cache():
    """Deposits + demand adjudication + patrol passes, cache on vs off:
    the whole seeded campaign must match call for call."""
    def build(cache):
        faults = FaultInjector(seed=4, latent_flip_rate=1e-5)
        return make_system(faults=faults,
                           scrub=ScrubConfig(interval=2),
                           schedule_cache=cache)

    spec = ("DOT", TABLE2["DOT"].params(0.016), b"",
            "PASS { COMP DOT w.para }")
    on_sys, off_sys = build(True), build(None)
    assert (run_trial(on_sys, spec, executes=6)
            == run_trial(off_sys, spec, executes=6))
    assert_ledgers_identical(on_sys, off_sys)
    assert (on_sys.runtime.counters.scrub_passes
            == off_sys.runtime.counters.scrub_passes)
    assert (on_sys.datapath.stats.words_corrected
            == off_sys.datapath.stats.words_corrected)


# -- ScheduleCache mechanics ---------------------------------------------------


def test_cache_rejects_bad_capacity_and_domain():
    with pytest.raises(ValueError):
        ScheduleCache(capacity=0)
    with pytest.raises(KeyError):
        ScheduleCache().invalidate("weather")


def test_lru_eviction_order():
    cache = ScheduleCache(capacity=2)
    execution_of = {}
    for key in ("a", "b"):
        assert cache.lookup(key) is None
    from repro.core.config_unit import DescriptorExecution
    from repro.metrics import ExecResult
    for key in ("a", "b"):
        execution_of[key] = DescriptorExecution(
            result=ExecResult(1.0, 1.0), by_accelerator={},
            invocations=1, passes=1)
        cache.store(key, [], execution_of[key], [])
    assert cache.lookup("a") is not None      # refresh 'a'
    cache.store("c", [], execution_of["a"], [])
    assert len(cache) == 2
    assert cache.stats.capacity_evictions == 1
    assert cache.lookup("b") is None          # 'b' was the LRU victim
    assert cache.lookup("a") is not None


def test_replay_copies_containers():
    from repro.core.config_unit import DescriptorExecution
    from repro.metrics import ExecResult
    cache = ScheduleCache()
    template = DescriptorExecution(
        result=ExecResult(1.0, 2.0), by_accelerator={"AXPY":
                                                     ExecResult(1.0, 2.0)},
        invocations=1, passes=1, vault_heat={0: 0.5})
    cache.store("k", [], template, [])
    template.by_accelerator["AXPY"] = ExecResult(9.0, 9.0)
    template.vault_heat[0] = 9.0
    replayed = cache.lookup("k").replay()
    assert replayed.by_accelerator["AXPY"] == ExecResult(1.0, 2.0)
    assert replayed.vault_heat == {0: 0.5}
    assert replayed.cache_hit is True
    replayed.vault_heat[0] = 7.0              # caller-side mutation
    assert cache.lookup("k").replay().vault_heat == {0: 0.5}


def test_clear_drops_entries_but_keeps_stats():
    cache = ScheduleCache()
    from repro.core.config_unit import DescriptorExecution
    from repro.metrics import ExecResult
    cache.store("k", [], DescriptorExecution(
        result=ExecResult(1.0, 1.0), by_accelerator={}, invocations=1,
        passes=1), [])
    assert cache.lookup("k") is not None
    cache.clear()
    assert len(cache) == 0
    assert cache.lookup("k") is None
    assert cache.stats.hits == 1
