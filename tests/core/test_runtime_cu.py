"""Runtime + configuration unit integration: the full descriptor path."""

import numpy as np
import pytest

from repro.accel import (AxpyParams, DotParams, FftParams, ResmpParams,
                         DTYPE_C64)
from repro.accel.base import pack_strides
from repro.core import (MealibSystem, ParamStore, RuntimeError_,
                        DescriptorError)
from repro.metrics import ZERO


@pytest.fixture
def system():
    return MealibSystem(stack_bytes=256 << 20)


def make_axpy_plan(system, n=1024, alpha=2.0):
    xb, x = system.space.alloc_array((n,), np.float32)
    yb, y = system.space.alloc_array((n,), np.float32)
    x[:] = 1.0
    y[:] = 1.0
    store = ParamStore()
    store.add("a.para", AxpyParams(n=n, alpha=alpha, x_pa=xb.pa,
                                   y_pa=yb.pa).pack())
    plan = system.runtime.acc_plan("PASS { COMP AXPY a.para }", store,
                                   in_size=n * 8, out_size=n * 4)
    return plan, x, y


class TestRuntime:
    def test_execute_is_functional(self, system):
        plan, x, y = make_axpy_plan(system, alpha=3.0)
        result = system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, np.full(1024, 4.0, np.float32))
        assert result.time > 0 and result.energy > 0

    def test_plan_reusable(self, system):
        """One acc_plan, many acc_execute — the Fig 12b software loop."""
        plan, x, y = make_axpy_plan(system, alpha=1.0)
        for _ in range(3):
            system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, np.full(1024, 4.0, np.float32))
        assert plan.executions == 3

    def test_destroy_releases_slot(self, system):
        plan, _, _ = make_axpy_plan(system)
        free_before = system.runtime._command_alloc.free_bytes
        system.runtime.acc_destroy(plan)
        assert system.runtime._command_alloc.free_bytes > free_before
        with pytest.raises(RuntimeError_):
            system.runtime.acc_execute(plan)
        with pytest.raises(RuntimeError_):
            system.runtime.acc_destroy(plan)

    def test_negative_sizes_rejected(self, system):
        store = ParamStore()
        store.add("a.para", b"\x00" * AxpyParams.SIZE)
        with pytest.raises(RuntimeError_):
            system.runtime.acc_plan("PASS { COMP AXPY a.para }", store,
                                    in_size=-1, out_size=0)

    def test_ledger_accumulates(self, system):
        plan, _, _ = make_axpy_plan(system)
        system.runtime.acc_execute(plan)
        ledger = system.runtime.ledger
        assert ledger.total("invocation").time > 0
        assert ledger.total("accelerator").time > 0
        assert "AXPY" in ledger.by_label("accelerator")
        total = ledger.total()
        assert total.time == pytest.approx(
            ledger.total("invocation").time
            + ledger.total("accelerator").time)

    def test_descriptor_resides_in_command_space(self, system):
        plan, _, _ = make_axpy_plan(system)
        assert plan.descriptor.base_pa < system.space.command_bytes

    def test_invocation_overhead_included(self, system):
        plan, _, _ = make_axpy_plan(system)
        result = system.runtime.acc_execute(plan)
        overhead = system.runtime.invocation.total(
            plan.descriptor.size, plan.working_set_bytes)
        assert result.time > overhead.time


class TestLoopsAndStrides:
    def test_loop_advances_addresses(self, system):
        rows, n = 8, 256
        xb, x = system.space.alloc_array((rows, n), np.float32)
        yb, y = system.space.alloc_array((rows, n), np.float32)
        x[:] = np.arange(rows, dtype=np.float32)[:, None]
        y[:] = 0.0
        store = ParamStore()
        base = AxpyParams(n=n, alpha=1.0, x_pa=xb.pa, y_pa=yb.pa)
        store.add("a.para", base.pack() + pack_strides(
            AxpyParams, {"x_pa": n * 4, "y_pa": n * 4}))
        plan = system.runtime.acc_plan(
            f"LOOP {rows} {{ PASS {{ COMP AXPY a.para }} }}", store,
            in_size=rows * n * 4, out_size=rows * n * 4)
        system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y[:, 0],
                                      np.arange(rows, dtype=np.float32))

    def test_loop_counts_invocations(self, system):
        plan, _, _ = make_axpy_plan(system)
        execution = system.config_unit.run_descriptor  # smoke: attribute
        assert callable(execution)
        assert plan.program.invocation_count() == 1

    def test_stap_shaped_dot_loop(self, system):
        """Many strided cdotc calls collapsed into one LOOP descriptor."""
        iters, n = 16, 32
        xb, x = system.space.alloc_array((iters, n), np.complex64)
        yb, y = system.space.alloc_array((iters, n), np.complex64)
        ob, out = system.space.alloc_array((iters,), np.complex64)
        rng = np.random.default_rng(0)
        x[:] = rng.standard_normal((iters, n)) + 1j
        y[:] = rng.standard_normal((iters, n)) - 1j
        store = ParamStore()
        base = DotParams(n=n, x_pa=xb.pa, y_pa=yb.pa, out_pa=ob.pa,
                         dtype=DTYPE_C64)
        store.add("d.para", base.pack() + pack_strides(
            DotParams, {"x_pa": n * 8, "y_pa": n * 8, "out_pa": 8}))
        plan = system.runtime.acc_plan(
            f"LOOP {iters} {{ PASS {{ COMP DOT d.para }} }}", store,
            in_size=iters * n * 16, out_size=iters * 8)
        system.runtime.acc_execute(plan)
        for i in range(iters):
            assert complex(out[i]) == pytest.approx(
                complex(np.vdot(x[i], y[i])), rel=1e-3)


class TestConfigUnit:
    def test_descriptor_without_start_rejected(self, system):
        plan, _, _ = make_axpy_plan(system)
        # descriptor is written with CMD_IDLE; decoding directly must fail
        with pytest.raises(DescriptorError):
            system.config_unit.decode(plan.descriptor.base_pa)

    def test_chained_pass_faster_than_two_passes(self, system):
        n = 512
        in_pa = 0x100000
        mid_pa = in_pa + n * n * 8 + n * n * 4
        out_pa = mid_pa + n * n * 8
        knots_pa = out_pa + n * n * 8
        rp = ResmpParams(blocks=n, n_in=n, n_out=n, in_pa=in_pa,
                         sites_pa=in_pa + n * n * 8, out_pa=mid_pa,
                         knots_pa=knots_pa)
        fp = FftParams(n=n, batch=n, src_pa=mid_pa, dst_pa=out_pa)
        ws = n * n * 8
        store = ParamStore()
        store.add("r.para", rp.pack())
        store.add("f.para", fp.pack())
        chained = system.runtime.acc_plan(
            "PASS { COMP RESMP r.para COMP FFT f.para }", store,
            in_size=ws, out_size=ws)
        t_chained = system.runtime.acc_execute(chained,
                                               functional=False).time
        s1, s2 = ParamStore(), ParamStore()
        s1.add("r.para", rp.pack())
        s2.add("f.para", fp.pack())
        p1 = system.runtime.acc_plan("PASS { COMP RESMP r.para }", s1,
                                     in_size=ws, out_size=ws)
        p2 = system.runtime.acc_plan("PASS { COMP FFT f.para }", s2,
                                     in_size=ws, out_size=ws)
        t_separate = (system.runtime.acc_execute(p1, functional=False)
                      .plus(system.runtime.acc_execute(
                          p2, functional=False))).time
        assert t_chained < t_separate

    def test_hw_loop_faster_than_sw_loop(self, system):
        n, count = 256, 16
        fp = FftParams(n=n, batch=n, src_pa=0x100000,
                       dst_pa=0x100000 + n * n * 8)
        ws = n * n * 8
        store = ParamStore()
        store.add("f.para", fp.pack())
        hw = system.runtime.acc_plan(
            f"LOOP {count} {{ PASS {{ COMP FFT f.para }} }}", store,
            in_size=ws, out_size=ws)
        t_hw = system.runtime.acc_execute(hw, functional=False).time
        store2 = ParamStore()
        store2.add("f.para", fp.pack())
        sw = system.runtime.acc_plan("PASS { COMP FFT f.para }", store2,
                                     in_size=ws, out_size=ws)
        t_sw = ZERO
        for _ in range(count):
            t_sw = t_sw.plus(system.runtime.acc_execute(
                sw, functional=False))
        assert t_hw < t_sw.time

    def test_breakdown_reports_by_accelerator(self, system):
        plan, _, _ = make_axpy_plan(system)
        system.runtime.acc_execute(plan)
        host, accel, invocation = system.breakdown()
        assert accel.time > 0
        assert invocation.time > 0
        assert host.time == 0
