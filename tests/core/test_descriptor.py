"""Accelerator descriptor encoding/decoding."""

import pytest

from repro.accel import AxpyParams, FftParams
from repro.core import (CMD_IDLE, CMD_START, DescriptorError, KIND_ACCEL,
                        KIND_ENDLOOP, KIND_ENDPASS, KIND_LOOP, ParamStore,
                        decode_control, decode_instructions, encode,
                        parse_tdl, set_command)
from repro.core.descriptor import CR_BYTES, INSTR_BYTES


def sample():
    store = ParamStore()
    store.add("a.para", AxpyParams(n=64, alpha=1.0, x_pa=0x1000,
                                   y_pa=0x2000).pack())
    store.add("f.para", FftParams(n=64, batch=2, src_pa=0x3000,
                                  dst_pa=0x4000).pack())
    prog = parse_tdl(
        "LOOP 4 { PASS { COMP AXPY a.para } }\n"
        "PASS { COMP FFT f.para }\n")
    return prog, store


def test_encode_layout():
    prog, store = sample()
    desc = encode(prog, store, base_pa=0x100)
    # instructions: LOOP, AXPY, ENDPASS, ENDLOOP, FFT, ENDPASS
    assert desc.n_instructions == 6
    assert desc.pr_offset == CR_BYTES + 6 * INSTR_BYTES
    assert desc.size == desc.pr_offset + AxpyParams.SIZE + FftParams.SIZE


def test_decode_roundtrip():
    prog, store = sample()
    desc = encode(prog, store, base_pa=0x100)
    command, n = decode_control(desc.data)
    assert command == CMD_IDLE
    assert n == 6
    instrs = decode_instructions(desc.data, n)
    kinds = [i.kind for i in instrs]
    assert kinds == [KIND_LOOP, KIND_ACCEL, KIND_ENDPASS, KIND_ENDLOOP,
                     KIND_ACCEL, KIND_ENDPASS]
    assert instrs[0].param_size == 4            # the loop count
    assert instrs[1].accel_name == "AXPY"
    assert instrs[4].accel_name == "FFT"
    # parameter addresses are absolute and inside the descriptor
    assert instrs[1].param_addr == 0x100 + desc.pr_offset


def test_param_bytes_recoverable():
    prog, store = sample()
    desc = encode(prog, store, base_pa=0)
    instrs = decode_instructions(desc.data, desc.n_instructions)
    axpy_instr = instrs[1]
    blob = desc.data[axpy_instr.param_addr:
                     axpy_instr.param_addr + axpy_instr.param_size]
    assert AxpyParams.unpack(blob) == AxpyParams(n=64, alpha=1.0,
                                                 x_pa=0x1000, y_pa=0x2000)


def test_set_command():
    prog, store = sample()
    desc = encode(prog, store, base_pa=0)
    buf = bytearray(desc.data)
    set_command(buf, CMD_START)
    command, _ = decode_control(bytes(buf))
    assert command == CMD_START


def test_bad_magic_rejected():
    with pytest.raises(DescriptorError):
        decode_control(b"\x00" * CR_BYTES)


def test_truncated_rejected():
    prog, store = sample()
    desc = encode(prog, store, base_pa=0)
    with pytest.raises(DescriptorError):
        decode_control(desc.data[:8])
    with pytest.raises(DescriptorError):
        decode_instructions(desc.data[:CR_BYTES + 4], desc.n_instructions)


def test_unknown_accelerator_rejected():
    store = ParamStore()
    store.add("g.para", b"\x00" * 16)
    prog = parse_tdl("PASS { COMP GEMM g.para }")
    with pytest.raises(DescriptorError):
        encode(prog, store, base_pa=0)


def test_missing_param_file_rejected():
    prog = parse_tdl("PASS { COMP AXPY missing.para }")
    from repro.core import TdlError
    with pytest.raises(TdlError):
        encode(prog, ParamStore(), base_pa=0)


def test_accel_name_of_control_instruction():
    from repro.core import Instruction
    with pytest.raises(DescriptorError):
        Instruction(kind=KIND_ENDPASS).accel_name
