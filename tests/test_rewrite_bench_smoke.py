"""Smoke test for the schedule-rewrite benchmark.

Runs ``benchmarks/bench_rewrite.py`` main on the seeded corpus pair
and asserts the JSON schema, the translation-validation gate (the
bench itself asserts bit-identical buffers and exact ledger
decomposition before emitting), and the headline numbers: verified
fusion of the looped chain must save real modelled energy and elide
exactly the certificate-priced DRAM traffic, while the illegal
sibling must change nothing.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import bench_rewrite as rewrite_bench  # noqa: E402

POINT_KEYS = {
    "time_off_s", "time_on_s", "time_saved_pct", "energy_off_j",
    "energy_on_j", "energy_saved_pct", "dram_bytes_skipped",
    "descriptors_off", "descriptors_on", "decisions",
}


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("rewrite") / "BENCH_rewrite.json"
    rc = rewrite_bench.main(["--workloads", "fusable_chain.c",
                             "illegal_fusion.c", "--json", str(out)])
    assert rc == 0
    with out.open() as fh:
        return json.load(fh)


def test_schema_is_stable(payload):
    assert payload["schema"] == rewrite_bench.SCHEMA
    assert set(payload) == {"schema", "workloads",
                            "energy_saved_pct_max",
                            "dram_bytes_skipped_total"}
    assert set(payload["workloads"]) == {"fusable_chain.c",
                                         "illegal_fusion.c"}
    for point in payload["workloads"].values():
        assert set(point) == POINT_KEYS


def test_verified_fusion_saves_energy(payload):
    point = payload["workloads"]["fusable_chain.c"]
    assert point["decisions"] == {"fuse_applied": 1}
    assert point["energy_saved_pct"] > 10.0
    assert point["time_saved_pct"] > 10.0
    # 8 iterations x 256 floats, written once and re-read once
    assert point["dram_bytes_skipped"] == 2 * 8 * 256 * 4
    assert point["descriptors_on"] < point["descriptors_off"]


def test_illegal_fusion_changes_nothing(payload):
    point = payload["workloads"]["illegal_fusion.c"]
    assert point["decisions"] == {"fuse_rejected": 1}
    assert point["energy_saved_pct"] == 0.0
    assert point["dram_bytes_skipped"] == 0
    assert point["descriptors_on"] == point["descriptors_off"]
