"""Shared metric helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (ExecResult, ZERO, edp_gain, efficiency_gain,
                           gbytes_per_s, gflops, gflops_per_watt,
                           speedup)


def test_power_and_edp():
    r = ExecResult(time=2.0, energy=10.0)
    assert r.power == 5.0
    assert r.edp == 20.0


def test_zero_result():
    assert ZERO.power == 0.0
    assert ZERO.edp == 0.0


def test_negative_rejected():
    with pytest.raises(ValueError):
        ExecResult(time=-1.0, energy=0.0)
    with pytest.raises(ValueError):
        ExecResult(time=1.0, energy=-1.0)


def test_plus_and_repeated():
    a = ExecResult(1.0, 2.0)
    b = ExecResult(3.0, 4.0)
    assert a.plus(b) == ExecResult(4.0, 6.0)
    assert a.repeated(3) == ExecResult(3.0, 6.0)
    with pytest.raises(ValueError):
        a.repeated(-1)


def test_metric_helpers():
    r = ExecResult(time=0.5, energy=5.0)
    assert gflops(1e9, r) == pytest.approx(2.0)
    assert gbytes_per_s(1e9, r) == pytest.approx(2.0)
    assert gflops_per_watt(1e9, r) == pytest.approx(0.2)


def test_speedup_and_gains():
    base = ExecResult(time=10.0, energy=100.0)
    fast = ExecResult(time=2.0, energy=10.0)
    assert speedup(base, fast) == 5.0
    assert efficiency_gain(base, fast) == 10.0
    assert edp_gain(base, fast) == pytest.approx(50.0)


def test_gain_guards():
    with pytest.raises(ValueError):
        speedup(ExecResult(1, 1), ZERO)
    with pytest.raises(ValueError):
        efficiency_gain(ExecResult(1, 1), ZERO)
    with pytest.raises(ValueError):
        edp_gain(ExecResult(1, 1), ZERO)


@given(st.floats(min_value=1e-9, max_value=1e3),
       st.floats(min_value=1e-9, max_value=1e3))
def test_plus_commutes(t, e):
    a = ExecResult(t, e)
    b = ExecResult(e, t)
    assert a.plus(b) == b.plus(a)
