"""Smoke test for the serving latency/goodput bench.

Runs ``benchmarks/bench_serving.py`` main over a tiny offered-load
sweep and asserts the JSON schema, the in-bench exactness gates
(single-tenant bit-identity and per-tenant ledger decomposition are
*asserted by the bench before it reports*), and the shape every honest
open-loop curve must have: goodput monotone non-decreasing in offered
load below saturation, and contention priced exactly when — and only
when — streams actually co-ran.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import bench_serving as serving_bench  # noqa: E402

REQUESTS = 10
LOADS = ("0.3", "0.6", "0.9", "1.2")

POINT_KEYS = {
    "span_s", "completed", "shed", "goodput_rps", "contention_time_s",
    "contention_energy_j", "contended_executes", "tenants",
    "load_fraction", "offered_rps", "p50_latency_s", "p99_latency_s",
}


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("serving") / "BENCH_serving.json"
    rc = serving_bench.main(["--requests", str(REQUESTS),
                             "--loads", *LOADS,
                             "--json", str(out)])
    assert rc == 0
    with out.open() as fh:
        return json.load(fh)


def test_schema_is_stable(payload):
    assert payload["schema"] == serving_bench.SCHEMA
    assert set(payload) == {
        "schema", "seed", "scale", "requests_per_tenant", "tenants",
        "max_concurrency", "capacity_rps", "single_tenant_identical",
        "decomposition_verified", "points"}
    assert len(payload["points"]) == len(LOADS)
    for point in payload["points"]:
        assert set(point) == POINT_KEYS
        assert set(point["tenants"]) == set(payload["tenants"])


def test_exactness_gates_passed(payload):
    # the bench asserts these before writing any number; the flags
    # record that the gates ran
    assert payload["single_tenant_identical"] is True
    assert payload["decomposition_verified"] is True


def test_goodput_is_monotone_below_saturation(payload):
    below = [p for p in sorted(payload["points"],
                               key=lambda p: p["load_fraction"])
             if p["load_fraction"] < 1.0]
    assert len(below) >= 2
    goodputs = [p["goodput_rps"] for p in below]
    assert goodputs == sorted(goodputs), (
        f"goodput not monotone below saturation: {goodputs}")
    # below saturation nothing is shed and everything completes
    for p in below:
        assert p["shed"] == 0
        assert p["completed"] == REQUESTS * len(payload["tenants"])


def test_latency_percentiles_are_sane(payload):
    for p in payload["points"]:
        assert 0.0 < p["p50_latency_s"] <= p["p99_latency_s"]
        for t in p["tenants"].values():
            assert 0.0 < t["p50_latency_s"] <= t["p99_latency_s"]


def test_contention_is_priced_iff_streams_shared(payload):
    for p in payload["points"]:
        shared = p["contended_executes"] > 0
        assert (p["contention_time_s"] > 0.0) == shared
        assert (p["contention_energy_j"] > 0.0) == shared
    # the saturated point really drives concurrent streams
    top = max(payload["points"], key=lambda p: p["load_fraction"])
    assert top["contended_executes"] > 0


def test_stdout_mode_round_trips(capsys):
    rc = serving_bench.main(["--requests", "6",
                             "--loads", "0.4", "0.8", "1.1",
                             "--json", "-"])
    assert rc == 0
    out = json.loads(capsys.readouterr().out)
    assert out["schema"] == serving_bench.SCHEMA
    assert len(out["points"]) == 3
