"""Smoke test for the fault-campaign bench entry point.

Runs ``benchmarks/bench_fault_campaign.py`` main with a tiny sweep and
asserts the JSON output keeps its schema and that availability
declines monotonically as tiles die.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import bench_fault_campaign as campaign  # noqa: E402

POINT_KEYS = {
    "availability", "degraded_fraction", "retries", "fallbacks",
    "rerouted_stripes", "ecc_corrections", "overhead",
    "reroute_share", "total_time", "total_energy",
}

SCRUB_POINT_KEYS = {
    "interval", "deposited", "demand_uncorrectable", "demand_corrected",
    "demand_silent", "retries", "scrub_passes", "scrub_corrected",
    "scrub_uncorrectable", "scrub_time", "scrub_energy", "scrub_share",
}

THERMAL_POINT_KEYS = {
    "margin_k", "interval", "envelope_k", "peak_vault_k", "peak_logic_k",
    "throttle_time", "throttle_energy", "throttle_events",
    "throttled_executes", "offline_events", "availability", "deposited",
    "latent_by_vault", "scrub_time", "total_time", "total_energy",
}

ARRHENIUS_POINT_KEYS = {
    "g_sink", "max_temp_k", "peak_vault_k", "deposited",
    "latent_by_vault",
}


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("campaign") / "campaign.json"
    rc = campaign.main(["--dead-tiles", "0", "1", "16",
                        "--failed-links", "0", "1",
                        "--scrub-intervals", "0", "4", "2",
                        "--executes", "3", "--json", str(out)])
    assert rc == 0
    with out.open() as fh:
        return json.load(fh)


def test_schema_is_stable(payload):
    assert payload["schema"] == campaign.SCHEMA
    assert set(payload) == {"schema", "executes", "seed", "rate_sweep",
                            "tile_kill", "link_failure", "link_flap",
                            "scrub_sweep"}
    for point in payload["rate_sweep"]:
        assert set(point) == POINT_KEYS | {"intensity", "detection"}
    for point in payload["tile_kill"]:
        assert set(point) == POINT_KEYS | {"dead_tiles",
                                           "serving_tiles"}
    for point in payload["link_failure"] + [payload["link_flap"]]:
        assert set(point) == POINT_KEYS | {"failed_links",
                                           "bisection_gbps",
                                           "link_flaps"}
    for point in payload["scrub_sweep"]:
        assert set(point) == SCRUB_POINT_KEYS


def test_availability_declines_monotonically(payload):
    availabilities = [p["availability"] for p in payload["tile_kill"]]
    assert availabilities == sorted(availabilities, reverse=True)
    # partial loss keeps the accelerated path; total loss ends it
    assert availabilities[0] == 1.0
    assert availabilities[1] == 1.0        # one dead tile: still served
    assert availabilities[-1] == 0.0       # all sixteen dead: host only


def test_link_points_report_bisection(payload):
    clean, degraded = payload["link_failure"]
    assert clean["failed_links"] == 0
    assert degraded["failed_links"] == 1
    assert degraded["bisection_gbps"] <= clean["bisection_gbps"]
    assert degraded["availability"] == 1.0
    flap = payload["link_flap"]
    assert flap["link_flaps"] == payload["executes"]
    assert flap["bisection_gbps"] == clean["bisection_gbps"]


def test_scrub_sweep_uncorrectables_monotone(payload):
    points = payload["scrub_sweep"]
    assert [p["interval"] for p in points] == [0, 4, 2]
    # the acceptance property, on the emitted JSON itself: a busier
    # patrol never increases the demand-path uncorrectable rate
    unc = [p["demand_uncorrectable"] for p in points]
    assert unc == sorted(unc, reverse=True)
    assert unc[0] > 0                        # unscrubbed doubles form
    # scrub cost is the price, and it only exists when patrol runs
    off, coarse, fine = points
    assert off["scrub_passes"] == 0 and off["scrub_time"] == 0.0
    assert 0 < coarse["scrub_time"] < fine["scrub_time"]
    # deposits come off a dedicated PRNG stream: identical across policy
    assert len({p["deposited"] for p in points}) == 1


@pytest.fixture(scope="module")
def thermal_payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("campaign") / "BENCH_thermal.json"
    rc = campaign.main(["--thermal-sweep", str(out),
                        "--thermal-margins", "4.0", "0.0",
                        "--thermal-intervals", "0", "2",
                        "--executes", "3"])
    assert rc == 0
    with out.open() as fh:
        return json.load(fh)


def test_thermal_schema_is_stable(thermal_payload):
    assert thermal_payload["schema"] == campaign.THERMAL_SCHEMA
    assert set(thermal_payload) == {"schema", "executes", "seed",
                                    "ambient_k", "envelope_sweep",
                                    "arrhenius_contrast"}
    points = thermal_payload["envelope_sweep"]
    assert len(points) == 4                  # 2 margins x 2 intervals
    for point in points:
        assert set(point) == THERMAL_POINT_KEYS
    contrast = thermal_payload["arrhenius_contrast"]
    assert set(contrast) == {"cool", "hot"}
    for point in contrast.values():
        assert set(point) == ARRHENIUS_POINT_KEYS


def test_thermal_throttle_time_monotone_in_margin(thermal_payload):
    # the acceptance property, on the emitted JSON itself: at a fixed
    # seed and workload, tightening the envelope margin never decreases
    # total throttle time — and it never costs the accelerated path
    for interval in (0, 2):
        wide, tight = [p for p in thermal_payload["envelope_sweep"]
                       if p["interval"] == interval]
        assert wide["margin_k"] > tight["margin_k"]
        assert wide["throttle_time"] <= tight["throttle_time"]
        assert wide["throttle_time"] == 0.0   # 4K margin never trips
        assert tight["throttle_time"] > 0.0   # 0K margin always does
        assert tight["throttled_executes"] > 0
        assert wide["availability"] == 1.0
        assert tight["availability"] == 1.0
    # the patrol points really scrubbed (and ledgered the walk)
    scrubbed = [p for p in thermal_payload["envelope_sweep"]
                if p["interval"] == 2]
    assert all(p["scrub_time"] > 0.0 for p in scrubbed)


def test_thermal_arrhenius_contrast_is_pointwise(thermal_payload):
    contrast = thermal_payload["arrhenius_contrast"]
    cool, hot = contrast["cool"], contrast["hot"]
    assert hot["max_temp_k"] > cool["max_temp_k"]
    # the hotter stack accepts a superset of the cooler stack's flips:
    # pointwise per vault, strict in total
    for vault, count in cool["latent_by_vault"].items():
        assert hot["latent_by_vault"].get(vault, 0) >= count
    assert hot["deposited"] >= cool["deposited"]


def test_stdout_mode_round_trips(capsys):
    rc = campaign.main(["--dead-tiles", "0", "--failed-links", "0",
                        "--scrub-intervals", "0",
                        "--executes", "1", "--json", "-"])
    assert rc == 0
    out = json.loads(capsys.readouterr().out)
    assert out["schema"] == campaign.SCHEMA
