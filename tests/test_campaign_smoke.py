"""Smoke test for the fault-campaign bench entry point.

Runs ``benchmarks/bench_fault_campaign.py`` main with a tiny sweep and
asserts the JSON output keeps its schema and that availability
declines monotonically as tiles die.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import bench_fault_campaign as campaign  # noqa: E402

POINT_KEYS = {
    "availability", "degraded_fraction", "retries", "fallbacks",
    "rerouted_stripes", "ecc_corrections", "overhead",
    "reroute_share", "total_time", "total_energy",
}

SCRUB_POINT_KEYS = {
    "interval", "deposited", "demand_uncorrectable", "demand_corrected",
    "demand_silent", "retries", "scrub_passes", "scrub_corrected",
    "scrub_uncorrectable", "scrub_time", "scrub_energy", "scrub_share",
}


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("campaign") / "campaign.json"
    rc = campaign.main(["--dead-tiles", "0", "1", "16",
                        "--failed-links", "0", "1",
                        "--scrub-intervals", "0", "4", "2",
                        "--executes", "3", "--json", str(out)])
    assert rc == 0
    with out.open() as fh:
        return json.load(fh)


def test_schema_is_stable(payload):
    assert payload["schema"] == campaign.SCHEMA
    assert set(payload) == {"schema", "executes", "seed", "rate_sweep",
                            "tile_kill", "link_failure", "link_flap",
                            "scrub_sweep"}
    for point in payload["rate_sweep"]:
        assert set(point) == POINT_KEYS | {"intensity", "detection"}
    for point in payload["tile_kill"]:
        assert set(point) == POINT_KEYS | {"dead_tiles",
                                           "serving_tiles"}
    for point in payload["link_failure"] + [payload["link_flap"]]:
        assert set(point) == POINT_KEYS | {"failed_links",
                                           "bisection_gbps",
                                           "link_flaps"}
    for point in payload["scrub_sweep"]:
        assert set(point) == SCRUB_POINT_KEYS


def test_availability_declines_monotonically(payload):
    availabilities = [p["availability"] for p in payload["tile_kill"]]
    assert availabilities == sorted(availabilities, reverse=True)
    # partial loss keeps the accelerated path; total loss ends it
    assert availabilities[0] == 1.0
    assert availabilities[1] == 1.0        # one dead tile: still served
    assert availabilities[-1] == 0.0       # all sixteen dead: host only


def test_link_points_report_bisection(payload):
    clean, degraded = payload["link_failure"]
    assert clean["failed_links"] == 0
    assert degraded["failed_links"] == 1
    assert degraded["bisection_gbps"] <= clean["bisection_gbps"]
    assert degraded["availability"] == 1.0
    flap = payload["link_flap"]
    assert flap["link_flaps"] == payload["executes"]
    assert flap["bisection_gbps"] == clean["bisection_gbps"]


def test_scrub_sweep_uncorrectables_monotone(payload):
    points = payload["scrub_sweep"]
    assert [p["interval"] for p in points] == [0, 4, 2]
    # the acceptance property, on the emitted JSON itself: a busier
    # patrol never increases the demand-path uncorrectable rate
    unc = [p["demand_uncorrectable"] for p in points]
    assert unc == sorted(unc, reverse=True)
    assert unc[0] > 0                        # unscrubbed doubles form
    # scrub cost is the price, and it only exists when patrol runs
    off, coarse, fine = points
    assert off["scrub_passes"] == 0 and off["scrub_time"] == 0.0
    assert 0 < coarse["scrub_time"] < fine["scrub_time"]
    # deposits come off a dedicated PRNG stream: identical across policy
    assert len({p["deposited"] for p in points}) == 1


def test_stdout_mode_round_trips(capsys):
    rc = campaign.main(["--dead-tiles", "0", "--failed-links", "0",
                        "--scrub-intervals", "0",
                        "--executes", "1", "--json", "-"])
    assert rc == 0
    out = json.loads(capsys.readouterr().out)
    assert out["schema"] == campaign.SCHEMA
