"""Evaluation harness: runner shape properties and figure generators.

These are the repository's headline assertions — who wins, by roughly
what factor — checked at reduced scale so the suite stays fast. The
full-scale numbers live in the benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.eval.figures import (fig1, fig11, fig12, render, table1,
                                table2, table3, table4)
from repro.eval.runner import (IndividualOpRunner, efficiency_vs_haswell,
                               geometric_mean, speedups_vs_haswell)
from repro.eval.workloads import OP_ORDER, TABLE2


@pytest.fixture(scope="module")
def runs():
    return IndividualOpRunner(scale=0.1).run_all()


class TestRunner:
    def test_all_ops_all_platforms(self, runs):
        assert set(runs) == set(OP_ORDER)
        for op in OP_ORDER:
            assert set(runs[op]) == {"Haswell", "XeonPhi", "PSAS",
                                     "MSAS", "MEALib"}

    def test_mealib_fastest_everywhere(self, runs):
        """Fig 9's headline: MEALib wins on every operation."""
        speed = speedups_vs_haswell(runs)
        for op in OP_ORDER:
            others = [v for p, v in speed[op].items() if p != "MEALib"]
            assert speed[op]["MEALib"] > max(others)

    def test_bandwidth_ordering(self, runs):
        """More memory bandwidth, more speed: PSAS < MSAS < MEALib."""
        speed = speedups_vs_haswell(runs)
        for op in OP_ORDER:
            assert speed[op]["PSAS"] < speed[op]["MSAS"] \
                < speed[op]["MEALib"]

    def test_reshp_largest_spmv_smallest(self, runs):
        speed = speedups_vs_haswell(runs)
        mealib = {op: speed[op]["MEALib"] for op in OP_ORDER}
        assert max(mealib, key=mealib.get) == "RESHP"
        assert min(mealib, key=mealib.get) == "SPMV"

    def test_efficiency_gains_exceed_speedups(self, runs):
        """Fig 10 vs Fig 9: energy gains are larger (MEALib draws far
        less power than the 48W-class Haswell package)."""
        speed = speedups_vs_haswell(runs)
        eff = efficiency_vs_haswell(runs)
        larger = sum(eff[op]["MEALib"] > speed[op]["MEALib"]
                     for op in OP_ORDER)
        assert larger >= 5

    def test_phi_less_efficient_than_haswell(self, runs):
        eff = efficiency_vs_haswell(runs)
        for op in OP_ORDER:
            assert eff[op]["XeonPhi"] < 1.0

    def test_mealib_power_in_band(self, runs):
        for op in OP_ORDER:
            assert 5.0 < runs[op]["MEALib"].result.power < 40.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0


class TestWorkloads:
    def test_table2_covers_all_ops(self):
        assert set(TABLE2) == set(OP_ORDER)

    def test_scaling_shrinks(self):
        big = TABLE2["AXPY"].params(1.0)
        small = TABLE2["AXPY"].params(0.01)
        assert small.n < big.n

    def test_paper_scale_sizes(self):
        assert TABLE2["AXPY"].params(1.0).n == 256 << 20
        gemv = TABLE2["GEMV"].params(1.0)
        assert gemv.m == gemv.n == 16384
        fft = TABLE2["FFT"].params(1.0)
        assert fft.n == 8192 and fft.batch == 8192


class TestFigures:
    def test_fig1_report(self):
        report = fig1()
        assert len(report["rows"]) == 9
        assert set(report["suite_maxima"]) == {"R", "PERFECT", "PARSEC"}

    def test_static_tables(self):
        assert len(table1()["rows"]) == 7
        assert len(table2()["rows"]) == 7
        assert len(table3()["rows"]) == 5
        assert len(table4()["rows"]) == 5

    def test_fig11_fast_mode(self):
        report = fig11(fast=True)
        lo, hi = report["fft_eff_range_gflops_per_w"]
        assert hi > 1.5 * lo              # a real spread, as in Fig 11a
        slo, shi = report["spmv_eff_range_gflops_per_w"]
        assert shi < 3.0                  # SPMV never gets efficient

    def test_fig12_gains_decrease_with_size(self):
        report = fig12(sides=(256, 1024, 4096))
        chain = [row["gain"] for row in report["chaining"]]
        loop = [row["gain"] for row in report["looping"]]
        assert chain[0] > chain[-1]
        assert loop[0] > loop[-1]
        assert chain[0] > 1.5             # paper: 2.5x at 256
        assert loop[0] > 5.0              # paper: 9.5x at 256

    def test_render_produces_text(self):
        text = render(table3())
        assert "MEALib" in text
        assert "bandwidth" in text
