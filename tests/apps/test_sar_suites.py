"""SAR application and Fig 1 suite proxies."""

import numpy as np
import pytest

from repro.apps import (BENCHMARKS, SarConfig, library_speedups,
                        run_sar_baseline, run_sar_mealib, suite_maxima)
from repro.apps.sar import sar_source
from repro.compiler import translate


class TestSar:
    def test_side_must_be_pow2(self):
        with pytest.raises(ValueError):
            SarConfig(side=100)

    def test_chains_to_one_descriptor(self):
        translated = translate(sar_source(SarConfig(side=64)))
        assert translated.descriptor_count() == 1

    def test_numerics_agree(self):
        cfg = SarConfig(side=64)
        baseline = run_sar_baseline(cfg)
        mealib = run_sar_mealib(cfg)
        for name in ("interp", "image"):
            np.testing.assert_allclose(baseline.buffers[name],
                                       mealib.buffers[name], rtol=2e-2,
                                       atol=2e-2, err_msg=name)

    def test_image_is_fft_of_interp(self):
        cfg = SarConfig(side=32)
        baseline = run_sar_baseline(cfg)
        interp = baseline.buffers["interp"].reshape(32, 32)
        ref = np.fft.fft(interp, axis=1).reshape(-1)
        np.testing.assert_allclose(baseline.buffers["image"], ref,
                                   rtol=1e-2, atol=1e-2)


class TestSuites:
    def test_all_suites_present(self):
        assert {b.suite for b in BENCHMARKS} == {"R", "PERFECT",
                                                 "PARSEC"}

    def test_library_always_wins(self):
        for row in library_speedups():
            assert row.speedup_multi >= 1.0
            assert row.speedup_single >= 1.0

    def test_multi_thread_at_least_single(self):
        for row in library_speedups():
            assert row.speedup_multi >= row.speedup_single - 1e-9

    def test_suite_maxima_in_paper_band(self):
        """Fig 1 callouts: R 27x, PERFECT 42x, PARSEC 24x."""
        maxima = suite_maxima()
        assert 20 < maxima["R"] < 35
        assert 30 < maxima["PERFECT"] < 55
        assert 15 < maxima["PARSEC"] < 35
