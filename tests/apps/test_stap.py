"""STAP application: compilation structure + baseline/MEALib agreement."""

import numpy as np
import pytest

from repro.apps import (PAPER_PRESETS, PRESETS, run_stap_baseline,
                        run_stap_mealib, stap_inputs, stap_source)
from repro.compiler import translate
from repro.core import MealibSystem


@pytest.fixture(scope="module")
def small_runs():
    cfg = PRESETS["small"]
    system = MealibSystem()
    baseline = run_stap_baseline(cfg)
    mealib = run_stap_mealib(cfg, system=system)
    return cfg, baseline, mealib, system


def test_three_descriptors(small_runs):
    """The paper's compaction claim: STAP lowers to 3 descriptors."""
    _, _, mealib, _ = small_runs
    assert mealib.descriptors == 3


def test_library_call_count(small_runs):
    cfg, _, mealib, _ = small_runs
    assert mealib.library_calls == cfg.library_calls


def test_numerics_agree(small_runs):
    _, baseline, mealib, _ = small_runs
    for name in ("pulse_major", "doppler", "cov", "wts", "prods",
                 "det_out"):
        np.testing.assert_allclose(baseline.buffers[name],
                                   mealib.buffers[name], rtol=2e-2,
                                   atol=2e-2, err_msg=name)


def test_corner_turn_is_real_transpose(small_runs):
    cfg, baseline, _, _ = small_runs
    cube = stap_inputs(cfg)["datacube"]
    ref = cube.reshape(cfg.n_pulse, cfg.n_cr).T.reshape(-1)
    np.testing.assert_allclose(baseline.buffers["pulse_major"], ref,
                               rtol=1e-5)


def test_doppler_is_fft_along_pulses(small_runs):
    cfg, baseline, _, _ = small_runs
    pm = baseline.buffers["pulse_major"].reshape(cfg.n_cr, cfg.n_pulse)
    ref = np.fft.fft(pm, axis=1).reshape(-1)
    np.testing.assert_allclose(baseline.buffers["doppler"], ref,
                               rtol=1e-2, atol=1e-2)


def test_mealib_wins_where_it_should(small_runs):
    """At functional (small) scale invocation overhead can dominate,
    but the breakdown must at least show accelerator work happening."""
    _, _, _, system = small_runs
    host, accel, invocation = system.breakdown()
    assert accel.time > 0
    assert invocation.time > 0
    assert host.time > 0


def test_ledger_names_all_stap_accelerators(small_runs):
    _, _, _, system = small_runs
    by_accel = system.ledger.by_label("accelerator")
    assert {"RESHP", "FFT", "DOT", "AXPY"} <= set(by_accel)


def test_presets_scale_monotonically():
    calls = [PRESETS[p].dot_calls for p in ("small", "medium", "large")]
    assert calls == sorted(calls)
    paper_calls = [PAPER_PRESETS[p].dot_calls
                   for p in ("small", "medium", "large")]
    assert paper_calls == sorted(paper_calls)


def test_paper_large_hits_16m_calls():
    assert PAPER_PRESETS["large"].dot_calls == 1 << 24


def test_source_parses_for_all_presets():
    for preset in PRESETS.values():
        translated = translate(stap_source(preset))
        assert translated.descriptor_count() == 3
