"""Partial NoC degradation through the full runtime stack.

Covers the per-vault fallback semantics (dead tiles reroute stripes,
host fallback only with zero serving tiles), link failure and flap
injection, the reroute ledger category, and the warm-retry invocation
cost.
"""

import numpy as np
import pytest

from repro.accel import AxpyParams
from repro.core import MealibSystem, ParamStore
from repro.faults import FaultInjector

N = 1024
EXPECTED = np.full(N, 4.0, np.float32)          # 3*1 + 1


def make_system(faults=None, policy=None):
    return MealibSystem(stack_bytes=128 << 20, faults=faults,
                        policy=policy)


def make_axpy_plan(system, n=N, alpha=3.0):
    xb, x = system.space.alloc_array((n,), np.float32)
    yb, y = system.space.alloc_array((n,), np.float32)
    x[:] = 1.0
    y[:] = 1.0
    store = ParamStore()
    store.add("a.para", AxpyParams(n=n, alpha=alpha, x_pa=xb.pa,
                                   y_pa=yb.pa).pack())
    plan = system.runtime.acc_plan("PASS { COMP AXPY a.para }", store,
                                   in_size=n * 8, out_size=n * 4)
    return plan, x, y


class TestPerVaultFallback:
    def test_degraded_run_costs_more_than_clean(self):
        # zero-rate injector on both sides so the ECC-protected device
        # timing matches and only the degradation differs
        clean = make_system(faults=FaultInjector(seed=0))
        r_clean = clean.runtime.acc_execute(make_axpy_plan(clean)[0],
                                            functional=False)
        degraded = make_system(faults=FaultInjector(seed=0))
        degraded.layer.mark_tile_failed(5)
        r_degr = degraded.runtime.acc_execute(
            make_axpy_plan(degraded)[0], functional=False)
        assert r_degr.time > r_clean.time
        reroute = degraded.ledger.total("reroute")
        assert reroute.time > 0
        # the ledger decomposes exactly: degraded accelerator share
        # equals the clean one, the excess lands in reroute
        assert degraded.ledger.total("accelerator").time == (
            pytest.approx(clean.ledger.total("accelerator").time))
        assert r_degr.time == pytest.approx(
            r_clean.time + reroute.time)

    def test_more_dead_tiles_cost_more(self):
        times = []
        for dead in (1, 4, 8):
            system = make_system(faults=FaultInjector(seed=0))
            for vault in range(dead):
                system.layer.mark_tile_failed(vault)
            r = system.runtime.acc_execute(make_axpy_plan(system)[0],
                                           functional=False)
            assert system.runtime.counters.fallbacks == 0
            assert system.runtime.counters.rerouted_stripes == dead
            times.append(r.time)
        assert times == sorted(times)
        assert times[0] < times[-1]

    def test_isolated_healthy_tile_is_not_serving(self):
        system = make_system(faults=FaultInjector(seed=0))
        # cut tile 0 (healthy!) off the mesh entirely
        system.layer.noc.fail_link(0, 1)
        system.layer.noc.fail_link(0, 4)
        serving = system.layer.serving_tiles()
        assert 0 not in serving
        assert len(serving) == 15
        # vault 0's stripe cannot reach any serving tile -> host
        assert system.layer.reroute_map() == {0: None}
        plan, _, y = make_axpy_plan(system)
        system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, EXPECTED)
        assert system.runtime.counters.fallbacks == 1

    def test_reroutes_land_on_nearest_serving_tile(self):
        system = make_system()
        system.layer.mark_tile_failed(5)
        assert system.layer.reroute_map() == {5: 1}   # hop count 1
        system.layer.mark_tile_failed(1)
        reroutes = system.layer.reroute_map()
        assert set(reroutes) == {1, 5}
        assert all(s not in (1, 5) for s in reroutes.values())


class TestLinkFaultInjection:
    def test_injected_link_failure_is_sticky_and_detours(self):
        system = make_system(
            faults=FaultInjector(seed=3, link_fail_rate=1.0))
        plan, _, y = make_axpy_plan(system)
        system.runtime.acc_execute(plan)
        system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, np.full(N, 7.0, np.float32))
        assert len(system.layer.noc.failed_links) == 2
        assert system.faults.stats.link_failures == 2
        # all tiles alive and connected: accelerated, not even degraded
        assert system.runtime.counters.fallbacks == 0
        assert system.runtime.counters.availability == 1.0

    def test_link_flap_is_transient(self):
        system = make_system(
            faults=FaultInjector(seed=3, link_flap_rate=1.0))
        plan, _, y = make_axpy_plan(system)
        system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, EXPECTED)
        assert system.faults.stats.link_flaps == 1
        # the flapped link is restored once the execute returns
        assert not system.layer.noc.degraded
        assert system.layer.noc.bisection_bandwidth() == (
            4 * system.layer.noc.link_bw)

    def test_link_failures_keep_availability_high(self):
        # acceptance: 1 failed link beats PR 1's one-dead-tile
        # availability (which was 0.0 under all-or-nothing fallback)
        system = make_system(faults=FaultInjector(seed=0))
        system.layer.noc.fail_link(5, 6)
        plan, _, y = make_axpy_plan(system)
        for _ in range(5):
            system.runtime.acc_execute(plan)
        assert system.runtime.counters.availability == 1.0
        assert system.runtime.counters.availability > 0.0  # PR 1 value
        np.testing.assert_array_equal(y, np.full(N, 16.0, np.float32))

    def test_determinism_with_link_faults(self):
        def campaign(seed):
            system = make_system(
                faults=FaultInjector(seed=seed, link_fail_rate=0.5,
                                     link_flap_rate=0.3,
                                     tile_fail_rate=0.2))
            plan, _, y = make_axpy_plan(system)
            total = None
            for _ in range(8):
                r = system.runtime.acc_execute(plan)
                total = r if total is None else total.plus(r)
            c = system.runtime.counters
            s = system.faults.stats
            return (total.time, total.energy, c.fallbacks,
                    c.degraded_executes, c.rerouted_stripes,
                    s.link_failures, s.link_flaps, s.tile_failures,
                    tuple(sorted(system.layer.noc.failed_links)),
                    y.tobytes())

        assert campaign(42) == campaign(42)
        assert campaign(42) != campaign(43)


class TestFaultFreeParity:
    def test_no_reroute_entries_without_degradation(self):
        system = make_system(faults=FaultInjector(seed=0))
        plan, _, _ = make_axpy_plan(system)
        system.runtime.acc_execute(plan)
        assert system.ledger.total("reroute").time == 0.0
        assert system.ledger.total("reroute").energy == 0.0
        assert system.runtime.counters.degraded_executes == 0
        fault, retry, reroute, fallback = system.resilience_breakdown()
        for cost in (retry, reroute, fallback):
            assert cost.time == 0.0 and cost.energy == 0.0


class TestWarmRetry:
    def test_warm_retry_cheaper_than_cold_delivery(self):
        system = make_system(
            faults=FaultInjector(seed=0, descriptor_corruption_rate=1.0))
        plan, _, y = make_axpy_plan(system)
        system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, EXPECTED)   # fallback output
        inv = system.runtime.invocation
        size = plan.descriptor.size
        warm = inv.warm_retry_cost(size)
        cold = inv.descriptor_cost(size)
        assert warm.time < cold.time
        assert warm.energy < cold.energy
        # the ledgered retry cost is backoff + warm redelivery +
        # doorbell: strictly below the cold-redelivery equivalent
        attempts = system.ledger.by_label("retry")
        assert attempts            # retries really happened
        for attempt, entry in attempts.items():
            n = int(attempt.split("-")[1])
            backoff = system.runtime.policy.backoff(n)
            cold_retry = (backoff + cold.time
                          + inv.doorbell_cost().time)
            assert entry.time == pytest.approx(
                backoff + warm.time + inv.doorbell_cost().time)
            assert entry.time < cold_retry
