"""In-datapath SECDED battery: property, differential and seeded e2e.

Three layers of evidence that the accelerators' direct-TSV reads are
really adjudicated:

* a *property* test pins :meth:`SecdedModel.classify` against a
  brute-force bit-counting oracle over hundreds of seeded codewords;
* a *differential* test proves the zero-fault ECC path is priced by
  exactly (and only) the explicitly-modelled ``stream_overhead`` — an
  idle injector adds nothing of its own on top of the device-side ECC
  attachment, functionally or in the model — against the golden
  baselines of ``tests/golden_baselines.json``;
* a *seeded end-to-end* test walks the full outcome chain on real
  buffers: planted single → corrected invisibly (``fault`` ledger
  charged), planted double → :class:`UncorrectableEccError` + retry
  recovery, planted triple → silent corruption observable in the
  functional result.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.accel import (AxpyParams, DotParams, FftParams, GemvParams,
                         ResmpParams, SpmvParams)
from repro.core import MealibSystem, ParamStore
from repro.eval.workloads import TABLE2
from repro.faults import (OUTCOME_CLEAN, OUTCOME_CORRECTED,
                          OUTCOME_DETECTED, OUTCOME_SILENT,
                          FaultInjector, SecdedModel, popcount)
from repro.faults.datapath import merge_ranges

GOLDEN_PATH = Path(__file__).parent.parent / "golden_baselines.json"

OPS = ("DOT", "AXPY", "GEMV", "SPMV", "FFT", "RESMP")
SCALES = (0.004, 0.016, 0.064)


def make_system(faults=None, **kwargs):
    return MealibSystem(stack_bytes=64 << 20, faults=faults, **kwargs)


# -- property: classify against a brute-force oracle --------------------------


def test_classify_matches_brute_force_over_random_codewords():
    rng = np.random.default_rng(1234)
    model = SecdedModel()
    trials = 0
    seen = set()
    while trials < 600:
        k = int(rng.integers(0, 9))             # 0..8 flipped cells
        mask = 0
        for bit in rng.choice(64, size=k, replace=False):
            mask |= 1 << int(bit)
        # brute-force adjudication: count the set bits one by one and
        # apply the SECDED truth table directly
        brute = sum((mask >> i) & 1 for i in range(64))
        if brute == 0:
            expected = OUTCOME_CLEAN
        elif brute == 1:
            expected = OUTCOME_CORRECTED
        elif brute == 2:
            expected = OUTCOME_DETECTED
        else:
            expected = OUTCOME_SILENT
        assert popcount(mask) == brute
        assert model.classify(popcount(mask)) == expected
        seen.add(expected)
        trials += 1
    assert trials >= 500
    assert seen == {OUTCOME_CLEAN, OUTCOME_CORRECTED, OUTCOME_DETECTED,
                    OUTCOME_SILENT}


def test_merge_ranges_coalesces_and_drops_empty():
    assert merge_ranges([]) == []
    assert merge_ranges([(0, 0), (8, 0)]) == []
    assert merge_ranges([(16, 8), (0, 8)]) == [(0, 8), (16, 8)]
    assert merge_ranges([(0, 8), (8, 8), (4, 8)]) == [(0, 16)]
    assert merge_ranges([(0, 32), (8, 8)]) == [(0, 32)]


# -- differential: zero faults + ECC == golden + stream_overhead only ---------


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _model_op(system, op, scale):
    params = TABLE2[op].params(scale)
    core = system.layer.accelerator(op)
    streams = core.streams(params)
    store = ParamStore()
    store.add("w.para", params.pack())
    plan = system.runtime.acc_plan(
        f"PASS {{ COMP {op} w.para }}", store,
        in_size=sum(s.total_bytes for s in streams if not s.is_write),
        out_size=sum(s.total_bytes for s in streams if s.is_write))
    return system.runtime.acc_execute(plan, functional=False)


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("op", OPS)
def test_idle_injector_prices_exactly_the_ecc_attachment(golden, op,
                                                         scale):
    # a zero-rate injector with ECC enabled must cost *exactly* what a
    # bare system with the SECDED model attached to the device costs:
    # the injector, guard and scrubber machinery add nothing of their own
    injected = _model_op(make_system(FaultInjector(seed=0)), op, scale)
    attached = make_system()
    attached.device.ecc = SecdedModel()
    reference = _model_op(attached, op, scale)
    assert injected.time == reference.time
    assert injected.energy == reference.energy
    # and the delta to the unprotected golden entry is the explicitly
    # priced decode-pipeline overhead: never negative, never free
    recorded = golden["workloads"][f"{op}@{scale}"]
    assert injected.time >= recorded["time"]
    assert injected.energy > recorded["energy"]


@pytest.mark.parametrize("op", OPS)
def test_idle_injector_leaves_resilience_ledger_empty(op):
    system = make_system(FaultInjector(seed=0))
    _model_op(system, op, SCALES[0])
    for category in ("fault", "retry", "reroute", "fallback", "scrub"):
        total = system.ledger.total(category)
        assert total.time == 0.0 and total.energy == 0.0, (
            f"idle injector leaked into {category!r} on {op}")
    assert system.datapath.stats.guards == 0
    assert system.runtime.counters.scrub_passes == 0


# -- functional differential on real buffers ----------------------------------


def _build_functional(system, op):
    """Allocate real buffers and lower one functional instance of op.

    Returns ``(plan, output array)``.
    """
    store = ParamStore()
    if op == "AXPY":
        n = 2048
        xb, x = system.space.alloc_array((n,), np.float32)
        yb, y = system.space.alloc_array((n,), np.float32)
        x[:] = np.linspace(0, 1, n, dtype=np.float32)
        y[:] = 1.0
        params = AxpyParams(n=n, alpha=2.0, x_pa=xb.pa, y_pa=yb.pa)
        out = y
    elif op == "DOT":
        n = 2048
        xb, x = system.space.alloc_array((n,), np.float32)
        yb, y = system.space.alloc_array((n,), np.float32)
        ob, o = system.space.alloc_array((1,), np.float32)
        x[:] = np.linspace(0, 1, n, dtype=np.float32)
        y[:] = 2.0
        params = DotParams(n=n, x_pa=xb.pa, y_pa=yb.pa, out_pa=ob.pa)
        out = o
    elif op == "GEMV":
        m = n = 64
        ab, a = system.space.alloc_array((m, n), np.float32)
        xb, x = system.space.alloc_array((n,), np.float32)
        yb, y = system.space.alloc_array((m,), np.float32)
        a[:] = np.arange(m * n, dtype=np.float32).reshape(m, n) / (m * n)
        x[:] = 1.0
        y[:] = 0.5
        params = GemvParams(m=m, n=n, alpha=1.0, beta=1.0, a_pa=ab.pa,
                            x_pa=xb.pa, y_pa=yb.pa)
        out = y
    elif op == "SPMV":
        rows = 256
        nnz = rows * 3
        pb, indptr = system.space.alloc_array((rows + 1,), np.int64)
        ib, indices = system.space.alloc_array((nnz,), np.int64)
        db, data = system.space.alloc_array((nnz,), np.float32)
        xb, x = system.space.alloc_array((rows,), np.float32)
        yb, y = system.space.alloc_array((rows,), np.float32)
        indptr[:] = np.arange(rows + 1, dtype=np.int64) * 3
        indices[:] = np.arange(nnz, dtype=np.int64) % rows
        data[:] = 1.0
        x[:] = np.linspace(1, 2, rows, dtype=np.float32)
        y[:] = 0.0
        params = SpmvParams(rows=rows, cols=rows, nnz=nnz,
                            indptr_pa=pb.pa, indices_pa=ib.pa,
                            data_pa=db.pa, x_pa=xb.pa, y_pa=yb.pa,
                            locality_bytes=rows * 4)
        out = y
    elif op == "FFT":
        n, batch = 256, 4
        sb, src = system.space.alloc_array((batch, n), np.complex64)
        db, dst = system.space.alloc_array((batch, n), np.complex64)
        ramp = np.arange(batch * n, dtype=np.float32).reshape(batch, n)
        src[:] = (ramp + 1j * ramp[::-1]).astype(np.complex64) / n
        params = FftParams(n=n, batch=batch, src_pa=sb.pa, dst_pa=db.pa)
        out = dst
    elif op == "RESMP":
        blocks, n = 4, 128
        ib, series = system.space.alloc_array((blocks, n), np.complex64)
        stb, sites = system.space.alloc_array((blocks, n), np.float32)
        ob, o = system.space.alloc_array((blocks, n), np.complex64)
        kb, knots = system.space.alloc_array((n,), np.float32)
        knots[:] = np.arange(n, dtype=np.float32)
        series[:] = np.exp(
            1j * np.linspace(0, 4, blocks * n)).reshape(
                blocks, n).astype(np.complex64)
        sites[:] = np.linspace(0, n - 1.5, n, dtype=np.float32)
        params = ResmpParams(blocks=blocks, n_in=n, n_out=n, in_pa=ib.pa,
                             sites_pa=stb.pa, out_pa=ob.pa, knots_pa=kb.pa)
        out = o
    else:
        raise ValueError(op)
    store.add("w.para", params.pack())
    core = system.layer.accelerator(op)
    streams = core.streams(params)
    plan = system.runtime.acc_plan(
        f"PASS {{ COMP {op} w.para }}", store,
        in_size=sum(s.total_bytes for s in streams if not s.is_write),
        out_size=sum(s.total_bytes for s in streams if s.is_write))
    return plan, out


@pytest.mark.parametrize("op", OPS)
def test_functional_results_bit_identical_under_idle_ecc(op):
    plain = make_system()
    plan_p, out_p = _build_functional(plain, op)
    plain.runtime.acc_execute(plan_p)

    guarded = make_system(FaultInjector(seed=0))
    plan_g, out_g = _build_functional(guarded, op)
    guarded.runtime.acc_execute(plan_g)

    assert out_p.tobytes() == out_g.tobytes(), (
        f"{op}: idle datapath ECC perturbed the functional result")


# -- seeded end-to-end: the full outcome chain --------------------------------


def _params_of(system, plan, params_type):
    """Recover the lowered COMP parameters from the descriptor image."""
    plans = system.config_unit.plans_from_image(plan.descriptor.data,
                                                plan.descriptor.base_pa)
    (comp,) = plans[0].comps
    assert isinstance(comp.params, params_type)
    return comp.params


def _expected_axpy(n):
    return (2.0 * np.linspace(0, 1, n, dtype=np.float32)
            + 1.0).astype(np.float32)


def test_planted_single_bit_flip_is_corrected():
    system = make_system(FaultInjector(seed=11))
    plan, out = _build_functional(system, "AXPY")
    params = _params_of(system, plan, AxpyParams)
    system.faults.plant_latent_flips(params.x_pa + 128, [5])
    system.runtime.acc_execute(plan)
    np.testing.assert_array_equal(out, _expected_axpy(out.size))
    assert system.runtime.counters.ecc_corrections == 1
    assert system.runtime.counters.retries == 0
    fault = system.ledger.total("fault")
    assert fault.time > 0 and fault.energy > 0
    labels = system.ledger.by_label("fault")
    assert "ecc-correction" in labels
    assert "ecc-stream" in labels
    assert system.faults.latent_word_count == 0     # drained by the read


def test_planted_double_bit_word_detected_and_retried():
    system = make_system(FaultInjector(seed=11))
    plan, out = _build_functional(system, "AXPY")
    params = _params_of(system, plan, AxpyParams)
    system.faults.plant_latent_flips(params.x_pa + 256, [3, 47])
    system.runtime.acc_execute(plan)
    # the demand-repair + retry chain recovered a correct result
    np.testing.assert_array_equal(out, _expected_axpy(out.size))
    assert system.faults.stats.words_uncorrectable == 1
    assert system.runtime.counters.retries == 1
    assert system.runtime.counters.fallbacks == 0
    assert "ecc-uncorrectable" in system.ledger.by_label("fault")
    assert system.ledger.total("retry").time > 0


def test_planted_triple_bit_word_corrupts_silently():
    system = make_system(FaultInjector(seed=11))
    plan, out = _build_functional(system, "AXPY")
    params = _params_of(system, plan, AxpyParams)
    system.faults.plant_latent_flips(params.x_pa + 512, [1, 22, 63])
    system.runtime.acc_execute(plan)
    expected = _expected_axpy(out.size)
    # SECDED cannot see a triple: the result is detectably wrong and
    # nothing raised, retried or fell back
    assert not np.array_equal(out, expected)
    assert system.faults.stats.words_silent == 1
    assert system.runtime.counters.retries == 0
    assert system.runtime.counters.fallbacks == 0
    # only the perturbed codeword's elements diverge
    wrong = np.flatnonzero(out != expected)
    assert 1 <= wrong.size <= 2


def test_ecc_disabled_makes_every_flip_silent():
    system = make_system(FaultInjector(seed=11, ecc_enabled=False))
    plan, out = _build_functional(system, "AXPY")
    params = _params_of(system, plan, AxpyParams)
    system.faults.plant_latent_flips(params.x_pa + 128, [5])
    system.runtime.acc_execute(plan)
    assert not np.array_equal(out, _expected_axpy(out.size))
    assert system.faults.stats.words_silent == 1
    assert system.runtime.counters.ecc_corrections == 0


def test_write_reencode_drops_latent_flips_without_cost():
    # FFT's dst is pure output: a double planted under it must be
    # re-encoded away on the write leg, never detected, never charged
    system = make_system(FaultInjector(seed=11))
    plan, _ = _build_functional(system, "FFT")
    params = _params_of(system, plan, FftParams)
    word = system.faults.plant_latent_flips(params.dst_pa + 64, [7, 9])
    system.runtime.acc_execute(plan)
    assert system.faults.latent_word_count == 0
    assert system.faults.stats.words_rewritten == 1
    assert system.faults.stats.words_uncorrectable == 0
    assert system.runtime.counters.retries == 0
    assert word not in dict(system.faults.all_latent_words())
