"""Differential test for the batched SECDED guard classification.

The vectorized :meth:`DatapathEcc.guard` (popcount over a numpy mask
array, boolean-predicate adjudication) is pinned against a scalar
reference guard reimplemented here from the per-word algorithm: same
exception (and arguments), same injector/datapath counters, same
surviving latent map, same queued correction events, same pending
stream overhead, and byte-identical backing memory — ECC on and off,
over randomized flip populations.
"""

import numpy as np
import pytest

from repro.core import MealibSystem
from repro.faults import FaultInjector, UncorrectableEccError, popcount
from repro.faults.datapath import WORD_BYTES, merge_ranges


def reference_guard(dp, reads, writes=()):
    """The scalar per-word adjudication loop (the pre-vectorization
    algorithm, kept here as the oracle)."""
    inj = dp.injector
    if inj.latent_word_count == 0:
        return
    dp.stats.guards += 1
    ecc_on = inj.config.ecc_enabled
    detected = []
    dirty = inj.latent_words(merge_ranges(reads))
    for word, mask in dirty:
        flips = popcount(mask)
        if ecc_on and flips == 1:
            inj.stats.words_corrected += 1
            dp.stats.words_corrected += 1
            inj.queue_correction()
        elif ecc_on and flips == 2:
            inj.stats.words_uncorrectable += 1
            dp.stats.words_repaired += 1
            inj.queue_correction()
            detected.append(word)
        else:
            inj.stats.words_silent += 1
            dp.stats.words_silent += 1
            dp.phys.apply_flips(word, mask)
        inj.clear_latent_word(word)
    if dirty:
        dp.stats.words_checked += len(dirty)
        dp._pending_stream = dp._pending_stream.plus(
            dp.ecc.stream_overhead(len(dirty) * WORD_BYTES))
    for word, _ in inj.latent_words(merge_ranges(writes)):
        inj.clear_latent_word(word)
        inj.stats.words_rewritten += 1
        dp.stats.words_rewritten += 1
    if detected:
        raise UncorrectableEccError(detected[0], len(detected))


def make_pair(ecc_enabled=True):
    """Two identically-configured systems with one real buffer each."""
    out = []
    for _ in range(2):
        system = MealibSystem(
            stack_bytes=64 << 20,
            faults=FaultInjector(seed=0, ecc_enabled=ecc_enabled))
        block, arr = system.space.alloc_array((1 << 14,), np.uint8)
        arr[:] = np.arange(arr.size, dtype=np.uint8)
        out.append((system, block.pa, arr.size))
    return out


def plant(rng, system, base, size, n_words):
    """Plant identical random flip populations (1..6 bits per word)."""
    words = rng.choice(size // WORD_BYTES, size=n_words, replace=False)
    for w in sorted(int(x) for x in words):
        k = int(rng.integers(1, 7))
        bits = [int(b) for b in rng.choice(64, size=k, replace=False)]
        system.faults.plant_latent_flips(base + w * WORD_BYTES, bits)


def run_both(got_sys, ref_sys, reads, writes=()):
    """Run both guards, return (exception-or-None, exception-or-None)."""
    exceptions = []
    for system, runner in ((got_sys, None), (ref_sys, reference_guard)):
        try:
            if runner is None:
                system.datapath.guard(reads, writes)
            else:
                runner(system.datapath, reads, writes)
            exceptions.append(None)
        except UncorrectableEccError as exc:
            exceptions.append(exc)
    return exceptions


def assert_states_equal(got, ref):
    (g_sys, g_base, g_size), (r_sys, r_base, r_size) = got, ref
    assert g_sys.faults.stats == r_sys.faults.stats
    assert g_sys.datapath.stats == r_sys.datapath.stats
    assert g_sys.faults.all_latent_words() == r_sys.faults.all_latent_words()
    assert (g_sys.faults._pending_corrections
            == r_sys.faults._pending_corrections)
    g_cost = g_sys.datapath.drain_stream_overhead()
    r_cost = r_sys.datapath.drain_stream_overhead()
    assert g_cost.time == r_cost.time and g_cost.energy == r_cost.energy
    assert (g_sys.space.driver.phys.read(g_base, g_size)
            == r_sys.space.driver.phys.read(r_base, r_size))


@pytest.mark.parametrize("ecc_enabled", [True, False])
@pytest.mark.parametrize("seed", range(8))
def test_guard_matches_scalar_reference(seed, ecc_enabled):
    got, ref = make_pair(ecc_enabled)
    (g_sys, base, size), (r_sys, _, _) = got, ref
    rng = np.random.default_rng(seed)
    plant(rng, g_sys, base, size, 40)
    plant(np.random.default_rng(seed), r_sys, base, size, 40)
    # cover: full-buffer read span, a partial span, disjoint spans with
    # unmerged gaps, a write span that re-encodes its words, and a
    # second guard over the already-drained region
    reads = [(base, size // 2), (base + size // 2 + 512, size // 4)]
    writes = [(base + 3 * size // 4, size // 8)]
    g_exc, r_exc = run_both(g_sys, r_sys, reads, writes)
    assert (g_exc is None) == (r_exc is None)
    if g_exc is not None:
        assert g_exc.args == r_exc.args
    assert_states_equal(got, ref)
    # the remainder of the buffer still carries flips; drain it too
    g_exc, r_exc = run_both(g_sys, r_sys, [(base, size)])
    assert (g_exc is None) == (r_exc is None)
    if g_exc is not None:
        assert g_exc.args == r_exc.args
    assert_states_equal(got, ref)


def test_guard_single_double_triple_exact_counters():
    got, ref = make_pair()
    (g_sys, base, size), (r_sys, _, _) = got, ref
    for system in (g_sys, r_sys):
        system.faults.plant_latent_flips(base, [5])             # corrected
        system.faults.plant_latent_flips(base + 64, [3, 47])    # detected
        system.faults.plant_latent_flips(base + 128, [1, 2, 3])  # silent
    g_exc, r_exc = run_both(g_sys, r_sys, [(base, 256)])
    assert g_exc is not None and g_exc.args == r_exc.args
    assert g_sys.datapath.stats.words_corrected == 1
    assert g_sys.datapath.stats.words_repaired == 1
    assert g_sys.datapath.stats.words_silent == 1
    assert g_sys.faults._pending_corrections == 2
    assert_states_equal(got, ref)


def test_guard_clean_latent_map_is_free():
    got, ref = make_pair()
    (g_sys, base, size), (r_sys, _, _) = got, ref
    g_exc, r_exc = run_both(g_sys, r_sys, [(base, size)])
    assert g_exc is None and r_exc is None
    assert g_sys.datapath.stats.guards == 0
    assert_states_equal(got, ref)
