"""Hardened acc_execute: watchdog, retry/backoff, host fallback, ledger."""

import numpy as np
import pytest

from repro.accel import AxpyParams
from repro.core import (MealibRuntimeError, MealibSystem, ParamStore,
                        ResiliencePolicy)
from repro.faults import FaultInjector


def make_system(faults=None, policy=None):
    return MealibSystem(stack_bytes=128 << 20, faults=faults, policy=policy)


def make_axpy_plan(system, n=1024, alpha=3.0):
    xb, x = system.space.alloc_array((n,), np.float32)
    yb, y = system.space.alloc_array((n,), np.float32)
    x[:] = 1.0
    y[:] = 1.0
    store = ParamStore()
    store.add("a.para", AxpyParams(n=n, alpha=alpha, x_pa=xb.pa,
                                   y_pa=yb.pa).pack())
    plan = system.runtime.acc_plan("PASS { COMP AXPY a.para }", store,
                                   in_size=n * 8, out_size=n * 4)
    return plan, x, y


EXPECTED = np.full(1024, 4.0, np.float32)      # 3*1 + 1


class TestTileFailureDegradation:
    def test_failed_tile_reroutes_instead_of_fallback(self):
        system = make_system(faults=FaultInjector(seed=0))
        system.layer.mark_tile_failed(3)
        plan, _, y = make_axpy_plan(system)
        result = system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, EXPECTED)   # still correct
        assert result.time > 0 and result.energy > 0
        counters = system.runtime.counters
        assert counters.fallbacks == 0               # stayed accelerated
        assert counters.availability == 1.0
        assert counters.degraded_executes == 1
        assert counters.rerouted_stripes == 1
        assert system.ledger.total("fallback").time == 0
        assert system.ledger.total("accelerator").time > 0
        assert system.ledger.total("reroute").time > 0

    def test_all_tiles_failed_degrades_to_host(self):
        system = make_system(faults=FaultInjector(seed=0))
        for vault in range(len(system.layer.tiles)):
            system.layer.mark_tile_failed(vault)
        plan, _, y = make_axpy_plan(system)
        result = system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, EXPECTED)
        assert result.time > 0
        assert system.runtime.counters.fallbacks == 1
        assert system.ledger.total("fallback").time > 0
        assert system.ledger.total("accelerator").time == 0
        assert "AXPY" in system.ledger.by_label("fallback")

    def test_fallback_disabled_raises_only_when_no_tile_left(self):
        system = make_system(
            faults=FaultInjector(seed=0),
            policy=ResiliencePolicy(host_fallback=False))
        system.layer.mark_tile_failed(0)
        plan, _, y = make_axpy_plan(system)
        system.runtime.acc_execute(plan)             # degraded, no raise
        np.testing.assert_array_equal(y, EXPECTED)
        for vault in range(1, len(system.layer.tiles)):
            system.layer.mark_tile_failed(vault)
        with pytest.raises(MealibRuntimeError):
            system.runtime.acc_execute(plan)

    def test_injected_tile_failures_accumulate_degraded(self):
        system = make_system(
            faults=FaultInjector(seed=0, tile_fail_rate=1.0))
        plan, _, y = make_axpy_plan(system)
        system.runtime.acc_execute(plan)
        system.runtime.acc_execute(plan)
        # y accumulates: 1 + 3 + 3 across the two executes
        np.testing.assert_array_equal(y, np.full(1024, 7.0, np.float32))
        assert not system.layer.healthy
        # every execute hard-fails one more tile, but both still ran
        # on the surviving tiles
        assert len(system.layer.failed_tiles()) == 2
        counters = system.runtime.counters
        assert counters.fallbacks == 0
        assert counters.availability == 1.0
        assert counters.degraded_executes == 2
        assert counters.rerouted_stripes == 1 + 2
        assert len(system.layer.serving_tiles()) == 14

    def test_functional_false_skips_numerics(self):
        system = make_system(faults=FaultInjector(seed=0))
        system.layer.mark_tile_failed(0)
        plan, _, y = make_axpy_plan(system)
        result = system.runtime.acc_execute(plan, functional=False)
        np.testing.assert_array_equal(y, np.ones(1024, np.float32))
        assert result.time > 0
        assert system.ledger.total("fallback").time == 0
        assert system.ledger.total("reroute").time > 0


class TestWatchdogAndRetry:
    def test_permanent_hang_watchdog_then_fallback(self):
        policy = ResiliencePolicy(max_retries=2)
        system = make_system(faults=FaultInjector(seed=0, hang_rate=1.0),
                             policy=policy)
        plan, _, y = make_axpy_plan(system)
        result = system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, EXPECTED)
        counters = system.runtime.counters
        assert counters.watchdog_expiries == 1 + policy.max_retries
        assert counters.retries == policy.max_retries
        assert counters.fallbacks == 1
        fault = system.ledger.total("fault")
        assert fault.time == pytest.approx(
            counters.watchdog_expiries * policy.watchdog_timeout)
        assert result.time > fault.time

    def test_permanent_corruption_retries_then_fallback(self):
        policy = ResiliencePolicy(max_retries=3)
        system = make_system(
            faults=FaultInjector(seed=0, descriptor_corruption_rate=1.0),
            policy=policy)
        plan, _, y = make_axpy_plan(system)
        system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, EXPECTED)
        assert system.runtime.counters.retries == 3
        assert system.runtime.counters.fallbacks == 1
        retry = system.ledger.total("retry")
        assert retry.time > 0
        # exponential backoff: per-attempt retry cost grows
        attempts = system.ledger.by_label("retry")
        assert attempts["attempt-3"].time > attempts["attempt-1"].time

    def test_transient_corruption_recovers_on_accelerator(self):
        # 40% per-fetch corruption: with 3 retries the execute should
        # (deterministically, for this seed) land on the accelerator
        system = make_system(
            faults=FaultInjector(seed=7, descriptor_corruption_rate=0.4))
        plan, _, y = make_axpy_plan(system)
        for _ in range(6):
            system.runtime.acc_execute(plan)
        np.testing.assert_array_equal(y, np.full(1024, 19.0, np.float32))
        counters = system.runtime.counters
        assert counters.executes == 6
        assert counters.fallbacks == 0          # retries always recovered
        assert counters.retries > 0
        assert system.ledger.total("accelerator").time > 0
        assert system.ledger.total("retry").time > 0

    def test_ecc_corrections_logged_and_transparent(self):
        system = make_system(
            faults=FaultInjector(seed=11, dram_bit_error_rate=2e-4))
        plan, _, y = make_axpy_plan(system)
        for _ in range(40):
            system.runtime.acc_execute(plan)
        # 40 executes * alpha accumulation: y = 1 + 40*3
        np.testing.assert_array_equal(
            y, np.full(1024, 121.0, np.float32))
        assert system.runtime.counters.ecc_corrections > 0
        assert "ecc-correction" in system.ledger.by_label("fault")


class TestFaultFreeParity:
    def test_no_injector_adds_no_resilience_entries(self):
        system = make_system()
        plan, _, _ = make_axpy_plan(system)
        result = system.runtime.acc_execute(plan)
        for category in ("fault", "retry", "fallback"):
            assert system.ledger.total(category).time == 0.0
            assert system.ledger.total(category).energy == 0.0
        # everything the ledger saw is invocation + accelerator; the
        # returned total additionally carries the CU dispatch time
        ledger = system.ledger
        assert ledger.total().time == pytest.approx(
            ledger.total("invocation").time
            + ledger.total("accelerator").time)
        assert result.time >= ledger.total().time

    def test_zero_rate_injector_without_ecc_matches_baseline(self):
        plain = make_system()
        hardened = make_system(
            faults=FaultInjector(seed=0, ecc_enabled=False))
        r_plain = plain.runtime.acc_execute(make_axpy_plan(plain)[0])
        r_hard = hardened.runtime.acc_execute(make_axpy_plan(hardened)[0])
        assert r_hard.time == r_plain.time
        assert r_hard.energy == r_plain.energy

    def test_ecc_protection_costs_a_little(self):
        plain = make_system()
        protected = make_system(faults=FaultInjector(seed=0))
        r_plain = plain.runtime.acc_execute(make_axpy_plan(plain)[0],
                                            functional=False)
        r_prot = protected.runtime.acc_execute(
            make_axpy_plan(protected)[0], functional=False)
        assert r_prot.energy > r_plain.energy          # ECC decode energy
        assert r_prot.energy < r_plain.energy * 1.05   # but < 5% tax


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def campaign(seed):
            system = make_system(
                faults=FaultInjector(
                    seed=seed, descriptor_corruption_rate=0.3,
                    hang_rate=0.1, dram_bit_error_rate=1e-4))
            plan, _, y = make_axpy_plan(system)
            total = None
            for _ in range(8):
                r = system.runtime.acc_execute(plan)
                total = r if total is None else total.plus(r)
            c = system.runtime.counters
            return (total.time, total.energy, c.retries, c.fallbacks,
                    c.watchdog_expiries, c.ecc_corrections, y.tobytes())

        assert campaign(123) == campaign(123)
        assert campaign(123) != campaign(124)
