"""Patrol-scrubber battery: idempotence, cadence, cost and purity.

The load-bearing properties: a patrol pass *drains* the latent map
(a second immediate pass finds zero flips — idempotence), fires on the
configured cadence and only then, prices every pass against the backed
footprint, and with ``interval=0`` leaves the whole run bit-identical
to one without a scrubber.
"""

import numpy as np
import pytest

from repro.core import MealibSystem
from repro.faults import (FaultInjector, PatrolScrubber, ScrubConfig,
                          ScrubStats)
from repro.metrics import ZERO


def make_system(faults=None, **kwargs):
    return MealibSystem(stack_bytes=64 << 20, faults=faults, **kwargs)


def seeded_scrubber(interval=1, rate=0.0, seed=3, ecc_enabled=True):
    system = make_system(
        FaultInjector(seed=seed, latent_flip_rate=rate,
                      ecc_enabled=ecc_enabled),
        scrub=ScrubConfig(interval=interval))
    return system


# -- config validation --------------------------------------------------------


def test_config_rejects_negative_interval():
    with pytest.raises(ValueError):
        ScrubConfig(interval=-1)


def test_config_rejects_nonpositive_bandwidth():
    with pytest.raises(ValueError):
        ScrubConfig(interval=1, bandwidth=0.0)


# -- idempotence: the second immediate patrol finds nothing -------------------


def test_scrub_is_idempotent():
    system = seeded_scrubber()
    inj, scrubber = system.faults, system.scrubber
    inj.plant_latent_flips(4096, [1])
    inj.plant_latent_flips(8192, [2, 9])
    inj.plant_latent_flips(12288, [0, 31, 63])
    assert inj.latent_word_count == 3

    first = scrubber.scrub()
    assert inj.latent_word_count == 0
    assert scrubber.stats.words_corrected == 1
    assert scrubber.stats.words_repaired == 1
    assert scrubber.stats.words_silent == 1

    before = ScrubStats(**{f: getattr(scrubber.stats, f)
                           for f in ("passes", "bytes_scanned",
                                     "words_corrected", "words_repaired",
                                     "words_silent")})
    second = scrubber.scrub()
    # the second pass still walks (and prices) the footprint, but it
    # finds, fixes and pins nothing
    assert inj.latent_word_count == 0
    assert scrubber.stats.words_corrected == before.words_corrected
    assert scrubber.stats.words_repaired == before.words_repaired
    assert scrubber.stats.words_silent == before.words_silent
    assert scrubber.stats.passes == before.passes + 1
    assert second.time < first.time       # no correction writebacks left
    assert second.energy < first.energy


def test_at_rest_double_never_surfaces_on_demand_path():
    system = seeded_scrubber()
    system.faults.plant_latent_flips(4096, [5, 40])
    system.scrubber.scrub()
    # repaired off the demand path: no uncorrectable, no retry pressure
    assert system.scrubber.stats.words_repaired == 1
    assert system.faults.stats.words_uncorrectable == 0
    assert system.runtime.counters.retries == 0


# -- cadence ------------------------------------------------------------------


def test_tick_fires_exactly_on_the_interval():
    system = seeded_scrubber(interval=3)
    scrubber = system.scrubber
    fired = [scrubber.tick() is not None for _ in range(9)]
    assert fired == [False, False, True] * 3
    assert scrubber.stats.passes == 3


def test_interval_zero_never_fires():
    system = seeded_scrubber(interval=0)
    system.faults.plant_latent_flips(4096, [1])
    for _ in range(10):
        assert system.scrubber.tick() is None
    # the flip sits latent forever: nothing drained it
    assert system.faults.latent_word_count == 1
    assert system.scrubber.stats.passes == 0


# -- runtime integration: ledger and counters ---------------------------------


def _run_axpy(system, executes):
    from repro.accel import AxpyParams
    from repro.core import ParamStore

    n = 1024
    xb, x = system.space.alloc_array((n,), np.float32)
    yb, y = system.space.alloc_array((n,), np.float32)
    x[:] = 1.0
    y[:] = 1.0
    params = AxpyParams(n=n, alpha=2.0, x_pa=xb.pa, y_pa=yb.pa)
    store = ParamStore()
    store.add("w.para", params.pack())
    core = system.layer.accelerator("AXPY")
    streams = core.streams(params)
    plan = system.runtime.acc_plan(
        "PASS { COMP AXPY w.para }", store,
        in_size=sum(s.total_bytes for s in streams if not s.is_write),
        out_size=sum(s.total_bytes for s in streams if s.is_write))
    results = [system.runtime.acc_execute(plan, functional=False)
               for _ in range(executes)]
    return results


def test_scrub_cost_is_ledgered_but_never_charged_to_the_step():
    scrubbed = seeded_scrubber(interval=2)
    plain = seeded_scrubber(interval=0)
    res_s = _run_axpy(scrubbed, 4)
    res_p = _run_axpy(plain, 4)
    # patrol ran on schedule and charged the scrub ledger...
    assert scrubbed.runtime.counters.scrub_passes == 2
    scrub = scrubbed.ledger.total("scrub")
    assert scrub.time > 0 and scrub.energy > 0
    assert "patrol" in scrubbed.ledger.by_label("scrub")
    # ...but the executes themselves cost exactly what the unscrubbed
    # system's executes cost: maintenance overlaps the host
    assert [(r.time, r.energy) for r in res_s] == [
        (r.time, r.energy) for r in res_p]
    # and the disabled system ledgered nothing
    assert plain.ledger.total("scrub") == ZERO
    assert plain.runtime.counters.scrub_passes == 0


def test_scrub_pass_prices_the_backed_footprint():
    system = seeded_scrubber(interval=1)
    scrubber = system.scrubber
    cost = scrubber.scrub()
    scanned = sum(size for _, size in system.space.driver.phys.regions())
    assert scanned > 0
    assert cost.time == scanned / scrubber.config.bandwidth
    assert cost.energy == scanned * scrubber.config.e_patrol_per_byte
    assert scrubber.stats.bytes_scanned == scanned


def test_ecc_off_patrol_pins_corruption_into_cells():
    system = seeded_scrubber(ecc_enabled=False)
    phys = system.space.driver.phys
    word = system.faults.plant_latent_flips(4096, [5])
    before = bytes(phys.ndarray(word, np.uint8, (8,)))
    system.scrubber.scrub()
    after = bytes(phys.ndarray(word, np.uint8, (8,)))
    # with ECC off even a single is written back corrupted
    assert system.scrubber.stats.words_silent == 1
    assert system.scrubber.stats.words_corrected == 0
    assert after != before
    assert system.faults.latent_word_count == 0


def test_scrub_without_faults_is_a_configuration_error():
    # a scrub config *parameterises the injector's drain*: passing it
    # with no injector used to be silently ignored — now it raises
    with pytest.raises(ValueError):
        make_system(scrub=ScrubConfig(interval=2))


# -- per-vault attribution (thermal heat feed) --------------------------------


def _attributed_scrubber(rate=0.0, seed=3):
    system = seeded_scrubber(interval=1, rate=rate, seed=seed)
    system.scrubber.mapping = system.device.mapping
    return system


def test_vault_attribution_decomposes_the_pass_energy_exactly():
    system = _attributed_scrubber()
    inj, scrubber = system.faults, system.scrubber
    inj.plant_latent_flips(4096, [1])
    inj.plant_latent_flips(64 << 10, [2, 9])
    cost = scrubber.scrub()
    per_vault = scrubber.last_vault_energy
    assert set(per_vault) == set(range(system.device.units))
    # the per-vault energies are a decomposition of the pass cost, not
    # an estimate: they sum back to the ledgered energy
    assert sum(per_vault.values()) == pytest.approx(cost.energy, rel=1e-12)


def test_patrol_energy_lands_on_the_vault_walked_not_smeared():
    system = _attributed_scrubber()
    scrubber = system.scrubber
    mapping = system.device.mapping
    word = system.faults.plant_latent_flips(4096, [5])   # one single
    cost = scrubber.scrub()
    assert scrubber.stats.words_corrected == 1
    per_corr = scrubber.ecc.correction_cost(1).energy
    regions = system.space.driver.phys.regions()
    stream_bytes = scrubber._vault_bytes(regions)
    e_byte = scrubber.config.e_patrol_per_byte
    per_vault = scrubber.last_vault_energy
    # the correction's writeback energy is attributed to the vault that
    # holds the corrected word — every other vault paid its own
    # streaming share only, nothing smeared
    hot = mapping.unit_of(word)
    for v, e in per_vault.items():
        expected = stream_bytes[v] * e_byte
        if v == hot:
            expected += per_corr
        assert e == pytest.approx(expected, rel=1e-12), f"vault {v}"
    scanned = sum(size for _, size in regions)
    assert cost.energy == pytest.approx(scanned * e_byte + per_corr,
                                        rel=1e-12)


def test_vault_byte_split_matches_per_block_decomposition():
    system = _attributed_scrubber()
    scrubber = system.scrubber
    mapping = system.device.mapping
    regions = system.space.driver.phys.regions()
    fast = scrubber._vault_bytes(regions)
    # brute-force reference: walk every interleave block individually
    slow = {v: 0 for v in range(mapping.units)}
    step = mapping.interleave_bytes
    for start, size in regions:
        addr = start
        end = start + size
        while addr < end:
            block_end = min(end, (addr // step + 1) * step)
            slow[mapping.unit_of(addr)] += block_end - addr
            addr = block_end
    assert fast == slow
    assert sum(fast.values()) == sum(size for _, size in regions)


def test_standalone_scrubber_accepts_explicit_ecc():
    inj = FaultInjector(seed=1)
    system = make_system()
    phys = system.space.driver.phys
    scrubber = PatrolScrubber(inj, phys, ScrubConfig(interval=1))
    assert scrubber.ecc is inj.ecc
    inj.plant_latent_flips(4096, [7])
    cost = scrubber.tick()
    assert cost is not None and cost.time > 0
    assert scrubber.stats.words_corrected == 1
    assert inj.latent_word_count == 0
