"""Fault injector unit behaviour: determinism, ECC adjudication, hooks."""

import numpy as np
import pytest

from repro.faults import (FaultConfig, FaultInjector, SecdedModel,
                          UncorrectableEccError)
from repro.faults.ecc import (OUTCOME_CLEAN, OUTCOME_CORRECTED,
                              OUTCOME_DETECTED, OUTCOME_SILENT)


class TestSecdedModel:
    def test_adjudication(self):
        ecc = SecdedModel()
        assert ecc.classify(0) == OUTCOME_CLEAN
        assert ecc.classify(1) == OUTCOME_CORRECTED
        assert ecc.classify(2) == OUTCOME_DETECTED
        assert ecc.classify(3) == OUTCOME_SILENT
        assert ecc.classify(7) == OUTCOME_SILENT

    def test_correction_cost_scales(self):
        ecc = SecdedModel()
        one = ecc.correction_cost(1)
        ten = ecc.correction_cost(10)
        assert ten.time == pytest.approx(10 * one.time)
        assert ten.energy == pytest.approx(10 * one.energy)
        assert one.time > 0 and one.energy > 0

    def test_stream_overhead_zero_bytes(self):
        ecc = SecdedModel()
        assert ecc.stream_overhead(0).time == 0.0
        assert ecc.stream_overhead(4096).energy > 0


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(dram_bit_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(hang_rate=-0.1)

    def test_kw_construction(self):
        inj = FaultInjector(seed=7, hang_rate=0.5)
        assert inj.config.seed == 7
        assert inj.config.hang_rate == 0.5
        with pytest.raises(ValueError):
            FaultInjector(FaultConfig(), hang_rate=0.5)


class TestDramReadHook:
    def test_zero_rate_is_identity(self):
        inj = FaultInjector(seed=0)
        data = bytes(range(256))
        assert inj.dram_read(0x1000, data) is data
        assert inj.stats.injected_events == 0

    def test_single_bit_flips_are_corrected(self):
        # rate chosen so flips land but two-in-one-word is vanishingly rare
        inj = FaultInjector(seed=1, dram_bit_error_rate=1e-4)
        data = bytes(4096)
        corrected_before = inj.stats.words_corrected
        for _ in range(20):
            out = inj.dram_read(0, data)
            assert out == data            # ECC returned clean data
        assert inj.stats.words_corrected > corrected_before
        cost, n = inj.drain_correction_cost()
        assert n == inj.stats.words_corrected
        assert cost.time > 0
        # drained: second drain is empty
        assert inj.drain_correction_cost()[1] == 0

    def test_ecc_disabled_corrupts_silently(self):
        inj = FaultInjector(seed=2, dram_bit_error_rate=1e-3,
                            ecc_enabled=False)
        data = bytes(4096)
        saw_corruption = False
        for _ in range(10):
            if inj.dram_read(0, data) != data:
                saw_corruption = True
        assert saw_corruption
        assert inj.stats.words_silent > 0
        assert inj.stats.words_corrected == 0

    def test_double_bit_raises_uncorrectable(self):
        # brutal rate: almost every word has >= 2 flips somewhere
        inj = FaultInjector(seed=3, dram_bit_error_rate=0.05)
        with pytest.raises(UncorrectableEccError):
            for _ in range(50):
                inj.dram_read(0, bytes(512))

    @staticmethod
    def _read(inj, data):
        try:
            return inj.dram_read(0, data)
        except UncorrectableEccError as exc:
            return ("uncorrectable", exc.words)

    def test_determinism_across_instances(self):
        a = FaultInjector(seed=42, dram_bit_error_rate=1e-3)
        b = FaultInjector(seed=42, dram_bit_error_rate=1e-3)
        data = bytes(2048)
        outs_a = [self._read(a, data) for _ in range(10)]
        outs_b = [self._read(b, data) for _ in range(10)]
        assert outs_a == outs_b
        assert a.stats == b.stats

    def test_reset_restores_sequence(self):
        inj = FaultInjector(seed=5, dram_bit_error_rate=1e-3)
        data = bytes(2048)
        first = [self._read(inj, data) for _ in range(5)]
        inj.reset()
        again = [self._read(inj, data) for _ in range(5)]
        assert first == again


class TestCommandPathHooks:
    def test_descriptor_corruption_changes_one_word(self):
        inj = FaultInjector(seed=0, descriptor_corruption_rate=1.0)
        raw = bytes(range(64))
        out = inj.corrupt_descriptor(raw)
        assert out != raw
        assert len(out) == len(raw)
        diff_words = [i for i in range(len(raw) // 4)
                      if out[i * 4:i * 4 + 4] != raw[i * 4:i * 4 + 4]]
        assert len(diff_words) == 1
        assert inj.stats.descriptor_corruptions == 1

    def test_hang_and_tile_sampling(self):
        inj = FaultInjector(seed=0, hang_rate=1.0, tile_fail_rate=1.0)
        assert inj.sample_tile_failure() is not None
        assert inj.sample_hang()
        assert inj.stats.cu_hangs == 1
        assert inj.stats.tile_failures == 1
        quiet = FaultInjector(seed=0)
        assert quiet.sample_tile_failure() is None
        assert not quiet.sample_hang()

    def test_detection_rate_counts_silent(self):
        inj = FaultInjector(seed=0)
        inj.stats.words_corrected = 8
        inj.stats.words_silent = 2
        assert inj.stats.detection_rate == pytest.approx(0.8)
        inj.stats.clear()
        assert inj.stats.detection_rate == 1.0


def test_physmem_hook_is_wired():
    from repro.memmgmt.physmem import PhysicalMemory
    mem = PhysicalMemory(1 << 20)
    mem.add_region(0, 4096)
    mem.write(0, b"\xAA" * 64)
    calls = []

    def hook(addr, data):
        calls.append((addr, len(data)))
        return bytes(len(data))           # zero out everything

    mem.fault_hook = hook
    assert mem.read(0, 64) == bytes(64)
    assert calls == [(0, 64)]
    # views bypass the hook (direct datapath access)
    assert np.all(mem.view(0, 64) == 0xAA)
