"""Tests for the logic-layer data reshape infrastructure."""

import pytest

from repro.memsys import ReshapeUnit, StackedDram, haswell_memory
from repro.memsys.trace import simulate_streams


@pytest.fixture
def unit():
    return ReshapeUnit()


def test_tile_fits_sram(unit):
    side = unit.tile_for(elem_bytes=4)
    assert side * side * 4 <= unit.sram_bytes_limit


def test_tile_shrinks_for_wide_elements(unit):
    assert unit.tile_for(elem_bytes=16) <= unit.tile_for(elem_bytes=4)


def test_transpose_streams_cover_matrix(unit):
    streams = unit.transpose_streams(0, 1 << 26, 512, 256, 4)
    read, write = streams
    assert read.n_elems == 512 * 256
    assert write.n_elems == 512 * 256
    assert not read.is_write
    assert write.is_write


def test_tiled_beats_naive_on_dram(unit):
    dev = haswell_memory()
    rows = cols = 2048
    naive = simulate_streams(
        dev, unit.naive_transpose_streams(0, 1 << 26, rows, cols, 4))
    tiled = simulate_streams(
        dev, unit.transpose_streams(0, 1 << 26, rows, cols, 4))
    assert tiled.time < naive.time / 2


def test_tiled_transpose_row_hit_rate_high(unit):
    dev = StackedDram()
    res = simulate_streams(
        dev, unit.transpose_streams(0, 1 << 26, 2048, 2048, 4))
    assert res.stats.row_hit_rate > 0.7


def test_naive_transpose_row_hit_rate_low(unit):
    dev = haswell_memory()
    res = simulate_streams(
        dev, unit.naive_transpose_streams(0, 1 << 26, 2048, 2048, 4))
    assert res.stats.row_hit_rate < 0.3


def test_small_matrix_tile_clamped(unit):
    streams = unit.transpose_streams(0, 4096, 8, 8, 4)
    assert streams[0].block_elems <= 8
