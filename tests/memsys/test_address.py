"""Unit and property tests for the address mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.address import AddressMapping, _fold

MAPPING = AddressMapping(interleave_bytes=256, units=16, banks=8,
                         row_bytes=2048)


def test_rejects_non_pow2():
    with pytest.raises(ValueError):
        AddressMapping(interleave_bytes=100, units=16, banks=8,
                       row_bytes=2048)
    with pytest.raises(ValueError):
        AddressMapping(interleave_bytes=256, units=3, banks=8,
                       row_bytes=2048)


def test_rejects_negative_address():
    with pytest.raises(ValueError):
        MAPPING.decompose(-1)


def test_fields_in_range():
    for addr in (0, 255, 256, 65536, 1 << 30, (1 << 30) + 12345):
        unit, bank, row, col = MAPPING.decompose(addr)
        assert 0 <= unit < 16
        assert 0 <= bank < 8
        assert 0 <= col < MAPPING.cols_per_row
        assert row >= 0


def test_same_interleave_block_same_location():
    u1 = MAPPING.decompose(0)
    u2 = MAPPING.decompose(255)
    assert u1 == u2


def test_unit_of_matches_decompose():
    for addr in (0, 300, 5000, 1 << 26, 123456789):
        assert MAPPING.unit_of(addr) == MAPPING.decompose(addr)[0]


def test_sequential_blocks_rotate_units():
    units = [MAPPING.decompose(i * 256)[0] for i in range(16)]
    assert sorted(units) == list(range(16))


def test_pow2_stride_does_not_alias_one_unit():
    # 16 KiB stride (a 4096-float matrix row) must still spread over units
    units = {MAPPING.decompose(i * 16384)[0] for i in range(64)}
    assert len(units) >= 8


def test_pow2_stride_does_not_alias_one_bank():
    locs = {MAPPING.decompose(i * (1 << 20))[:2] for i in range(64)}
    banks = {b for (_, b) in locs}
    assert len(banks) >= 4


def test_fold_is_within_modulus():
    for x in (0, 1, 255, 12345, 1 << 40):
        assert 0 <= _fold(x, 16) < 16
        assert 0 <= _fold(x, 8) < 8


def test_fold_modulus_one_is_zero():
    assert _fold(12345, 1) == 0


@settings(max_examples=200)
@given(st.integers(min_value=0, max_value=(1 << 34) - 1))
def test_mapping_is_injective_per_block(addr):
    """Two addresses in different interleave blocks of the same unit must
    never decompose to the same (bank, row, col)."""
    unit, bank, row, col = MAPPING.decompose(addr)
    # reconstruct the per-unit block index from (bank^fold, row, col)
    raw_bank = bank ^ _fold(row, MAPPING.banks)
    block = (row * MAPPING.banks + raw_bank) * MAPPING.cols_per_row + col
    base_block = block * MAPPING.units
    # one of the 16 unit positions must reproduce the original address block
    blocks = [base_block + u for u in range(MAPPING.units)]
    assert addr // MAPPING.interleave_bytes in blocks


@settings(max_examples=100)
@given(st.integers(min_value=0, max_value=1 << 30))
def test_decompose_deterministic(addr):
    assert MAPPING.decompose(addr) == MAPPING.decompose(addr)
