"""Vectorized-vs-scalar differential battery for the memsys hot paths.

Every numpy'd kernel is pinned against a scalar reference implemented
here from the retained per-element primitives (`StreamSpec.element_addr`,
`AddressMapping.decompose`, `Bank.access`): randomized inputs, exact
(bit-identical) equality. Floats are compared with ``==`` on purpose —
the vectorized paths must perform the same IEEE operations in the same
order, not merely approximate them.
"""

import numpy as np
import pytest

from repro.memsys.address import AddressMapping
from repro.memsys.bank import Bank, BankStats
from repro.memsys.device import MemoryDevice
from repro.memsys.energy import HMC_ENERGY
from repro.memsys.timing import DDR3_1600_CHANNEL, HMC_VAULT
from repro.memsys.trace import (GANG_ELEMS, StreamSpec, _element_addrs,
                                _emit_stream_window, merge_streams)
from repro.memsys.vault import VaultController

RNG_SEED = 987654321


def random_stream(rng, kind=None) -> StreamSpec:
    kind = kind or ("seq", "strided", "gather",
                    "blocked")[int(rng.integers(4))]
    elem_bytes = int(rng.choice([2, 4, 8, 16]))
    n = int(rng.integers(1, 4000))
    base = int(rng.integers(0, 1 << 28)) & ~7
    if kind == "seq":
        return StreamSpec(base=base, n_elems=n, elem_bytes=elem_bytes,
                          is_write=bool(rng.integers(2)))
    if kind == "strided":
        return StreamSpec(base=base, n_elems=n, elem_bytes=elem_bytes,
                          stride=int(rng.integers(0, 9)) * elem_bytes,
                          kind="strided",
                          is_write=bool(rng.integers(2)))
    if kind == "gather":
        return StreamSpec(base=base, n_elems=n, elem_bytes=elem_bytes,
                          region_bytes=int(rng.integers(1, 1 << 22)),
                          kind="gather", is_write=bool(rng.integers(2)))
    return StreamSpec(base=base, n_elems=n, elem_bytes=elem_bytes,
                      block_elems=int(rng.integers(1, 200)),
                      block_stride=int(rng.integers(1, 1 << 16)),
                      kind="blocked", is_write=bool(rng.integers(2)))


# -- element address generation ------------------------------------------------


@pytest.mark.parametrize("kind", ["seq", "strided", "gather", "blocked"])
def test_element_addrs_match_scalar(kind):
    rng = np.random.default_rng(RNG_SEED)
    for _ in range(40):
        s = random_stream(rng, kind)
        n = min(s.n_elems, 1500)
        got = _element_addrs(s, n)
        want = [s.element_addr(i) for i in range(n)]
        assert got.dtype == np.int64
        assert got.tolist() == want


def test_gather_lcg_exact_at_large_indices():
    # the uint64 LCG must wrap mod 2**64 exactly like Python's
    # arbitrary-precision arithmetic masked to 63 bits
    s = StreamSpec(base=64, n_elems=1 << 20, elem_bytes=8,
                   region_bytes=1 << 24, kind="gather")
    idx = [0, 1, 2, 65535, (1 << 20) - 1]
    got = _element_addrs(s, 1 << 20)
    for i in idx:
        assert int(got[i]) == s.element_addr(i)


def test_element_addrs_empty_window():
    s = random_stream(np.random.default_rng(0), "seq")
    assert _element_addrs(s, 0).size == 0


# -- burst coalescing ----------------------------------------------------------


def reference_emit(stream, n_sample, burst_bytes):
    """The scalar burst coalescer: consecutive same-block touches fold
    into one request; gathers never coalesce."""
    out = []
    last_block = -1
    for i in range(n_sample):
        block = stream.element_addr(i) // burst_bytes
        if stream.kind == "gather" or block != last_block:
            out.append((block * burst_bytes, stream.is_write))
        last_block = block
    return out


def test_emit_window_matches_scalar_reference():
    rng = np.random.default_rng(RNG_SEED + 1)
    for _ in range(60):
        s = random_stream(rng)
        n = min(s.n_elems, 1200)
        burst = int(rng.choice([32, 64, 128]))
        assert _emit_stream_window(s, n, burst) == reference_emit(
            s, n, burst)


# -- proportional round-robin merge --------------------------------------------


def reference_merge(streams, n_samples, burst_bytes):
    """Scalar merge: the stream least far through its window (by exact
    float fraction) issues the next gang of requests."""
    windows = [reference_emit(s, n, burst_bytes)
               for s, n in zip(streams, n_samples)]
    cursors = [0] * len(windows)
    out = []
    while any(c < len(w) for c, w in zip(cursors, windows)):
        best, best_frac = -1, 2.0
        for idx, w in enumerate(windows):
            if cursors[idx] >= len(w):
                continue
            frac = cursors[idx] / len(w)
            if frac < best_frac:
                best_frac = frac
                best = idx
        take = min(GANG_ELEMS, len(windows[best]) - cursors[best])
        out.extend(windows[best][cursors[best]:cursors[best] + take])
        cursors[best] += take
    return out


def test_merge_streams_matches_scalar_reference():
    rng = np.random.default_rng(RNG_SEED + 2)
    for _ in range(25):
        k = int(rng.integers(1, 5))
        streams = [random_stream(rng) for _ in range(k)]
        n_samples = [min(s.n_elems, int(rng.integers(1, 700)))
                     for s in streams]
        burst = 64
        assert merge_streams(streams, n_samples, burst) == \
            reference_merge(streams, n_samples, burst)


# -- address decomposition -----------------------------------------------------


def test_decompose_batch_matches_scalar():
    rng = np.random.default_rng(RNG_SEED + 3)
    mapping = AddressMapping(interleave_bytes=256, units=16, banks=8,
                             row_bytes=2048)
    addrs = rng.integers(0, 1 << 40, size=5000)
    units, banks, rows, cols = mapping.decompose_batch(addrs)
    for i in range(0, 5000, 7):
        assert ((int(units[i]), int(banks[i]), int(rows[i]),
                 int(cols[i])) == mapping.decompose(int(addrs[i])))


def test_decompose_batch_rejects_negative():
    mapping = AddressMapping(interleave_bytes=256, units=4, banks=8,
                             row_bytes=2048)
    with pytest.raises(ValueError):
        mapping.decompose_batch(np.array([0, -8], dtype=np.int64))


# -- vault controller drain ----------------------------------------------------


def reference_service(timing, window, requests, banks=None, bus=0.0,
                      start=0.0):
    """The reference FR-FCFS drain over the scalar :class:`Bank` FSM:
    among the oldest ``window`` pending requests, prefer a row hit,
    fall back to the oldest (swap-deferring the displaced head)."""
    if banks is None:
        banks = [Bank(timing) for _ in range(timing.banks)]
    pending = list(requests)
    now = start if start > bus else bus
    finish = now
    head = 0
    while head < len(pending):
        limit = min(head + window, len(pending))
        pick = head
        for i in range(head, limit):
            if banks[pending[i][0]].row_is_open(pending[i][1]):
                pick = i
                break
        bank, row, is_write = pending[pick]
        if pick != head:
            pending[pick] = pending[head]
        head += 1
        done = banks[bank].access(row, is_write, now, bus)
        bus = done
        if done > finish:
            finish = done
    stats = BankStats()
    for b in banks:
        stats.merge(b.stats)
    return finish, stats, banks, bus


def random_requests(rng, timing, n):
    return [(int(rng.integers(timing.banks)), int(rng.integers(64)),
             bool(rng.integers(2))) for _ in range(n)]


@pytest.mark.parametrize("timing", [HMC_VAULT, DDR3_1600_CHANNEL])
@pytest.mark.parametrize("window", [1, 4, 8])
def test_vault_drain_matches_bank_fsm_reference(timing, window):
    rng = np.random.default_rng(RNG_SEED + 4)
    for _ in range(10):
        reqs = random_requests(rng, timing, int(rng.integers(1, 600)))
        vc = VaultController(timing, window=window)
        got = vc.service(reqs)
        finish, stats, _, _ = reference_service(timing, window, reqs)
        assert got.finish_time == finish
        assert got.stats == stats


def test_vault_drain_cumulative_across_service_calls():
    """Interleaved service calls on one controller must carry bank and
    bus state across calls exactly like the scalar FSM."""
    timing = HMC_VAULT
    rng = np.random.default_rng(RNG_SEED + 5)
    vc = VaultController(timing, window=8)
    banks = None
    bus = 0.0
    for call in range(4):
        reqs = random_requests(rng, timing, 200)
        got = vc.service(reqs, start=call * 1e-6)
        finish, stats, banks, bus = reference_service(
            timing, 8, reqs, banks=banks, bus=bus, start=call * 1e-6)
        assert got.finish_time == finish
        assert got.stats == stats            # stats are cumulative
    # the persisted per-bank state must match the reference FSM's
    for b_new, b_ref in zip(vc.banks, banks):
        assert b_new.open_row == b_ref.open_row
        assert b_new._ready_act == b_ref._ready_act
        assert b_new._ready_col == b_ref._ready_col
        assert b_new._ready_pre == b_ref._ready_pre


def test_service_arrays_accepts_numpy_columns():
    timing = HMC_VAULT
    rng = np.random.default_rng(RNG_SEED + 6)
    reqs = random_requests(rng, timing, 300)
    a = VaultController(timing).service(reqs)
    b = VaultController(timing).service_arrays(
        np.array([r[0] for r in reqs]), np.array([r[1] for r in reqs]),
        np.array([r[2] for r in reqs]))
    assert a.finish_time == b.finish_time
    assert a.stats == b.stats


# -- whole-device drain --------------------------------------------------------


def reference_run_trace(device, requests):
    """Scalar device drain: per-address decompose, per-unit reference
    FR-FCFS drain, identical energy assembly."""
    finish = 0.0
    stats = BankStats()
    per_unit = {}
    for addr, is_write in requests:
        unit, bank, row, _ = device.mapping.decompose(addr)
        per_unit.setdefault(unit, []).append((bank, row, is_write))
    for unit in range(device.units):
        if unit not in per_unit:
            continue
        t, s, _, _ = reference_service(device.timing,
                                       device.reorder_window,
                                       per_unit[unit])
        finish = max(finish, t)
        stats.merge(s)
    bytes_moved = len(requests) * device.request_bytes
    dynamic = (stats.activates * device.energy.e_activate
               + stats.accesses * device.energy.burst_energy(
                   device.request_bytes))
    total = dynamic + device.static_power() * finish
    return finish, total, bytes_moved, stats


def test_device_run_trace_matches_scalar_reference():
    device = MemoryDevice(HMC_VAULT, HMC_ENERGY, units=8,
                          interleave_bytes=256)
    rng = np.random.default_rng(RNG_SEED + 7)
    for _ in range(6):
        n = int(rng.integers(1, 3000))
        reqs = [(int(rng.integers(0, 1 << 30)) & ~31,
                 bool(rng.integers(2))) for _ in range(n)]
        got = device.run_trace(reqs)
        finish, energy, bytes_moved, stats = reference_run_trace(
            device, reqs)
        assert got.time == finish
        assert got.energy == energy
        assert got.bytes_moved == bytes_moved
        assert got.stats == stats


def test_device_run_trace_empty():
    device = MemoryDevice(HMC_VAULT, HMC_ENERGY, units=4,
                          interleave_bytes=256)
    got = device.run_trace([])
    assert got.time == 0.0 and got.energy == 0.0
    assert got.bytes_moved == 0
