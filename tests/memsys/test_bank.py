"""Unit tests for the per-bank row-buffer FSM."""

import pytest

from repro.memsys.bank import Bank, BankStats
from repro.memsys.timing import HMC_VAULT


@pytest.fixture
def bank():
    return Bank(HMC_VAULT)


def test_first_access_is_row_miss(bank):
    bank.access(row=5, is_write=False, now=0.0, bus_free_at=0.0)
    assert bank.stats.row_misses == 1
    assert bank.stats.activates == 1
    assert bank.open_row == 5


def test_second_access_same_row_is_hit(bank):
    bank.access(5, False, 0.0, 0.0)
    bank.access(5, False, 0.0, 0.0)
    assert bank.stats.row_hits == 1
    assert bank.stats.row_misses == 1


def test_row_switch_is_miss_and_reactivates(bank):
    bank.access(5, False, 0.0, 0.0)
    bank.access(6, False, 0.0, 0.0)
    assert bank.stats.activates == 2
    assert bank.open_row == 6


def test_hit_is_faster_than_miss(bank):
    t_miss = bank.access(5, False, 0.0, 0.0)
    t_hit = bank.access(5, False, t_miss, t_miss) - t_miss
    other = Bank(HMC_VAULT)
    other.access(1, False, 0.0, 0.0)
    t2 = other.access(2, False, t_miss, t_miss) - t_miss
    assert t_hit < t2


def test_miss_pays_at_least_rcd_cas_burst(bank):
    finish = bank.access(0, False, 0.0, 0.0)
    t = HMC_VAULT
    assert finish >= t.t_rcd + t.t_cas + t.t_burst


def test_row_miss_on_open_row_pays_precharge(bank):
    f1 = bank.access(0, False, 0.0, 0.0)
    f2 = bank.access(1, False, f1, f1)
    t = HMC_VAULT
    assert f2 - f1 >= t.t_rp + t.t_rcd + t.t_cas + t.t_burst - 1e-15


def test_bus_contention_delays_data(bank):
    # the bus is busy far in the future; data cannot start before that
    finish = bank.access(0, False, 0.0, bus_free_at=1e-6)
    assert finish >= 1e-6 + HMC_VAULT.t_burst


def test_writes_counted(bank):
    bank.access(0, True, 0.0, 0.0)
    assert bank.stats.writes == 1
    assert bank.stats.reads == 0


def test_ccd_limits_back_to_back_hits(bank):
    f1 = bank.access(0, False, 0.0, 0.0)
    f2 = bank.access(0, False, 0.0, f1)
    # second column command cannot issue earlier than tCCD after the first
    assert f2 >= f1


def test_monotonic_finish_times(bank):
    last = 0.0
    for i in range(50):
        last_new = bank.access(i % 3, bool(i % 2), last, last)
        assert last_new >= last
        last = last_new


def test_stats_merge():
    a = BankStats(activates=1, row_hits=2, row_misses=3, reads=4, writes=5)
    b = BankStats(activates=10, row_hits=20, row_misses=30, reads=40,
                  writes=50)
    a.merge(b)
    assert (a.activates, a.row_hits, a.row_misses, a.reads, a.writes) == (
        11, 22, 33, 44, 55)
    assert a.accesses == 99


def test_hit_rate():
    s = BankStats(row_hits=3, row_misses=1)
    assert s.row_hit_rate == pytest.approx(0.75)
    assert BankStats().row_hit_rate == 0.0
