"""Unit tests for the vault controller (FR-FCFS-lite scheduling)."""

import pytest

from repro.memsys.timing import HMC_VAULT
from repro.memsys.vault import VaultController


def seq_requests(n, banks=8, per_row=64):
    reqs = []
    for i in range(n):
        bank = (i // 8) % banks
        row = i // (8 * banks)
        reqs.append((bank, row, False))
    return reqs


def test_empty_trace():
    vc = VaultController(HMC_VAULT)
    res = vc.service([])
    assert res.finish_time == 0.0
    assert res.stats.accesses == 0


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        VaultController(HMC_VAULT, window=0)


def test_all_requests_serviced():
    vc = VaultController(HMC_VAULT)
    res = vc.service(seq_requests(100))
    assert res.stats.accesses == 100


def test_sequential_rate_near_bus_peak():
    vc = VaultController(HMC_VAULT)
    n = 2048
    res = vc.service(seq_requests(n))
    bw = n * HMC_VAULT.burst_bytes / res.finish_time
    assert bw > 0.8 * HMC_VAULT.peak_bandwidth


def test_reordering_recovers_row_hits():
    """Interleaved rows on one bank thrash without reordering; the FR-FCFS
    window should recover some hits relative to window=1."""
    pattern = []
    for i in range(256):
        pattern.append((0, i % 2, False))       # ping-pong rows on bank 0
        pattern.append((1, 0, False))           # plus a well-behaved bank
    fifo = VaultController(HMC_VAULT, window=1).service(list(pattern))
    frfcfs = VaultController(HMC_VAULT, window=8).service(list(pattern))
    assert frfcfs.finish_time <= fifo.finish_time
    assert frfcfs.stats.row_hit_rate >= fifo.stats.row_hit_rate


def test_single_request_latency_reasonable():
    vc = VaultController(HMC_VAULT)
    res = vc.service([(0, 0, False)])
    t = HMC_VAULT
    expected = t.t_rcd + t.t_cas + t.t_burst
    assert res.finish_time == pytest.approx(expected)


def test_bank_parallelism_beats_single_bank():
    n = 512
    one_bank = [(0, i // 8, False) for i in range(n)]
    many_banks = seq_requests(n)
    r1 = VaultController(HMC_VAULT).service(one_bank)
    r2 = VaultController(HMC_VAULT).service(many_banks)
    assert r2.finish_time <= r1.finish_time


def test_start_time_respected():
    vc = VaultController(HMC_VAULT)
    res = vc.service([(0, 0, False)], start=1e-3)
    assert res.finish_time > 1e-3
