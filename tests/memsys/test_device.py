"""Integration tests for multi-unit memory devices."""

import pytest

from repro.memsys import (DdrMemory, StackedDram, haswell_memory,
                          msas_memory)


def seq_trace(n_bytes, burst, base=0, write=False):
    return [(base + i * burst, write) for i in range(n_bytes // burst)]


def test_stack_peak_bandwidth_class():
    assert 480e9 < StackedDram().peak_bandwidth < 560e9


def test_haswell_memory_is_25_6():
    assert haswell_memory().peak_bandwidth == pytest.approx(25.6e9)


def test_msas_memory_is_102_4():
    assert msas_memory().peak_bandwidth == pytest.approx(102.4e9)


def test_sequential_reads_near_peak_stack():
    dev = StackedDram()
    res = dev.run_trace(seq_trace(1 << 19, dev.request_bytes))
    assert res.bandwidth > 0.85 * dev.peak_bandwidth


def test_sequential_reads_near_peak_ddr():
    dev = haswell_memory()
    res = dev.run_trace(seq_trace(1 << 20, dev.request_bytes))
    assert res.bandwidth > 0.85 * dev.peak_bandwidth


def test_bytes_accounting():
    dev = StackedDram()
    trace = seq_trace(1 << 16, dev.request_bytes)
    res = dev.run_trace(trace)
    assert res.bytes_moved == len(trace) * dev.request_bytes


def test_energy_positive_and_has_static_component():
    dev = StackedDram()
    res = dev.run_trace(seq_trace(1 << 16, dev.request_bytes))
    assert res.energy > dev.static_power() * res.time


def test_empty_trace():
    dev = StackedDram()
    res = dev.run_trace([])
    assert res.time == 0.0
    assert res.energy == 0.0
    assert res.bytes_moved == 0


def test_stack_beats_ddr_on_same_pattern():
    trace = seq_trace(1 << 19, 64)
    stack = StackedDram().run_trace([(a, w) for a, w in trace])
    ddr = haswell_memory().run_trace(trace)
    assert stack.time < ddr.time


def test_random_pattern_slower_than_sequential():
    dev = StackedDram()
    seq = dev.run_trace(seq_trace(1 << 18, dev.request_bytes))
    step = 97 * 4096 + dev.request_bytes  # scattered, row-missing
    rand = dev.run_trace([((i * step) % (1 << 30), False)
                          for i in range((1 << 18) // dev.request_bytes)])
    assert rand.bandwidth < seq.bandwidth
    assert rand.stats.row_hit_rate < seq.stats.row_hit_rate


def test_more_channels_more_bandwidth():
    t2 = DdrMemory(channels=2).run_trace(seq_trace(1 << 20, 64))
    t8 = DdrMemory(channels=8).run_trace(seq_trace(1 << 20, 64))
    assert t8.bandwidth > 2.5 * t2.bandwidth


def test_memresult_scaled_linearity():
    dev = StackedDram()
    res = dev.run_trace(seq_trace(1 << 16, dev.request_bytes))
    doubled = res.scaled(2.0)
    assert doubled.time == pytest.approx(2 * res.time)
    assert doubled.energy == pytest.approx(2 * res.energy)
    assert doubled.bytes_moved == 2 * res.bytes_moved
    assert doubled.bandwidth == pytest.approx(res.bandwidth)
