"""Tests for stream specs, window sampling, and extrapolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys import (StackedDram, StreamSpec, haswell_memory, seq_read,
                          seq_write, simulate_streams)
from repro.memsys.trace import _emit_stream_window, merge_streams


def test_seq_stream_addresses():
    s = seq_read(1000, 64, elem_bytes=4)
    assert s.n_elems == 16
    assert s.element_addr(0) == 1000
    assert s.element_addr(3) == 1012


def test_strided_stream_addresses():
    s = StreamSpec(base=0, n_elems=4, elem_bytes=4, kind="strided",
                   stride=4096)
    assert [s.element_addr(i) for i in range(4)] == [0, 4096, 8192, 12288]


def test_blocked_stream_addresses():
    s = StreamSpec(base=0, n_elems=8, elem_bytes=4, kind="blocked",
                   block_elems=4, block_stride=1024)
    assert s.element_addr(3) == 12
    assert s.element_addr(4) == 1024
    assert s.element_addr(7) == 1036


def test_gather_stays_in_region():
    s = StreamSpec(base=512, n_elems=1000, elem_bytes=4, kind="gather",
                   region_bytes=4096)
    for i in range(1000):
        addr = s.element_addr(i)
        assert 512 <= addr < 512 + 4096


def test_gather_is_deterministic():
    s = StreamSpec(base=0, n_elems=10, elem_bytes=4, kind="gather",
                   region_bytes=1 << 20)
    assert [s.element_addr(i) for i in range(10)] == [
        s.element_addr(i) for i in range(10)]


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        StreamSpec(base=0, n_elems=1, elem_bytes=4, kind="nope")
    with pytest.raises(ValueError):
        StreamSpec(base=0, n_elems=1, elem_bytes=4, kind="gather")
    with pytest.raises(ValueError):
        StreamSpec(base=0, n_elems=1, elem_bytes=4, kind="blocked")
    with pytest.raises(ValueError):
        StreamSpec(base=0, n_elems=1, elem_bytes=0)
    with pytest.raises(ValueError):
        StreamSpec(base=0, n_elems=-1, elem_bytes=4)


def test_coalescing_dense_scan():
    s = seq_read(0, 1024, elem_bytes=4)       # 256 elements
    reqs = _emit_stream_window(s, 256, burst_bytes=64)
    assert len(reqs) == 16                    # 1024 B / 64 B bursts


def test_no_coalescing_wide_stride():
    s = StreamSpec(base=0, n_elems=64, elem_bytes=4, kind="strided",
                   stride=4096)
    reqs = _emit_stream_window(s, 64, burst_bytes=64)
    assert len(reqs) == 64


def test_merge_preserves_all_requests():
    a = seq_read(0, 4096)
    b = seq_write(1 << 20, 4096)
    merged = merge_streams([a, b], [a.n_elems, b.n_elems], 64)
    assert len(merged) == 64 + 64
    assert sum(1 for _, w in merged if w) == 64


def test_merge_interleaves_proportionally():
    a = seq_read(0, 8192)                      # twice the elements of b
    b = seq_write(1 << 20, 4096)
    merged = merge_streams([a, b], [a.n_elems, b.n_elems], 64)
    # first half of merged trace must contain requests from both streams
    first_half = merged[: len(merged) // 2]
    assert any(w for _, w in first_half)
    assert any(not w for _, w in first_half)


def test_simulate_empty():
    res = simulate_streams(StackedDram(), [])
    assert res.time == 0.0


def test_simulate_skips_zero_length_streams():
    res = simulate_streams(
        StackedDram(),
        [StreamSpec(base=0, n_elems=0, elem_bytes=4), seq_read(0, 4096)])
    assert res.bytes_moved > 0


def test_extrapolation_linearity():
    """The headline validation: a sampled window extrapolated 4x must agree
    with simulating 4x more elements directly (within a few percent)."""
    dev = haswell_memory()
    small = simulate_streams(dev, [seq_read(0, 1 << 22)],
                             window_elems=1 << 14)
    big = simulate_streams(dev, [seq_read(0, 1 << 22)],
                           window_elems=1 << 16)
    assert small.time == pytest.approx(big.time, rel=0.05)
    assert small.energy == pytest.approx(big.energy, rel=0.05)


def test_full_trace_when_window_larger_than_stream():
    dev = StackedDram()
    res = simulate_streams(dev, [seq_read(0, 4096)], window_elems=1 << 20)
    assert res.bytes_moved == 4096


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=1 << 16))
def test_total_bytes_property(n_bytes):
    s = seq_read(0, n_bytes & ~3 or 4)
    assert s.total_bytes == s.n_elems * s.elem_bytes


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=64, max_value=1 << 14))
def test_simulated_time_monotone_in_bytes(n_bytes):
    dev = haswell_memory()
    r1 = simulate_streams(dev, [seq_read(0, n_bytes)])
    r2 = simulate_streams(dev, [seq_read(0, 4 * n_bytes)])
    assert r2.time >= r1.time
