"""Unit tests for DRAM timing parameter sets."""

import pytest

from repro.memsys.timing import DDR3_1600_CHANNEL, HMC_VAULT, DramTiming


def test_ddr3_peak_bandwidth_matches_part():
    # one DDR3-1600 channel is 12.8 GB/s
    assert DDR3_1600_CHANNEL.peak_bandwidth == pytest.approx(12.8e9)


def test_hmc_vault_aggregate_is_510_gbps_class():
    total = 16 * HMC_VAULT.peak_bandwidth
    assert 480e9 < total < 560e9


def test_t_burst_is_burst_bytes_over_rate():
    t = DDR3_1600_CHANNEL
    assert t.t_burst == pytest.approx(
        t.burst_bytes / (t.bytes_per_cycle * t.clock_hz))


def test_scaled_clock_keeps_latencies():
    t = HMC_VAULT.scaled_clock(2.5e9)
    assert t.clock_hz == 2.5e9
    assert t.t_rcd == HMC_VAULT.t_rcd
    assert t.peak_bandwidth > HMC_VAULT.peak_bandwidth


def test_with_row_bytes_only_changes_row():
    t = HMC_VAULT.with_row_bytes(4096)
    assert t.row_bytes == 4096
    assert t.clock_hz == HMC_VAULT.clock_hz
    assert t.banks == HMC_VAULT.banks


def test_t_ck_is_inverse_clock():
    assert HMC_VAULT.t_ck == pytest.approx(1.0 / HMC_VAULT.clock_hz)


def test_timing_is_frozen():
    with pytest.raises(Exception):
        DDR3_1600_CHANNEL.clock_hz = 1.0  # type: ignore[misc]


def test_column_rate_matches_burst_rate():
    # tCCD must not throttle the bus below its peak by more than ~25%
    for t in (DDR3_1600_CHANNEL, HMC_VAULT):
        assert t.t_ccd <= 1.25 * t.t_burst
