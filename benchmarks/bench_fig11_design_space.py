"""Figure 11: FFT and SPMV accelerator design-space exploration."""

from repro.accel.design_space import (efficiency_range, explore_fft,
                                      explore_spmv)
from repro.eval import calibration as cal


def test_fig11_fft_design_space(benchmark):
    points = benchmark.pedantic(explore_fft, rounds=1, iterations=1)
    lo, hi = efficiency_range(points)
    gmin = min(p.gflops for p in points)
    gmax = max(p.gflops for p in points)
    print(f"\nFig 11a — FFT design space: {len(points)} points, "
          f"{gmin:.0f}-{gmax:.0f} GFLOPS, "
          f"{lo:.1f}-{hi:.1f} GFLOPS/W (paper "
          f"{cal.FIG11_FFT_EFF_RANGE[0]:.0f}-"
          f"{cal.FIG11_FFT_EFF_RANGE[1]:.0f})")
    # the paper's qualitative claims: a wide efficiency spread and
    # GFLOPS-scale performance reaching the thousands
    assert hi > 1.5 * lo
    assert gmax > 1000.0
    assert hi > 30.0
    # frequency scaling visible among compute-bound points
    slow = [p for p in points if p.freq_hz == 0.8e9 and p.tiles == 4
            and p.core_mult == 1]
    fast = [p for p in points if p.freq_hz == 2.0e9 and p.tiles == 4
            and p.core_mult == 1]
    assert max(p.gflops for p in fast) >= max(p.gflops for p in slow)


def test_fig11_spmv_design_space(benchmark):
    points = benchmark.pedantic(explore_spmv, rounds=1, iterations=1)
    lo, hi = efficiency_range(points)
    print(f"\nFig 11b — SPMV design space: {len(points)} points, "
          f"{lo:.2f}-{hi:.2f} GFLOPS/W (paper "
          f"{cal.FIG11_SPMV_EFF_RANGE[0]}-"
          f"{cal.FIG11_SPMV_EFF_RANGE[1]})")
    # the paper's point: SPMV efficiency is orders of magnitude below
    # FFT no matter the design, and the spread is still visible
    assert hi < 3.0
    assert hi > 1.3 * lo
