"""Figure 10: per-operation energy efficiency vs Haswell-MKL."""

import pytest

from repro.eval import calibration as cal
from repro.eval.runner import (IndividualOpRunner, efficiency_vs_haswell,
                               geometric_mean, speedups_vs_haswell)
from repro.eval.workloads import OP_ORDER


@pytest.fixture(scope="module")
def runs():
    return IndividualOpRunner(scale=1.0).run_all()


def test_fig10_energy_efficiency(benchmark, runs):
    eff = benchmark.pedantic(efficiency_vs_haswell, args=(runs,), rounds=1, iterations=1)
    speed = speedups_vs_haswell(runs)
    print("\nFig 10 — GFLOPS/W gain over Haswell MKL "
          "(MEALib paper value in parens):")
    for op in OP_ORDER:
        row = eff[op]
        print(f"  {op:6s} Phi={row['XeonPhi']:6.2f} "
              f"PSAS={row['PSAS']:6.2f} MSAS={row['MSAS']:6.2f} "
              f"MEALib={row['MEALib']:7.2f} "
              f"({cal.FIG10_MEALIB_EFFICIENCY[op]:.1f})")
    means = {p: geometric_mean(eff[op][p] for op in OP_ORDER)
             for p in ("PSAS", "MSAS", "MEALib")}
    print(f"  geomeans: PSAS={means['PSAS']:.2f} (10.7) "
          f"MSAS={means['MSAS']:.2f} (15) "
          f"MEALib={means['MEALib']:.2f} (75)")
    for op in OP_ORDER:
        paper = cal.FIG10_MEALIB_EFFICIENCY[op]
        assert 0.3 * paper < eff[op]["MEALib"] < 2.0 * paper
        # the paper's observation: energy gains exceed perf gains
        assert eff[op]["XeonPhi"] < 1.0
    exceed = sum(eff[op]["MEALib"] > speed[op]["MEALib"]
                 for op in OP_ORDER)
    assert exceed >= 5
    assert 25 < means["MEALib"] < 150          # paper: 75x average
