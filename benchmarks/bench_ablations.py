"""Ablation benches for the design choices DESIGN.md calls out."""

import pytest

from repro.accel import AxpyAccelerator, AxpyParams, FftAccelerator
from repro.accel.fft import FftParams
from repro.core.invocation import InvocationModel
from repro.host.cache import CacheHierarchy
from repro.memsys import HMC_VAULT, StackedDram

AXPY_PARAMS = AxpyParams(n=1 << 24, alpha=1.0, x_pa=0, y_pa=1 << 27)
DEVICE = StackedDram()


def test_ablation_vault_tiling(benchmark):
    """Vault-level tiling: deploying tiles on all 16 vaults vs few.

    Accelerator bandwidth must scale with deployed tiles — the reason
    the paper bonds one tile per vault.
    """
    def sweep():
        return {tiles: AxpyAccelerator(tiles=tiles).model(
            DEVICE, AXPY_PARAMS, tiles=tiles).result.time
            for tiles in (1, 2, 4, 8, 16)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — AXPY time vs deployed tiles:", {
        k: round(v * 1e3, 3) for k, v in times.items()})
    assert times[16] < times[4] < times[1]
    assert times[1] / times[16] > 4.0


def test_ablation_invocation_flush(benchmark):
    """wbinvd share of the invocation overhead (include vs exclude)."""
    model = InvocationModel()

    def costs():
        with_flush = model.total(4096, 8 << 20, include_flush=True)
        without = model.total(4096, 8 << 20, include_flush=False)
        return with_flush, without

    with_flush, without = benchmark.pedantic(costs, rounds=1, iterations=1)
    share = 1 - without.time / with_flush.time
    print(f"\nAblation — cache flush is {100 * share:.0f}% of the "
          f"invocation overhead")
    assert with_flush.time > without.time
    assert share > 0.5         # the flush dominates, as Sec 5.5 implies


def test_ablation_row_buffer_size(benchmark):
    """Fig 11's row-buffer knob isolated: FFT time across row sizes."""
    params = FftParams(n=4096, batch=64, src_pa=0, dst_pa=1 << 22)

    def sweep():
        out = {}
        for row_bytes in (512, 2048, 8192):
            device = StackedDram(
                timing=HMC_VAULT.with_row_bytes(row_bytes))
            out[row_bytes] = FftAccelerator().model(
                device, params).result.time
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — FFT time vs row-buffer bytes:", {
        k: round(v * 1e6, 1) for k, v in times.items()})
    # larger rows help (fewer activates) or are at worst neutral
    assert times[8192] <= times[512] * 1.05


def test_ablation_flush_dirty_fraction(benchmark):
    """Sensitivity of invocation cost to cache dirtiness."""
    def sweep():
        return {frac: InvocationModel(
            cache=CacheHierarchy(dirty_fraction=frac)).total(
                4096, 8 << 20).time for frac in (0.1, 0.5, 0.9)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — invocation time vs dirty fraction:", {
        k: round(v * 1e6, 1) for k, v in times.items()})
    assert times[0.1] < times[0.5] < times[0.9]
