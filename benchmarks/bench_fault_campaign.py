"""Fault-injection campaign: availability, detection, resilience cost.

Three sweeps through the hardened runtime:

* **rate sweep** — descriptor corruption / CU hangs / DRAM bit errors
  at growing intensity: availability, detection rate, resilience share;
* **tile-kill sweep** — 0..16 dead tiles: under per-vault fallback the
  accelerated path survives every partial loss (availability stays 1.0
  with measurable reroute overhead) and collapses to the host only
  when no tile is left;
* **link-failure sweep** — 0..k failed mesh links: the adaptive router
  detours around them, availability stays high, and the degraded
  bisection bandwidth quantifies the lost headroom. A link-flap point
  shows transient outages cost one execution, not the rest of the run.

Also checks the end-to-end acceptance properties: ECC-corrected runs
are bit-exact against fault-free runs, and STAP still completes — on
15 tiles, not on the host — with a dead accelerator tile.

Runnable as a script: ``python benchmarks/bench_fault_campaign.py
--json -`` emits the sweeps as schema-stable JSON for dashboards.
"""

import argparse
import json
import sys

import numpy as np
import pytest

from repro.accel import AxpyParams
from repro.apps.stap import PRESETS, run_stap_mealib
from repro.core import MealibSystem, ParamStore
from repro.faults import FaultInjector

#: Fault intensity knob: descriptor corruption at x, CU hangs at x/4,
#: DRAM bit errors at x * 1e-4 per bit.
INTENSITIES = (0.0, 0.1, 0.3, 0.6)
EXECUTES = 25

SCHEMA = "fault-campaign/v2"


def make_system(faults=None):
    return MealibSystem(stack_bytes=256 << 20, faults=faults)


def make_axpy_plan(system, n=4096):
    xb, x = system.space.alloc_array((n,), np.float32)
    yb, y = system.space.alloc_array((n,), np.float32)
    x[:] = 1.0
    y[:] = 1.0
    store = ParamStore()
    store.add("a.para", AxpyParams(n=n, alpha=2.0, x_pa=xb.pa,
                                   y_pa=yb.pa).pack())
    plan = system.runtime.acc_plan("PASS { COMP AXPY a.para }", store,
                                   in_size=n * 8, out_size=n * 4)
    return plan, y


def _run_point(system, executes):
    plan, _ = make_axpy_plan(system)
    for _ in range(executes):
        system.runtime.acc_execute(plan, functional=False)
    counters = system.runtime.counters
    fault, retry, reroute, fallback = system.resilience_breakdown()
    resilience = fault.plus(retry).plus(reroute).plus(fallback)
    total = system.total()
    return {
        "availability": counters.availability,
        "degraded_fraction": counters.degraded_fraction,
        "retries": counters.retries,
        "fallbacks": counters.fallbacks,
        "rerouted_stripes": counters.rerouted_stripes,
        "ecc_corrections": counters.ecc_corrections,
        "overhead": resilience.time / total.time,
        "reroute_share": reroute.time / total.time,
        "total_time": total.time,
        "total_energy": total.energy,
    }


def campaign_point(intensity, seed=4, executes=EXECUTES):
    faults = None
    if intensity > 0:
        faults = FaultInjector(seed=seed,
                               descriptor_corruption_rate=intensity,
                               hang_rate=intensity / 4,
                               dram_bit_error_rate=intensity * 1e-4)
    system = make_system(faults)
    point = _run_point(system, executes)
    point["detection"] = (faults.stats.detection_rate
                          if faults is not None else 1.0)
    return point


def tile_kill_point(dead_tiles, seed=4, executes=EXECUTES):
    """Availability/overhead with ``dead_tiles`` tiles hard-failed."""
    system = make_system(FaultInjector(seed=seed))
    for vault in range(dead_tiles):
        system.layer.mark_tile_failed(vault)
    point = _run_point(system, executes)
    point["dead_tiles"] = dead_tiles
    point["serving_tiles"] = len(system.layer.serving_tiles())
    return point


def link_failure_point(failed_links, seed=4, executes=EXECUTES,
                       flap=False):
    """Availability/overhead with ``failed_links`` links failed up
    front (plus optional per-execute link flaps)."""
    injector = FaultInjector(seed=seed,
                             link_flap_rate=1.0 if flap else 0.0)
    system = make_system(injector)
    noc = system.layer.noc
    # one seeded permutation, failing its first k links: the failure
    # sets nest, so bisection bandwidth declines monotonically with k
    rng = np.random.default_rng(seed)
    links = noc.links()
    for i in rng.permutation(len(links))[:failed_links]:
        noc.fail_link(*links[int(i)])
    point = _run_point(system, executes)
    point["failed_links"] = failed_links
    point["bisection_gbps"] = noc.bisection_bandwidth() / 1e9
    point["link_flaps"] = injector.stats.link_flaps
    return point


def run_campaign(dead_tiles=(0, 1, 2, 4, 8, 16),
                 failed_links=(0, 1, 2, 4, 6),
                 executes=EXECUTES, seed=4):
    """The full campaign as one schema-stable record."""
    return {
        "schema": SCHEMA,
        "executes": executes,
        "seed": seed,
        "rate_sweep": [
            dict(campaign_point(x, seed=seed, executes=executes),
                 intensity=x)
            for x in INTENSITIES],
        "tile_kill": [tile_kill_point(k, seed=seed, executes=executes)
                      for k in dead_tiles],
        "link_failure": [
            link_failure_point(k, seed=seed, executes=executes)
            for k in failed_links],
        "link_flap": link_failure_point(0, seed=seed,
                                        executes=executes, flap=True),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="MEALib fault-injection campaign")
    parser.add_argument("--dead-tiles", type=int, nargs="+",
                        default=[0, 1, 2, 4, 8, 16])
    parser.add_argument("--failed-links", type=int, nargs="+",
                        default=[0, 1, 2, 4, 6])
    parser.add_argument("--executes", type=int, default=EXECUTES)
    parser.add_argument("--seed", type=int, default=4)
    parser.add_argument("--json", default="-",
                        help="output path, or - for stdout")
    args = parser.parse_args(argv)
    campaign = run_campaign(dead_tiles=tuple(args.dead_tiles),
                            failed_links=tuple(args.failed_links),
                            executes=args.executes, seed=args.seed)
    payload = json.dumps(campaign, indent=1, sort_keys=True)
    if args.json == "-":
        print(payload)
    else:
        with open(args.json, "w") as fh:
            fh.write(payload + "\n")
    return 0


def test_campaign_rate_sweep(benchmark):
    def sweep():
        return {x: campaign_point(x) for x in INTENSITIES}

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFault campaign (descriptor corruption x, hangs x/4, "
          "DRAM BER x*1e-4):")
    print(f"{'x':>5} {'avail':>6} {'detect':>7} {'overhead':>9} "
          f"{'retries':>8} {'fallbacks':>10} {'ecc-corr':>9}")
    for x, p in points.items():
        print(f"{x:>5} {p['availability']:>6.2f} {p['detection']:>7.2f} "
              f"{100 * p['overhead']:>8.1f}% {p['retries']:>8} "
              f"{p['fallbacks']:>10} {p['ecc_corrections']:>9}")
    clean = points[0.0]
    assert clean["availability"] == 1.0
    assert clean["overhead"] == 0.0
    overheads = [points[x]["overhead"] for x in INTENSITIES]
    assert overheads == sorted(overheads)       # cost grows with rate
    assert points[0.6]["overhead"] > 0
    assert points[0.6]["retries"] > points[0.1]["retries"]
    for x in INTENSITIES[1:]:
        assert points[x]["detection"] >= 0.99   # SECDED + CRC catch ~all

def test_campaign_tile_kill_sweep(benchmark):
    kills = (0, 1, 4, 15, 16)

    def sweep():
        return {k: tile_kill_point(k) for k in kills}

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nTile-kill campaign (per-vault fallback):")
    print(f"{'dead':>5} {'serving':>8} {'avail':>6} {'reroute%':>9} "
          f"{'overhead%':>10}")
    for k, p in points.items():
        print(f"{k:>5} {p['serving_tiles']:>8} {p['availability']:>6.2f} "
              f"{100 * p['reroute_share']:>8.2f}% "
              f"{100 * p['overhead']:>9.2f}%")
    # a single dead tile no longer abandons the accelerated path: the
    # remaining 15 tiles serve it with measurable reroute overhead
    assert points[1]["availability"] == 1.0
    assert points[1]["serving_tiles"] == 15
    assert points[1]["fallbacks"] == 0
    assert points[1]["reroute_share"] > 0
    # PR 1 semantics gave availability 0.0 at one dead tile; the new
    # floor is only hit with every tile gone
    assert points[1]["availability"] > 0.0
    assert points[16]["availability"] == 0.0
    availabilities = [points[k]["availability"] for k in kills]
    assert availabilities == sorted(availabilities, reverse=True)
    # overhead grows with the number of rerouted stripes
    reroute = [points[k]["reroute_share"] for k in kills[:-1]]
    assert reroute == sorted(reroute)


def test_campaign_link_failure_sweep(benchmark):
    ks = (0, 1, 2, 4, 6)

    def sweep():
        points = {k: link_failure_point(k) for k in ks}
        points["flap"] = link_failure_point(0, flap=True)
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nLink-failure campaign (adaptive rerouting):")
    print(f"{'links':>6} {'avail':>6} {'bisection':>10} {'overhead%':>10}")
    for k in ks:
        p = points[k]
        print(f"{k:>6} {p['availability']:>6.2f} "
              f"{p['bisection_gbps']:>7.0f}GB/s "
              f"{100 * p['overhead']:>9.2f}%")
    p = points["flap"]
    print(f"{'flap':>6} {p['availability']:>6.2f} "
          f"{p['bisection_gbps']:>7.0f}GB/s "
          f"{100 * p['overhead']:>9.2f}%  ({p['link_flaps']} flaps)")
    clean = points[0]
    assert clean["availability"] == 1.0 and clean["overhead"] == 0.0
    # acceptance: availability at 1 failed link strictly beats PR 1's
    # one-dead-tile availability (0.0 under all-or-nothing fallback)
    assert points[1]["availability"] == 1.0
    assert points[1]["availability"] > 0.0
    availabilities = [points[k]["availability"] for k in ks]
    assert availabilities == sorted(availabilities, reverse=True)
    bisections = [points[k]["bisection_gbps"] for k in ks]
    assert bisections == sorted(bisections, reverse=True)
    assert bisections[-1] < bisections[0]
    # flapped links are restored: the mesh ends the run healthy
    assert points["flap"]["link_flaps"] == EXECUTES
    assert points["flap"]["bisection_gbps"] == clean["bisection_gbps"]


def test_ecc_corrected_runs_are_bit_exact(benchmark):
    def pair():
        plain = make_system()
        plan_p, y_p = make_axpy_plan(plain)
        protected = make_system(
            FaultInjector(seed=9, dram_bit_error_rate=2e-4))
        plan_f, y_f = make_axpy_plan(protected)
        for _ in range(30):
            plain.runtime.acc_execute(plan_p)
            protected.runtime.acc_execute(plan_f)
        return (y_p.tobytes(), y_f.tobytes(),
                protected.runtime.counters.ecc_corrections)

    y_plain, y_faulty, corrections = benchmark.pedantic(
        pair, rounds=1, iterations=1)
    print(f"\nECC campaign: {corrections} single-bit corrections, "
          f"results bit-exact: {y_plain == y_faulty}")
    assert corrections > 0                      # faults really happened
    assert y_plain == y_faulty                  # and were transparent


def test_stap_survives_dead_tile_on_fifteen_tiles(benchmark):
    cfg = PRESETS["small"]

    def run_pair():
        clean = run_stap_mealib(cfg, system=make_system())
        crippled_sys = make_system(FaultInjector(seed=0))
        crippled_sys.layer.mark_tile_failed(5)
        crippled = run_stap_mealib(cfg, system=crippled_sys)
        return clean, crippled, crippled_sys

    clean, crippled, system = benchmark.pedantic(run_pair, rounds=1,
                                                 iterations=1)
    reroute = system.ledger.total("reroute")
    print(f"\nSTAP with dead tile: completed in {crippled.result.time:.4f}s "
          f"(clean {clean.result.time:.4f}s) on "
          f"{len(system.layer.serving_tiles())} tiles, reroute overhead "
          f"{1e3 * reroute.time:.3f}ms over "
          f"{system.runtime.counters.degraded_executes} descriptors")
    # the dead tile costs bandwidth, not the accelerated path
    assert system.runtime.counters.fallbacks == 0
    assert system.runtime.counters.availability == 1.0
    assert system.ledger.total("fallback").time == 0
    assert reroute.time > 0
    assert system.runtime.counters.degraded_executes > 0
    assert crippled.result.time > clean.result.time     # degraded is slower
    for name, ref in clean.buffers.items():             # but still correct
        np.testing.assert_allclose(crippled.buffers[name], ref,
                                   rtol=1e-5, atol=1e-6,
                                   err_msg=f"buffer {name} diverged")


def test_disabled_injector_matches_baseline(benchmark):
    def pair():
        plain = make_system()
        hardened = make_system(FaultInjector(seed=0, ecc_enabled=False))
        r_plain = plain.runtime.acc_execute(
            make_axpy_plan(plain)[0], functional=False)
        r_hard = hardened.runtime.acc_execute(
            make_axpy_plan(hardened)[0], functional=False)
        return r_plain, r_hard

    r_plain, r_hard = benchmark.pedantic(pair, rounds=1, iterations=1)
    print(f"\nFault-free parity: baseline {r_plain.time:.3e}s, "
          f"zero-rate injector {r_hard.time:.3e}s")
    assert r_hard.time == r_plain.time
    assert r_hard.energy == pytest.approx(r_plain.energy, rel=0, abs=0)


if __name__ == "__main__":
    sys.exit(main())
