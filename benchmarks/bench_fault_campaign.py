"""Fault-injection campaign: availability, detection, resilience cost.

Four sweeps through the hardened runtime:

* **rate sweep** — descriptor corruption / CU hangs / DRAM bit errors
  at growing intensity: availability, detection rate, resilience share;
* **tile-kill sweep** — 0..16 dead tiles: under per-vault fallback the
  accelerated path survives every partial loss (availability stays 1.0
  with measurable reroute overhead) and collapses to the host only
  when no tile is left;
* **link-failure sweep** — 0..k failed mesh links: the adaptive router
  detours around them, availability stays high, and the degraded
  bisection bandwidth quantifies the lost headroom. A link-flap point
  shows transient outages cost one execution, not the rest of the run;
* **scrub-interval sweep** — latent cell flips accrue in a cold
  (data-at-rest) buffer while a hot working set executes; a background
  patrol scrubber at shrinking intervals drains singles before they
  pair, so the demand-path uncorrectable count of a final cold-buffer
  read declines monotonically while the ``scrub`` ledger cost rises —
  the classic scrub-rate vs. reliability tradeoff. The intervals form
  a divisor chain (and deposits draw from a dedicated PRNG stream), so
  finer settings drain pointwise-superset flip sets and monotonicity
  is a property, not luck;
* **thermal sweep** (``--thermal-sweep``, emitted separately as
  ``BENCH_thermal.json``) — the power-envelope governor at tightening
  envelope margins above ambient: a tighter envelope trips earlier and
  releases later, so total throttle time never decreases as the margin
  shrinks; plus an Arrhenius contrast pair (strong vs. starved
  heatsink) showing the hotter stack accepts a pointwise superset of
  the cooler stack's latent flips on every vault.

Also checks the end-to-end acceptance properties: ECC-corrected runs
are bit-exact against fault-free runs, and STAP still completes — on
15 tiles, not on the host — with a dead accelerator tile.

Runnable as a script: ``python benchmarks/bench_fault_campaign.py
--json -`` emits the sweeps as schema-stable JSON for dashboards.
"""

import argparse
import json
import sys

import numpy as np
import pytest

from repro.accel import AxpyParams
from repro.apps.stap import PRESETS, run_stap_mealib
from repro.core import MealibSystem, ParamStore
from repro.faults import FaultInjector, ScrubConfig
from repro.thermal import AMBIENT_K, ThermalConfig

#: Fault intensity knob: descriptor corruption at x, CU hangs at x/4,
#: DRAM bit errors at x * 1e-4 per bit.
INTENSITIES = (0.0, 0.1, 0.3, 0.6)
EXECUTES = 25

#: Scrub sweep: patrol intervals (in executes; 0 disables) forming a
#: divisor chain so finer settings' scrub points nest inside coarser
#: ones', latent-upset rate per backed bit per step, and the number of
#: hot executes the cold buffer sits at rest for.
SCRUB_INTERVALS = (0, 16, 8, 4, 2, 1)
SCRUB_RATE = 3e-5
SCRUB_EXECUTES = 30

SCHEMA = "fault-campaign/v3"

#: Thermal sweep: envelope margins in kelvin above ambient, tightening
#: left to right (the working set heats vaults a couple of kelvin, so
#: single-digit margins are the interesting regime), crossed with
#: patrol intervals (0 disables); latent-upset rate for the Arrhenius
#: coupling; and the hot working-set size that does the heating.
THERMAL_SCHEMA = "thermal-campaign/v1"
THERMAL_MARGINS = (4.0, 2.0, 1.0, 0.25)
THERMAL_INTERVALS = (0, 4)
THERMAL_RATE = 2e-5
THERMAL_EXECUTES = 8
THERMAL_N = 65536


def make_system(faults=None):
    return MealibSystem(stack_bytes=256 << 20, faults=faults)


def make_axpy_plan(system, n=4096):
    xb, x = system.space.alloc_array((n,), np.float32)
    yb, y = system.space.alloc_array((n,), np.float32)
    x[:] = 1.0
    y[:] = 1.0
    store = ParamStore()
    store.add("a.para", AxpyParams(n=n, alpha=2.0, x_pa=xb.pa,
                                   y_pa=yb.pa).pack())
    plan = system.runtime.acc_plan("PASS { COMP AXPY a.para }", store,
                                   in_size=n * 8, out_size=n * 4)
    return plan, y


def _run_point(system, executes):
    plan, _ = make_axpy_plan(system)
    for _ in range(executes):
        system.runtime.acc_execute(plan, functional=False)
    counters = system.runtime.counters
    fault, retry, reroute, fallback = system.resilience_breakdown()
    resilience = fault.plus(retry).plus(reroute).plus(fallback)
    total = system.total()
    return {
        "availability": counters.availability,
        "degraded_fraction": counters.degraded_fraction,
        "retries": counters.retries,
        "fallbacks": counters.fallbacks,
        "rerouted_stripes": counters.rerouted_stripes,
        "ecc_corrections": counters.ecc_corrections,
        "overhead": resilience.time / total.time,
        "reroute_share": reroute.time / total.time,
        "total_time": total.time,
        "total_energy": total.energy,
    }


def campaign_point(intensity, seed=4, executes=EXECUTES):
    faults = None
    if intensity > 0:
        faults = FaultInjector(seed=seed,
                               descriptor_corruption_rate=intensity,
                               hang_rate=intensity / 4,
                               dram_bit_error_rate=intensity * 1e-4)
    system = make_system(faults)
    point = _run_point(system, executes)
    point["detection"] = (faults.stats.detection_rate
                          if faults is not None else 1.0)
    return point


def tile_kill_point(dead_tiles, seed=4, executes=EXECUTES):
    """Availability/overhead with ``dead_tiles`` tiles hard-failed."""
    system = make_system(FaultInjector(seed=seed))
    for vault in range(dead_tiles):
        system.layer.mark_tile_failed(vault)
    point = _run_point(system, executes)
    point["dead_tiles"] = dead_tiles
    point["serving_tiles"] = len(system.layer.serving_tiles())
    return point


def link_failure_point(failed_links, seed=4, executes=EXECUTES,
                       flap=False):
    """Availability/overhead with ``failed_links`` links failed up
    front (plus optional per-execute link flaps)."""
    injector = FaultInjector(seed=seed,
                             link_flap_rate=1.0 if flap else 0.0)
    system = make_system(injector)
    noc = system.layer.noc
    # one seeded permutation, failing its first k links: the failure
    # sets nest, so bisection bandwidth declines monotonically with k
    rng = np.random.default_rng(seed)
    links = noc.links()
    for i in rng.permutation(len(links))[:failed_links]:
        noc.fail_link(*links[int(i)])
    point = _run_point(system, executes)
    point["failed_links"] = failed_links
    point["bisection_gbps"] = noc.bisection_bandwidth() / 1e9
    point["link_flaps"] = injector.stats.link_flaps
    return point


def scrub_sweep_point(interval, seed=4, executes=SCRUB_EXECUTES,
                      rate=SCRUB_RATE, n_cold=32768):
    """One scrub-interval setting of the data-at-rest campaign.

    A hot AXPY working set executes ``executes`` times while latent
    upsets accrue everywhere backed — in particular in a *cold* buffer
    nothing reads. The hot operands are adjudicated (and drained) at
    every operand fetch, so only patrol scrubbing stands between the
    cold buffer's singles and their pairing into uncorrectable doubles.
    A final accelerated read of the cold buffer then surfaces whatever
    survived: its demand-path uncorrectable count is the sweep metric
    (scrub-found at-rest doubles are reported separately — a busier
    patrol *finds* more, so counting them would invert the tradeoff).
    """
    faults = FaultInjector(seed=seed, latent_flip_rate=rate)
    system = MealibSystem(stack_bytes=256 << 20, faults=faults,
                          scrub=ScrubConfig(interval=interval))
    plan, _ = make_axpy_plan(system)
    cold_b, cold = system.space.alloc_array((n_cold,), np.float32)
    out_b, out = system.space.alloc_array((n_cold,), np.float32)
    cold[:] = 1.0
    out[:] = 0.0
    store = ParamStore()
    store.add("r.para", AxpyParams(n=n_cold, alpha=1.0, x_pa=cold_b.pa,
                                   y_pa=out_b.pa).pack())
    reader = system.runtime.acc_plan("PASS { COMP AXPY r.para }", store,
                                     in_size=n_cold * 8,
                                     out_size=n_cold * 4)
    for _ in range(executes):
        system.runtime.acc_execute(plan, functional=False)
    system.runtime.acc_execute(reader, functional=False)
    datapath = system.datapath.stats
    scrub = system.scrubber.stats
    scrub_cost = system.ledger.total("scrub")
    total = system.total()
    return {
        "interval": interval,
        "deposited": faults.stats.latent_flips_deposited,
        "demand_uncorrectable": datapath.words_repaired,
        "demand_corrected": datapath.words_corrected,
        "demand_silent": datapath.words_silent,
        "retries": system.runtime.counters.retries,
        "scrub_passes": scrub.passes,
        "scrub_corrected": scrub.words_corrected,
        "scrub_uncorrectable": scrub.words_repaired,
        "scrub_time": scrub_cost.time,
        "scrub_energy": scrub_cost.energy,
        "scrub_share": scrub_cost.time / total.time if total.time else 0.0,
    }


def thermal_sweep_point(margin, interval=0, seed=4,
                        executes=THERMAL_EXECUTES, rate=THERMAL_RATE):
    """One envelope-margin setting of the thermal campaign.

    A hot AXPY working set heats the stack while the governor watches
    an envelope ``margin`` kelvin above ambient. A tighter margin trips
    earlier and (with the hysteresis band reaching below the ambient
    floor) never releases, so total throttle time is monotone in the
    margin. Latent flips deposit through the Arrhenius thinning path,
    and an optional patrol scrubber adds its walk heat to the vaults
    it scans.
    """
    faults = FaultInjector(seed=seed, latent_flip_rate=rate)
    system = MealibSystem(
        stack_bytes=256 << 20, faults=faults,
        scrub=ScrubConfig(interval=interval) if interval else None,
        thermal=ThermalConfig(envelope=AMBIENT_K + margin))
    plan, _ = make_axpy_plan(system, n=THERMAL_N)
    for _ in range(executes):
        system.runtime.acc_execute(plan, functional=False)
    throttle = system.ledger.total("throttle")
    scrub_cost = system.ledger.total("scrub")
    total = system.total()
    stats = system.governor.stats
    return {
        "margin_k": margin,
        "interval": interval,
        "envelope_k": AMBIENT_K + margin,
        "peak_vault_k": system.thermal.peak_vault_temp,
        "peak_logic_k": system.thermal.peak_logic,
        "throttle_time": throttle.time,
        "throttle_energy": throttle.energy,
        "throttle_events": stats.throttle_events,
        "throttled_executes": system.runtime.counters.throttled_executes,
        "offline_events": stats.offline_events,
        "availability": system.runtime.counters.availability,
        "deposited": faults.stats.latent_flips_deposited,
        "latent_by_vault": {str(v): c for v, c in
                            sorted(faults.latent_deposits_by_vault.items())},
        "scrub_time": scrub_cost.time,
        "total_time": total.time,
        "total_energy": total.energy,
    }


def thermal_arrhenius_point(g_sink, seed=4, executes=THERMAL_EXECUTES,
                            rate=THERMAL_RATE):
    """One heatsink setting of the Arrhenius contrast pair.

    Same seed, same workload, unreachable envelope (throttling off the
    table): only the heatsink conductance differs, so any difference in
    accepted latent flips is pure temperature. With ``arrhenius_cap``
    bounding the thinning, the hot run's acceptances are a pointwise
    superset of the cool run's.
    """
    faults = FaultInjector(seed=seed, latent_flip_rate=rate)
    system = MealibSystem(
        stack_bytes=256 << 20, faults=faults,
        thermal=ThermalConfig(g_sink=g_sink, arrhenius_doubling=1.0,
                              arrhenius_cap=8.0, envelope=10_000.0,
                              critical=20_000.0))
    plan, _ = make_axpy_plan(system, n=THERMAL_N)
    for _ in range(executes):
        system.runtime.acc_execute(plan, functional=False)
    by_vault = system.faults.latent_deposits_by_vault
    return {
        "g_sink": g_sink,
        "max_temp_k": system.thermal.max_temp,
        "peak_vault_k": system.thermal.peak_vault_temp,
        "deposited": system.faults.stats.latent_flips_deposited,
        "latent_by_vault": {str(v): c for v, c in sorted(by_vault.items())},
    }


def run_thermal_campaign(margins=THERMAL_MARGINS,
                         intervals=THERMAL_INTERVALS,
                         executes=THERMAL_EXECUTES, seed=4):
    """The thermal campaign as one schema-stable record."""
    return {
        "schema": THERMAL_SCHEMA,
        "executes": executes,
        "seed": seed,
        "ambient_k": AMBIENT_K,
        "envelope_sweep": [
            thermal_sweep_point(m, interval=i, seed=seed,
                                executes=executes)
            for i in intervals for m in margins],
        "arrhenius_contrast": {
            "cool": thermal_arrhenius_point(50.0, seed=seed,
                                            executes=executes),
            "hot": thermal_arrhenius_point(0.05, seed=seed,
                                           executes=executes),
        },
    }


def run_campaign(dead_tiles=(0, 1, 2, 4, 8, 16),
                 failed_links=(0, 1, 2, 4, 6),
                 scrub_intervals=SCRUB_INTERVALS,
                 executes=EXECUTES, seed=4):
    """The full campaign as one schema-stable record."""
    return {
        "schema": SCHEMA,
        "executes": executes,
        "seed": seed,
        "rate_sweep": [
            dict(campaign_point(x, seed=seed, executes=executes),
                 intensity=x)
            for x in INTENSITIES],
        "tile_kill": [tile_kill_point(k, seed=seed, executes=executes)
                      for k in dead_tiles],
        "link_failure": [
            link_failure_point(k, seed=seed, executes=executes)
            for k in failed_links],
        "link_flap": link_failure_point(0, seed=seed,
                                        executes=executes, flap=True),
        "scrub_sweep": [scrub_sweep_point(i, seed=seed)
                        for i in scrub_intervals],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="MEALib fault-injection campaign")
    parser.add_argument("--dead-tiles", type=int, nargs="+",
                        default=[0, 1, 2, 4, 8, 16])
    parser.add_argument("--failed-links", type=int, nargs="+",
                        default=[0, 1, 2, 4, 6])
    parser.add_argument("--scrub-intervals", type=int, nargs="+",
                        default=list(SCRUB_INTERVALS),
                        help="patrol intervals in executes (0 disables); "
                             "keep them a divisor chain so the "
                             "uncorrectable-rate monotonicity holds")
    parser.add_argument("--executes", type=int, default=EXECUTES)
    parser.add_argument("--seed", type=int, default=4)
    parser.add_argument("--json", default="-",
                        help="output path, or - for stdout")
    parser.add_argument("--thermal-sweep", nargs="?", metavar="PATH",
                        const="BENCH_thermal.json", default=None,
                        help="run the thermal campaign instead and "
                             "write it to PATH (default "
                             "BENCH_thermal.json, - for stdout)")
    parser.add_argument("--thermal-margins", type=float, nargs="+",
                        default=list(THERMAL_MARGINS),
                        help="envelope margins in K above ambient; "
                             "keep them tightening so throttle-time "
                             "monotonicity reads off the sweep")
    parser.add_argument("--thermal-intervals", type=int, nargs="+",
                        default=list(THERMAL_INTERVALS),
                        help="patrol intervals crossed with the "
                             "margins (0 disables the scrubber)")
    args = parser.parse_args(argv)
    if args.thermal_sweep is not None:
        executes = (args.executes if args.executes != EXECUTES
                    else THERMAL_EXECUTES)
        record = run_thermal_campaign(
            margins=tuple(args.thermal_margins),
            intervals=tuple(args.thermal_intervals),
            executes=executes, seed=args.seed)
        payload = json.dumps(record, indent=1, sort_keys=True)
        if args.thermal_sweep == "-":
            print(payload)
        else:
            with open(args.thermal_sweep, "w") as fh:
                fh.write(payload + "\n")
        return 0
    campaign = run_campaign(dead_tiles=tuple(args.dead_tiles),
                            failed_links=tuple(args.failed_links),
                            scrub_intervals=tuple(args.scrub_intervals),
                            executes=args.executes, seed=args.seed)
    payload = json.dumps(campaign, indent=1, sort_keys=True)
    if args.json == "-":
        print(payload)
    else:
        with open(args.json, "w") as fh:
            fh.write(payload + "\n")
    return 0


def test_campaign_rate_sweep(benchmark):
    def sweep():
        return {x: campaign_point(x) for x in INTENSITIES}

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFault campaign (descriptor corruption x, hangs x/4, "
          "DRAM BER x*1e-4):")
    print(f"{'x':>5} {'avail':>6} {'detect':>7} {'overhead':>9} "
          f"{'retries':>8} {'fallbacks':>10} {'ecc-corr':>9}")
    for x, p in points.items():
        print(f"{x:>5} {p['availability']:>6.2f} {p['detection']:>7.2f} "
              f"{100 * p['overhead']:>8.1f}% {p['retries']:>8} "
              f"{p['fallbacks']:>10} {p['ecc_corrections']:>9}")
    clean = points[0.0]
    assert clean["availability"] == 1.0
    assert clean["overhead"] == 0.0
    overheads = [points[x]["overhead"] for x in INTENSITIES]
    assert overheads == sorted(overheads)       # cost grows with rate
    assert points[0.6]["overhead"] > 0
    assert points[0.6]["retries"] > points[0.1]["retries"]
    for x in INTENSITIES[1:]:
        assert points[x]["detection"] >= 0.99   # SECDED + CRC catch ~all

def test_campaign_tile_kill_sweep(benchmark):
    kills = (0, 1, 4, 15, 16)

    def sweep():
        return {k: tile_kill_point(k) for k in kills}

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nTile-kill campaign (per-vault fallback):")
    print(f"{'dead':>5} {'serving':>8} {'avail':>6} {'reroute%':>9} "
          f"{'overhead%':>10}")
    for k, p in points.items():
        print(f"{k:>5} {p['serving_tiles']:>8} {p['availability']:>6.2f} "
              f"{100 * p['reroute_share']:>8.2f}% "
              f"{100 * p['overhead']:>9.2f}%")
    # a single dead tile no longer abandons the accelerated path: the
    # remaining 15 tiles serve it with measurable reroute overhead
    assert points[1]["availability"] == 1.0
    assert points[1]["serving_tiles"] == 15
    assert points[1]["fallbacks"] == 0
    assert points[1]["reroute_share"] > 0
    # PR 1 semantics gave availability 0.0 at one dead tile; the new
    # floor is only hit with every tile gone
    assert points[1]["availability"] > 0.0
    assert points[16]["availability"] == 0.0
    availabilities = [points[k]["availability"] for k in kills]
    assert availabilities == sorted(availabilities, reverse=True)
    # overhead grows with the number of rerouted stripes
    reroute = [points[k]["reroute_share"] for k in kills[:-1]]
    assert reroute == sorted(reroute)


def test_campaign_link_failure_sweep(benchmark):
    ks = (0, 1, 2, 4, 6)

    def sweep():
        points = {k: link_failure_point(k) for k in ks}
        points["flap"] = link_failure_point(0, flap=True)
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nLink-failure campaign (adaptive rerouting):")
    print(f"{'links':>6} {'avail':>6} {'bisection':>10} {'overhead%':>10}")
    for k in ks:
        p = points[k]
        print(f"{k:>6} {p['availability']:>6.2f} "
              f"{p['bisection_gbps']:>7.0f}GB/s "
              f"{100 * p['overhead']:>9.2f}%")
    p = points["flap"]
    print(f"{'flap':>6} {p['availability']:>6.2f} "
          f"{p['bisection_gbps']:>7.0f}GB/s "
          f"{100 * p['overhead']:>9.2f}%  ({p['link_flaps']} flaps)")
    clean = points[0]
    assert clean["availability"] == 1.0 and clean["overhead"] == 0.0
    # acceptance: availability at 1 failed link strictly beats PR 1's
    # one-dead-tile availability (0.0 under all-or-nothing fallback)
    assert points[1]["availability"] == 1.0
    assert points[1]["availability"] > 0.0
    availabilities = [points[k]["availability"] for k in ks]
    assert availabilities == sorted(availabilities, reverse=True)
    bisections = [points[k]["bisection_gbps"] for k in ks]
    assert bisections == sorted(bisections, reverse=True)
    assert bisections[-1] < bisections[0]
    # flapped links are restored: the mesh ends the run healthy
    assert points["flap"]["link_flaps"] == EXECUTES
    assert points["flap"]["bisection_gbps"] == clean["bisection_gbps"]


def test_campaign_scrub_sweep(benchmark):
    def sweep():
        return [scrub_sweep_point(i) for i in SCRUB_INTERVALS]

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nScrub-interval campaign (latent upsets at "
          f"{SCRUB_RATE:g}/bit/step):")
    print(f"{'interval':>9} {'demand-unc':>11} {'corrected':>10} "
          f"{'scrub-unc':>10} {'scrub-ms':>9}")
    for p in points:
        label = p["interval"] if p["interval"] else "off"
        print(f"{label:>9} {p['demand_uncorrectable']:>11} "
              f"{p['demand_corrected']:>10} {p['scrub_uncorrectable']:>10} "
              f"{1e3 * p['scrub_time']:>9.3f}")
    # the acceptance property: shrinking the patrol interval never
    # increases the demand-path uncorrectable rate
    unc = [p["demand_uncorrectable"] for p in points]
    assert unc == sorted(unc, reverse=True)
    assert unc[0] > 0                       # unscrubbed pairs really form
    assert unc[-1] < unc[0]                 # and patrol really drains them
    # every demand-path double was recovered by retry, invisibly
    assert all(p["retries"] >= (1 if p["demand_uncorrectable"] else 0)
               for p in points)
    # the price: scrub cost rises monotonically with patrol frequency
    times = [p["scrub_time"] for p in points]
    assert times == sorted(times)
    assert points[0]["scrub_time"] == 0.0   # disabled patrol is free
    assert points[0]["scrub_passes"] == 0
    # deposits are scrub-policy-invariant (dedicated PRNG stream)
    deposited = {p["deposited"] for p in points}
    assert len(deposited) == 1


def test_campaign_thermal_sweep(benchmark):
    margins = THERMAL_MARGINS

    def sweep():
        points = [thermal_sweep_point(m) for m in margins]
        contrast = (thermal_arrhenius_point(50.0),
                    thermal_arrhenius_point(0.05))
        return points, contrast

    points, (cool, hot) = benchmark.pedantic(sweep, rounds=1,
                                             iterations=1)
    print("\nThermal campaign (envelope margin above "
          f"{AMBIENT_K:.0f}K ambient):")
    print(f"{'margin':>7} {'peak-K':>7} {'thr-us':>7} {'events':>7} "
          f"{'throttled':>10}")
    for p in points:
        print(f"{p['margin_k']:>7} {p['peak_vault_k']:>7.2f} "
              f"{1e6 * p['throttle_time']:>7.2f} "
              f"{p['throttle_events']:>7} {p['throttled_executes']:>10}")
    print(f"Arrhenius contrast: cool {cool['max_temp_k']:.2f}K / "
          f"{cool['deposited']} flips, hot {hot['max_temp_k']:.2f}K / "
          f"{hot['deposited']} flips")
    # the acceptance property: tightening the envelope margin never
    # decreases total throttle time (at fixed seed and workload)
    times = [p["throttle_time"] for p in points]
    assert times == sorted(times)
    assert times[0] == 0.0                  # widest margin never trips
    assert times[-1] > 0.0                  # tightest margin throttles
    assert points[-1]["throttled_executes"] > 0
    # throttling observes, never drops: the accelerated path survives
    assert all(p["availability"] == 1.0 for p in points)
    assert all(p["offline_events"] == 0 for p in points)
    # the Arrhenius coupling: the hotter stack never sees fewer latent
    # flips than the cooler one, on any vault
    assert hot["max_temp_k"] > cool["max_temp_k"] + 1.0
    for vault in range(16):
        key = str(vault)
        assert (hot["latent_by_vault"].get(key, 0)
                >= cool["latent_by_vault"].get(key, 0))
    assert hot["deposited"] > cool["deposited"]


def test_ecc_corrected_runs_are_bit_exact(benchmark):
    def pair():
        plain = make_system()
        plan_p, y_p = make_axpy_plan(plain)
        protected = make_system(
            FaultInjector(seed=9, dram_bit_error_rate=2e-4))
        plan_f, y_f = make_axpy_plan(protected)
        for _ in range(30):
            plain.runtime.acc_execute(plan_p)
            protected.runtime.acc_execute(plan_f)
        return (y_p.tobytes(), y_f.tobytes(),
                protected.runtime.counters.ecc_corrections)

    y_plain, y_faulty, corrections = benchmark.pedantic(
        pair, rounds=1, iterations=1)
    print(f"\nECC campaign: {corrections} single-bit corrections, "
          f"results bit-exact: {y_plain == y_faulty}")
    assert corrections > 0                      # faults really happened
    assert y_plain == y_faulty                  # and were transparent


def test_stap_survives_dead_tile_on_fifteen_tiles(benchmark):
    cfg = PRESETS["small"]

    def run_pair():
        clean = run_stap_mealib(cfg, system=make_system())
        crippled_sys = make_system(FaultInjector(seed=0))
        crippled_sys.layer.mark_tile_failed(5)
        crippled = run_stap_mealib(cfg, system=crippled_sys)
        return clean, crippled, crippled_sys

    clean, crippled, system = benchmark.pedantic(run_pair, rounds=1,
                                                 iterations=1)
    reroute = system.ledger.total("reroute")
    print(f"\nSTAP with dead tile: completed in {crippled.result.time:.4f}s "
          f"(clean {clean.result.time:.4f}s) on "
          f"{len(system.layer.serving_tiles())} tiles, reroute overhead "
          f"{1e3 * reroute.time:.3f}ms over "
          f"{system.runtime.counters.degraded_executes} descriptors")
    # the dead tile costs bandwidth, not the accelerated path
    assert system.runtime.counters.fallbacks == 0
    assert system.runtime.counters.availability == 1.0
    assert system.ledger.total("fallback").time == 0
    assert reroute.time > 0
    assert system.runtime.counters.degraded_executes > 0
    assert crippled.result.time > clean.result.time     # degraded is slower
    for name, ref in clean.buffers.items():             # but still correct
        np.testing.assert_allclose(crippled.buffers[name], ref,
                                   rtol=1e-5, atol=1e-6,
                                   err_msg=f"buffer {name} diverged")


def test_disabled_injector_matches_baseline(benchmark):
    def pair():
        plain = make_system()
        hardened = make_system(FaultInjector(seed=0, ecc_enabled=False))
        r_plain = plain.runtime.acc_execute(
            make_axpy_plan(plain)[0], functional=False)
        r_hard = hardened.runtime.acc_execute(
            make_axpy_plan(hardened)[0], functional=False)
        return r_plain, r_hard

    r_plain, r_hard = benchmark.pedantic(pair, rounds=1, iterations=1)
    print(f"\nFault-free parity: baseline {r_plain.time:.3e}s, "
          f"zero-rate injector {r_hard.time:.3e}s")
    assert r_hard.time == r_plain.time
    assert r_hard.energy == pytest.approx(r_plain.energy, rel=0, abs=0)


if __name__ == "__main__":
    sys.exit(main())
