"""Fault-injection campaign: availability, detection, resilience cost.

Sweeps fault rates through the hardened runtime and reports, per rate:
the fraction of executes served by the accelerated path (availability),
the ECC/checksum detection rate, and the share of total time spent on
resilience (watchdog + retries + host fallback). Also checks the two
end-to-end acceptance properties: ECC-corrected runs are bit-exact
against fault-free runs, and STAP still completes (on the host) with a
dead accelerator tile.
"""

import numpy as np
import pytest

from repro.accel import AxpyParams
from repro.apps.stap import PRESETS, run_stap_mealib
from repro.core import MealibSystem, ParamStore
from repro.faults import FaultInjector

#: Fault intensity knob: descriptor corruption at x, CU hangs at x/4,
#: DRAM bit errors at x * 1e-4 per bit.
INTENSITIES = (0.0, 0.1, 0.3, 0.6)
EXECUTES = 25


def make_system(faults=None):
    return MealibSystem(stack_bytes=256 << 20, faults=faults)


def make_axpy_plan(system, n=4096):
    xb, x = system.space.alloc_array((n,), np.float32)
    yb, y = system.space.alloc_array((n,), np.float32)
    x[:] = 1.0
    y[:] = 1.0
    store = ParamStore()
    store.add("a.para", AxpyParams(n=n, alpha=2.0, x_pa=xb.pa,
                                   y_pa=yb.pa).pack())
    plan = system.runtime.acc_plan("PASS { COMP AXPY a.para }", store,
                                   in_size=n * 8, out_size=n * 4)
    return plan, y


def campaign_point(intensity, seed=4):
    faults = None
    if intensity > 0:
        faults = FaultInjector(seed=seed,
                               descriptor_corruption_rate=intensity,
                               hang_rate=intensity / 4,
                               dram_bit_error_rate=intensity * 1e-4)
    system = make_system(faults)
    plan, _ = make_axpy_plan(system)
    for _ in range(EXECUTES):
        system.runtime.acc_execute(plan, functional=False)
    counters = system.runtime.counters
    fault, retry, fallback = system.resilience_breakdown()
    resilience = fault.plus(retry).plus(fallback)
    total = system.total()
    return {
        "availability": counters.availability,
        "retries": counters.retries,
        "fallbacks": counters.fallbacks,
        "ecc_corrections": counters.ecc_corrections,
        "detection": (faults.stats.detection_rate
                      if faults is not None else 1.0),
        "overhead": resilience.time / total.time,
    }


def test_campaign_rate_sweep(benchmark):
    def sweep():
        return {x: campaign_point(x) for x in INTENSITIES}

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFault campaign (descriptor corruption x, hangs x/4, "
          "DRAM BER x*1e-4):")
    print(f"{'x':>5} {'avail':>6} {'detect':>7} {'overhead':>9} "
          f"{'retries':>8} {'fallbacks':>10} {'ecc-corr':>9}")
    for x, p in points.items():
        print(f"{x:>5} {p['availability']:>6.2f} {p['detection']:>7.2f} "
              f"{100 * p['overhead']:>8.1f}% {p['retries']:>8} "
              f"{p['fallbacks']:>10} {p['ecc_corrections']:>9}")
    clean = points[0.0]
    assert clean["availability"] == 1.0
    assert clean["overhead"] == 0.0
    overheads = [points[x]["overhead"] for x in INTENSITIES]
    assert overheads == sorted(overheads)       # cost grows with rate
    assert points[0.6]["overhead"] > 0
    assert points[0.6]["retries"] > points[0.1]["retries"]
    for x in INTENSITIES[1:]:
        assert points[x]["detection"] >= 0.99   # SECDED + CRC catch ~all


def test_ecc_corrected_runs_are_bit_exact(benchmark):
    def pair():
        plain = make_system()
        plan_p, y_p = make_axpy_plan(plain)
        protected = make_system(
            FaultInjector(seed=9, dram_bit_error_rate=2e-4))
        plan_f, y_f = make_axpy_plan(protected)
        for _ in range(30):
            plain.runtime.acc_execute(plan_p)
            protected.runtime.acc_execute(plan_f)
        return (y_p.tobytes(), y_f.tobytes(),
                protected.runtime.counters.ecc_corrections)

    y_plain, y_faulty, corrections = benchmark.pedantic(
        pair, rounds=1, iterations=1)
    print(f"\nECC campaign: {corrections} single-bit corrections, "
          f"results bit-exact: {y_plain == y_faulty}")
    assert corrections > 0                      # faults really happened
    assert y_plain == y_faulty                  # and were transparent


def test_stap_survives_dead_tile(benchmark):
    cfg = PRESETS["small"]

    def run_pair():
        clean = run_stap_mealib(cfg, system=make_system())
        crippled_sys = make_system(FaultInjector(seed=0))
        crippled_sys.layer.mark_tile_failed(5)
        crippled = run_stap_mealib(cfg, system=crippled_sys)
        return clean, crippled, crippled_sys

    clean, crippled, system = benchmark.pedantic(run_pair, rounds=1,
                                                 iterations=1)
    fallback = system.ledger.total("fallback")
    print(f"\nSTAP with dead tile: completed in {crippled.result.time:.4f}s "
          f"(clean {clean.result.time:.4f}s), host fallback "
          f"{1e3 * fallback.time:.2f}ms over "
          f"{system.runtime.counters.fallbacks} descriptors")
    assert fallback.time > 0
    assert system.runtime.counters.availability == 0.0
    assert crippled.result.time > clean.result.time     # fallback is slower
    for name, ref in clean.buffers.items():             # but still correct
        np.testing.assert_allclose(crippled.buffers[name], ref,
                                   rtol=1e-5, atol=1e-6,
                                   err_msg=f"buffer {name} diverged")


def test_disabled_injector_matches_baseline(benchmark):
    def pair():
        plain = make_system()
        hardened = make_system(FaultInjector(seed=0, ecc_enabled=False))
        r_plain = plain.runtime.acc_execute(
            make_axpy_plan(plain)[0], functional=False)
        r_hard = hardened.runtime.acc_execute(
            make_axpy_plan(hardened)[0], functional=False)
        return r_plain, r_hard

    r_plain, r_hard = benchmark.pedantic(pair, rounds=1, iterations=1)
    print(f"\nFault-free parity: baseline {r_plain.time:.3e}s, "
          f"zero-rate injector {r_hard.time:.3e}s")
    assert r_hard.time == r_plain.time
    assert r_hard.energy == pytest.approx(r_plain.energy, rel=0, abs=0)
