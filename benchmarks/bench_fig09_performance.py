"""Figure 9: per-operation performance vs Haswell-MKL on all platforms.

Regenerates the full Table 2 workloads across the five Table 3
platforms and prints the normalised speedups the figure reports.
"""

import pytest

from repro.eval import calibration as cal
from repro.eval.runner import (IndividualOpRunner, geometric_mean,
                               speedups_vs_haswell)
from repro.eval.workloads import OP_ORDER


@pytest.fixture(scope="module")
def runs():
    return IndividualOpRunner(scale=1.0).run_all()


def test_fig9_performance(benchmark, runs):
    speed = benchmark.pedantic(speedups_vs_haswell, args=(runs,), rounds=1, iterations=1)
    print("\nFig 9 — speedup over Haswell MKL "
          "(MEALib paper value in parens):")
    for op in OP_ORDER:
        row = speed[op]
        print(f"  {op:6s} Phi={row['XeonPhi']:6.2f} "
              f"PSAS={row['PSAS']:6.2f} MSAS={row['MSAS']:6.2f} "
              f"MEALib={row['MEALib']:7.2f} "
              f"({cal.FIG9_MEALIB_SPEEDUP[op]:.1f})")
    means = {p: geometric_mean(speed[op][p] for op in OP_ORDER)
             for p in ("PSAS", "MSAS", "MEALib")}
    print(f"  geomeans: PSAS={means['PSAS']:.2f} (2.51) "
          f"MSAS={means['MSAS']:.2f} (10.32) "
          f"MEALib={means['MEALib']:.2f} (38)")
    # shape assertions: winners, extremes, rough factors
    for op in OP_ORDER:
        paper = cal.FIG9_MEALIB_SPEEDUP[op]
        assert 0.4 * paper < speed[op]["MEALib"] < 2.5 * paper
        assert speed[op]["PSAS"] < speed[op]["MSAS"] \
            < speed[op]["MEALib"]
    mealib = {op: speed[op]["MEALib"] for op in OP_ORDER}
    assert max(mealib, key=mealib.get) == "RESHP"
    assert min(mealib, key=mealib.get) == "SPMV"
    assert 19 < means["MEALib"] < 76          # paper: 38x average
