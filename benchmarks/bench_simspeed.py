"""Simulation-speed benchmark for the descriptor-keyed schedule cache.

Repeated-call workloads (iterative solvers, STAP's per-dwell loop) run
the same descriptors over and over; the schedule cache replays their
decode + timing/energy decomposition instead of re-simulating the
memory system each time. This bench measures that win and — more
importantly — proves it is *free* in model terms:

* **speedup** — wall-clock time of ``--executes`` repeated executes on
  a cache-off system vs. an identically-built cache-on system (the
  cache-on loop includes its one cold miss);
* **parity** — every per-call :class:`ExecResult` and the final ledger
  category totals must be bit-identical between the two systems; the
  bench *asserts* this before it reports any number;
* **hit rate** — from the cache's own counters (``executes - 1`` hits
  out of ``executes`` lookups when nothing invalidates).

Emits schema-stable JSON (``BENCH_simspeed.json``) for dashboards:

    PYTHONPATH=src python benchmarks/bench_simspeed.py --json -
"""

import argparse
import json
import sys
import time

from repro.core import MealibSystem, ParamStore
from repro.eval.workloads import TABLE2

SCHEMA = "simspeed/v1"

#: Repeated-call loop length; at hundreds of calls the cold decode +
#: memory-system simulation amortizes to nothing and the speedup is
#: dominated by the replay path (>= 10x is the acceptance floor).
EXECUTES = 200

OPS = ("DOT", "AXPY", "GEMV", "SPMV", "FFT", "RESMP")
SCALE = 0.004


def build_plan(system, op, scale):
    params = TABLE2[op].params(scale)
    core = system.layer.accelerator(op)
    streams = core.streams(params)
    store = ParamStore()
    store.add("w.para", params.pack())
    return system.runtime.acc_plan(
        f"PASS {{ COMP {op} w.para }}", store,
        in_size=sum(s.total_bytes for s in streams if not s.is_write),
        out_size=sum(s.total_bytes for s in streams if s.is_write))


def time_loop(system, plan, executes):
    """Wall time plus the per-call results of ``executes`` executes."""
    results = []
    t0 = time.perf_counter()
    for _ in range(executes):
        results.append(system.runtime.acc_execute(plan, functional=False))
    return time.perf_counter() - t0, results


def run_op(op, scale, executes):
    cold_sys = MealibSystem(stack_bytes=64 << 20)
    hot_sys = MealibSystem(stack_bytes=64 << 20, schedule_cache=True)
    cold_plan = build_plan(cold_sys, op, scale)
    hot_plan = build_plan(hot_sys, op, scale)
    cold_wall, cold_results = time_loop(cold_sys, cold_plan, executes)
    hot_wall, hot_results = time_loop(hot_sys, hot_plan, executes)

    # parity gate: cached replay must be bit-identical, per call and in
    # the ledger decomposition — a fast wrong answer is worthless
    for i, (a, b) in enumerate(zip(cold_results, hot_results)):
        assert a.time == b.time and a.energy == b.energy, (
            f"{op}: call {i} diverged under the schedule cache")
    for category in ("invocation", "accelerator", "fault", "retry",
                     "reroute", "fallback"):
        assert (cold_sys.ledger.total(category)
                == hot_sys.ledger.total(category)), (
            f"{op}: ledger[{category}] diverged under the schedule cache")

    stats = hot_sys.schedule_cache.stats
    assert stats.hits == executes - 1 and stats.misses == 1
    assert hot_sys.runtime.counters.cached_executes == executes - 1
    return {
        "cold_wall_s": cold_wall,
        "cached_wall_s": hot_wall,
        "speedup": cold_wall / hot_wall,
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": stats.hit_rate,
        "cached_executes": hot_sys.runtime.counters.cached_executes,
        "model_time_s": cold_results[0].time,
        "model_energy_j": cold_results[0].energy,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--executes", type=int, default=EXECUTES)
    parser.add_argument("--ops", nargs="+", default=list(OPS),
                        choices=list(OPS))
    parser.add_argument("--scale", type=float, default=SCALE)
    parser.add_argument("--json", default="BENCH_simspeed.json",
                        help="output path, or - for stdout")
    args = parser.parse_args(argv)
    if args.executes < 2:
        parser.error("--executes must be >= 2 (one miss + hits)")

    points = {op: run_op(op, args.scale, args.executes)
              for op in args.ops}
    speedups = [p["speedup"] for p in points.values()]
    record = {
        "schema": SCHEMA,
        "executes": args.executes,
        "scale": args.scale,
        "ops": points,
        "speedup_min": min(speedups),
        "speedup_max": max(speedups),
    }
    payload = json.dumps(record, indent=1, sort_keys=True)
    if args.json == "-":
        print(payload)
    else:
        with open(args.json, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.json}: min speedup "
              f"{record['speedup_min']:.1f}x over {args.executes} "
              "executes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
