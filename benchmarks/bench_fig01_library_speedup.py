"""Figure 1: library-vs-original speedups (R / PERFECT / PARSEC)."""

from repro.apps.suites import library_speedups, suite_maxima
from repro.eval import calibration as cal


def test_fig1_library_speedups(benchmark):
    rows = benchmark.pedantic(library_speedups, rounds=1, iterations=1)
    maxima = suite_maxima(rows)
    print("\nFig 1 — best library speedup per suite (paper in parens):")
    for suite, value in maxima.items():
        print(f"  {suite:8s} {value:6.1f}x   "
              f"({cal.FIG1_SUITE_MAXIMA[suite]:.0f}x)")
    for row in rows:
        print(f"  {row.suite:8s} {row.name:16s} "
              f"1T={row.speedup_single:6.1f}x  "
              f"MT={row.speedup_multi:6.1f}x")
    # shape: every suite shows an order-of-magnitude-class win
    for suite, paper in cal.FIG1_SUITE_MAXIMA.items():
        assert 0.5 * paper < maxima[suite] < 2.0 * paper
