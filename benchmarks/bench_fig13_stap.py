"""Figure 13: STAP performance and EDP gains over the Haswell baseline."""

import pytest

from repro.apps.stap import stap_gains
from repro.eval import calibration as cal


@pytest.mark.parametrize("preset", ["small", "medium", "large"])
def test_fig13_stap_gains(benchmark, preset):
    gains = benchmark.pedantic(stap_gains, args=(preset,), rounds=1, iterations=1)
    paper_sp = cal.FIG13_SPEEDUP[preset]
    paper_edp = cal.FIG13_EDP_GAIN[preset]
    print(f"\nFig 13 [{preset}] speedup {gains.speedup:.2f}x "
          f"(paper {paper_sp}x), EDP gain {gains.edp_gain:.2f}x "
          f"(paper {paper_edp}x)")
    assert 0.5 * paper_sp < gains.speedup < 2.0 * paper_sp
    assert 0.4 * paper_edp < gains.edp_gain < 2.5 * paper_edp
    # EDP gains exceed raw speedups (the paper's energy story)
    assert gains.edp_gain > gains.speedup


def test_fig13_gains_grow_with_dataset(benchmark):
    def all_presets():
        return {p: stap_gains(p) for p in ("small", "medium", "large")}

    gains = benchmark.pedantic(all_presets, rounds=1, iterations=1)
    speedups = [gains[p].speedup for p in ("small", "medium", "large")]
    edps = [gains[p].edp_gain for p in ("small", "medium", "large")]
    print(f"\nFig 13 trend: speedups {speedups}, EDP gains {edps}")
    assert speedups == sorted(speedups)
    assert edps == sorted(edps)
