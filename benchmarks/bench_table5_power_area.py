"""Table 5: power and area of accelerator-layer components (32nm)."""

from repro.eval import calibration as cal
from repro.eval.figures import table5


def test_table5_power_and_area(benchmark):
    report = benchmark.pedantic(table5, args=(0.25,), rounds=1, iterations=1)
    print("\nTable 5 — component power/area (paper in parens):")
    for row in report["rows"]:
        power = (f"{row['power_w']:6.2f}W"
                 if row["power_w"] is not None else "     -")
        paper_p = (f"({row['paper_power_w']}W)"
                   if row["paper_power_w"] is not None else "")
        area = (f"{row['area_mm2']:6.2f}mm2"
                if row["area_mm2"] is not None else "      -")
        paper_a = (f"({row['paper_area_mm2']}mm2)"
                   if row["paper_area_mm2"] is not None else "")
        print(f"  {row['component']:22s} {power} {paper_p:10s} "
              f"{area} {paper_a}")
    print(f"  total area {report['total_area_mm2']} mm2 "
          f"({report['paper_total_area_mm2']}), "
          f"{100 * report['area_budget_fraction']:.1f}% of budget "
          f"({100 * report['paper_area_budget_fraction']:.1f}%)")
    # shape: total area near the paper's, inside the 68 mm2 budget
    assert 0.85 * cal.TABLE5_TOTAL_AREA < report["total_area_mm2"] \
        < 1.15 * cal.TABLE5_TOTAL_AREA
    assert report["area_budget_fraction"] < 1.0
    # FFT and SPMV dominate area; per-accelerator power in the
    # sub-35 W class the paper reports
    areas = {r["component"]: r["area_mm2"] for r in report["rows"]
             if r["area_mm2"] is not None}
    assert areas["FFT"] > 10 and areas["SPMV"] > 10
    for row in report["rows"]:
        if row["power_w"] is not None:
            assert row["power_w"] < 40.0
