"""Benchmark of the verified schedule rewrite layer.

Translates each corpus workload twice — rewrites off and on — and runs
both on fresh :class:`MealibSystem` instances with identical inputs.
Before any number is reported the bench *asserts* translation
validity: every buffer bit-identical between the two runs, and both
system ledgers decomposing exactly into their category totals.  Only
then does it report what the machine-checked fusions bought:

* modelled time and energy, rewrites off vs. on, and the savings;
* the statically-priced DRAM traffic each fusion elided
  (:meth:`FusedStep.dram_bytes_skipped` — the certificate's linkage
  facts guarantee this equals the traffic the pricing model skips);
* the decision log tally (applied/rejected per primitive).

Emits schema-stable JSON (``BENCH_rewrite.json``) for dashboards:

    PYTHONPATH=src python benchmarks/bench_rewrite.py --json -
"""

import argparse
import json
import math
import sys
from pathlib import Path

import numpy as np

from repro.compiler import FusedStep, run_translated, translate
from repro.compiler.interp import _DTYPES
from repro.compiler.passes import DescriptorStep
from repro.core import MealibSystem

SCHEMA = "rewrite/v1"

CORPUS_DIR = Path(__file__).resolve().parent.parent / "examples" / "legacy"

#: Corpus workloads: the seeded fusable/illegal pair plus the paper
#: kernels whose interpolation->FFT chains the engine re-proves.
WORKLOADS = ("fusable_chain.c", "illegal_fusion.c", "sar_64.c",
             "sar_fns.c", "stap_small.c")


def make_inputs(tp, seed=11):
    """Deterministic inputs satisfying each program's domain."""
    rng = np.random.default_rng(seed)
    knots_count = next((info.count
                        for name, info in tp.env.buffers.items()
                        if "knot" in name), None)
    inputs = {}
    for name, info in tp.env.buffers.items():
        if info.elem_type not in _DTYPES:
            continue
        dt = _DTYPES[info.elem_type]
        n = info.count
        if "knot" in name:
            arr = np.arange(n, dtype=dt)
        elif "site" in name and knots_count:
            arr = np.clip((np.arange(n) % knots_count) + 0.3,
                          0, knots_count - 1.5).astype(dt)
        elif np.issubdtype(dt, np.complexfloating):
            arr = (rng.standard_normal(n)
                   + 1j * rng.standard_normal(n)).astype(dt)
        elif np.issubdtype(dt, np.integer):
            arr = np.zeros(n, dtype=dt)
        else:
            arr = rng.standard_normal(n).astype(dt)
        if info.shape is not None:
            arr = arr.reshape(info.shape)
        inputs[name] = arr
    return inputs


def assert_ledger_decomposes(system, label):
    total = system.total()
    cats = {e.category for e in system.ledger.entries}
    time = sum(system.ledger.total(c).time for c in cats)
    energy = sum(system.ledger.total(c).energy for c in cats)
    assert math.isclose(time, total.time, rel_tol=1e-9,
                        abs_tol=1e-18), (
        f"{label}: ledger time does not decompose")
    assert math.isclose(energy, total.energy, rel_tol=1e-9,
                        abs_tol=1e-18), (
        f"{label}: ledger energy does not decompose")


def fused_steps(tp):
    return [s for item in tp.items if isinstance(item, DescriptorStep)
            for s in item.items if isinstance(s, FusedStep)]


def run_workload(name):
    source = (CORPUS_DIR / name).read_text()
    tp_off = translate(source, rewrite=False)
    tp_on = translate(source, rewrite=True)
    inputs = make_inputs(tp_off)

    sys_off = MealibSystem()
    sys_on = MealibSystem()
    off = run_translated(tp_off, system=sys_off, inputs=dict(inputs))
    on = run_translated(tp_on, system=sys_on, inputs=dict(inputs))

    # translation-validation gate: a fast wrong answer is worthless
    assert set(off.buffers) == set(on.buffers), name
    for buf in sorted(off.buffers):
        assert np.array_equal(off.buffers[buf], on.buffers[buf]), (
            f"{name}: buffer {buf!r} diverged under rewrites")
    assert_ledger_decomposes(sys_off, f"{name} (rewrites off)")
    assert_ledger_decomposes(sys_on, f"{name} (rewrites on)")

    skipped = sum(f.dram_bytes_skipped(tp_on.env)
                  for f in fused_steps(tp_on))
    tally = {}
    for d in tp_on.rewrites:
        key = f"{d.primitive}_{'applied' if d.applied else 'rejected'}"
        tally[key] = tally.get(key, 0) + 1
    t_off, t_on = off.result.time, on.result.time
    e_off, e_on = off.result.energy, on.result.energy
    return {
        "time_off_s": t_off,
        "time_on_s": t_on,
        "time_saved_pct": 100.0 * (1.0 - t_on / t_off) if t_off else 0.0,
        "energy_off_j": e_off,
        "energy_on_j": e_on,
        "energy_saved_pct": (100.0 * (1.0 - e_on / e_off)
                             if e_off else 0.0),
        "dram_bytes_skipped": skipped,
        "descriptors_off": tp_off.descriptor_count(),
        "descriptors_on": tp_on.descriptor_count(),
        "decisions": tally,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", nargs="+",
                        default=list(WORKLOADS),
                        choices=list(WORKLOADS))
    parser.add_argument("--json", default="BENCH_rewrite.json",
                        help="output path, or - for stdout")
    args = parser.parse_args(argv)

    points = {name: run_workload(name) for name in args.workloads}
    saved = [p["energy_saved_pct"] for p in points.values()
             if p["decisions"].get("fuse_applied")]
    record = {
        "schema": SCHEMA,
        "workloads": points,
        "energy_saved_pct_max": max(saved) if saved else 0.0,
        "dram_bytes_skipped_total": sum(p["dram_bytes_skipped"]
                                        for p in points.values()),
    }
    payload = json.dumps(record, indent=1, sort_keys=True)
    if args.json == "-":
        print(payload)
    else:
        with open(args.json, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.json}: up to "
              f"{record['energy_saved_pct_max']:.1f}% energy saved, "
              f"{record['dram_bytes_skipped_total']} DRAM bytes "
              "elided by verified fusion")
    return 0


if __name__ == "__main__":
    sys.exit(main())
