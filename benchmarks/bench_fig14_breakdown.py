"""Figure 14: STAP time/energy breakdown on MEALib (large data set)."""

from repro.apps.stap import stap_gains
from repro.eval import calibration as cal


def test_fig14_breakdown(benchmark):
    gains = benchmark.pedantic(stap_gains, args=("large",), rounds=1, iterations=1)
    print(f"\nFig 14 [large] (paper in parens):")
    print(f"  host time share        {gains.host_time_share:.2f} "
          f"({cal.FIG14_HOST_TIME_SHARE})")
    print(f"  host energy share      {gains.host_energy_share:.2f} "
          f"({cal.FIG14_HOST_ENERGY_SHARE})")
    print(f"  invocation time share  "
          f"{gains.invocation_time_share:.3f} "
          f"({cal.FIG14_INVOCATION_TIME_SHARE})")
    print(f"  invocation energy share "
          f"{gains.invocation_energy_share:.3f} "
          f"({cal.FIG14_INVOCATION_ENERGY_SHARE})")
    print(f"  DOT accel-time share   "
          f"{gains.accel_time_shares.get('DOT', 0):.2f} "
          f"({cal.FIG14_DOT_TIME_SHARE})")
    print(f"  descriptors            {gains.descriptors} "
          f"({cal.FIG14_DESCRIPTORS}) for "
          f"{gains.original_calls / 1e6:.1f}M calls "
          f"({cal.FIG14_TOTAL_CALLS / 1e6:.0f}M)")
    # the paper's qualitative breakdown
    assert gains.host_time_share > 0.5            # host dominates time
    assert gains.host_energy_share > 0.85         # ... and energy
    assert gains.host_energy_share > gains.host_time_share
    assert gains.invocation_time_share < 0.10     # compaction worked
    # DOT dominates the accelerator portion
    dot = gains.accel_time_shares.get("DOT", 0.0)
    assert dot == max(gains.accel_time_shares.values())
    assert dot > 0.5
    # 16.7M calls in 3 descriptors
    assert gains.descriptors == 3
    assert gains.original_calls > 16e6
