"""Figure 12: configuration-infrastructure efficiency.

(a) hardware vs software accelerator chaining (SAR's RESMP+FFT);
(b) hardware LOOP vs a software loop of 128 FFT invocations.
"""

from repro.eval import calibration as cal
from repro.eval.figures import fig12


def test_fig12_chaining_and_loop(benchmark):
    report = benchmark.pedantic(fig12, rounds=1, iterations=1)
    print("\nFig 12a — SW/HW chaining gain vs size "
          f"(paper {cal.FIG12_CHAIN_GAIN_256}x at 256):")
    for row in report["chaining"]:
        print(f"  {row['side']:5d}  {row['gain']:.2f}x")
    print("Fig 12b — SW/HW loop gain vs size "
          f"(paper {cal.FIG12_LOOP_GAIN_256}x at 256):")
    for row in report["looping"]:
        print(f"  {row['side']:5d}  {row['gain']:.2f}x")
    chain = [r["gain"] for r in report["chaining"]]
    loop = [r["gain"] for r in report["looping"]]
    # gains are >1 at small sizes and shrink as sizes grow
    assert chain[0] > 1.5 and loop[0] > 5.0
    assert chain[0] > chain[-1]
    assert loop[0] > loop[-1]
    # loop compaction helps far more than chaining at small sizes
    assert loop[0] > 2 * chain[0]
