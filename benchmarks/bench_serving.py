"""Serving latency/goodput benchmark: offered load vs delivered service.

Drives the multi-tenant serving runtime (:mod:`repro.serving`) with
seeded open-loop traffic at a sweep of offered loads and reports, per
load point, p50/p99 request latency and goodput (completed requests
per model second). The sweep brackets saturation — below it goodput
tracks the offered load; above it goodput plateaus at stack capacity
and the latency tail explodes (queueing) or admission sheds.

Two invariants are *asserted before any number is reported* — a fast
or pretty curve from a broken model is worthless:

* **single-tenant bit-identity** — one tenant served at concurrency 1
  produces per-call :class:`ExecResult` values and ledger category
  totals bit-identical to calling the system directly with the same
  call sequence (the serving layer adds exactly nothing to a solo
  stream);
* **tenant decomposition** — at every load point the per-tenant ledger
  slices partition the system ledger exactly and their per-category
  sums match it joule for joule
  (:meth:`ServingRuntime.verify_tenant_decomposition`).

Emits schema-stable JSON (``BENCH_serving.json``) for dashboards:

    PYTHONPATH=src python benchmarks/bench_serving.py --json -
"""

import argparse
import json
import sys

from repro.core import MealibSystem
from repro.eval.workloads import TABLE2
from repro.serving import (BatchPolicy, QosClass, ServingRuntime,
                           TenantConfig, TrafficConfig, coalesce,
                           generate_trace)

SCHEMA = "serving/v1"

#: Offered load as a fraction of measured capacity; brackets
#: saturation (the >= 3 points the acceptance criteria require).
LOAD_FRACTIONS = (0.3, 0.6, 0.9, 1.2)

#: The three-tenant mix every load point serves.
TENANTS = (
    TenantConfig("interactive", QosClass.INTERACTIVE,
                 max_queue_depth=64),
    TenantConfig("standard", QosClass.STANDARD, max_queue_depth=64),
    TenantConfig("bulk", QosClass.BULK, max_queue_depth=64),
)

SCALE = 0.004
REQUESTS = 40
SEED = 2015
MAX_CONCURRENCY = 2
STACK_BYTES = 64 << 20


def _system():
    return MealibSystem(stack_bytes=STACK_BYTES, schedule_cache=True)


def assert_single_tenant_identity(seed, requests, scale):
    """One tenant at concurrency 1 must be bit-identical to the direct
    system path, per call and in the ledger."""
    cfg = TrafficConfig(rate=1000.0, n_requests=requests, scale=scale)
    trace = generate_trace("solo", cfg, seed=seed, stream=0)

    direct = _system()
    direct_results = []
    for a in trace:
        plan = coalesce(direct, [(a.op, TABLE2[a.op].params(a.scale))])
        direct_results.append(
            direct.runtime.acc_execute(plan, functional=False))
        direct.runtime.acc_destroy(plan)

    served = _system()
    serving = ServingRuntime(served, [TenantConfig("solo")],
                             max_concurrency=1, functional=False)
    for a in trace:
        serving.submit_arrival(a)
    serving.run()
    serving.verify_tenant_decomposition()

    assert len(serving.requests) == len(direct_results)
    for i, (r, d) in enumerate(zip(serving.requests, direct_results)):
        assert not r.shed
        assert r.result.time == d.time and r.result.energy == d.energy, (
            f"call {i} diverged between serving and the direct path")
    for category in ("invocation", "accelerator", "contention", "fault",
                     "retry", "reroute", "fallback"):
        assert (served.ledger.total(category)
                == direct.ledger.total(category)), (
            f"ledger[{category}] diverged between serving and the "
            "direct path")
    assert served.contention_total().time == 0.0
    assert served.runtime.counters.contended_executes == 0


def run_point(fraction, capacity, seed, requests, scale):
    """Serve one offered-load point; returns its report row."""
    system = _system()
    serving = ServingRuntime(system, list(TENANTS),
                             max_concurrency=MAX_CONCURRENCY,
                             batching=BatchPolicy(),
                             functional=False)
    rate = fraction * capacity / len(TENANTS)
    for stream, tenant in enumerate(TENANTS):
        cfg = TrafficConfig(rate=rate, n_requests=requests, scale=scale)
        for a in generate_trace(tenant.tenant, cfg, seed=seed,
                                stream=stream):
            serving.submit_arrival(a)
    serving.run()
    # attribution gate: the curve is only reported if every joule
    # decomposes exactly across tenants
    serving.verify_tenant_decomposition()
    report = serving.report()
    arrivals = sorted(r.arrival for r in serving.requests)
    completed = [r for r in serving.requests if not r.shed]
    latencies = sorted(r.latency for r in completed)
    span = arrivals[-1] - arrivals[0]
    report["load_fraction"] = fraction
    report["offered_rps"] = ((len(arrivals) - 1) / span
                             if span > 0 else 0.0)
    report["p50_latency_s"] = latencies[len(latencies) // 2]
    report["p99_latency_s"] = latencies[
        min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return report


def measure_capacity(seed, requests, scale):
    """Delivered request rate under saturation (every arrival at t=0):
    the sweep's 1.0 reference."""
    system = _system()
    serving = ServingRuntime(system, list(TENANTS),
                             max_concurrency=MAX_CONCURRENCY,
                             batching=BatchPolicy(),
                             functional=False)
    for stream, tenant in enumerate(TENANTS):
        cfg = TrafficConfig(rate=1e9, n_requests=requests, scale=scale)
        for a in generate_trace(tenant.tenant, cfg, seed=seed,
                                stream=stream):
            serving.submit_arrival(a)
    serving.run()
    serving.verify_tenant_decomposition()
    return serving.report()["goodput_rps"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=REQUESTS,
                        help="requests per tenant per load point")
    parser.add_argument("--scale", type=float, default=SCALE)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--loads", type=float, nargs="+",
                        default=list(LOAD_FRACTIONS),
                        help="offered load as fractions of capacity")
    parser.add_argument("--json", default="BENCH_serving.json",
                        help="output path, or - for stdout")
    args = parser.parse_args(argv)
    if args.requests < 2:
        parser.error("--requests must be >= 2")
    if len(args.loads) < 3:
        parser.error("need >= 3 load points")

    # gates first: a report is only written once the serving layer is
    # provably exact
    assert_single_tenant_identity(args.seed, args.requests, args.scale)
    capacity = measure_capacity(args.seed, args.requests, args.scale)
    points = [run_point(f, capacity, args.seed, args.requests,
                        args.scale)
              for f in sorted(args.loads)]

    record = {
        "schema": SCHEMA,
        "seed": args.seed,
        "scale": args.scale,
        "requests_per_tenant": args.requests,
        "tenants": [t.tenant for t in TENANTS],
        "max_concurrency": MAX_CONCURRENCY,
        "capacity_rps": capacity,
        "single_tenant_identical": True,
        "decomposition_verified": True,
        "points": points,
    }
    payload = json.dumps(record, indent=1, sort_keys=True)
    if args.json == "-":
        print(payload)
    else:
        with open(args.json, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.json}: capacity {capacity:.0f} rps, "
              f"{len(points)} load points, p99 at max load "
              f"{points[-1]['p99_latency_s'] * 1e3:.2f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
