"""Quickstart: accelerate one library call through the full MEALib stack.

Allocates vectors in the unified address space, writes a TDL program,
lowers it to an accelerator descriptor, executes it through the
configuration unit, and compares against the same call on the host
library — functionally and in time/energy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accel import AxpyParams
from repro.core import MealibSystem, ParamStore
from repro.host.platforms import haswell
from repro.mkl import axpy_profile


def main() -> None:
    system = MealibSystem(stack_bytes=512 << 20)
    n = 1 << 22                                   # 4M floats

    # 1. allocate physically contiguous, virtually mapped buffers
    xbuf, x = system.space.alloc_array((n,), np.float32)
    ybuf, y = system.space.alloc_array((n,), np.float32)
    rng = np.random.default_rng(0)
    x[:] = rng.standard_normal(n)
    y[:] = rng.standard_normal(n)
    expected = 2.5 * x + y

    # 2. describe the work in TDL and lower it to a descriptor
    params = ParamStore()
    params.add("axpy.para", AxpyParams(n=n, alpha=2.5, x_pa=xbuf.pa,
                                       y_pa=ybuf.pa).pack())
    plan = system.runtime.acc_plan("PASS { COMP AXPY axpy.para }",
                                   params, in_size=2 * n * 4,
                                   out_size=n * 4)

    # 3. ring the doorbell; the configuration unit does the rest
    accel = system.runtime.acc_execute(plan)
    system.runtime.acc_destroy(plan)
    assert np.allclose(y, expected, rtol=1e-5)

    # 4. compare with MKL-on-Haswell for the same operation
    host = haswell().run_profile(axpy_profile(n))

    print(f"saxpy over {n / 1e6:.0f}M floats")
    print(f"  MEALib : {accel.time * 1e3:7.3f} ms   "
          f"{accel.energy * 1e3:7.2f} mJ  ({accel.power:5.1f} W)")
    print(f"  Haswell: {host.time * 1e3:7.3f} ms   "
          f"{host.energy * 1e3:7.2f} mJ  ({host.power:5.1f} W)")
    print(f"  speedup {host.time / accel.time:5.1f}x, "
          f"energy gain {host.energy / accel.energy:5.1f}x")
    print("  results verified against numpy: OK")


if __name__ == "__main__":
    main()
