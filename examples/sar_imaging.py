"""SAR image formation with accelerator chaining (Fig 12a's scenario).

The compiler fuses the range interpolation (RESMP) and azimuth FFT into
a single PASS whose intermediate stays in tile local memory; this script
shows the chain and quantifies the gain over separate invocations.

Run:  python examples/sar_imaging.py
"""

import numpy as np

from repro.apps import SarConfig, run_sar_baseline, run_sar_mealib
from repro.apps.sar import sar_source
from repro.compiler import ChainStep, DescriptorStep, translate
from repro.eval.figures import fig12


def main() -> None:
    cfg = SarConfig(side=128)
    translated = translate(sar_source(cfg))
    descriptors = [i for i in translated.items
                   if isinstance(i, DescriptorStep)]
    chain = descriptors[0].items[0]
    assert isinstance(chain, ChainStep)
    print(f"SAR {cfg.side}x{cfg.side}: compiler chained "
          + " -> ".join(s.accel for s in chain.steps)
          + " into one PASS")

    baseline = run_sar_baseline(cfg)
    mealib = run_sar_mealib(cfg)
    assert np.allclose(baseline.buffers["image"],
                       mealib.buffers["image"], rtol=2e-2, atol=2e-2)
    print("functional check: baseline == MEALib image  OK")

    print("\nhardware vs software chaining across image sizes "
          "(Fig 12a):")
    report = fig12(sides=(256, 512, 1024, 2048))
    for row in report["chaining"]:
        print(f"  {row['side']:5d}px  gain {row['gain']:.2f}x")
    print("hardware LOOP vs software loop of 128 FFTs (Fig 12b):")
    for row in report["looping"]:
        print(f"  {row['side']:5d}px  gain {row['gain']:.2f}x")


if __name__ == "__main__":
    main()
