"""STAP through the source-to-source compiler — the paper's Listing 1 flow.

Compiles the legacy STAP program (written against MKL/FFTW APIs with
OpenMP pragmas), runs it both ways, verifies the outputs match, and
prints the Fig 13/14-style summary.

Run:  python examples/stap_pipeline.py
"""

import numpy as np

from repro.apps import PRESETS, run_stap_baseline, run_stap_mealib
from repro.apps.stap import stap_gains, stap_source
from repro.compiler import translate
from repro.core import MealibSystem


def main() -> None:
    cfg = PRESETS["small"]
    print(f"STAP ({cfg.name}): pulses={cfg.n_pulse}, "
          f"channel*range={cfg.n_cr}, {cfg.dot_calls} cdotc calls")

    translated = translate(stap_source(cfg))
    print(f"compiler: {translated.original_call_count()} library calls "
          f"-> {translated.descriptor_count()} accelerator descriptors")

    system = MealibSystem()
    baseline = run_stap_baseline(cfg)
    mealib = run_stap_mealib(cfg, system=system)

    for name in ("doppler", "prods", "det_out"):
        assert np.allclose(baseline.buffers[name],
                           mealib.buffers[name], rtol=2e-2, atol=2e-2)
    print("functional check: baseline == MEALib outputs  OK")

    host, accel, invocation = system.breakdown()
    total = system.total()
    print(f"MEALib breakdown: host {100 * host.time / total.time:.0f}% "
          f"time / {100 * host.energy / total.energy:.0f}% energy, "
          f"invocation {1e6 * invocation.time:.0f} us")

    print("\npaper-scale timing (Fig 13, large set ~16.7M calls):")
    gains = stap_gains("large")
    print(f"  speedup {gains.speedup:.2f}x (paper 3.2x), "
          f"EDP gain {gains.edp_gain:.2f}x (paper 10.2x), "
          f"{gains.descriptors} descriptors for "
          f"{gains.original_calls / 1e6:.1f}M calls")


if __name__ == "__main__":
    main()
