"""Accelerator design-space exploration (Fig 11's methodology).

Sweeps clock, tile count, datapath width, and DRAM row-buffer size for
the FFT and SPMV accelerators and prints the performance/power cloud
with iso-efficiency extremes.

Run:  python examples/design_space.py
"""

from repro.accel.design_space import (efficiency_range, explore_fft,
                                      explore_spmv)


def summarise(name, points):
    lo, hi = efficiency_range(points)
    best = max(points, key=lambda p: p.gflops_per_watt)
    fastest = max(points, key=lambda p: p.gflops)
    print(f"\n{name}: {len(points)} design points, "
          f"{lo:.2f}-{hi:.2f} GFLOPS/W")
    print(f"  most efficient: {best.gflops:8.1f} GFLOPS @ "
          f"{best.power_w:5.1f} W ({best.freq_hz / 1e9:.1f} GHz, "
          f"{best.tiles} tiles, x{best.core_mult} datapath, "
          f"{best.row_bytes} B rows)")
    print(f"  fastest:        {fastest.gflops:8.1f} GFLOPS @ "
          f"{fastest.power_w:5.1f} W ({fastest.freq_hz / 1e9:.1f} GHz, "
          f"{fastest.tiles} tiles, x{fastest.core_mult} datapath)")


def main() -> None:
    summarise("FFT accelerator (Fig 11a)",
              explore_fft(n=4096, batch=64))
    summarise("SPMV accelerator (Fig 11b)", explore_spmv(n=1 << 15))
    print("\nTakeaway (the paper's): FFT designs span tens of GFLOPS/W;"
          " SPMV stays below ~2 GFLOPS/W no matter the configuration.")


if __name__ == "__main__":
    main()
