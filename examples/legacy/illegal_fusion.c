// Seeded illegal-fusion sibling of fusable_chain.c: every transpose
// chunk reads the SAME first slab of 'acc' (a broadcast), while the
// producer loop is still writing later slabs. Interleaving the two
// loops would let iteration 0 of the producer race iterations 1..7
// of the consumer, so the rewrite engine must refuse the fusion
// (MEA019 names the blocking dependence). The program itself is
// clean — both loops are individually certified and offloaded.
#define R 16
#define C 16
#define CHUNK 256
#define CHUNKS 8

float gain[CHUNKS][CHUNK];
float acc[CHUNKS][CHUNK];
float img[CHUNKS][CHUNK];
int i;

// per-chunk gain accumulate (the would-be producer)
for (i = 0; i < CHUNKS; ++i)
  cblas_saxpy(CHUNK, 0.5, &gain[i][0], 1, &acc[i][0], 1);

// broadcast corner turn of slab 0 only: NOT the producer's
// per-iteration output
for (i = 0; i < CHUNKS; ++i)
  mkl_somatcopy(R, C, 1.0, &acc[0][0], &img[i][0]);
