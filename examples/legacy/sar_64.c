
// SAR image formation: range interpolation + azimuth FFT
#define N 64
#define BLOCKS 64

float *knots;
float *sites;
complex *range_lines;
complex *interp;
complex *image;
fftwf_plan plan_az;
fftw_iodim dims[1] = {{N, 1, 1}};
fftw_iodim howmany[1] = {{BLOCKS, N, N}};

knots = malloc(sizeof(float) * N);
sites = malloc(sizeof(float) * BLOCKS * N);
range_lines = malloc(sizeof(complex) * BLOCKS * N);
interp = malloc(sizeof(complex) * BLOCKS * N);
image = malloc(sizeof(complex) * BLOCKS * N);

// range interpolation onto the polar-to-rect grid
dfsInterpolate1D(BLOCKS, N, knots, range_lines, N, sites, interp);

// azimuth FFT — chained with the interpolation by the compiler
plan_az = fftwf_plan_guru_dft(1, dims, 1, howmany, interp, image,
                              FFTW_FORWARD, FFTW_WISDOM_ONLY);
fftwf_execute(plan_az);

free(range_lines);
