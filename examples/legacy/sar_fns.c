/* SAR image formation factored into helper functions: range
 * interpolation behind `form_ranges`, the azimuth FFT in the main
 * body, and a per-block detector the compiler collapses out of the
 * OpenMP nest *through* the `detect_block` call. Interprocedural
 * analysis proves the nest iteration-disjoint, so every accelerated
 * call stays offloaded. */
#define N 64
#define BLOCKS 16

float *knots;
float *sites;
complex *range_lines;
complex *interp;
complex *image;
float det_in[BLOCKS][N];
float det_out[BLOCKS][N];
fftwf_plan plan_az;
fftw_iodim dims[1] = {{N, 1, 1}};
fftw_iodim howmany[1] = {{BLOCKS, N, N}};
int blk;

void form_ranges(int rows, int n, float *k, complex *lines,
                 float *s, complex *out) {
  dfsInterpolate1D(rows, n, k, lines, n, s, out);
}

void detect_block(int n, float *acc_in, float *acc_out) {
  cblas_saxpy(n, 0.5, acc_in, 1, acc_out, 1);
}

knots = malloc(sizeof(float) * N);
sites = malloc(sizeof(float) * BLOCKS * N);
range_lines = malloc(sizeof(complex) * BLOCKS * N);
interp = malloc(sizeof(complex) * BLOCKS * N);
image = malloc(sizeof(complex) * BLOCKS * N);

/* range interpolation onto the polar-to-rect grid */
form_ranges(BLOCKS, N, knots, range_lines, sites, interp);

/* azimuth FFT — chained with the interpolation by the compiler */
plan_az = fftwf_plan_guru_dft(1, dims, 1, howmany, interp, image,
                              FFTW_FORWARD, FFTW_WISDOM_ONLY);
fftwf_execute(plan_az);

/* detection: each block accumulates into its own row, so the race
 * detector classifies the collapsed call iteration-disjoint */
#pragma omp parallel for
for (blk = 0; blk < BLOCKS; blk++) {
  detect_block(N, &det_in[blk][0], &det_out[blk][0]);
}

free(range_lines);
