// Streaming gain + per-chunk corner turn. Each chunk's scaled
// accumulate feeds the matching transpose chunk, so the verified
// rewrite layer fuses the two loop-compacted passes into one
// LOOP { PASS { AXPY RESHP } }: 'acc' stays in tile-local memory
// and never round-trips through DRAM (MEA018, certificate carried).
#define R 16
#define C 16
#define CHUNK 256
#define CHUNKS 8

float gain[CHUNKS][CHUNK];
float acc[CHUNKS][CHUNK];
float img[CHUNKS][CHUNK];
int i;

// per-chunk gain accumulate (the producer)
for (i = 0; i < CHUNKS; ++i)
  cblas_saxpy(CHUNK, 0.5, &gain[i][0], 1, &acc[i][0], 1);

// per-chunk corner turn of exactly that chunk (the consumer)
for (i = 0; i < CHUNKS; ++i)
  mkl_somatcopy(R, C, 1.0, &acc[i][0], &img[i][0]);
