/* A detector update: an OpenMP nest of saxpy calls the compiler
 * collapses into one looped accelerator descriptor. */
#define L 32
#define B 24
#define MF 128
float det_in[L][B][MF];
float det_out[L][B][MF];
#pragma omp parallel for
for (l = 0; l < L; l++) {
  for (b = 0; b < B; b++) {
    cblas_saxpy(MF, 1.0, &det_in[l][b][0], 1, &det_out[l][b][0], 1);
  }
}
