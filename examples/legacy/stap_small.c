
// STAP: Space-Time Adaptive Processing (PERFECT), MKL+FFTW+OpenMP
#define N_PULSE 32
#define N_CR 64
#define N_DOP 4
#define N_BLOCKS 2
#define TDOF 16
#define N_STEERING 4
#define TBS 24
#define DET_CHUNK 192

complex *datacube;
complex *pulse_major;
complex *doppler;
complex snapshots[N_DOP][N_BLOCKS][TDOF][TBS];
complex cov[N_DOP][N_BLOCKS][TDOF][TDOF];
complex wts[N_DOP][N_BLOCKS][N_STEERING][TDOF];
complex prods[N_DOP][N_BLOCKS][N_STEERING][TBS];
float det_in[N_DOP][N_BLOCKS][DET_CHUNK];
float det_out[N_DOP][N_BLOCKS][DET_CHUNK];
fftwf_plan plan_ct;
fftwf_plan plan_fft;
fftw_iodim howmany_ct[2] = {{N_PULSE, N_CR, 1}, {N_CR, 1, N_PULSE}};
fftw_iodim dims[1] = {{N_PULSE, 1, 1}};
fftw_iodim howmany_fft[1] = {{N_CR, N_PULSE, N_PULSE}};
int dop;
int block;
int sv;
int cell;

// data allocation
datacube = malloc(sizeof(complex) * N_PULSE * N_CR);
pulse_major = malloc(sizeof(complex) * N_CR * N_PULSE);
doppler = malloc(sizeof(complex) * N_CR * N_PULSE);

// data copy (corner turn) + Doppler FFT: chained by the compiler
plan_ct = fftwf_plan_guru_dft(0, NULL, 2, howmany_ct,
                              datacube, pulse_major,
                              FFTW_FORWARD, FFTW_WISDOM_ONLY);
plan_fft = fftwf_plan_guru_dft(1, dims, 1, howmany_fft,
                               pulse_major, doppler,
                               FFTW_FORWARD, FFTW_WISDOM_ONLY);
fftwf_execute(plan_ct);
fftwf_execute(plan_fft);

// covariance estimation + weight solve: compute-bounded, on the host
for (dop = 0; dop < N_DOP; ++dop) {
  for (block = 0; block < N_BLOCKS; ++block) {
    cblas_cherk(TDOF, TBS, 1.0, &snapshots[dop][block][0][0],
                0.0, &cov[dop][block][0][0]);
    cpotrf_lower(TDOF, &cov[dop][block][0][0]);
    cblas_ctrsm_lower(TDOF, N_STEERING, &cov[dop][block][0][0],
                      &wts[dop][block][0][0]);
    cblas_ctrsm_upper(TDOF, N_STEERING, &cov[dop][block][0][0],
                      &wts[dop][block][0][0]);
  }
}

// multiple parallel inner products (adaptive weighting)
#pragma omp parallel for
for (dop = 0; dop < N_DOP; ++dop)
  for (block = 0; block < N_BLOCKS; ++block)
    for (sv = 0; sv < N_STEERING; ++sv)
      for (cell = 0; cell < TBS; ++cell)
        cblas_cdotc_sub(TDOF, &wts[dop][block][sv][0], 1,
                        &snapshots[dop][block][0][cell], TBS,
                        &prods[dop][block][sv][cell]);

// detection normalisation (vector scaling and accumulate)
#pragma omp parallel for
for (dop = 0; dop < N_DOP; ++dop)
  for (block = 0; block < N_BLOCKS; ++block)
    cblas_saxpy(DET_CHUNK, 0.5, &det_in[dop][block][0], 1,
                &det_out[dop][block][0], 1);

free(datacube);
