/* Seeded static out-of-bounds: each iteration's saxpy consumes a
 * 16-float window advancing by 16 floats, but only 100 floats were
 * declared — iterations 7 and 6 provably touch bytes past the end of
 * `src` and `out` (byte 511 of a 400-byte allocation). The value-range
 * analysis derives i in [0, 7], the footprint check proves the
 * violation at the iteration-box corner, and the analyzer must reject
 * the program with MEA015 and exit nonzero. */
#define N 16
#define CHUNKS 8
float src[100];
float out[100];
int i;

for (i = 0; i < CHUNKS; i++) {
  cblas_saxpy(N, 1.0, &src[i * 16], 1, &out[i * 16], 1);
}
