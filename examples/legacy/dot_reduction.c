/* A correlation sweep: every iteration of the OpenMP nest deposits
 * its dot product into the one shared *_sub result scalar. The host
 * version races benignly on `acc`; the offload is still faithful
 * because the LOOP descriptor serialises iterations, so the analyzer
 * reports MEA010 at INFO severity, keeps the step offloaded, and
 * attaches a safety certificate with a recognized-reduction fact. */
#define M 24
#define N 64
float hist[M][N];
float w[N];
float acc[1];
int i;

#pragma omp parallel for
for (i = 0; i < M; i++) {
  cblas_sdot_sub(N, &hist[i][0], 1, &w[0], 1, &acc[0]);
}
