/* Seeded write-write race: consecutive iterations accumulate into
 * overlapping windows of `out` (windows of 8 floats advancing by 4),
 * so the saxpy collapsed out of the OpenMP nest is NOT offload-safe.
 * The analyzer must report MEA008 through the call chain and exit
 * nonzero; translation demotes the step to the host library. */
#define M 8
float hist[128];
float out[64];
int i;

void accumulate(int n, float *src, float *dst) {
  cblas_saxpy(n, 1.0, src, 1, dst, 1);
}

#pragma omp parallel for
for (i = 0; i < M; i++) {
  accumulate(8, &hist[i * 4], &out[i * 4]);
}
