"""Multicore host CPU model: roofline timing + RAPL-style power.

The paper measures its baselines (MKL on Haswell, MKL on Xeon Phi) with
PAPI counters and RAPL. Here the same quantities come from a calibrated
roofline: an operation's time is the slower of its compute time and its
memory time, where the memory time uses *CPU traffic* (including the
read-for-ownership write-allocate overhead of cached stores) against a
per-pattern achieved-bandwidth fraction.

The per-pattern fractions encode well-documented behaviour, not fitted
magic: streaming kernels reach 55-70% of peak DDR bandwidth (STREAM-class
results), gathers are limited by outstanding-miss concurrency, and large
transposes thrash TLBs and row buffers. Phi's fractions additionally
reflect the paper's own observation that the evaluated MKL on modest data
sets cannot feed 60 cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.metrics import ExecResult
from repro.mkl.profiles import OpProfile

#: Default achieved-bandwidth fraction per access pattern.
DEFAULT_BW_EFF = {
    "stream": 0.55,
    "blocked": 0.45,
    "gather": 0.25,
    "transpose": 0.14,
}

#: Default compute-efficiency (achieved/peak flops) per access pattern.
DEFAULT_COMPUTE_EFF = {
    "stream": 0.85,
    "blocked": 0.60,
    "gather": 0.35,
    "transpose": 0.50,
}


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a host processor (one row of Table 3).

    Attributes:
        name: platform name.
        cores: physical cores.
        freq_hz: nominal clock.
        flops_per_cycle: single-precision flops per cycle per core, using
            the paper's counting (Haswell: 8-wide AVX => 112 GFLOPS peak).
        peak_bw: memory bandwidth in bytes/s.
        bw_eff: achieved-bandwidth fraction per pattern.
        compute_eff: achieved-compute fraction per pattern.
        rfo_factor: traffic multiplier on written bytes. Write-allocate
            reads the line before writing it (2.0); optimised libraries
            use non-temporal stores for part of the traffic, landing
            around 1.6 effective.
        p_idle: package power with cores idle, watts.
        p_core: incremental power per active core, watts.
        p_dram: DRAM subsystem power under load, watts (RAPL DRAM plane).
        threads_used: software threads the library runs with.
    """

    name: str
    cores: int
    freq_hz: float
    flops_per_cycle: float
    peak_bw: float
    bw_eff: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BW_EFF))
    compute_eff: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_COMPUTE_EFF))
    rfo_factor: float = 1.6
    p_idle: float = 12.0
    p_core: float = 8.0
    p_dram: float = 4.0
    threads_used: Optional[int] = None

    @property
    def peak_gflops(self) -> float:
        return self.cores * self.freq_hz * self.flops_per_cycle / 1e9


class CpuModel:
    """Executable performance/power model for one CPU platform."""

    def __init__(self, spec: CpuSpec):
        self.spec = spec

    def _threads(self, override: Optional[int]) -> int:
        if override is not None:
            return min(override, self.spec.cores)
        if self.spec.threads_used is not None:
            return min(self.spec.threads_used, self.spec.cores)
        return self.spec.cores

    def run_profile(self, profile: OpProfile,
                    threads: Optional[int] = None) -> ExecResult:
        """Execute one library operation; returns time and energy."""
        spec = self.spec
        n_threads = self._threads(threads if threads is not None
                                  else profile.threads)
        compute_rate = (n_threads * spec.freq_hz * spec.flops_per_cycle
                        * spec.compute_eff[profile.pattern])
        t_compute = profile.flops / compute_rate if profile.flops else 0.0
        traffic = (profile.bytes_read
                   + spec.rfo_factor * profile.bytes_written)
        mem_rate = spec.peak_bw * spec.bw_eff[profile.pattern]
        t_memory = traffic / mem_rate if traffic else 0.0
        time = max(t_compute, t_memory, 1e-12)
        # Power: idle + active cores + DRAM. MKL worker threads busy-wait
        # in SIMD spin loops even when the op is memory bound, so active
        # cores stay near full power (RAPL on streaming MKL kernels shows
        # packages within ~10% of their compute-bound draw).
        utilisation = max(t_compute / time if time else 0.0, 0.85)
        power = (spec.p_idle + spec.p_core * n_threads * utilisation
                 + spec.p_dram)
        return ExecResult(time=time, energy=power * time)

    def run_naive(self, profile: OpProfile, threads: int = 1,
                  interpreter_slowdown: float = 1.0) -> ExecResult:
        """Model of *original* (non-library) code for Figure 1: scalar
        (non-SIMD) execution at modest IPC, usually single-threaded,
        optionally with an interpreter factor (the R benchmarks)."""
        spec = self.spec
        scalar_rate = threads * spec.freq_hz * 0.8 / interpreter_slowdown
        t_compute = profile.flops / scalar_rate if profile.flops else 0.0
        traffic = (profile.bytes_read
                   + spec.rfo_factor * profile.bytes_written)
        # naive loops rarely stream well: cap at the blocked fraction
        mem_rate = spec.peak_bw * min(spec.bw_eff[profile.pattern],
                                      spec.bw_eff["blocked"])
        t_memory = traffic / mem_rate if traffic else 0.0
        time = max(t_compute, t_memory, 1e-12)
        power = spec.p_idle + spec.p_core * threads + spec.p_dram
        return ExecResult(time=time, energy=power * time)

    def idle_draw(self, time: float) -> ExecResult:
        """Host package idling for ``time`` seconds (it still burns its
        idle power while accelerators run)."""
        return ExecResult(time=time, energy=self.spec.p_idle * time)
