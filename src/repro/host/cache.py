"""Cache hierarchy model — primarily the ``wbinvd`` flush cost.

MEALib keeps ordinary hardware cache coherence and enforces CPU/
accelerator data coherence by writing back dirty lines (``wbinvd``)
before every accelerator invocation (Section 3.5). That flush is a real,
measured part of the paper's invocation overhead (Figure 14), so it gets
a model: write-back time is dirty-bytes over DRAM write bandwidth plus a
fixed microcode latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics import ExecResult


@dataclass(frozen=True)
class CacheHierarchy:
    """LLC-centric cache description for the flush model.

    Attributes:
        llc_bytes: last-level cache capacity.
        line_bytes: cache line size.
        dirty_fraction: fraction of LLC lines typically dirty when an
            invocation happens (producer code just wrote its inputs).
        flush_bw: write-back drain bandwidth to DRAM, bytes/s.
        base_latency: fixed microcode/serialisation cost of wbinvd.
        flush_power: package power while draining, watts.
    """

    llc_bytes: int = 8 << 20            # Haswell i7-4770K: 8 MiB L3
    line_bytes: int = 64
    dirty_fraction: float = 0.5
    flush_bw: float = 25.6e9            # write-backs stream at full BW
    base_latency: float = 8e-6
    flush_power: float = 25.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.dirty_fraction <= 1.0:
            raise ValueError("dirty_fraction must be in [0, 1]")
        if self.llc_bytes <= 0 or self.flush_bw <= 0:
            raise ValueError("capacity and bandwidth must be positive")

    def flush_cost(self, working_set_bytes: int = None) -> ExecResult:
        """Cost of one wbinvd.

        Dirty data cannot exceed the LLC, and only the cached part of the
        working set can be dirty, so the drained volume is
        ``dirty_fraction * min(llc, working_set)``.
        """
        resident = self.llc_bytes
        if working_set_bytes is not None:
            resident = min(resident, working_set_bytes)
        dirty = resident * self.dirty_fraction
        time = self.base_latency + dirty / self.flush_bw
        return ExecResult(time=time, energy=time * self.flush_power)
