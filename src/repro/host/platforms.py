"""The five comparison platforms of Table 3.

Software platforms (MKL baselines):

* Haswell i7-4770K — 4 cores @ 3.5 GHz, 25.6 GB/s, the normalisation
  baseline of Figs 9/10;
* Xeon Phi 5110P — 60 cores @ 1.0 GHz, 320 GB/s, run with 32 threads as
  in the paper. Its bandwidth fractions encode the paper's own finding
  that the evaluated MKL cannot exploit the part on these data sets
  (Phi ≈ Haswell overall, and 2.4% of Haswell on RESHP).

Accelerated platforms (same accelerator cores, different memory system):

* PSAS — accelerators beside the processor on the 25.6 GB/s DDR;
* MSAS — accelerators atop 2D DRAM, 102.4 GB/s (NDA-style);
* MEALib — accelerators inside the 3D stack, 510 GB/s class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.base import AcceleratorCore, AccelExecution
from repro.host.cpu import CpuModel, CpuSpec
from repro.memsys.ddr import haswell_memory, msas_memory
from repro.memsys.device import MemoryDevice
from repro.memsys.dram3d import StackedDram
from repro.metrics import ExecResult

HASWELL_SPEC = CpuSpec(
    name="Haswell i7-4770K",
    cores=4,
    freq_hz=3.5e9,
    flops_per_cycle=8.0,        # the paper's 112 GFLOPS peak counting
    peak_bw=25.6e9,
    p_idle=12.0,
    p_core=8.0,
    p_dram=4.5,
)

XEON_PHI_SPEC = CpuSpec(
    name="Xeon Phi 5110P",
    cores=60,
    freq_hz=1.053e9,
    flops_per_cycle=16.0,
    peak_bw=320e9,
    # MKL-on-Phi achieved fractions for Table 2-sized problems: the
    # evaluated library leaves most of the part idle (paper Section 5.1),
    # catastrophically so for transposes.
    bw_eff={"stream": 0.11, "blocked": 0.075, "gather": 0.035,
            "transpose": 0.0004},
    compute_eff={"stream": 0.30, "blocked": 0.18, "gather": 0.10,
                 "transpose": 0.20},
    p_idle=95.0,
    p_core=1.1,
    p_dram=0.0,                 # GDDR5 on package, folded into p_idle
    threads_used=32,            # the paper runs Phi with 32 threads
)


def haswell() -> CpuModel:
    """The baseline platform all results normalise to."""
    return CpuModel(HASWELL_SPEC)


def xeon_phi() -> CpuModel:
    return CpuModel(XEON_PHI_SPEC)


@dataclass(frozen=True)
class AcceleratedSystem:
    """An accelerator deployment: cores + the memory they sit next to.

    Attributes:
        name: platform name (Table 3 row).
        device: the memory device the accelerators stream against.
        interface_power: constant uncore/link power while active, watts
            (on-die interface for PSAS, DIMM-side logic for MSAS,
            serdes link share for MEALib).
    """

    name: str
    device: MemoryDevice
    interface_power: float

    def run(self, core: AcceleratorCore, params) -> AccelExecution:
        """Model one accelerator invocation on this platform."""
        execution = core.model(self.device, params)
        result = ExecResult(
            time=execution.result.time,
            energy=execution.result.energy
            + self.interface_power * execution.result.time)
        return AccelExecution(result=result, mem=execution.mem,
                              t_compute=execution.t_compute,
                              freq_hz=execution.freq_hz)


def psas() -> AcceleratedSystem:
    """Processor-Side Accelerated System: shares the host's DDR3."""
    return AcceleratedSystem(name="PSAS", device=haswell_memory(),
                             interface_power=4.0)


def msas() -> AcceleratedSystem:
    """2D Memory-Side Accelerated System (NDA-class), 102.4 GB/s."""
    return AcceleratedSystem(name="MSAS", device=msas_memory(),
                             interface_power=3.0)


def mealib_platform() -> AcceleratedSystem:
    """MEALib: accelerators on the 3D stack's accelerator layer."""
    return AcceleratedSystem(name="MEALib", device=StackedDram(),
                             interface_power=1.5)
