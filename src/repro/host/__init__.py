"""Host processor and platform models (Table 3)."""

from repro.host.cache import CacheHierarchy
from repro.host.cpu import (CpuModel, CpuSpec, DEFAULT_BW_EFF,
                            DEFAULT_COMPUTE_EFF)
from repro.host.platforms import (AcceleratedSystem, HASWELL_SPEC,
                                  XEON_PHI_SPEC, haswell, mealib_platform,
                                  msas, psas, xeon_phi)

__all__ = [
    "CacheHierarchy", "CpuModel", "CpuSpec", "DEFAULT_BW_EFF",
    "DEFAULT_COMPUTE_EFF", "AcceleratedSystem", "HASWELL_SPEC",
    "XEON_PHI_SPEC", "haswell", "mealib_platform", "msas", "psas",
    "xeon_phi",
]
