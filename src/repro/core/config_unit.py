"""The configuration unit (Figure 5): fetch, decode, dispatch.

When the host writes START into a descriptor's Control Region, the CU's
Fetch Unit pulls the descriptor into instruction memory, and the Decode
Unit walks it pass by pass: it activates the pass's accelerators,
programs each tile's switch (chaining the datapath when a pass holds
several COMPs), runs accelerator initialisation, and triggers
processing. LOOP blocks re-arm the same configuration without host
involvement — the paper's mechanism for collapsing 16M library calls
into one descriptor.

The CU here does double duty, like the rest of the package: it executes
descriptors *functionally* (so results are real and testable) and
*models* their time/energy (aggregating loop iterations into batched
streams, the way the hardware pipeline actually behaves).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import (TYPE_CHECKING, Dict, List, Mapping, Optional,
                    Tuple)

from repro.accel.base import (AcceleratorCore, StrideTable,
                              linear_strides, shift_params,
                              unpack_strides)
from repro.accel.layer import AcceleratorLayer
from repro.accel.noc import MeshNoc
from repro.accel.synthesis import noc_power
from repro.accel.tile import PORT_CHAIN, PORT_DRAM, TileFailedError
from repro.core.descriptor import (CMD_START, CR_BYTES, INSTR_BYTES,
                                   DescriptorError, Instruction,
                                   KIND_ACCEL, KIND_ENDLOOP, KIND_ENDPASS,
                                   KIND_LOOP, decode_control,
                                   decode_instructions, verify_integrity)
from repro.faults.datapath import DatapathEcc
from repro.faults.injector import CuHangError, FaultInjector
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memsys.device import MemoryDevice
from repro.memsys.result import MemResult
from repro.memsys.trace import StreamSpec, simulate_streams
from repro.metrics import ExecResult, ZERO

if TYPE_CHECKING:
    from repro.core.schedule_cache import ScheduleCache
    from repro.thermal.governor import PowerGovernor

#: Fetch-unit base latency for pulling a descriptor into IMEM.
FU_FETCH_LATENCY = 200e-9

#: Descriptor transfer bandwidth over the TSV/interconnect path.
FU_FETCH_BW = 25.6e9

#: One-time pass arming: switch programming + per-accelerator
#: configuration fetch from main memory.
PASS_ARM_TIME = 2e-6

#: Loop re-arm per iteration: one address-generator FSM step. It runs
#: concurrently with processing (one generator per tile), so it enters
#: the pass model as a pipeline stage, not an additive cost.
LOOP_REARM_TIME = 1e-9

#: CU logic power while a descriptor is in flight.
CU_POWER = 0.5


@dataclass(frozen=True)
class CompInstance:
    """A decoded COMP: accelerator + base params + loop strides."""

    core: AcceleratorCore
    params: object
    strides: Optional[object] = None      # StrideTable or field mapping


@dataclass(frozen=True)
class PassPlan:
    """A decoded PASS with the loop trip count it executes under."""

    comps: Tuple[CompInstance, ...]
    count: int = 1

    @property
    def chained(self) -> bool:
        return len(self.comps) > 1


@dataclass(frozen=True)
class Degradation:
    """The layer's partial-degradation state for one execution.

    Attributes:
        serving: vaults whose tiles execute the pass, ascending.
        reroutes: degraded vault -> serving tile its data stripe is
            carried to over TSV + mesh.
    """

    serving: Tuple[int, ...]
    reroutes: Mapping[int, int]

    @property
    def active(self) -> bool:
        return bool(self.reroutes)


@dataclass
class DescriptorExecution:
    """Outcome of running one descriptor."""

    result: ExecResult
    by_accelerator: Dict[str, ExecResult]
    invocations: int
    passes: int
    #: Extra time/energy of running degraded (mesh detours, rerouted
    #: vault stripes, fewer lanes); ZERO on a fully healthy layer.
    reroute_overhead: ExecResult = ZERO
    #: Tiles that actually served the descriptor (16 when healthy).
    tiles_used: int = 0
    #: Vault stripes served by a remote tile.
    rerouted_vaults: int = 0
    #: Extra time/energy of DVFS throttling (the envelope governor):
    #: the lockstep pass pipeline stretched by the slowest throttled
    #: serving vault's frequency factor, priced as static power over
    #: the longer drain; ZERO when every serving vault is nominal.
    throttle_overhead: ExecResult = ZERO
    #: Serving vaults that were under DVFS during this execution.
    throttled_vaults: int = 0
    #: Extra time/energy of sharing the stack with concurrent
    #: descriptor streams (the serving runtime's admission width):
    #: each pass time-shares every vault's TSV bus with its
    #: co-runners, so the drain stretches by the layer's contention
    #: slowdown and the stretch is priced at static power. Like scrub,
    #: it is *ledgered* (``contention`` category) but never folded
    #: into :attr:`result` — the solo decomposition is bit-identical
    #: whatever the admission width, and the serving runtime accounts
    #: the stretch in the request's latency. ZERO when the descriptor
    #: ran alone (``concurrency=1``).
    contention_overhead: ExecResult = ZERO
    #: Concurrent descriptor streams this execution shared the stack
    #: with (1 = ran alone).
    contending_streams: int = 1
    #: Per-vault dynamic heat of this execution, J (thermal runs only).
    vault_heat: Optional[Dict[int, float]] = None
    #: Heat deposited on the logic-layer node, J (thermal runs only).
    logic_heat: float = 0.0
    #: True when this execution replayed a schedule-cache entry
    #: (bit-identical to the fresh simulation it snapshotted).
    cache_hit: bool = False

    def accel_share(self, name: str) -> float:
        """Fraction of descriptor time spent in one accelerator."""
        if self.result.time <= 0:
            return 0.0
        return self.by_accelerator.get(name, ZERO).time / self.result.time


def _scaled_stream(stream: StreamSpec, count: int) -> StreamSpec:
    """A loop's iterations concatenate into one long stream: same
    pattern, ``count`` times the elements."""
    if count == 1:
        return stream
    return dc_replace(stream, n_elems=stream.n_elems * count)


def _stream_footprint(stream: StreamSpec) -> int:
    """Byte span one iteration of a stream covers."""
    if stream.kind == "strided" and stream.stride:
        return stream.n_elems * stream.stride
    if stream.kind == "blocked":
        blocks = (stream.n_elems + stream.block_elems - 1
                  ) // stream.block_elems
        return blocks * stream.block_stride
    return stream.n_elems * stream.elem_bytes


def _coalesce_looped_stream(stream: StreamSpec, field_deltas,
                            trips, count: int) -> StreamSpec:
    """Aggregate a per-iteration stream across a LOOP's trips.

    Models what the tile hardware actually does with its local memory
    and address generators, innermost loop level outward:

    * delta 0 — the operand is invariant at this level and stays in
      tile LM (STAP's weight vector across range cells): one read
      serves all trips;
    * a strided stream whose per-trip advance tiles it densely (STAP's
      snapshot columns) — the block is fetched once as a dense region;
    * a per-trip advance equal to the stream's footprint — plain
      concatenation into a longer stream.

    Whatever doesn't match keeps the conservative concatenation model.
    """
    out = stream
    remaining = count
    levels = list(range(len(trips)))[::-1]        # innermost first
    for level in levels:
        trip = trips[level] if trips[level] else count
        if trip <= 1:
            continue
        delta = field_deltas[level]
        if delta == 0:
            remaining //= trip
            continue
        if (out.kind == "strided" and out.stride
                and delta == out.elem_bytes
                and delta * trip == out.stride):
            out = dc_replace(out, kind="seq", stride=0,
                             n_elems=out.n_elems * trip)
            remaining //= trip
            continue
        if delta == _stream_footprint(out) and out.kind in ("seq",
                                                            "strided",
                                                            "blocked"):
            out = dc_replace(out, n_elems=out.n_elems * trip)
            remaining //= trip
            continue
        break
    return _scaled_stream(out, max(remaining, 1))


def _comp_streams_aggregated(comp: "CompInstance",
                             count: int) -> List[StreamSpec]:
    """All streams of a comp, aggregated over its loop trips."""
    streams = comp.core.streams(comp.params)
    if count == 1:
        return streams
    strides = comp.strides
    if strides is None:
        return [_scaled_stream(s, count) for s in streams]
    if not isinstance(strides, StrideTable):
        strides = linear_strides(comp.core.params_type, strides)
    trips = strides.trips
    base_of = {getattr(comp.params, f): f
               for f in comp.core.params_type.ADDR_FIELDS}
    out = []
    for s in streams:
        field = base_of.get(s.base)
        if field is None:
            out.append(_scaled_stream(s, count))
            continue
        out.append(_coalesce_looped_stream(s, strides.deltas[field],
                                           trips, count))
    return out


class ConfigurationUnit:
    """Fetch Unit + Instruction Memory + Decode Unit."""

    def __init__(self, layer: AcceleratorLayer,
                 space: UnifiedAddressSpace, device: MemoryDevice,
                 noc: Optional[MeshNoc] = None,
                 faults: Optional[FaultInjector] = None,
                 datapath: Optional[DatapathEcc] = None,
                 governor: Optional["PowerGovernor"] = None,
                 schedule_cache: Optional["ScheduleCache"] = None):
        self.layer = layer
        self.space = space
        self.device = device
        self.noc = noc if noc is not None else layer.noc
        self.faults = faults
        self.datapath = datapath
        # power-envelope governor (repro.thermal): when attached, pass
        # timing stretches for throttled serving vaults and the per-pass
        # heat breakdown is collected for the thermal model; None keeps
        # the execution model byte-identical to a governor-free build
        self.governor = governor
        # descriptor-keyed schedule cache (repro.core.schedule_cache):
        # when attached, repeated descriptors replay their decode +
        # model decomposition bit-identically; None keeps every
        # execution fully simulated
        self.schedule_cache = schedule_cache

    # -- decode ---------------------------------------------------------------

    def _read_comp(self, instr: Instruction,
                   image: Optional[bytes] = None,
                   base_pa: int = 0) -> CompInstance:
        core = self.layer.accelerator(instr.accel_name)
        if image is None:
            blob = self.space.pa_read(instr.param_addr, instr.param_size)
        else:
            # params come out of an already-fetched descriptor image
            off = instr.param_addr - base_pa
            if off < 0 or off + instr.param_size > len(image):
                raise DescriptorError(
                    f"parameter address {instr.param_addr:#x} outside "
                    "the descriptor image")
            blob = image[off:off + instr.param_size]
        params = core.unpack_params(blob)
        strides = None
        base_size = core.params_type.SIZE
        if instr.param_size > base_size:
            strides = unpack_strides(core.params_type, blob[base_size:])
        return CompInstance(core=core, params=params, strides=strides)

    def fetch(self, desc_pa: int, desc_bytes: int) -> bytes:
        """Fetch Unit: pull the full descriptor image into IMEM.

        The fetched image passes through the fault injector (command-
        path upsets) and is then integrity-checked against its sealed
        checksum before any of it is dispatched.
        """
        raw = self.space.pa_read(desc_pa, desc_bytes)
        if self.faults is not None:
            raw = self.faults.corrupt_descriptor(raw)
        verify_integrity(raw)
        return raw

    def decode(self, desc_pa: int) -> List[PassPlan]:
        """Parse a descriptor from DRAM into pass plans.

        Raises :class:`DescriptorError` unless the CR holds START — the
        hardware only reacts to the doorbell.
        """
        header = self.space.pa_read(desc_pa, CR_BYTES)
        command, n_instr = decode_control(header)
        if command != CMD_START:
            raise DescriptorError("descriptor command region is not START")
        raw = self.space.pa_read(desc_pa,
                                 CR_BYTES + n_instr * INSTR_BYTES)
        instructions = decode_instructions(raw, n_instr)
        return self._build_plans(instructions)

    def plans_from_image(self, image: bytes, base_pa: int,
                         require_start: bool = False) -> List[PassPlan]:
        """Decode a complete descriptor image (integrity-checked).

        Used on the fetched IMEM copy, and by the runtime's host-
        fallback path on its golden (host-side) descriptor bytes, where
        the doorbell state is irrelevant (``require_start=False``).
        """
        verify_integrity(image)
        command, n_instr = decode_control(image)
        if require_start and command != CMD_START:
            raise DescriptorError("descriptor command region is not START")
        instructions = decode_instructions(image, n_instr)
        return self._build_plans(instructions, image=image, base_pa=base_pa)

    def _build_plans(self, instructions: List[Instruction],
                     image: Optional[bytes] = None,
                     base_pa: int = 0) -> List[PassPlan]:
        plans: List[PassPlan] = []
        loop_count = 1
        in_loop = False
        current: List[CompInstance] = []
        loop_passes: List[Tuple[CompInstance, ...]] = []
        for instr in instructions:
            if instr.kind == KIND_LOOP:
                if in_loop:
                    raise DescriptorError("nested LOOP is not supported")
                in_loop = True
                loop_count = instr.param_size
                loop_passes = []
            elif instr.kind == KIND_ACCEL:
                current.append(self._read_comp(instr, image, base_pa))
            elif instr.kind == KIND_ENDPASS:
                if not current:
                    raise DescriptorError("empty PASS in descriptor")
                if in_loop:
                    loop_passes.append(tuple(current))
                else:
                    plans.append(PassPlan(comps=tuple(current), count=1))
                current = []
            elif instr.kind == KIND_ENDLOOP:
                if not in_loop:
                    raise DescriptorError("ENDLOOP without LOOP")
                for comps in loop_passes:
                    plans.append(PassPlan(comps=comps, count=loop_count))
                in_loop = False
                loop_count = 1
        if in_loop or current:
            raise DescriptorError("descriptor ends inside a block")
        return plans

    # -- execution --------------------------------------------------------------

    def _configure_tiles(self, plan: PassPlan,
                         serving: Optional[List[int]] = None) -> None:
        """Program the switch network for one pass (chain wiring).

        Only the ``serving`` tiles are armed; dead or mesh-isolated
        tiles sit the pass out and their vault stripes ride the NoC.
        """
        vaults = serving if serving is not None else list(self.layer.tiles)
        for idx, comp in enumerate(plan.comps):
            first = idx == 0
            last = idx == len(plan.comps) - 1
            for vault in vaults:
                self.layer.tiles[vault].configure(
                    comp.core.name,
                    input_port=PORT_DRAM if first else PORT_CHAIN,
                    output_port=PORT_DRAM if last else PORT_CHAIN)

    def _release_tiles(self) -> None:
        for tile in self.layer.tiles.values():
            tile.release()

    def _guard_datapath(self, plans: List[PassPlan]) -> None:
        """Adjudicate the descriptor's operand footprint through the
        in-datapath SECDED layer before the tiles stream anything.

        Only the DRAM-touching streams are guarded — a chained pass's
        first COMP reads and last COMP writes (matching
        :meth:`_pass_terms`); intermediates ride the tile local
        memories and never cross the TSVs. Raises
        :class:`~repro.faults.ecc.UncorrectableEccError` on a detected
        double-bit word, *before* any functional effect, so the
        runtime's retry re-executes a clean descriptor.
        """
        if self.datapath is None:
            return
        reads: List[Tuple[int, int]] = []
        writes: List[Tuple[int, int]] = []
        for plan in plans:
            first, last = plan.comps[0], plan.comps[-1]
            reads.extend(first.core.operand_spans(
                first.params, plan.count, first.strides, writes=False))
            writes.extend(last.core.operand_spans(
                last.params, plan.count, last.strides, writes=True))
        self.datapath.guard(reads, writes)

    def run_functional(self, plan: PassPlan) -> None:
        """Numerically execute one pass plan against physical memory.

        Also reused by the runtime's host-fallback path: the host
        performs the same arithmetic the accelerators would have."""
        for i in range(plan.count):
            for comp in plan.comps:
                params = shift_params(comp.params, comp.strides, i)
                comp.core.run(self.space, params)

    def _model_pass(self, plan: PassPlan,
                    degradation: Optional[Degradation] = None
                    ) -> Tuple[ExecResult, Dict[str, float], ExecResult,
                               Dict[str, object]]:
        """Time/energy of one pass plan (loop iterations aggregated).

        Returns ``(result, per-comp compute times, reroute overhead,
        heat breakdown)``. When the layer is degraded, ``result`` is
        the degraded cost and the overhead is its excess over the
        hypothetical healthy cost (what the ``reroute`` ledger category
        accounts). On a healthy layer the overhead is exactly
        :data:`~repro.metrics.ZERO` and the model is bit-identical to
        the undegraded one. The heat breakdown (of the *actual* run,
        degraded or not) is what the thermal model consumes; it is a
        pure decomposition of the result's energy.
        """
        if degradation is None or not degradation.active:
            result, compute_times, heat = self._pass_terms(
                plan, len(self.layer.tiles), {})
            return result, compute_times, ZERO, heat
        result, compute_times, heat = self._pass_terms(
            plan, len(degradation.serving), degradation.reroutes)
        clean, _, _ = self._pass_terms(plan, len(self.layer.tiles), {})
        overhead = ExecResult(max(0.0, result.time - clean.time),
                              max(0.0, result.energy - clean.energy))
        return result, compute_times, overhead, heat

    def _pass_terms(self, plan: PassPlan, n_serve: int,
                    reroutes: Mapping[int, int]
                    ) -> Tuple[ExecResult, Dict[str, float],
                               Dict[str, object]]:
        """One pass's cost on ``n_serve`` tiles with ``reroutes`` vault
        stripes carried over the mesh.

        For a chained pass only the first COMP's input streams and the
        last COMP's output streams touch DRAM; intermediates ride the
        tile local memories and the NoC. A rerouted vault's stripe (its
        1/16th of the DRAM traffic) additionally crosses the mesh to
        its serving tile: transfers to distinct serving tiles proceed
        in parallel, stripes converging on one tile serialise on its
        link, and the slowest group enters the pass pipeline as one
        more concurrent stage. Fewer serving tiles also stretch the
        DRAM time (each tile drives only its own vault's TSV bus) and
        shrink the deployed compute lanes.
        """
        first, last = plan.comps[0], plan.comps[-1]
        streams: List[StreamSpec] = []
        streams.extend(s for s in
                       _comp_streams_aggregated(first, plan.count)
                       if not s.is_write)
        streams.extend(s for s in
                       _comp_streams_aggregated(last, plan.count)
                       if s.is_write)
        mem = simulate_streams(self.device, streams)
        if n_serve < self.device.units:
            stretched = mem.time * self.device.units / n_serve
            mem = MemResult(
                time=stretched,
                energy=mem.energy + self.device.static_power()
                * (stretched - mem.time),
                bytes_moved=mem.bytes_moved)
        compute_times = {}
        for comp in plan.comps:
            prof = comp.core.profile(comp.params)
            compute_times[comp.core.name] = (
                plan.count * prof.flops
                / comp.core.compute_rate(tiles=n_serve)
                if prof.flops else 0.0)
        t_compute = max(compute_times.values()) if compute_times else 0.0
        t_noc = 0.0
        if plan.chained:
            inter_bytes = plan.count * sum(
                s.total_bytes for s in first.core.streams(first.params)
                if s.is_write)
            t_noc = inter_bytes / (n_serve * self.noc.link_bw)
        t_ctrl = plan.count * LOOP_REARM_TIME / n_serve
        t_reroute, e_reroute, e_by_server = self._reroute_terms(
            mem.bytes_moved, reroutes)
        time = (max(mem.time, t_compute, t_noc, t_ctrl, t_reroute)
                + PASS_ARM_TIME)
        # heat buckets (a pure decomposition of the energy accumulated
        # below): DRAM joules land on the vault nodes, tile logic on
        # the serving vaults, NoC + CU on the logic-layer node, and
        # rerouted-stripe transport on the carrying server vaults
        energy = mem.energy
        heat_dram = mem.energy
        if time > mem.time:
            e_static = self.device.static_power() * (time - mem.time)
            energy += e_static
            heat_dram += e_static
        heat_tiles = 0.0
        for comp in plan.comps:
            activity = min(
                1.0, compute_times[comp.core.name] / time if time else 0.0)
            e_logic = comp.core.logic_power(
                activity=max(activity, 0.25), tiles=n_serve) * time
            energy += e_logic
            heat_tiles += e_logic
        heat_logic = (noc_power() + CU_POWER) * time
        energy += (noc_power() + CU_POWER) * time + e_reroute
        heat = {"dram": heat_dram, "tiles": heat_tiles,
                "logic": heat_logic, "reroute": e_by_server}
        return ExecResult(time=time, energy=energy), compute_times, heat

    def _reroute_terms(self, bytes_moved: float,
                       reroutes: Mapping[int, int]
                       ) -> Tuple[float, float, Dict[int, float]]:
        """Mesh transport cost of the rerouted vault stripes.

        Returns ``(time, energy, energy by serving tile)`` — the
        per-server split feeds the thermal model (the carrying tile's
        vault takes the transport heat)."""
        if not reroutes:
            return 0.0, 0.0, {}
        stripe = bytes_moved / self.device.units
        by_server: Dict[int, List[int]] = {}
        for vault, server in reroutes.items():
            by_server.setdefault(server, []).append(vault)
        t_reroute = 0.0
        e_reroute = 0.0
        e_by_server: Dict[int, float] = {}
        for server, vaults in by_server.items():
            # batch hop kernel (vectorized XY when the mesh is healthy);
            # the energy sum below stays in per-vault Python order
            hops = [int(h) for h in
                    self.noc.route_hops_batch(vaults, server)]
            t_group = (max(hops) * self.noc.hop_latency
                       + stripe * len(vaults) / self.noc.link_bw)
            t_reroute = max(t_reroute, t_group)
            e_group = sum(h * stripe * self.noc.energy_per_byte_hop
                          for h in hops)
            e_reroute += e_group
            e_by_server[server] = e_by_server.get(server, 0.0) + e_group
        return t_reroute, e_reroute, e_by_server

    def _inject_structural_faults(self) -> Optional[Tuple[int, int]]:
        """Apply this execution's injected tile/link faults.

        Returns the link flapped for just this execution (to restore
        afterwards), if any. Raises :class:`CuHangError` when the
        doorbell draw hangs the CU.
        """
        draw = self.faults.sample_tile_failure()
        if draw is not None:
            healthy = sorted(v for v, t in self.layer.tiles.items()
                             if not t.failed)
            if healthy:
                self.layer.mark_tile_failed(healthy[draw % len(healthy)])
        draw = self.faults.sample_link_failure()
        if draw is not None:
            links = self.noc.healthy_links()
            if links:
                self.noc.fail_link(*links[draw % len(links)])
        flapped: Optional[Tuple[int, int]] = None
        draw = self.faults.sample_link_flap()
        if draw is not None:
            links = self.noc.healthy_links()
            if links:
                flapped = links[draw % len(links)]
                self.noc.fail_link(*flapped)
        return flapped

    def _degradation(self) -> Tuple[List[int], Optional[Degradation]]:
        """Current serving tiles + degradation record, or raise
        :class:`TileFailedError` when no accelerated execution is
        possible (every tile dead, or a vault unreachable)."""
        serving = self.layer.serving_tiles()
        if not serving:
            raise TileFailedError(
                f"tiles on vaults {self.layer.failed_tiles()} are all "
                "failed; no tile can serve the descriptor")
        reroutes = self.layer.reroute_map()
        unreachable = sorted(v for v, s in reroutes.items() if s is None)
        if unreachable:
            raise TileFailedError(
                f"no serving tile can reach vaults {unreachable} over "
                f"the degraded mesh (failed links: "
                f"{sorted(self.noc.failed_links)})")
        if len(serving) == len(self.layer.tiles):
            return serving, None
        return serving, Degradation(
            serving=tuple(serving),
            reroutes={v: s for v, s in reroutes.items()})

    def run_descriptor(self, desc_pa: int, desc_bytes: int,
                       functional: bool = True,
                       concurrency: int = 1) -> DescriptorExecution:
        """Execute a descriptor: functional effects + time/energy.

        A dead tile (or a mesh-isolated one) no longer aborts the
        execution: its vault's data stripe is rerouted over TSV + mesh
        to the surviving tiles and the pass runs degraded, with the
        detour's bandwidth/energy cost reported in
        :attr:`DescriptorExecution.reroute_overhead`. Raises
        :class:`TileFailedError` only when *no* tile can serve the
        descriptor (all dead, or a vault cut off by link failures),
        :class:`CuHangError` when an injected hang eats the doorbell,
        and :class:`DescriptorError`/:class:`DescriptorIntegrityError`
        when the fetched descriptor image fails validation.

        ``concurrency`` is the number of descriptor streams sharing
        the stack while this one runs (the serving runtime's admission
        width). Each pass's drain stretches by the layer's
        :meth:`~repro.accel.layer.AcceleratorLayer.contention_slowdown`
        and the stretch is priced at static power into
        :attr:`DescriptorExecution.contention_overhead` — the nominal
        decomposition (accelerator shares, reroute, throttle) is never
        repriced, so ``concurrency=1`` is bit-identical to a build
        that predates the knob.
        """
        if concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {concurrency}")
        flapped: Optional[Tuple[int, int]] = None
        if self.faults is not None:
            flapped = self._inject_structural_faults()
        try:
            if self.faults is not None and self.faults.sample_hang():
                raise CuHangError(
                    "configuration unit did not acknowledge the doorbell")
            serving, degradation = self._degradation()
            image = self.fetch(desc_pa, desc_bytes)
            # DVFS state is sampled once per execution: the governor is
            # only re-polled by the runtime after the thermal step
            # (pure reads, so sampling before decode changes nothing)
            slowdown = 1.0
            throttled: List[int] = []
            if self.governor is not None:
                slowdown = self.governor.pass_slowdown(serving)
                throttled = self.governor.throttled_vaults(serving)
            cache = self.schedule_cache
            key = None
            if cache is not None:
                key = (desc_pa, desc_bytes, image, tuple(serving),
                       (tuple(sorted(degradation.reroutes.items()))
                        if degradation is not None else ()),
                       slowdown, tuple(throttled),
                       self.governor is not None, concurrency)
                entry = cache.lookup(key)
                if entry is not None:
                    # replay: every *live* side effect still runs —
                    # SECDED adjudication, functional execution,
                    # throttle bookkeeping — only descriptor decode,
                    # tile programming and the memory-system model are
                    # replayed from the cached (bit-identical) entry
                    self._guard_datapath(entry.plans)
                    if functional:
                        for plan in entry.plans:
                            self.run_functional(plan)
                    execution = entry.replay()
                    if (self.governor is not None
                            and execution.throttle_overhead.time > 0.0):
                        self.governor.stats.note_throttled(
                            execution.throttle_overhead.time, throttled)
                    return execution
            plans = self.plans_from_image(image, desc_pa,
                                          require_start=True)
            self._guard_datapath(plans)
            fetch_time = FU_FETCH_LATENCY + desc_bytes / FU_FETCH_BW
            total = ExecResult(time=fetch_time,
                               energy=fetch_time * CU_POWER)
            by_accel: Dict[str, ExecResult] = {}
            reroute_total = ZERO
            throttle_total = ZERO
            contention_total = ZERO
            # vault-bandwidth contention: co-running descriptor streams
            # time-share every vault's TSV bus, so each pass's drain
            # stretches by the layer's slowdown factor (1.0 when alone)
            contend = (self.layer.contention_slowdown(concurrency)
                       if concurrency > 1 else 1.0)
            invocations = 0
            vault_heat: Optional[Dict[int, float]] = None
            logic_heat = 0.0
            if self.governor is not None:
                vault_heat = {v: 0.0 for v in range(self.device.units)}
                logic_heat = fetch_time * CU_POWER
            for plan in plans:
                self._configure_tiles(plan, serving)
                if functional:
                    self.run_functional(plan)
                pass_result, _, overhead, heat = self._model_pass(
                    plan, degradation)
                throttle_ov = ZERO
                if slowdown < 1.0:
                    # frequency-only DVFS: dynamic joules are unchanged,
                    # the stretched drain costs extra static power
                    stretch = pass_result.time * (1.0 / slowdown - 1.0)
                    throttle_ov = ExecResult(
                        time=stretch,
                        energy=self.device.static_power() * stretch)
                contention_ov = ZERO
                if contend > 1.0:
                    # time-shared vault bandwidth: the pass drain takes
                    # `contend` times its solo duration; dynamic joules
                    # are unchanged, the extra residency costs static
                    # power (the throttle-stretch pricing convention).
                    # Like scrub, the stretch is *ledgered* but never
                    # added to the returned result: the solo
                    # decomposition stays bit-identical whatever the
                    # admission width, and the serving runtime folds
                    # the stretch into the request's latency instead.
                    stretch = pass_result.time * (contend - 1.0)
                    contention_ov = ExecResult(
                        time=stretch,
                        energy=self.device.static_power() * stretch)
                total = total.plus(pass_result).plus(throttle_ov)
                reroute_total = reroute_total.plus(overhead)
                throttle_total = throttle_total.plus(throttle_ov)
                contention_total = contention_total.plus(contention_ov)
                # attribute the healthy-equivalent share of the pass to
                # its accelerators; the degradation excess is reported
                # separately so the reroute ledger can carry it (and the
                # throttle excess likewise for the throttle category)
                base = ExecResult(pass_result.time - overhead.time,
                                  pass_result.energy - overhead.energy)
                share = base.time / max(len(plan.comps), 1)
                for comp in plan.comps:
                    prev = by_accel.get(comp.core.name, ZERO)
                    frac = ExecResult(
                        time=share,
                        energy=base.energy / len(plan.comps))
                    by_accel[comp.core.name] = prev.plus(frac)
                invocations += plan.count * len(plan.comps)
                if vault_heat is not None:
                    units = self.device.units
                    # DRAM joules interleave over every vault; tile
                    # logic heats the serving vaults; NoC + CU heat the
                    # logic node; rerouted stripes heat their carriers;
                    # the throttle's static excess spreads like DRAM
                    per_vault = heat["dram"] / units
                    for v in vault_heat:
                        vault_heat[v] += per_vault
                    per_tile = heat["tiles"] / len(serving)
                    for v in serving:
                        vault_heat[v] += per_tile
                    logic_heat += heat["logic"]
                    for server, e_srv in heat["reroute"].items():
                        vault_heat[server] += e_srv
                    if throttle_ov.energy > 0.0:
                        per_vault = throttle_ov.energy / units
                        for v in vault_heat:
                            vault_heat[v] += per_vault
                    if contention_ov.energy > 0.0:
                        # the contention stretch is DRAM static burn:
                        # it spreads over every vault, like throttle
                        per_vault = contention_ov.energy / units
                        for v in vault_heat:
                            vault_heat[v] += per_vault
                self._release_tiles()
            if self.governor is not None and throttle_total.time > 0.0:
                self.governor.stats.note_throttled(throttle_total.time,
                                                   throttled)
            execution = DescriptorExecution(
                result=total, by_accelerator=by_accel,
                invocations=invocations, passes=len(plans),
                reroute_overhead=reroute_total,
                tiles_used=len(serving),
                rerouted_vaults=(len(degradation.reroutes)
                                 if degradation is not None else 0),
                throttle_overhead=throttle_total,
                throttled_vaults=len(throttled),
                contention_overhead=contention_total,
                contending_streams=concurrency,
                vault_heat=vault_heat,
                logic_heat=logic_heat)
            if cache is not None:
                cache.store(key, plans, execution, throttled)
            return execution
        finally:
            if flapped is not None:
                self.noc.restore_link(*flapped)
