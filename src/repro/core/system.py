"""Full-system assembly: host + memory stack + accelerators + runtime.

One object wires everything the paper's Figure 2 shows: the host CPU
model, the 3D-stacked DRAM (functional physical memory + cycle-level
timing device), the accelerator layer, the configuration unit, the
invocation cost model, and the runtime the translated programs call.
"""

from __future__ import annotations

from typing import Optional

from repro.accel.layer import AcceleratorLayer
from repro.core.config_unit import ConfigurationUnit
from repro.core.invocation import InvocationModel
from repro.core.runtime import MealibRuntime
from repro.host.cpu import CpuModel
from repro.host.platforms import haswell
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memmgmt.driver import MealibDriver
from repro.memsys.dram3d import StackedDram
from repro.metrics import ExecResult
from repro.mkl.profiles import OpProfile


class MealibSystem:
    """A host with one accelerated memory stack."""

    def __init__(self, host: Optional[CpuModel] = None,
                 stack_bytes: int = 1 << 30,
                 device: Optional[StackedDram] = None,
                 layer: Optional[AcceleratorLayer] = None,
                 invocation: Optional[InvocationModel] = None):
        self.host = host if host is not None else haswell()
        self.space = UnifiedAddressSpace(
            MealibDriver(stack_bytes=stack_bytes))
        self.device = device if device is not None else StackedDram()
        self.layer = layer if layer is not None else AcceleratorLayer()
        self.config_unit = ConfigurationUnit(self.layer, self.space,
                                             self.device)
        self.runtime = MealibRuntime(self.space, self.config_unit,
                                     invocation)

    @property
    def ledger(self):
        return self.runtime.ledger

    def run_on_host(self, label: str, profile: OpProfile) -> ExecResult:
        """Execute a compute-bounded library call on the host CPU and
        record it (the cherk/ctrsm path of the STAP pipeline)."""
        result = self.host.run_profile(profile)
        self.runtime.log_host(label, result)
        return result

    def total(self) -> ExecResult:
        """End-to-end time/energy recorded so far."""
        return self.ledger.total()

    def breakdown(self):
        """(host, accelerator, invocation) totals — the Fig 14 split."""
        return (self.ledger.total("host"),
                self.ledger.total("accelerator"),
                self.ledger.total("invocation"))
