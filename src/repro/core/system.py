"""Full-system assembly: host + memory stack + accelerators + runtime.

One object wires everything the paper's Figure 2 shows: the host CPU
model, the 3D-stacked DRAM (functional physical memory + cycle-level
timing device), the accelerator layer, the configuration unit, the
invocation cost model, and the runtime the translated programs call.
"""

from __future__ import annotations

from typing import Optional

from repro.accel.layer import AcceleratorLayer
from repro.core.config_unit import ConfigurationUnit
from repro.core.invocation import InvocationModel
from repro.core.runtime import MealibRuntime, ResiliencePolicy
from repro.faults.datapath import DatapathEcc
from repro.faults.injector import FaultInjector
from repro.faults.scrub import PatrolScrubber, ScrubConfig
from repro.host.cpu import CpuModel
from repro.host.platforms import haswell
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memmgmt.driver import MealibDriver
from repro.memsys.dram3d import StackedDram
from repro.metrics import ExecResult
from repro.mkl.profiles import OpProfile


class MealibSystem:
    """A host with one accelerated memory stack.

    Passing a :class:`~repro.faults.injector.FaultInjector` wires fault
    injection (and the matching ECC protection and runtime hardening)
    through every layer: the physical memory's read path, the
    accelerators' direct-TSV datapath (in-datapath SECDED adjudication
    of latent cell flips at operand fetch), the stacked DRAM's timing
    model, the configuration unit's fetch/doorbell path, and the
    runtime's watchdog/retry/fallback machinery. ``scrub`` additionally
    arms a background patrol scrubber over the same injector. With
    ``faults`` left ``None`` the system is exactly the unhardened
    baseline.
    """

    def __init__(self, host: Optional[CpuModel] = None,
                 stack_bytes: int = 1 << 30,
                 device: Optional[StackedDram] = None,
                 layer: Optional[AcceleratorLayer] = None,
                 invocation: Optional[InvocationModel] = None,
                 faults: Optional[FaultInjector] = None,
                 policy: Optional[ResiliencePolicy] = None,
                 scrub: Optional[ScrubConfig] = None):
        self.host = host if host is not None else haswell()
        self.space = UnifiedAddressSpace(
            MealibDriver(stack_bytes=stack_bytes))
        self.device = device if device is not None else StackedDram()
        self.layer = layer if layer is not None else AcceleratorLayer()
        self.faults = faults
        self.datapath = None
        self.scrubber = None
        if faults is not None:
            phys = self.space.driver.phys
            phys.fault_hook = faults.dram_read
            if faults.config.ecc_enabled:
                self.device.ecc = faults.ecc
            self.datapath = DatapathEcc(faults, phys)
            self.scrubber = PatrolScrubber(
                faults, phys, scrub if scrub is not None else ScrubConfig())
        self.config_unit = ConfigurationUnit(self.layer, self.space,
                                             self.device, faults=faults,
                                             datapath=self.datapath)
        self.runtime = MealibRuntime(self.space, self.config_unit,
                                     invocation, host=self.host,
                                     faults=faults, policy=policy,
                                     datapath=self.datapath,
                                     scrubber=self.scrubber)

    @property
    def ledger(self):
        return self.runtime.ledger

    def run_on_host(self, label: str, profile: OpProfile) -> ExecResult:
        """Execute a compute-bounded library call on the host CPU and
        record it (the cherk/ctrsm path of the STAP pipeline)."""
        result = self.host.run_profile(profile)
        self.runtime.log_host(label, result)
        return result

    def total(self) -> ExecResult:
        """End-to-end time/energy recorded so far."""
        return self.ledger.total()

    def breakdown(self):
        """(host, accelerator, invocation) totals — the Fig 14 split."""
        return (self.ledger.total("host"),
                self.ledger.total("accelerator"),
                self.ledger.total("invocation"))

    def resilience_breakdown(self):
        """(fault, retry, reroute, fallback) totals — the cost of
        surviving injected faults. All zero on a fault-free run."""
        return (self.ledger.total("fault"),
                self.ledger.total("retry"),
                self.ledger.total("reroute"),
                self.ledger.total("fallback"))
