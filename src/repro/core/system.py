"""Full-system assembly: host + memory stack + accelerators + runtime.

One object wires everything the paper's Figure 2 shows: the host CPU
model, the 3D-stacked DRAM (functional physical memory + cycle-level
timing device), the accelerator layer, the configuration unit, the
invocation cost model, and the runtime the translated programs call.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.accel.layer import AcceleratorLayer
from repro.core.config_unit import ConfigurationUnit
from repro.core.invocation import InvocationModel
from repro.core.runtime import MealibRuntime, ResiliencePolicy
from repro.core.schedule_cache import ScheduleCache
from repro.faults.datapath import DatapathEcc
from repro.faults.injector import FaultInjector
from repro.faults.scrub import PatrolScrubber, ScrubConfig
from repro.host.cpu import CpuModel
from repro.host.platforms import haswell
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memmgmt.driver import MealibDriver
from repro.memsys.dram3d import StackedDram
from repro.metrics import ExecResult
from repro.mkl.profiles import OpProfile
from repro.thermal import PowerGovernor, ThermalConfig, ThermalModel


class MealibSystem:
    """A host with one accelerated memory stack.

    Passing a :class:`~repro.faults.injector.FaultInjector` wires fault
    injection (and the matching ECC protection and runtime hardening)
    through every layer: the physical memory's read path, the
    accelerators' direct-TSV datapath (in-datapath SECDED adjudication
    of latent cell flips at operand fetch), the stacked DRAM's timing
    model, the configuration unit's fetch/doorbell path, and the
    runtime's watchdog/retry/fallback machinery. ``scrub`` additionally
    arms a background patrol scrubber over the same injector — it
    configures *how* the injector's latent flips are drained, so
    passing it without ``faults`` is a configuration error. ``thermal``
    attaches the per-vault RC network and power-envelope governor
    (``repro.thermal``): executes and patrol passes deposit their
    ledger-attributed joules on the vault nodes, hot vaults are
    DVFS-throttled (the ``throttle`` ledger category) or taken offline
    through the per-vault reroute path, and — when faults are armed —
    vault temperature Arrhenius-scales the latent flip rate. With
    ``faults`` and ``thermal`` left ``None`` the system is exactly the
    unhardened baseline.

    ``schedule_cache`` arms the descriptor-keyed schedule cache
    (:class:`~repro.core.schedule_cache.ScheduleCache`): repeated
    descriptors replay their decode + timing/energy decomposition
    bit-identically instead of re-simulating the memory system. Pass
    ``True`` for a default cache, a :class:`ScheduleCache` instance to
    control capacity (or share one), or ``None``/``False`` (the
    default) for the fully simulated, cache-free build. All
    invalidation hooks — link/tile health, governor state, patrol-scrub
    repairs, injected faults — are wired automatically.

    Many independent client streams can be multiplexed onto one system
    by the multi-tenant serving runtime
    (:class:`repro.serving.ServingRuntime`): per-tenant descriptor
    queues, QoS classes with admission control, AXPY/DOT batch
    coalescing, and vault-bandwidth contention priced exactly into the
    ``contention`` ledger category with per-tenant attribution. A solo
    synchronous caller (everything in this module's direct API) never
    pays any of it.
    """

    def __init__(self, host: Optional[CpuModel] = None,
                 stack_bytes: int = 1 << 30,
                 device: Optional[StackedDram] = None,
                 layer: Optional[AcceleratorLayer] = None,
                 invocation: Optional[InvocationModel] = None,
                 faults: Optional[FaultInjector] = None,
                 policy: Optional[ResiliencePolicy] = None,
                 scrub: Optional[ScrubConfig] = None,
                 thermal: Optional[ThermalConfig] = None,
                 schedule_cache: Union[None, bool, ScheduleCache] = None):
        if scrub is not None and faults is None:
            raise ValueError(
                "scrub= without faults= would arm a patrol scrubber "
                "over no injector; pass a FaultInjector (rates may all "
                "be zero) or drop the scrub config")
        self.host = host if host is not None else haswell()
        self.space = UnifiedAddressSpace(
            MealibDriver(stack_bytes=stack_bytes))
        self.device = device if device is not None else StackedDram()
        self.layer = layer if layer is not None else AcceleratorLayer()
        self.faults = faults
        self.datapath = None
        self.scrubber = None
        self.thermal = None
        self.governor = None
        if thermal is not None and thermal.enabled:
            self.thermal = ThermalModel(thermal,
                                        vaults=self.device.units,
                                        cols=self.layer.noc.cols)
            self.governor = PowerGovernor(self.thermal, self.layer,
                                          thermal)
            # thermal-aware reroute tie-break (coolest serving tile)
            self.layer.thermal = self.thermal
        if faults is not None:
            phys = self.space.driver.phys
            phys.fault_hook = faults.dram_read
            if faults.config.ecc_enabled:
                self.device.ecc = faults.ecc
            self.datapath = DatapathEcc(faults, phys)
            self.scrubber = PatrolScrubber(
                faults, phys,
                scrub if scrub is not None else ScrubConfig(),
                mapping=(self.device.mapping if self.thermal is not None
                         else None))
        if schedule_cache is True:
            self.schedule_cache: Optional[ScheduleCache] = ScheduleCache()
        elif isinstance(schedule_cache, ScheduleCache):
            self.schedule_cache = schedule_cache
        else:                       # None / False: fully simulated
            self.schedule_cache = None
        if self.schedule_cache is not None:
            cache = self.schedule_cache
            # every hazard source that can change a replayed result (or
            # the world it was computed in) bumps an epoch: stale
            # entries are caught at lookup, never silently replayed
            self.layer.noc.health.on_change = cache.invalidate_health
            self.layer.on_health_change = cache.invalidate_health
            if self.governor is not None:
                self.governor.on_state_change = cache.invalidate_thermal
            if self.scrubber is not None:
                self.scrubber.on_repair = cache.invalidate_scrub
            if faults is not None:
                faults.on_latent_change = cache.invalidate_fault
        self.config_unit = ConfigurationUnit(
            self.layer, self.space, self.device, faults=faults,
            datapath=self.datapath, governor=self.governor,
            schedule_cache=self.schedule_cache)
        self.runtime = MealibRuntime(
            self.space, self.config_unit, invocation, host=self.host,
            faults=faults, policy=policy, datapath=self.datapath,
            scrubber=self.scrubber, thermal=self.thermal,
            governor=self.governor,
            vault_of=(self.device.mapping.unit_of
                      if self.thermal is not None else None))
        if self.governor is not None:
            # engage forced (sub-ambient) envelopes before the first
            # execute — a vault born above critical goes offline now
            self.governor.poll()

    @property
    def ledger(self):
        return self.runtime.ledger

    def run_on_host(self, label: str, profile: OpProfile) -> ExecResult:
        """Execute a compute-bounded library call on the host CPU and
        record it (the cherk/ctrsm path of the STAP pipeline)."""
        result = self.host.run_profile(profile)
        self.runtime.log_host(label, result)
        return result

    def total(self) -> ExecResult:
        """End-to-end time/energy recorded so far."""
        return self.ledger.total()

    def breakdown(self):
        """(host, accelerator, invocation) totals — the Fig 14 split."""
        return (self.ledger.total("host"),
                self.ledger.total("accelerator"),
                self.ledger.total("invocation"))

    def resilience_breakdown(self):
        """(fault, retry, reroute, fallback) totals — the cost of
        surviving injected faults. All zero on a fault-free run."""
        return (self.ledger.total("fault"),
                self.ledger.total("retry"),
                self.ledger.total("reroute"),
                self.ledger.total("fallback"))

    def contention_total(self) -> ExecResult:
        """Total of the ``contention`` ledger category: the excess of
        sharing the stack with concurrent descriptor streams under the
        serving runtime (:mod:`repro.serving`). Exactly zero on any
        solo call stream."""
        return self.ledger.total("contention")
