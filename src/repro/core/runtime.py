"""MEALib runtime routines (Listing 2 of the paper).

Two families, both backed by the device driver:

* memory management — ``mealib_mem_alloc`` / ``mealib_mem_free``
  allocate physically contiguous, virtually mapped buffers in the data
  space (the compiler substitutes these for malloc/free);
* accelerator control — ``mealib_acc_plan`` lowers a TDL string into an
  accelerator descriptor in the command space, ``mealib_acc_execute``
  flushes caches, rings the doorbell and lets the configuration unit
  run it (functionally and in the timing model), and
  ``mealib_acc_destroy`` releases the descriptor slot.

Plans are reusable: one ``acc_plan``, many ``acc_execute`` — the
software-loop baseline of Fig 12b does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.config_unit import (ConfigurationUnit,
                                    DescriptorExecution)
from repro.core.descriptor import (CMD_IDLE, CMD_START, EncodedDescriptor,
                                   encode)
from repro.core.invocation import InvocationModel
from repro.core.tdl import ParamStore, TdlProgram, parse_tdl
from repro.memmgmt.addrspace import MappedBuffer, UnifiedAddressSpace
from repro.memmgmt.allocator import ContiguousAllocator
from repro.metrics import ExecResult


class RuntimeError_(Exception):
    """Raised on invalid runtime usage (destroyed plans, bad sizes)."""


@dataclass
class AccPlan:
    """The ``acc_plan`` handle: a lowered descriptor plus bookkeeping."""

    program: TdlProgram
    descriptor: EncodedDescriptor
    working_set_bytes: int
    destroyed: bool = False
    executions: int = 0


@dataclass
class LedgerEntry:
    category: str
    label: str
    result: ExecResult


@dataclass
class Ledger:
    """Accumulates time/energy by category for the breakdown figures."""

    entries: list = field(default_factory=list)

    def log(self, category: str, label: str, result: ExecResult) -> None:
        self.entries.append(LedgerEntry(category, label, result))

    def total(self, category: Optional[str] = None) -> ExecResult:
        out = ExecResult(0.0, 0.0)
        for e in self.entries:
            if category is None or e.category == category:
                out = out.plus(e.result)
        return out

    def by_label(self, category: str) -> Dict[str, ExecResult]:
        out: Dict[str, ExecResult] = {}
        for e in self.entries:
            if e.category == category:
                out[e.label] = out.get(e.label,
                                       ExecResult(0.0, 0.0)).plus(e.result)
        return out

    def clear(self) -> None:
        self.entries.clear()


class MealibRuntime:
    """The runtime library a translated program links against."""

    def __init__(self, space: UnifiedAddressSpace,
                 config_unit: ConfigurationUnit,
                 invocation: Optional[InvocationModel] = None):
        self.space = space
        self.cu = config_unit
        self.invocation = (invocation if invocation is not None
                           else InvocationModel())
        self.ledger = Ledger()
        # descriptor slots live in the command space, after a small
        # reserved header page
        self._command_alloc = ContiguousAllocator(
            base=space.command_pa + 256,
            size=space.command_bytes - 256)

    # -- memory management (mealib_mem_alloc / mealib_mem_free) -------------

    def mem_alloc(self, size: int) -> MappedBuffer:
        return self.space.alloc(size)

    def mem_free(self, buffer: MappedBuffer) -> None:
        self.space.free(buffer)

    # -- accelerator control (mealib_acc_plan / execute / destroy) -----------

    def acc_plan(self, tdl: Union[str, TdlProgram], params: ParamStore,
                 in_size: int, out_size: int) -> AccPlan:
        """Lower a TDL string into a descriptor in the command space.

        ``in_size``/``out_size`` describe the I/O buffers (the Listing 2
        signature) and size the coherence flush at execute time.
        """
        if in_size < 0 or out_size < 0:
            raise RuntimeError_("buffer sizes must be non-negative")
        program = parse_tdl(tdl) if isinstance(tdl, str) else tdl
        # two-step: encode once to learn the size, then place it
        probe = encode(program, params, base_pa=0)
        slot = self._command_alloc.alloc(probe.size, align=64)
        descriptor = encode(program, params, base_pa=slot)
        self.space.pa_write(slot, descriptor.data)
        return AccPlan(program=program, descriptor=descriptor,
                       working_set_bytes=in_size + out_size)

    def acc_execute(self, plan: AccPlan,
                    functional: bool = True) -> ExecResult:
        """Invoke the accelerators described by ``plan``.

        Charges the host-side invocation overhead (wbinvd, descriptor
        store, doorbell), writes START into the CR, and hands control to
        the configuration unit. Returns the end-to-end cost; details are
        accumulated in :attr:`ledger`.
        """
        if plan.destroyed:
            raise RuntimeError_("acc_execute on a destroyed plan")
        overhead = self.invocation.total(plan.descriptor.size,
                                         plan.working_set_bytes)
        self.ledger.log("invocation", "invocation", overhead)
        # doorbell: set the command word the hardware polls
        buf = bytearray(plan.descriptor.data)
        from repro.core.descriptor import set_command
        set_command(buf, CMD_START)
        self.space.pa_write(plan.descriptor.base_pa, bytes(buf))
        execution = self.cu.run_descriptor(plan.descriptor.base_pa,
                                           plan.descriptor.size,
                                           functional=functional)
        for accel_name, share in execution.by_accelerator.items():
            self.ledger.log("accelerator", accel_name, share)
        # return the CR to idle
        set_command(buf, CMD_IDLE)
        self.space.pa_write(plan.descriptor.base_pa, bytes(buf))
        plan.executions += 1
        return overhead.plus(execution.result)

    def acc_destroy(self, plan: AccPlan) -> None:
        if plan.destroyed:
            raise RuntimeError_("plan already destroyed")
        self._command_alloc.free(plan.descriptor.base_pa)
        plan.destroyed = True

    # -- host-side accounting ---------------------------------------------

    def log_host(self, label: str, result: ExecResult) -> None:
        """Record host-executed (compute-bounded) library work."""
        self.ledger.log("host", label, result)
