"""MEALib runtime routines (Listing 2 of the paper).

Two families, both backed by the device driver:

* memory management — ``mealib_mem_alloc`` / ``mealib_mem_free``
  allocate physically contiguous, virtually mapped buffers in the data
  space (the compiler substitutes these for malloc/free);
* accelerator control — ``mealib_acc_plan`` lowers a TDL string into an
  accelerator descriptor in the command space, ``mealib_acc_execute``
  flushes caches, rings the doorbell and lets the configuration unit
  run it (functionally and in the timing model), and
  ``mealib_acc_destroy`` releases the descriptor slot.

Plans are reusable: one ``acc_plan``, many ``acc_execute`` — the
software-loop baseline of Fig 12b does exactly that.

``acc_execute`` is *hardened*: a watchdog bounds how long a hung
configuration unit can stall the host, detected faults (corrupted
descriptors, uncorrectable ECC errors, CU hangs) trigger bounded
retries with exponential backoff — re-writing the descriptor from the
host's golden copy and re-ringing the doorbell at the cheaper
warm-retry cost (the setup work of the first delivery is not repeated).
Dead or mesh-isolated accelerator tiles degrade *partially*: the
affected vault's data stripe is rerouted over TSV + mesh to the
surviving tiles (the excess lands in the ``reroute`` ledger category),
and only when no tile at all can serve the descriptor — every tile
dead, or a vault cut off by NoC link failures — does execution degrade
to the host's equivalent ``repro.mkl`` profiles. The call always
returns a numerically correct result. Latent cell flips on the
accelerators' direct-TSV datapath are adjudicated by an in-datapath
SECDED layer at operand fetch, and a background patrol scrubber can
drain them between executes before singles pair into uncorrectable
words. Resilience costs are accounted in dedicated ledger categories
(``fault``, ``retry``, ``fallback``, ``reroute``, ``scrub``); none of
them appear when no fault occurs, so the fault-free path is
bit-for-bit and joule-for-joule identical to the unhardened runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional,
                    Union)

from repro.accel.tile import TileFailedError
from repro.core.config_unit import ConfigurationUnit
from repro.core.descriptor import (CMD_IDLE, CMD_START,
                                   DescriptorError,
                                   DescriptorIntegrityError,
                                   EncodedDescriptor, encode, set_command)
from repro.core.invocation import InvocationModel
from repro.core.tdl import ParamStore, TdlProgram, parse_tdl
from repro.faults.datapath import DatapathEcc
from repro.faults.ecc import UncorrectableEccError
from repro.faults.injector import CuHangError, FaultInjector
from repro.faults.scrub import PatrolScrubber
from repro.memmgmt.addrspace import MappedBuffer, UnifiedAddressSpace
from repro.memmgmt.allocator import ContiguousAllocator
from repro.metrics import ExecResult, ZERO

if TYPE_CHECKING:
    from repro.thermal.governor import PowerGovernor
    from repro.thermal.rc import ThermalModel


class MealibRuntimeError(Exception):
    """Raised on invalid runtime usage (destroyed plans, bad sizes) and
    on unrecoverable execution failures when host fallback is off."""


#: Deprecated alias for :class:`MealibRuntimeError` (pre-1.1 name).
RuntimeError_ = MealibRuntimeError


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the hardened ``acc_execute`` path.

    Attributes:
        max_retries: bounded retry budget per execute (after the first
            attempt) before degrading to host execution.
        watchdog_timeout: host-side watchdog on the doorbell, seconds;
            charged to the ``fault`` ledger when a hang trips it.
        backoff_base: first retry's backoff delay, seconds.
        backoff_factor: exponential growth of the backoff delay.
        host_fallback: degrade to the host ``repro.mkl`` profile when
            no tile can serve the descriptor or retries are exhausted;
            when False, such failures raise
            :class:`MealibRuntimeError` instead.
    """

    max_retries: int = 3
    watchdog_timeout: float = 100e-6
    backoff_base: float = 5e-6
    backoff_factor: float = 2.0
    host_fallback: bool = True

    def backoff(self, attempt: int) -> float:
        """Backoff delay before retry ``attempt`` (1-based)."""
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass
class ResilienceCounters:
    """How often the hardened path had to intervene."""

    executes: int = 0
    retries: int = 0
    watchdog_expiries: int = 0
    fallbacks: int = 0
    ecc_corrections: int = 0
    degraded_executes: int = 0
    rerouted_stripes: int = 0
    scrub_passes: int = 0
    throttled_executes: int = 0
    cached_executes: int = 0        # schedule-cache replays
    contended_executes: int = 0     # ran sharing the stack (serving)

    @property
    def availability(self) -> float:
        """Fraction of executes served by the accelerated path
        (degraded executes still count as available — they ran on the
        accelerators, just with rerouted vault stripes)."""
        if not self.executes:
            return 1.0
        return 1.0 - self.fallbacks / self.executes

    @property
    def degraded_fraction(self) -> float:
        """Fraction of executes that ran accelerated but degraded."""
        if not self.executes:
            return 0.0
        return self.degraded_executes / self.executes


@dataclass
class AccPlan:
    """The ``acc_plan`` handle: a lowered descriptor plus bookkeeping."""

    program: TdlProgram
    descriptor: EncodedDescriptor
    working_set_bytes: int
    destroyed: bool = False
    executions: int = 0


@dataclass
class LedgerEntry:
    category: str
    label: str
    result: ExecResult


@dataclass
class Ledger:
    """Accumulates time/energy by category for the breakdown figures.

    Categories: ``host`` (compute-bounded library calls), ``invocation``
    (per-execute host overhead), ``accelerator`` (descriptor
    execution), plus the resilience categories ``fault`` (detection and
    correction costs, including the datapath ECC layer's re-decode
    drain of dirty codewords), ``retry`` (descriptor re-delivery and
    backoff), ``reroute`` (the excess of running degraded: mesh detours
    and rerouted vault stripes), ``fallback`` (host execution when no
    tile can serve the work), ``scrub`` (background patrol passes
    draining latent cell flips — maintenance overlapped with the host,
    so it is ledgered but never added to an execute's returned cost)
    ``throttle`` (the excess of DVFS frequency step-downs the
    power-envelope governor imposed on hot vaults: the stretched pass
    drain priced at static power, on top of the ``accelerator``
    category's unchanged nominal share) and ``contention`` (the excess
    of sharing the stack with concurrent descriptor streams under the
    serving runtime: every co-running pass time-shares the vault TSV
    buses, and the stretched drain is priced at static power — like
    scrub it is ledgered but never added to an execute's returned
    cost, so per-call results stay bit-identical to solo runs and the
    serving layer folds the stretch into request latency instead).
    """

    entries: List[LedgerEntry] = field(default_factory=list)

    def log(self, category: str, label: str, result: ExecResult) -> None:
        self.entries.append(LedgerEntry(category, label, result))

    def total(self, category: Optional[str] = None) -> ExecResult:
        out = ExecResult(0.0, 0.0)
        for e in self.entries:
            if category is None or e.category == category:
                out = out.plus(e.result)
        return out

    def by_label(self, category: str) -> Dict[str, ExecResult]:
        out: Dict[str, ExecResult] = {}
        for e in self.entries:
            if e.category == category:
                out[e.label] = out.get(e.label,
                                       ExecResult(0.0, 0.0)).plus(e.result)
        return out

    def clear(self) -> None:
        self.entries.clear()


def _fault_label(exc: Exception) -> str:
    """Ledger label for one detected fault."""
    if isinstance(exc, CuHangError):
        return "cu-hang"
    if isinstance(exc, UncorrectableEccError):
        return "ecc-uncorrectable"
    if isinstance(exc, DescriptorIntegrityError):
        return "descriptor-integrity"
    if isinstance(exc, DescriptorError):
        return "descriptor-invalid"
    return "tile-failure"


class MealibRuntime:
    """The runtime library a translated program links against."""

    def __init__(self, space: UnifiedAddressSpace,
                 config_unit: ConfigurationUnit,
                 invocation: Optional[InvocationModel] = None,
                 host=None,
                 faults: Optional[FaultInjector] = None,
                 policy: Optional[ResiliencePolicy] = None,
                 datapath: Optional[DatapathEcc] = None,
                 scrubber: Optional[PatrolScrubber] = None,
                 thermal: Optional["ThermalModel"] = None,
                 governor: Optional["PowerGovernor"] = None,
                 vault_of: Optional[Callable[[int], int]] = None):
        self.space = space
        self.cu = config_unit
        self.invocation = (invocation if invocation is not None
                           else InvocationModel())
        self.host = host                  # CpuModel for degraded execution
        self.faults = faults
        self.datapath = datapath
        self.scrubber = scrubber
        # thermal loop (repro.thermal): the RC model is advanced with
        # each step's attributed heat and the governor re-polled after;
        # vault_of maps a physical byte address to its vault for the
        # Arrhenius-thinned latent deposits. All None ⇒ byte-identical
        # to a thermal-free runtime.
        self.thermal = thermal
        self.governor = governor
        self.vault_of = vault_of
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.counters = ResilienceCounters()
        self.ledger = Ledger()
        # descriptor slots live in the command space, after a small
        # reserved header page
        self._command_alloc = ContiguousAllocator(
            base=space.command_pa + 256,
            size=space.command_bytes - 256)

    # -- memory management (mealib_mem_alloc / mealib_mem_free) -------------

    def mem_alloc(self, size: int) -> MappedBuffer:
        return self.space.alloc(size)

    def mem_free(self, buffer: MappedBuffer) -> None:
        self.space.free(buffer)

    # -- accelerator control (mealib_acc_plan / execute / destroy) -----------

    def acc_plan(self, tdl: Union[str, TdlProgram], params: ParamStore,
                 in_size: int, out_size: int) -> AccPlan:
        """Lower a TDL string into a descriptor in the command space.

        ``in_size``/``out_size`` describe the I/O buffers (the Listing 2
        signature) and size the coherence flush at execute time.
        """
        if in_size < 0 or out_size < 0:
            raise MealibRuntimeError("buffer sizes must be non-negative")
        program = parse_tdl(tdl) if isinstance(tdl, str) else tdl
        # two-step: encode once to learn the size, then place it
        probe = encode(program, params, base_pa=0)
        slot = self._command_alloc.alloc(probe.size, align=64)
        try:
            descriptor = encode(program, params, base_pa=slot)
            self.space.pa_write(slot, descriptor.data)
        except Exception:
            # don't leak the command-space slot on a failed lowering
            self._command_alloc.free(slot)
            raise
        return AccPlan(program=program, descriptor=descriptor,
                       working_set_bytes=in_size + out_size)

    def acc_execute(self, plan: AccPlan,
                    functional: bool = True,
                    concurrency: int = 1) -> ExecResult:
        """Invoke the accelerators described by ``plan``.

        Charges the host-side invocation overhead (wbinvd, descriptor
        store, doorbell), writes START into the CR, and hands control to
        the configuration unit. Detected faults are retried under
        :attr:`policy`; dead tiles or exhausted retries degrade to host
        execution. Returns the end-to-end cost including any resilience
        overhead; details are accumulated in :attr:`ledger`.

        ``concurrency`` tells the configuration unit how many
        descriptor streams share the stack while this one runs (the
        serving runtime's admission width): the vault-bandwidth
        time-share stretch lands in the ``contention`` ledger
        category. The default (1, a solo stream) is bit-identical to a
        runtime without the knob.
        """
        if plan.destroyed:
            raise MealibRuntimeError("acc_execute on a destroyed plan")
        overhead = self.invocation.total(plan.descriptor.size,
                                         plan.working_set_bytes)
        self.ledger.log("invocation", "invocation", overhead)
        self.counters.executes += 1
        # one step's worth of latent cell upsets lands before the step
        # runs, outside the retry loop: deposits draw from a dedicated
        # PRNG stream, so the campaign's flip placement is identical
        # whatever the scrub policy or retry count
        if self.faults is not None and self.datapath is not None:
            if self.thermal is not None:
                # Arrhenius coupling: hotter vaults accept more of the
                # (seed-stable) capped candidate stream
                self.faults.deposit_latent_flips(
                    self.datapath.phys.regions(),
                    factors=self.thermal.arrhenius_factors(),
                    cap=self.thermal.config.arrhenius_cap,
                    vault_of=self.vault_of)
            else:
                self.faults.deposit_latent_flips(
                    self.datapath.phys.regions())
        try:
            return self._execute_hardened(plan, functional, overhead,
                                          concurrency)
        finally:
            self._scrub_tick()

    def _execute_hardened(self, plan: AccPlan, functional: bool,
                          overhead: ExecResult,
                          concurrency: int = 1) -> ExecResult:
        total = overhead
        attempt = 0
        while True:
            # (re-)deliver the golden descriptor image and ring START:
            # this is also what repairs in-DRAM descriptor corruption
            self._write_descriptor(plan, CMD_START)
            try:
                execution = self.cu.run_descriptor(
                    plan.descriptor.base_pa, plan.descriptor.size,
                    functional=functional, concurrency=concurrency)
            except TileFailedError as exc:
                self._write_descriptor(plan, CMD_IDLE)
                total = total.plus(self._drain_correction_costs())
                total = total.plus(self._account_fault(exc))
                fallback = self._degrade_to_host(plan, functional, exc)
                plan.executions += 1
                return total.plus(fallback)
            except (DescriptorError, UncorrectableEccError,
                    CuHangError) as exc:
                self._write_descriptor(plan, CMD_IDLE)
                total = total.plus(self._drain_correction_costs())
                total = total.plus(self._account_fault(exc))
                if attempt >= self.policy.max_retries:
                    fallback = self._degrade_to_host(plan, functional, exc)
                    plan.executions += 1
                    return total.plus(fallback)
                attempt += 1
                total = total.plus(self._account_retry(plan, attempt))
            else:
                self._write_descriptor(plan, CMD_IDLE)
                total = total.plus(self._drain_correction_costs())
                for accel_name, share in execution.by_accelerator.items():
                    self.ledger.log("accelerator", accel_name, share)
                if execution.rerouted_vaults:
                    self.counters.degraded_executes += 1
                    self.counters.rerouted_stripes += (
                        execution.rerouted_vaults)
                    self.ledger.log("reroute", "vault-stripe",
                                    execution.reroute_overhead)
                if execution.throttled_vaults:
                    self.counters.throttled_executes += 1
                    self.ledger.log("throttle", "dvfs-stretch",
                                    execution.throttle_overhead)
                if execution.contending_streams > 1:
                    self.counters.contended_executes += 1
                    self.ledger.log("contention", "vault-share",
                                    execution.contention_overhead)
                if execution.cache_hit:
                    self.counters.cached_executes += 1
                self._thermal_step(execution)
                plan.executions += 1
                return total.plus(execution.result)

    def acc_destroy(self, plan: AccPlan) -> None:
        if plan.destroyed:
            raise MealibRuntimeError("plan already destroyed")
        self._command_alloc.free(plan.descriptor.base_pa)
        plan.destroyed = True

    # -- hardened-execution internals ----------------------------------------

    def _write_descriptor(self, plan: AccPlan, command: int) -> None:
        """Store the full golden descriptor image with ``command`` in its
        CR (descriptor delivery + doorbell)."""
        buf = bytearray(plan.descriptor.data)
        set_command(buf, command)
        self.space.pa_write(plan.descriptor.base_pa, bytes(buf))

    def _drain_correction_costs(self) -> ExecResult:
        """Charge ECC costs accumulated since the last drain to the
        ``fault`` ledger: correct-and-writeback events (per-read model,
        datapath layer and patrol repairs alike) plus the datapath
        layer's re-decode drain of dirty codewords."""
        total = ZERO
        if self.faults is not None:
            cost, corrections = self.faults.drain_correction_cost()
            if corrections:
                self.counters.ecc_corrections += corrections
                self.ledger.log("fault", "ecc-correction", cost)
                total = total.plus(cost)
        if self.datapath is not None:
            stream = self.datapath.drain_stream_overhead()
            if stream.time or stream.energy:
                self.ledger.log("fault", "ecc-stream", stream)
                total = total.plus(stream)
        return total

    def _scrub_tick(self) -> None:
        """Account one completed execute with the patrol scrubber.

        A due patrol runs between steps and its cost is ledgered under
        ``scrub`` — background maintenance, never part of the execute's
        returned cost. Inert (and free) without a scrubber or with
        ``interval=0``, preserving the golden baselines.
        """
        if self.scrubber is None:
            return
        cost = self.scrubber.tick()
        if cost is not None:
            self.counters.scrub_passes += 1
            self.ledger.log("scrub", "patrol", cost)
            if self.thermal is not None and cost.time > 0.0:
                # the patrol is a thermal actor too: its streaming and
                # correction joules heat the vaults it walked
                heat = self.scrubber.last_vault_energy
                vault_power = [heat.get(v, 0.0) / cost.time
                               for v in range(self.thermal.vaults)]
                self.thermal.advance(cost.time, vault_power)
                if self.governor is not None:
                    self.governor.poll()

    def _thermal_step(self, execution) -> None:
        """Advance the RC network by one accelerated execute's heat and
        re-poll the envelope governor. Inert without a thermal model."""
        if self.thermal is None:
            return
        duration = execution.result.time
        if duration > 0.0:
            if execution.vault_heat is not None:
                vault_power = [
                    execution.vault_heat.get(v, 0.0) / duration
                    for v in range(self.thermal.vaults)]
                self.thermal.advance(duration, vault_power,
                                     execution.logic_heat / duration)
            else:
                self.thermal.advance(duration)
        if self.governor is not None:
            self.governor.poll()

    def _thermal_idle(self, duration: float) -> None:
        """Advance the RC network with the stack idle (host fallback
        runs deposit no heat on the vaults — they just cool)."""
        if self.thermal is None or duration <= 0.0:
            return
        self.thermal.advance(duration)
        if self.governor is not None:
            self.governor.poll()

    def _account_fault(self, exc: Exception) -> ExecResult:
        """Ledger one detected fault; hangs pay the watchdog timeout."""
        if isinstance(exc, CuHangError):
            self.counters.watchdog_expiries += 1
            t = self.policy.watchdog_timeout
            penalty = ExecResult(time=t,
                                 energy=t * self.invocation.host_power)
        else:
            penalty = ZERO                 # detection itself is in-line
        self.ledger.log("fault", _fault_label(exc), penalty)
        return penalty

    def _account_retry(self, plan: AccPlan, attempt: int) -> ExecResult:
        """Cost of one retry: backoff wait + *warm* descriptor
        re-delivery + a fresh doorbell.

        A re-ring after an in-DRAM repair does not repeat the cold
        invocation's setup (runtime bookkeeping, fences, translation
        are already done); it pays only the calibrated warm-retry
        overhead, which is strictly cheaper than the cold descriptor
        delivery."""
        self.counters.retries += 1
        backoff = self.policy.backoff(attempt)
        cost = ExecResult(time=backoff,
                          energy=backoff * self.invocation.host_power)
        cost = cost.plus(
            self.invocation.warm_retry_cost(plan.descriptor.size))
        cost = cost.plus(self.invocation.doorbell_cost())
        self.ledger.log("retry", f"attempt-{attempt}", cost)
        return cost

    def _host_model(self):
        if self.host is None:
            from repro.host.platforms import haswell
            self.host = haswell()
        return self.host

    def _degrade_to_host(self, plan: AccPlan, functional: bool,
                         cause: Exception) -> ExecResult:
        """Execute the plan's work on the host CPU (graceful fallback).

        Decodes the *golden* (host-side) descriptor bytes — DRAM state
        is untrusted at this point — runs the same numerics the
        accelerators would have, and charges each COMP's ``repro.mkl``
        profile on the host model under the ``fallback`` category.
        """
        if not self.policy.host_fallback:
            raise MealibRuntimeError(
                f"accelerated execution failed without fallback: "
                f"{cause}") from cause
        self.counters.fallbacks += 1
        host = self._host_model()
        plans = self.cu.plans_from_image(plan.descriptor.data,
                                         plan.descriptor.base_pa)
        cost = ZERO
        for p in plans:
            if functional:
                self.cu.run_functional(p)
            for comp in p.comps:
                profile = comp.core.profile(comp.params)
                share = host.run_profile(profile).repeated(p.count)
                self.ledger.log("fallback", comp.core.name, share)
                cost = cost.plus(share)
        self._thermal_idle(cost.time)
        return cost

    # -- host-side accounting ---------------------------------------------

    def log_host(self, label: str, result: ExecResult) -> None:
        """Record host-executed (compute-bounded) library work."""
        self.ledger.log("host", label, result)
