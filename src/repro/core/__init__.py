"""MEALib core: TDL, descriptors, configuration unit, runtime, system."""

from repro.core.config_unit import (CompInstance, ConfigurationUnit,
                                    Degradation, DescriptorExecution,
                                    PassPlan)
from repro.core.descriptor import (CMD_IDLE, CMD_START, DescriptorError,
                                   DescriptorIntegrityError,
                                   EncodedDescriptor, Instruction,
                                   KIND_ACCEL, KIND_ENDLOOP, KIND_ENDPASS,
                                   KIND_LOOP, OPCODES, decode_control,
                                   decode_instructions,
                                   descriptor_checksum, encode,
                                   set_command, verify_integrity)
from repro.core.invocation import InvocationModel
from repro.core.runtime import (AccPlan, Ledger, LedgerEntry,
                                MealibRuntime, MealibRuntimeError,
                                ResilienceCounters, ResiliencePolicy,
                                RuntimeError_)
from repro.core.schedule_cache import (ScheduleCache, ScheduleCacheStats,
                                       ScheduleEntry)
from repro.core.system import MealibSystem
from repro.core.tdl import (Comp, Loop, ParamStore, Pass, TdlError,
                            TdlProgram, format_tdl, parse_tdl)

__all__ = [
    "CompInstance", "ConfigurationUnit", "Degradation",
    "DescriptorExecution", "PassPlan",
    "CMD_IDLE", "CMD_START", "DescriptorError", "DescriptorIntegrityError",
    "EncodedDescriptor", "Instruction", "KIND_ACCEL", "KIND_ENDLOOP",
    "KIND_ENDPASS", "KIND_LOOP", "OPCODES", "decode_control",
    "decode_instructions", "descriptor_checksum", "encode", "set_command",
    "verify_integrity", "InvocationModel", "AccPlan", "Ledger",
    "LedgerEntry", "MealibRuntime", "MealibRuntimeError",
    "ResilienceCounters", "ResiliencePolicy", "RuntimeError_",
    "ScheduleCache", "ScheduleCacheStats", "ScheduleEntry",
    "MealibSystem", "Comp", "Loop", "ParamStore", "Pass", "TdlError",
    "TdlProgram", "format_tdl", "parse_tdl",
]
