"""MEALib core: TDL, descriptors, configuration unit, runtime, system."""

from repro.core.config_unit import (CompInstance, ConfigurationUnit,
                                    DescriptorExecution, PassPlan)
from repro.core.descriptor import (CMD_IDLE, CMD_START, DescriptorError,
                                   EncodedDescriptor, Instruction,
                                   KIND_ACCEL, KIND_ENDLOOP, KIND_ENDPASS,
                                   KIND_LOOP, OPCODES, decode_control,
                                   decode_instructions, encode,
                                   set_command)
from repro.core.invocation import InvocationModel
from repro.core.runtime import (AccPlan, Ledger, LedgerEntry,
                                MealibRuntime, RuntimeError_)
from repro.core.system import MealibSystem
from repro.core.tdl import (Comp, Loop, ParamStore, Pass, TdlError,
                            TdlProgram, format_tdl, parse_tdl)

__all__ = [
    "CompInstance", "ConfigurationUnit", "DescriptorExecution", "PassPlan",
    "CMD_IDLE", "CMD_START", "DescriptorError", "EncodedDescriptor",
    "Instruction", "KIND_ACCEL", "KIND_ENDLOOP", "KIND_ENDPASS",
    "KIND_LOOP", "OPCODES", "decode_control", "decode_instructions",
    "encode", "set_command", "InvocationModel", "AccPlan", "Ledger",
    "LedgerEntry", "MealibRuntime", "RuntimeError_", "MealibSystem",
    "Comp", "Loop", "ParamStore", "Pass", "TdlError", "TdlProgram",
    "format_tdl", "parse_tdl",
]
