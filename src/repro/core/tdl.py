"""The Task Description Language (Section 3.4).

TDL is the compiler/runtime contract: a small language describing
sequences of accelerator invocations. Three block kinds exist:

* ``COMP`` — one accelerator invocation (opcode + parameter file);
* ``PASS`` — a chain of COMPs forming one datapath: the first reads the
  pass input from DRAM, the last writes the pass output, intermediates
  flow through tile local memory;
* ``LOOP`` — repeat the contained passes N times, re-armed by the
  configuration unit without host involvement.

Concrete syntax (produced by the compiler, parsed by the runtime)::

    LOOP 128 {
      PASS {
        COMP RESMP reshape.para
        COMP FFT fft.para
      }
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Union


class TdlError(Exception):
    """Raised on malformed TDL text or trees."""


@dataclass(frozen=True)
class Comp:
    """One accelerator invocation: which accelerator, which params."""

    accel: str
    param_file: str

    def __post_init__(self) -> None:
        if not self.accel or not self.param_file:
            raise TdlError("COMP needs an accelerator and a param file")


@dataclass(frozen=True)
class Pass:
    """A chain of COMPs with one DRAM input and one DRAM output."""

    comps: tuple

    def __post_init__(self) -> None:
        if not self.comps:
            raise TdlError("PASS must contain at least one COMP")
        for comp in self.comps:
            if not isinstance(comp, Comp):
                raise TdlError("PASS may only contain COMP blocks")

    @property
    def chained(self) -> bool:
        return len(self.comps) > 1


@dataclass(frozen=True)
class Loop:
    """Repeat the contained passes ``count`` times."""

    count: int
    body: tuple

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise TdlError("LOOP count must be positive")
        if not self.body:
            raise TdlError("LOOP must contain at least one PASS")
        for item in self.body:
            if not isinstance(item, Pass):
                raise TdlError("LOOP may only contain PASS blocks")


Block = Union[Pass, Loop]


@dataclass(frozen=True)
class TdlProgram:
    """A full accelerator-descriptor program."""

    blocks: tuple

    def __post_init__(self) -> None:
        if not self.blocks:
            raise TdlError("empty TDL program")
        for block in self.blocks:
            if not isinstance(block, (Pass, Loop)):
                raise TdlError("top level may only hold PASS/LOOP blocks")

    def comps(self) -> List[Comp]:
        """All COMP blocks, in execution order (loops not unrolled)."""
        out: List[Comp] = []
        for block in self.blocks:
            passes = block.body if isinstance(block, Loop) else (block,)
            for p in passes:
                out.extend(p.comps)
        return out

    def invocation_count(self) -> int:
        """Accelerator activations including loop trips."""
        total = 0
        for block in self.blocks:
            if isinstance(block, Loop):
                total += block.count * sum(len(p.comps)
                                           for p in block.body)
            else:
                total += len(block.comps)
        return total


# -- printer ---------------------------------------------------------------

def format_tdl(program: TdlProgram) -> str:
    """Serialise a program to TDL text."""
    lines: List[str] = []

    def emit_pass(p: Pass, indent: str) -> None:
        lines.append(f"{indent}PASS {{")
        for comp in p.comps:
            lines.append(f"{indent}  COMP {comp.accel} {comp.param_file}")
        lines.append(f"{indent}}}")

    for block in program.blocks:
        if isinstance(block, Loop):
            lines.append(f"LOOP {block.count} {{")
            for p in block.body:
                emit_pass(p, "  ")
            lines.append("}")
        else:
            emit_pass(block, "")
    return "\n".join(lines) + "\n"


# -- parser ---------------------------------------------------------------

def _tokens(text: str) -> Iterator[str]:
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        for token in line.replace("{", " { ").replace("}", " } ").split():
            yield token


class _Parser:
    def __init__(self, text: str):
        self.tokens = list(_tokens(text))
        self.pos = 0

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def next(self) -> str:
        token = self.peek()
        if not token:
            raise TdlError("unexpected end of TDL input")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise TdlError(f"expected {token!r}, got {got!r}")

    def parse_program(self) -> TdlProgram:
        blocks: List[Block] = []
        while self.peek():
            blocks.append(self.parse_block())
        return TdlProgram(blocks=tuple(blocks))

    def parse_block(self) -> Block:
        keyword = self.next()
        if keyword == "PASS":
            return self.parse_pass_body()
        if keyword == "LOOP":
            count_token = self.next()
            try:
                count = int(count_token)
            except ValueError:
                raise TdlError(f"bad LOOP count {count_token!r}")
            self.expect("{")
            body: List[Pass] = []
            while self.peek() != "}":
                self.expect("PASS")
                body.append(self.parse_pass_body())
            self.expect("}")
            return Loop(count=count, body=tuple(body))
        raise TdlError(f"expected PASS or LOOP, got {keyword!r}")

    def parse_pass_body(self) -> Pass:
        self.expect("{")
        comps: List[Comp] = []
        while self.peek() != "}":
            self.expect("COMP")
            accel = self.next()
            param_file = self.next()
            comps.append(Comp(accel=accel, param_file=param_file))
        self.expect("}")
        return Pass(comps=tuple(comps))


def parse_tdl(text: str) -> TdlProgram:
    """Parse TDL text into a program tree."""
    if not text.strip():
        raise TdlError("empty TDL input")
    return _Parser(text).parse_program()


@dataclass
class ParamStore:
    """The 'parameter files' a TDL string references: name -> packed
    accelerator parameters (the PR contents)."""

    files: Dict[str, bytes] = field(default_factory=dict)

    def add(self, name: str, data: bytes) -> None:
        if name in self.files:
            raise TdlError(f"duplicate parameter file {name!r}")
        self.files[name] = data

    def get(self, name: str) -> bytes:
        try:
            return self.files[name]
        except KeyError:
            raise TdlError(f"missing parameter file {name!r}")
