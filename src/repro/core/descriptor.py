"""The accelerator descriptor (Section 2.3): CR + IR + PR in DRAM.

A descriptor is a physically contiguous region of the command space with
three parts:

* Control Region — magic, command word (the hardware polls for START),
  instruction count, and an integrity checksum over the rest of the
  descriptor (the command word is excluded so the doorbell can toggle
  without re-sealing);
* Instruction Region — fixed-width instructions: accelerator
  invocations (opcode + parameter size/address) and control
  instructions (LOOP / ENDLOOP / ENDPASS);
* Parameter Region — the packed per-invocation parameters the
  instructions point at.

``encode`` lowers a TDL program to descriptor bytes; ``decode`` is what
the configuration unit's fetch/decode units do when START is observed.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.tdl import (Comp, Loop, ParamStore, Pass, TdlError,
                            TdlProgram)

MAGIC = 0x4D45414C            # 'MEAL'

CMD_IDLE = 0
CMD_START = 1

#: Instruction kinds in the IR.
KIND_ACCEL = 0
KIND_LOOP = 1
KIND_ENDLOOP = 2
KIND_ENDPASS = 3

_CR = struct.Struct("<IIII")          # magic, command, n_instr, checksum
_INSTR = struct.Struct("<BBHIq")      # opcode, kind, pad, size, addr

CR_BYTES = _CR.size
INSTR_BYTES = _INSTR.size

#: Byte offsets of the CR's mutable command word and its checksum word.
COMMAND_OFFSET = 4
CHECKSUM_OFFSET = 12

#: Opcode name <-> number mapping (matches the accelerator classes).
OPCODES = {"AXPY": 1, "DOT": 2, "GEMV": 3, "SPMV": 4, "RESMP": 5,
           "FFT": 6, "RESHP": 7}
OPCODE_NAMES = {v: k for k, v in OPCODES.items()}


class DescriptorError(Exception):
    """Raised on malformed descriptors."""


class DescriptorIntegrityError(DescriptorError):
    """The descriptor image fails its integrity checksum (corruption)."""


@dataclass(frozen=True)
class Instruction:
    """One decoded IR entry."""

    kind: int
    opcode: int = 0
    param_size: int = 0
    param_addr: int = 0

    @property
    def accel_name(self) -> str:
        if self.kind != KIND_ACCEL:
            raise DescriptorError("not an accelerator instruction")
        try:
            return OPCODE_NAMES[self.opcode]
        except KeyError:
            raise DescriptorError(f"unknown opcode {self.opcode}")


@dataclass(frozen=True)
class EncodedDescriptor:
    """Descriptor bytes plus layout metadata."""

    data: bytes
    base_pa: int
    n_instructions: int
    pr_offset: int

    @property
    def size(self) -> int:
        return len(self.data)


def _lower(program: TdlProgram, params: ParamStore,
           pr_base: int) -> Tuple[List[Instruction], bytes]:
    instructions: List[Instruction] = []
    pr = bytearray()

    def lower_pass(p: Pass) -> None:
        for comp in p.comps:
            if comp.accel not in OPCODES:
                raise DescriptorError(
                    f"no opcode for accelerator {comp.accel!r}")
            blob = params.get(comp.param_file)
            addr = pr_base + len(pr)
            pr.extend(blob)
            instructions.append(Instruction(
                kind=KIND_ACCEL, opcode=OPCODES[comp.accel],
                param_size=len(blob), param_addr=addr))
        instructions.append(Instruction(kind=KIND_ENDPASS))

    for block in program.blocks:
        if isinstance(block, Loop):
            instructions.append(Instruction(kind=KIND_LOOP,
                                            param_size=block.count))
            for p in block.body:
                lower_pass(p)
            instructions.append(Instruction(kind=KIND_ENDLOOP))
        else:
            lower_pass(block)
    return instructions, bytes(pr)


def encode(program: TdlProgram, params: ParamStore,
           base_pa: int) -> EncodedDescriptor:
    """Lower a TDL program into descriptor bytes at ``base_pa``.

    The PR follows the IR immediately; parameter addresses inside the IR
    are absolute physical addresses, as the hardware expects.
    """
    # two-phase: sizes first (parameter addresses depend on IR length)
    n_accel = len([c for c in program.comps()])
    n_ctrl = 0
    for block in program.blocks:
        if isinstance(block, Loop):
            n_ctrl += 2 + len(block.body)       # LOOP, ENDLOOP, ENDPASSes
        else:
            n_ctrl += 1                          # ENDPASS
    n_instr = n_accel + n_ctrl
    pr_offset = CR_BYTES + n_instr * INSTR_BYTES
    instructions, pr = _lower(program, params, base_pa + pr_offset)
    if len(instructions) != n_instr:
        raise DescriptorError("instruction count mismatch during lowering")
    out = bytearray()
    out.extend(_CR.pack(MAGIC, CMD_IDLE, n_instr, 0))
    for instr in instructions:
        out.extend(_INSTR.pack(instr.opcode, instr.kind, 0,
                               instr.param_size, instr.param_addr))
    out.extend(pr)
    struct.pack_into("<I", out, CHECKSUM_OFFSET, descriptor_checksum(out))
    return EncodedDescriptor(data=bytes(out), base_pa=base_pa,
                             n_instructions=n_instr, pr_offset=pr_offset)


def descriptor_checksum(data) -> int:
    """CRC32 over the descriptor with the command and checksum words
    zeroed — covers the magic, the instruction count, the whole IR, and
    the whole PR, so any aligned-word corruption outside the doorbell is
    caught with certainty (CRC32 detects all <=32-bit bursts)."""
    buf = bytearray(data)
    if len(buf) < CR_BYTES:
        raise DescriptorError("descriptor shorter than its control region")
    struct.pack_into("<I", buf, COMMAND_OFFSET, 0)
    struct.pack_into("<I", buf, CHECKSUM_OFFSET, 0)
    return zlib.crc32(bytes(buf)) & 0xFFFFFFFF


def verify_integrity(data: bytes) -> None:
    """Check a full descriptor image against its sealed checksum.

    Raises :class:`DescriptorIntegrityError` on mismatch. This is what
    the configuration unit's fetch unit runs before dispatching.
    """
    if len(data) < CR_BYTES:
        raise DescriptorIntegrityError(
            "descriptor shorter than its control region")
    (stored,) = struct.unpack_from("<I", data, CHECKSUM_OFFSET)
    actual = descriptor_checksum(data)
    if stored != actual:
        raise DescriptorIntegrityError(
            f"descriptor checksum mismatch: stored {stored:#010x}, "
            f"computed {actual:#010x}")


def decode_control(data: bytes) -> Tuple[int, int]:
    """Read (command, n_instructions) from the CR; validates the magic."""
    if len(data) < CR_BYTES:
        raise DescriptorError("descriptor shorter than its control region")
    magic, command, n_instr, _ = _CR.unpack_from(data, 0)
    if magic != MAGIC:
        raise DescriptorError(f"bad descriptor magic {magic:#x}")
    return command, n_instr


def decode_instructions(data: bytes, n_instr: int) -> List[Instruction]:
    """Decode the IR that follows the CR."""
    need = CR_BYTES + n_instr * INSTR_BYTES
    if len(data) < need:
        raise DescriptorError("descriptor truncated inside the IR")
    out = []
    for i in range(n_instr):
        opcode, kind, _, size, addr = _INSTR.unpack_from(
            data, CR_BYTES + i * INSTR_BYTES)
        if kind not in (KIND_ACCEL, KIND_LOOP, KIND_ENDLOOP, KIND_ENDPASS):
            raise DescriptorError(f"unknown instruction kind {kind}")
        out.append(Instruction(kind=kind, opcode=opcode, param_size=size,
                               param_addr=addr))
    return out


def set_command(data: bytearray, command: int) -> None:
    """Write the command word in place (the doorbell the CR monitors).

    The integrity checksum deliberately excludes this word, so ringing
    the doorbell does not invalidate a sealed descriptor."""
    struct.pack_into("<I", data, COMMAND_OFFSET, command)
