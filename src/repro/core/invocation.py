"""Accelerator invocation cost model (Section 3.5 / Figure 14).

Every ``mealib_acc_execute`` pays, on the host, for:

* coherence — ``wbinvd`` writes dirty cache lines back to DRAM before
  the accelerators read it (MEALib keeps ordinary cache coherence
  rather than uncachable regions);
* descriptor delivery — the accelerator descriptor is stored through
  the uncached command-space mapping;
* the doorbell — writing START into the Control Region and the CU
  observing it.

The paper measures these as 3.3% of accelerator time / 7.1% of
accelerator energy for STAP once the compiler has compacted 17 M calls
into 3 descriptors; the same constants here also produce the Fig 12
software-chaining and software-loop gaps, where the overheads repeat per
call instead of per descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.cache import CacheHierarchy
from repro.metrics import ExecResult

#: Write-combined store bandwidth into the uncached command mapping.
DESCRIPTOR_WRITE_BW = 4e9

#: Fixed descriptor-setup latency (runtime bookkeeping + fences).
DESCRIPTOR_BASE_LATENCY = 2e-6

#: Fixed latency of a *warm* descriptor re-delivery (retry after an
#: in-DRAM repair): the bookkeeping, address translation and fence
#: setup of the cold delivery are already in place, only the store
#: fence around the re-written image remains.
WARM_RETRY_BASE_LATENCY = 0.4e-6

#: Doorbell: the START store plus the CU noticing it.
DOORBELL_LATENCY = 1e-6

#: Host package power while executing runtime code.
RUNTIME_HOST_POWER = 25.0


@dataclass(frozen=True)
class InvocationModel:
    """Costs charged on the host side of every accelerator invocation."""

    cache: CacheHierarchy = field(default_factory=CacheHierarchy)
    descriptor_write_bw: float = DESCRIPTOR_WRITE_BW
    descriptor_base_latency: float = DESCRIPTOR_BASE_LATENCY
    warm_retry_base_latency: float = WARM_RETRY_BASE_LATENCY
    doorbell_latency: float = DOORBELL_LATENCY
    host_power: float = RUNTIME_HOST_POWER

    def flush_cost(self, working_set_bytes: int) -> ExecResult:
        """The wbinvd before handing buffers to the accelerators."""
        return self.cache.flush_cost(working_set_bytes)

    def descriptor_cost(self, descriptor_bytes: int) -> ExecResult:
        """Storing the descriptor through the uncached mapping."""
        time = (self.descriptor_base_latency
                + descriptor_bytes / self.descriptor_write_bw)
        return ExecResult(time=time, energy=time * self.host_power)

    def warm_retry_cost(self, descriptor_bytes: int) -> ExecResult:
        """Re-storing the descriptor on a retry (warm re-delivery).

        The golden image re-crosses the uncached mapping at full
        write-combining bandwidth, but the cold delivery's setup —
        bookkeeping, translation, fence arming — is not repeated, so
        only the small warm base latency remains. Strictly cheaper
        than :meth:`descriptor_cost` for every descriptor size.
        """
        time = (self.warm_retry_base_latency
                + descriptor_bytes / self.descriptor_write_bw)
        return ExecResult(time=time, energy=time * self.host_power)

    def doorbell_cost(self) -> ExecResult:
        time = self.doorbell_latency
        return ExecResult(time=time, energy=time * self.host_power)

    def total(self, descriptor_bytes: int,
              working_set_bytes: int,
              include_flush: bool = True) -> ExecResult:
        """Full per-execute overhead. ``include_flush=False`` supports
        the ablation benchmark that isolates the wbinvd share."""
        cost = self.descriptor_cost(descriptor_bytes).plus(
            self.doorbell_cost())
        if include_flush:
            cost = cost.plus(self.flush_cost(working_set_bytes))
        return cost
