"""Descriptor-keyed schedule cache for the configuration unit.

Accelerated workloads are dominated by *repeated* descriptors: the same
library call, with the same operand shapes and placements, executed
thousands of times (the paper's headline example batches 16M identical
invocations into looped descriptors). The timing/energy model of such a
descriptor is a pure function of

* the descriptor image itself (op, shape, stride, placement — the image
  bytes embed all of them, including the absolute operand addresses),
* the layer's degradation state (serving tiles + stripe reroutes + the
  link-health overlay the adaptive router consults),
* the governor's DVFS state (pass slowdown + throttled vault set), and
* nothing else — bank/bus state is per-drain (every pass model starts
  from cold controllers), so two calls with identical inputs produce
  bit-identical :class:`~repro.core.config_unit.DescriptorExecution`
  decompositions.

The cache exploits that: the configuration unit keys each execution by
``(descriptor address, image bytes, serving tiles, reroutes, slowdown,
throttled vaults, governor-attached, concurrency)`` and replays the
stored decode + model result on a hit, skipping descriptor decode,
tile switch programming and the whole memory-system simulation. (The
``concurrency`` component is the co-running stream count the serving
runtime dispatched the descriptor under — contention-stretched and
solo executions never share an entry.) Everything with a
*live* side effect — fault sampling, descriptor corruption + integrity
check, datapath SECDED adjudication, functional execution, throttle
bookkeeping — still runs on every call, so fault campaigns and
functional results are unaffected by caching.

Invalidation is epoch-based. The cache keeps one monotone epoch per
hazard domain:

========  ==========================================================
epoch     bumped by
========  ==========================================================
health    link fail/restore (:class:`~repro.accel.noc.LinkHealth`
          ``on_change``), tile fail/repair
          (:class:`~repro.accel.layer.AcceleratorLayer`
          ``on_health_change``)
thermal   any governor state transition
          (:class:`~repro.thermal.governor.PowerGovernor`
          ``on_state_change``)
scrub     a patrol pass that drained latent words
          (:class:`~repro.faults.scrub.PatrolScrubber` ``on_repair``)
fault     new latent flips landing
          (:class:`~repro.faults.injector.FaultInjector`
          ``on_latent_change``)
========  ==========================================================

Every entry snapshots the epoch vector at store time; a lookup whose
key matches but whose epochs do not is *caught* — counted as a stale
eviction, dropped, and re-simulated — never silently replayed. This
closes the classic stale-cache hole where a transient hazard (link
flap, thermal throttle-and-release) leaves the *key* identical while
the world the entry was computed in has changed: route hop counts
depend on the failed-link set even when the serving/reroute sets are
unchanged, so any health transition conservatively invalidates.

``MealibSystem(schedule_cache=True)`` turns the cache on and wires all
five hook sources; the default (``None``) keeps the configuration unit
byte-identical to a cache-free build. The serving runtime additionally
tags each dispatched call with its tenant (:meth:`ScheduleCache.
set_tenant`), so hit/stale/capacity-eviction rates are reported per
tenant (:attr:`ScheduleCache.tenant_stats`) alongside the global
counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.config_unit import DescriptorExecution, PassPlan

#: Hazard domains, each with its own invalidation epoch.
EPOCH_DOMAINS = ("health", "thermal", "scrub", "fault")


@dataclass
class ScheduleCacheStats:
    """Hit/miss/invalidation accounting of one schedule cache."""

    hits: int = 0
    misses: int = 0
    stale_evictions: int = 0        # key matched, epochs did not
    capacity_evictions: int = 0     # LRU overflow
    invalidations: Dict[str, int] = field(
        default_factory=lambda: {d: 0 for d in EPOCH_DOMAINS})

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stale_evictions = 0
        self.capacity_evictions = 0
        self.invalidations = {d: 0 for d in EPOCH_DOMAINS}


@dataclass
class ScheduleEntry:
    """One cached descriptor schedule: decoded plans + the modelled
    execution decomposition, stamped with the epoch vector it was
    computed under."""

    plans: List[PassPlan]
    execution: DescriptorExecution
    throttled: Tuple[int, ...]
    epochs: Tuple[int, ...]

    def replay(self) -> DescriptorExecution:
        """A fresh :class:`DescriptorExecution` carrying the cached
        decomposition (containers copied, so callers can never mutate
        the cached template)."""
        ex = self.execution
        return DescriptorExecution(
            result=ex.result,
            by_accelerator=dict(ex.by_accelerator),
            invocations=ex.invocations,
            passes=ex.passes,
            reroute_overhead=ex.reroute_overhead,
            tiles_used=ex.tiles_used,
            rerouted_vaults=ex.rerouted_vaults,
            throttle_overhead=ex.throttle_overhead,
            throttled_vaults=ex.throttled_vaults,
            contention_overhead=ex.contention_overhead,
            contending_streams=ex.contending_streams,
            vault_heat=(dict(ex.vault_heat)
                        if ex.vault_heat is not None else None),
            logic_heat=ex.logic_heat,
            cache_hit=True)


class ScheduleCache:
    """LRU map from descriptor keys to replayable schedule entries."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = ScheduleCacheStats()
        # tenant-tagged accounting: the serving runtime tags lookups
        # and stores with the requesting tenant (set_tenant) and the
        # cache keeps one ScheduleCacheStats per tag next to the
        # global one. No tag (the default) costs nothing.
        self.tenant_stats: Dict[str, ScheduleCacheStats] = {}
        self._tenant: Optional[str] = None
        self._epochs: Dict[str, int] = {d: 0 for d in EPOCH_DOMAINS}
        self._entries: "OrderedDict[Hashable, ScheduleEntry]" = \
            OrderedDict()

    # -- tenant tagging --------------------------------------------------------

    def set_tenant(self, tenant: Optional[str]) -> None:
        """Tag subsequent lookups/stores with ``tenant`` (``None``
        clears the tag). The serving runtime brackets each dispatched
        call with this so hit/stale/eviction rates attribute per
        tenant."""
        self._tenant = tenant

    def stats_for(self, tenant: str) -> ScheduleCacheStats:
        """The tagged stats of one tenant (created zeroed on first
        use)."""
        return self.tenant_stats.setdefault(tenant,
                                            ScheduleCacheStats())

    def _tagged(self) -> Optional[ScheduleCacheStats]:
        if self._tenant is None:
            return None
        return self.stats_for(self._tenant)

    # -- epochs / invalidation ------------------------------------------------

    def epoch_snapshot(self) -> Tuple[int, ...]:
        """The current epoch vector, in :data:`EPOCH_DOMAINS` order."""
        return tuple(self._epochs[d] for d in EPOCH_DOMAINS)

    def invalidate(self, domain: str) -> None:
        """Bump one hazard domain's epoch: every entry stored under an
        older vector is now stale and will be caught at lookup."""
        if domain not in self._epochs:
            raise KeyError(f"unknown epoch domain {domain!r}; "
                           f"expected one of {EPOCH_DOMAINS}")
        self._epochs[domain] += 1
        self.stats.invalidations[domain] += 1

    def invalidate_health(self) -> None:
        self.invalidate("health")

    def invalidate_thermal(self) -> None:
        self.invalidate("thermal")

    def invalidate_scrub(self) -> None:
        self.invalidate("scrub")

    def invalidate_fault(self) -> None:
        self.invalidate("fault")

    # -- lookup / store --------------------------------------------------------

    def lookup(self, key: Hashable) -> Optional[ScheduleEntry]:
        """The live entry for ``key``, or ``None``.

        A key match with a stale epoch vector is evicted (and counted
        in ``stats.stale_evictions``) — it is never replayed.
        """
        tagged = self._tagged()
        entry = self._entries.get(key)
        if entry is not None and entry.epochs != self.epoch_snapshot():
            del self._entries[key]
            self.stats.stale_evictions += 1
            if tagged is not None:
                tagged.stale_evictions += 1
            entry = None
        if entry is None:
            self.stats.misses += 1
            if tagged is not None:
                tagged.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if tagged is not None:
            tagged.hits += 1
        return entry

    def store(self, key: Hashable, plans: Sequence[PassPlan],
              execution: DescriptorExecution,
              throttled: Sequence[int]) -> None:
        """Cache one freshly simulated execution under ``key``.

        The execution is snapshotted (containers copied) so later
        caller-side mutation of the returned object cannot corrupt the
        cached template.
        """
        snapshot = DescriptorExecution(
            result=execution.result,
            by_accelerator=dict(execution.by_accelerator),
            invocations=execution.invocations,
            passes=execution.passes,
            reroute_overhead=execution.reroute_overhead,
            tiles_used=execution.tiles_used,
            rerouted_vaults=execution.rerouted_vaults,
            throttle_overhead=execution.throttle_overhead,
            throttled_vaults=execution.throttled_vaults,
            contention_overhead=execution.contention_overhead,
            contending_streams=execution.contending_streams,
            vault_heat=(dict(execution.vault_heat)
                        if execution.vault_heat is not None else None),
            logic_heat=execution.logic_heat)
        self._entries[key] = ScheduleEntry(
            plans=list(plans), execution=snapshot,
            throttled=tuple(throttled), epochs=self.epoch_snapshot())
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.capacity_evictions += 1
            tagged = self._tagged()
            if tagged is not None:
                # charged to the storing tenant: its store displaced
                # the LRU victim
                tagged.capacity_evictions += 1

    def clear(self) -> None:
        """Drop every entry (epochs and stats are preserved)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate
