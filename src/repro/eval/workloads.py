"""Table 2 workloads: the data set behind each accelerated function.

Two views of every workload:

* ``params`` at the *paper scale* (1 GB vectors, 16384^2 matrices...) for
  the timing/energy models, which sample-and-extrapolate and therefore
  never materialise the arrays;
* ``scaled(factor)`` small instances for functional execution in tests
  and examples.

Physical addresses here are synthetic (the model only needs relative
layout); functional paths allocate real buffers through the driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.accel.axpy import AxpyParams
from repro.accel.dot import DotParams
from repro.accel.fft import FftParams
from repro.accel.gemv import GemvParams
from repro.accel.reshp import ReshpParams
from repro.accel.resmp import ResmpParams
from repro.accel.spmv import SpmvParams

MB = 1 << 20
GB = 1 << 30

#: Average neighbour count of the rgg matrix class (UF rgg_n_2_20).
RGG_AVG_DEGREE = 15


@dataclass(frozen=True)
class Workload:
    """One Table 2 row: op name, MKL function, and parameter builder."""

    op: str
    mkl_function: str
    dataset: str
    make_params: Callable[[float], object]

    def params(self, scale: float = 1.0):
        """Build invocation parameters; ``scale`` shrinks the data set
        linearly (1.0 = the paper's size)."""
        return self.make_params(scale)


def _axpy(scale: float) -> AxpyParams:
    n = max(1024, int(256 * MB * scale))
    return AxpyParams(n=n, alpha=2.0, x_pa=0, y_pa=n * 4)


def _dot(scale: float) -> DotParams:
    n = max(1024, int(256 * MB * scale))
    return DotParams(n=n, x_pa=0, y_pa=n * 4, out_pa=2 * n * 4)


def _gemv(scale: float) -> GemvParams:
    side = max(256, int(16384 * scale ** 0.5))
    a_bytes = side * side * 4
    return GemvParams(m=side, n=side, alpha=1.0, beta=0.0, a_pa=0,
                      x_pa=a_bytes, y_pa=a_bytes + side * 4)


def _spmv(scale: float) -> SpmvParams:
    rows = max(4096, int((1 << 20) * scale))
    nnz = rows * RGG_AVG_DEGREE
    indptr_pa = 0
    indices_pa = indptr_pa + (rows + 1) * 8
    data_pa = indices_pa + nnz * 8
    x_pa = data_pa + nnz * 4
    y_pa = x_pa + rows * 4
    # rgg matrices are geometrically ordered: the gathers of nearby rows
    # stay within a ~1 MB window of x
    return SpmvParams(rows=rows, cols=rows, nnz=nnz, indptr_pa=indptr_pa,
                      indices_pa=indices_pa, data_pa=data_pa, x_pa=x_pa,
                      y_pa=y_pa, locality_bytes=1 << 20)


def _resmp(scale: float) -> ResmpParams:
    blocks = max(16, int(16384 * scale))
    n = 2048
    in_pa = 0
    sites_pa = in_pa + blocks * n * 8
    out_pa = sites_pa + blocks * n * 4
    knots_pa = out_pa + blocks * n * 8
    return ResmpParams(blocks=blocks, n_in=n, n_out=n, in_pa=in_pa,
                       sites_pa=sites_pa, out_pa=out_pa, knots_pa=knots_pa)


def _fft(scale: float) -> FftParams:
    n = 8192
    batch = max(16, int(8192 * scale))
    return FftParams(n=n, batch=batch, src_pa=0, dst_pa=batch * n * 8)


def _reshp(scale: float) -> ReshpParams:
    side = max(256, int(16384 * scale ** 0.5))
    return ReshpParams(rows=side, cols=side, elem_bytes=4, src_pa=0,
                       dst_pa=side * side * 4)


#: The Table 2 rows, keyed by accelerator/op name.
TABLE2: Dict[str, Workload] = {
    "AXPY": Workload("AXPY", "cblas_saxpy()", "256M vector (1GB)", _axpy),
    "DOT": Workload("DOT", "cblas_sdot()", "256M vector (1GB)", _dot),
    "GEMV": Workload("GEMV", "cblas_sgemv()",
                     "16384 x 16384 matrix (1GB)", _gemv),
    "SPMV": Workload("SPMV", "mkl_scsrgemv()",
                     "rgg n=2^20 (synthetic RGG)", _spmv),
    "RESMP": Workload("RESMP", "dfsInterpolate1D()", "16384 blocks",
                      _resmp),
    "FFT": Workload("FFT", "fftwf_execute()",
                    "8192 x 8192 matrix (512MB)", _fft),
    "RESHP": Workload("RESHP", "mkl_simatcopy()",
                      "16384 x 16384 matrix (1GB)", _reshp),
}

#: Presentation order used by the paper's figures.
OP_ORDER = ("AXPY", "DOT", "GEMV", "SPMV", "RESMP", "FFT", "RESHP")
