"""Paper reference numbers for every reproduced table and figure.

Used by EXPERIMENTS.md generation (paper-vs-measured) and by the
benchmark suite's shape assertions. Values are read off the paper's
text, tables, and figure callouts.
"""

from __future__ import annotations

#: Fig 1 — best library-vs-original speedup per suite.
FIG1_SUITE_MAXIMA = {"R": 27.0, "PERFECT": 42.0, "PARSEC": 24.0}

#: Fig 9 — MEALib performance over Haswell-MKL per op (figure callouts;
#: SPMV 11x and RESHP 88x are quoted in the text).
FIG9_MEALIB_SPEEDUP = {
    "AXPY": 35.1, "DOT": 39.0, "GEMV": 38.1, "SPMV": 10.9,
    "RESMP": 20.4, "FFT": 59.2, "RESHP": 88.4,
}
FIG9_AVERAGES = {"MEALib": 38.0, "MSAS": 10.32, "PSAS": 2.51}

#: Fig 10 — MEALib energy-efficiency gain over Haswell-MKL per op.
FIG10_MEALIB_EFFICIENCY = {
    "AXPY": 61.7, "DOT": 88.7, "GEMV": 74.8, "SPMV": 32.9,
    "RESMP": 57.3, "FFT": 96.6, "RESHP": 150.4,
}
FIG10_AVERAGES = {"MEALib": 75.0, "MSAS": 15.0, "PSAS": 10.7}

#: Table 5 — power (W) and area (mm^2) on the accelerator layer.
TABLE5_POWER_W = {
    "AXPY": 23.56, "DOT": 23.49, "GEMV": 23.75, "SPMV": 15.44,
    "RESMP": 8.19, "FFT": 18.89, "RESHP": 22.70,
}
TABLE5_AREA_MM2 = {
    "AXPY": 1.38, "DOT": 1.81, "GEMV": 2.45, "SPMV": 14.17,
    "RESMP": 2.64, "FFT": 16.13, "NoC": 1.44, "TSVs": 1.75,
}
TABLE5_TOTAL_AREA = 41.77
TABLE5_TOTAL_POWER = 23.85
TABLE5_BUDGET_FRACTION = 0.6143

#: Fig 11 — GFLOPS/W ranges over the design space.
FIG11_FFT_EFF_RANGE = (10.0, 56.0)
FIG11_SPMV_EFF_RANGE = (0.18, 1.76)

#: Fig 12 — configuration-efficiency callouts at 256x256.
FIG12_CHAIN_GAIN_256 = 2.5
FIG12_LOOP_GAIN_256 = 9.5

#: Fig 13 — STAP gains over the Haswell baseline.
FIG13_SPEEDUP = {"small": 2.0, "medium": 2.3, "large": 3.2}
FIG13_EDP_GAIN = {"small": 4.5, "medium": 9.0, "large": 10.2}

#: Fig 14 — STAP breakdown (fractions).
FIG14_HOST_TIME_SHARE = 0.75
FIG14_HOST_ENERGY_SHARE = 0.90
FIG14_DOT_TIME_SHARE = 0.60       # of the accelerator portion
FIG14_DOT_ENERGY_SHARE = 0.76
FIG14_INVOCATION_TIME_SHARE = 0.033
FIG14_INVOCATION_ENERGY_SHARE = 0.071
FIG14_DESCRIPTORS = 3
FIG14_TOTAL_CALLS = 17e6
