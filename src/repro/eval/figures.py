"""One generator per reproduced table and figure.

Every function returns a plain-data report (dict-based, printable via
:func:`render`) containing the measured series and, where the paper
states numbers, the paper's values side by side. ``python -m repro.eval
<target>`` drives these from the command line; the benchmark suite
asserts their shape properties.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.accel.design_space import (efficiency_range, explore_fft,
                                      explore_spmv)
from repro.accel.fft import FftParams
from repro.accel.layer import AcceleratorLayer
from repro.accel.resmp import ResmpParams
from repro.accel.synthesis import LAYER_AREA_BUDGET_MM2, noc_area
from repro.apps.stap import PAPER_PRESETS, stap_gains
from repro.apps.suites import library_speedups, suite_maxima
from repro.core.system import MealibSystem
from repro.core.tdl import ParamStore
from repro.eval import calibration as cal
from repro.eval.runner import (IndividualOpRunner, efficiency_vs_haswell,
                               geometric_mean, speedups_vs_haswell)
from repro.eval.workloads import OP_ORDER, TABLE2
from repro.metrics import ZERO

Report = Dict[str, object]


def fig1() -> Report:
    """Figure 1: library-vs-original speedups per suite."""
    rows = library_speedups()
    maxima = suite_maxima(rows)
    return {
        "id": "fig1",
        "title": "Library speedups over original code",
        "rows": [
            {"suite": r.suite, "benchmark": r.name,
             "single_thread": round(r.speedup_single, 1),
             "multi_thread": round(r.speedup_multi, 1)}
            for r in rows],
        "suite_maxima": {k: round(v, 1) for k, v in maxima.items()},
        "paper_suite_maxima": cal.FIG1_SUITE_MAXIMA,
    }


def table1() -> Report:
    """Table 1: accelerated MKL functions and their accelerators."""
    return {
        "id": "table1",
        "title": "Accelerated memory-bounded operations",
        "rows": [
            {"function": w.mkl_function, "description": desc,
             "accelerator": op}
            for op, w, desc in zip(
                OP_ORDER, (TABLE2[o] for o in OP_ORDER),
                ("vector scaling and add", "dot product",
                 "general matrix vector multiply",
                 "sparse matrix vector multiply", "data resampling",
                 "fast Fourier transform", "matrix transpose"))],
    }


def table2() -> Report:
    """Table 2: data sets of the accelerated functions."""
    return {
        "id": "table2",
        "title": "Data sets",
        "rows": [{"function": TABLE2[op].mkl_function,
                  "dataset": TABLE2[op].dataset,
                  "accelerator": op} for op in OP_ORDER],
    }


def table3() -> Report:
    """Table 3: comparison platforms."""
    return {
        "id": "table3",
        "title": "Hardware platforms",
        "rows": [
            {"platform": "Haswell i7-4770K", "cores": "4 @ 3.5 GHz",
             "bandwidth_gbs": 25.6},
            {"platform": "Xeon Phi 5110P", "cores": "60 @ 1.0 GHz",
             "bandwidth_gbs": 320.0},
            {"platform": "PSAS", "cores": "accelerators",
             "bandwidth_gbs": 25.6},
            {"platform": "MSAS", "cores": "accelerators",
             "bandwidth_gbs": 102.4},
            {"platform": "MEALib", "cores": "accelerators",
             "bandwidth_gbs": 510.0},
        ],
    }


def table4() -> Report:
    """Table 4: library functions used in STAP."""
    return {
        "id": "table4",
        "title": "STAP library functions",
        "rows": [
            {"function": "fftwf_execute()", "purpose": "data copy, FFT",
             "type": "memory-bounded"},
            {"function": "cblas_cherk()",
             "purpose": "rank-k matrix update",
             "type": "compute-bounded"},
            {"function": "cblas_ctrsm()",
             "purpose": "triangular matrix solver",
             "type": "compute-bounded"},
            {"function": "cblas_cdotc_sub()", "purpose": "inner product",
             "type": "memory-bounded"},
            {"function": "cblas_saxpy()", "purpose": "vector scaling",
             "type": "memory-bounded"},
        ],
    }


def figs9_10(scale: float = 1.0,
             runner: Optional[IndividualOpRunner] = None) -> Report:
    """Figures 9 and 10: per-op performance and energy efficiency."""
    r = runner if runner is not None else IndividualOpRunner(scale=scale)
    runs = r.run_all()
    speed = speedups_vs_haswell(runs)
    eff = efficiency_vs_haswell(runs)
    rows = []
    for op in OP_ORDER:
        rows.append({
            "op": op,
            "speedup": {p: round(v, 2) for p, v in speed[op].items()},
            "efficiency": {p: round(v, 2) for p, v in eff[op].items()},
            "paper_mealib_speedup": cal.FIG9_MEALIB_SPEEDUP[op],
            "paper_mealib_efficiency": cal.FIG10_MEALIB_EFFICIENCY[op],
            "mealib_power_w": round(
                runs[op]["MEALib"].result.power, 2),
        })
    means = {
        "speedup": {p: round(geometric_mean(
            speed[op][p] for op in OP_ORDER), 2)
            for p in ("XeonPhi", "PSAS", "MSAS", "MEALib")},
        "efficiency": {p: round(geometric_mean(
            eff[op][p] for op in OP_ORDER), 2)
            for p in ("XeonPhi", "PSAS", "MSAS", "MEALib")},
    }
    return {
        "id": "fig9+fig10",
        "title": "Per-operation speedup and energy efficiency vs "
                 "Haswell MKL",
        "rows": rows,
        "geomeans": means,
        "paper_averages": {"fig9": cal.FIG9_AVERAGES,
                           "fig10": cal.FIG10_AVERAGES},
    }


def table5(scale: float = 1.0) -> Report:
    """Table 5: power and area of the accelerator-layer components."""
    runner = IndividualOpRunner(scale=scale)
    layer = runner.layer
    rows = []
    power_by_accel: Dict[str, float] = {}
    for op in OP_ORDER:
        run = runner.run_op(op)["MEALib"]
        core = layer.accelerator(op)
        area = None if op == "RESHP" else core.area_mm2()
        power_by_accel[op] = run.result.power
        rows.append({
            "component": op,
            "power_w": round(run.result.power, 2),
            "paper_power_w": cal.TABLE5_POWER_W[op],
            "area_mm2": round(area, 2) if area is not None else None,
            "paper_area_mm2": cal.TABLE5_AREA_MM2.get(op),
        })
    rows.append({"component": "NoC (router + link)",
                 "power_w": round(layer.noc.power, 3),
                 "paper_power_w": 0.095,
                 "area_mm2": round(noc_area(), 2),
                 "paper_area_mm2": cal.TABLE5_AREA_MM2["NoC"]})
    rows.append({"component": "TSVs", "power_w": None,
                 "paper_power_w": None, "area_mm2": 1.75,
                 "paper_area_mm2": cal.TABLE5_AREA_MM2["TSVs"]})
    total_area = layer.layer_area_mm2()
    total_power = layer.peak_layer_power(power_by_accel)
    return {
        "id": "table5",
        "title": "Accelerator-layer power and area (32nm)",
        "rows": rows,
        "total_area_mm2": round(total_area, 2),
        "paper_total_area_mm2": cal.TABLE5_TOTAL_AREA,
        "area_budget_fraction": round(
            total_area / LAYER_AREA_BUDGET_MM2, 4),
        "paper_area_budget_fraction": cal.TABLE5_BUDGET_FRACTION,
        "total_power_w": round(total_power, 2),
        "paper_total_power_w": cal.TABLE5_TOTAL_POWER,
    }


def fig11(fast: bool = False) -> Report:
    """Figure 11: FFT and SPMV design-space clouds."""
    fft_points = explore_fft(
        n=1024 if fast else 2048, batch=16 if fast else 32)
    spmv_points = explore_spmv(n=1 << (12 if fast else 14))
    fft_range = efficiency_range(fft_points)
    spmv_range = efficiency_range(spmv_points)
    return {
        "id": "fig11",
        "title": "FFT and SPMV accelerator design space",
        "fft_points": [
            {"freq_ghz": p.freq_hz / 1e9, "tiles": p.tiles,
             "row_bytes": p.row_bytes, "block": p.block_elems,
             "gflops": round(p.gflops, 1),
             "power_w": round(p.power_w, 2)} for p in fft_points],
        "spmv_points": [
            {"freq_ghz": p.freq_hz / 1e9, "tiles": p.tiles,
             "row_bytes": p.row_bytes, "gflops": round(p.gflops, 2),
             "power_w": round(p.power_w, 2)} for p in spmv_points],
        "fft_eff_range_gflops_per_w": [round(v, 2) for v in fft_range],
        "paper_fft_eff_range": list(cal.FIG11_FFT_EFF_RANGE),
        "spmv_eff_range_gflops_per_w": [round(v, 2) for v in spmv_range],
        "paper_spmv_eff_range": list(cal.FIG11_SPMV_EFF_RANGE),
    }


def _chain_configs(side: int):
    n = side
    in_pa = 0x100000
    sites_pa = in_pa + n * n * 8
    mid_pa = sites_pa + n * n * 4
    knots_pa = mid_pa + n * n * 8
    fft_out = knots_pa + n * 4
    resmp = ResmpParams(blocks=n, n_in=n, n_out=n, in_pa=in_pa,
                        sites_pa=sites_pa, out_pa=mid_pa,
                        knots_pa=knots_pa)
    fft = FftParams(n=n, batch=n, src_pa=mid_pa, dst_pa=fft_out)
    return resmp, fft


def fig12(sides=(256, 512, 1024, 2048, 4096, 8192)) -> Report:
    """Figure 12: hardware vs software chaining and looping."""
    system = MealibSystem(stack_bytes=4 << 30)
    rt = system.runtime
    chain_rows = []
    for side in sides:
        resmp, fft = _chain_configs(side)
        ws = side * side * 8
        store = ParamStore()
        store.add("r.para", resmp.pack())
        store.add("f.para", fft.pack())
        hw = rt.acc_plan("PASS { COMP RESMP r.para COMP FFT f.para }",
                         store, in_size=ws, out_size=ws)
        t_hw = rt.acc_execute(hw, functional=False)
        s1, s2 = ParamStore(), ParamStore()
        s1.add("r.para", resmp.pack())
        s2.add("f.para", fft.pack())
        p1 = rt.acc_plan("PASS { COMP RESMP r.para }", s1, in_size=ws,
                         out_size=ws)
        p2 = rt.acc_plan("PASS { COMP FFT f.para }", s2, in_size=ws,
                         out_size=ws)
        t_sw = rt.acc_execute(p1, functional=False).plus(
            rt.acc_execute(p2, functional=False))
        chain_rows.append({"side": side,
                           "gain": round(t_sw.time / t_hw.time, 2)})
        for plan in (hw, p1, p2):
            rt.acc_destroy(plan)
    loop_rows = []
    for side in sides:
        _, fft = _chain_configs(side)
        ws = side * side * 8
        store = ParamStore()
        store.add("f.para", fft.pack())
        hw = rt.acc_plan("LOOP 128 { PASS { COMP FFT f.para } }", store,
                         in_size=ws, out_size=ws)
        t_hw = rt.acc_execute(hw, functional=False)
        store2 = ParamStore()
        store2.add("f.para", fft.pack())
        sw = rt.acc_plan("PASS { COMP FFT f.para }", store2, in_size=ws,
                         out_size=ws)
        t_sw = ZERO
        for _ in range(128):
            t_sw = t_sw.plus(rt.acc_execute(sw, functional=False))
        loop_rows.append({"side": side,
                          "gain": round(t_sw.time / t_hw.time, 2)})
        rt.acc_destroy(hw)
        rt.acc_destroy(sw)
    return {
        "id": "fig12",
        "title": "Configuration efficiency: chaining and looping",
        "chaining": chain_rows,
        "paper_chain_gain_256": cal.FIG12_CHAIN_GAIN_256,
        "looping": loop_rows,
        "paper_loop_gain_256": cal.FIG12_LOOP_GAIN_256,
    }


def figs13_14() -> Report:
    """Figures 13 and 14: STAP gains and breakdown."""
    rows = []
    large_gains = None
    for preset in ("small", "medium", "large"):
        gains = stap_gains(preset)
        rows.append({
            "preset": preset,
            "speedup": round(gains.speedup, 2),
            "paper_speedup": cal.FIG13_SPEEDUP[preset],
            "edp_gain": round(gains.edp_gain, 2),
            "paper_edp_gain": cal.FIG13_EDP_GAIN[preset],
        })
        if preset == "large":
            large_gains = gains
    breakdown = {
        "host_time_share": round(large_gains.host_time_share, 3),
        "paper_host_time_share": cal.FIG14_HOST_TIME_SHARE,
        "host_energy_share": round(large_gains.host_energy_share, 3),
        "paper_host_energy_share": cal.FIG14_HOST_ENERGY_SHARE,
        "invocation_time_share": round(
            large_gains.invocation_time_share, 4),
        "paper_invocation_time_share": cal.FIG14_INVOCATION_TIME_SHARE,
        "invocation_energy_share": round(
            large_gains.invocation_energy_share, 4),
        "paper_invocation_energy_share":
            cal.FIG14_INVOCATION_ENERGY_SHARE,
        "dot_time_share": round(
            large_gains.accel_time_shares.get("DOT", 0.0), 3),
        "paper_dot_time_share": cal.FIG14_DOT_TIME_SHARE,
        "dot_energy_share": round(
            large_gains.accel_energy_shares.get("DOT", 0.0), 3),
        "paper_dot_energy_share": cal.FIG14_DOT_ENERGY_SHARE,
        "descriptors": large_gains.descriptors,
        "paper_descriptors": cal.FIG14_DESCRIPTORS,
        "original_library_calls": large_gains.original_calls,
        "paper_library_calls": cal.FIG14_TOTAL_CALLS,
    }
    return {
        "id": "fig13+fig14",
        "title": "STAP gains and execution breakdown",
        "fig13": rows,
        "fig14": breakdown,
    }


GENERATORS = {
    "fig1": fig1,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig9": figs9_10,
    "fig10": figs9_10,
    "table5": table5,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": figs13_14,
    "fig14": figs13_14,
}


def render(report: Report, indent: int = 0) -> str:
    """Plain-text rendering of a report."""
    lines: List[str] = []

    def emit(key, value, depth):
        pad = "  " * depth
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            for k, v in value.items():
                emit(k, v, depth + 1)
        elif isinstance(value, list) and value \
                and isinstance(value[0], dict):
            lines.append(f"{pad}{key}:")
            for item in value:
                lines.append(
                    "  " * (depth + 1)
                    + "  ".join(f"{k}={v}" for k, v in item.items()))
        else:
            lines.append(f"{pad}{key}: {value}")

    for key, value in report.items():
        emit(key, value, indent)
    return "\n".join(lines) + "\n"
