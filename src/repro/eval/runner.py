"""The hybrid evaluation runner (Section 4's methodology, simulated).

Runs each Table 2 workload on all five Table 3 platforms:

* Haswell / Xeon Phi — the CPU roofline model executes the op profile
  (standing in for the paper's native PAPI/RAPL measurement);
* PSAS / MSAS / MEALib — the accelerator model streams the op's access
  pattern through the platform's cycle-level memory device.

Results are :class:`OpRun` records carrying time, energy, flops and
useful bytes, from which the figure generators compute the normalised
speedups and efficiency gains of Figs 9 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.accel.layer import AcceleratorLayer
from repro.eval.workloads import OP_ORDER, TABLE2
from repro.host.cpu import CpuModel
from repro.host.platforms import (AcceleratedSystem, haswell,
                                  mealib_platform, msas, psas, xeon_phi)
from repro.metrics import ExecResult

PLATFORM_ORDER = ("Haswell", "XeonPhi", "PSAS", "MSAS", "MEALib")


@dataclass(frozen=True)
class OpRun:
    """One (operation, platform) execution."""

    op: str
    platform: str
    result: ExecResult
    flops: float
    useful_bytes: int

    @property
    def gflops(self) -> float:
        return self.flops / self.result.time / 1e9

    @property
    def gbytes_per_s(self) -> float:
        return self.useful_bytes / self.result.time / 1e9

    @property
    def gflops_per_watt(self) -> float:
        return self.flops / self.result.energy / 1e9

    def perf_metric(self) -> float:
        """GFLOPS, except RESHP which the paper reports in GB/s."""
        return self.gbytes_per_s if self.flops == 0 else self.gflops

    def efficiency_metric(self) -> float:
        """GFLOPS/W (GB/J for RESHP)."""
        if self.flops == 0:
            return self.useful_bytes / self.result.energy / 1e9
        return self.gflops_per_watt


class IndividualOpRunner:
    """Evaluates the seven accelerated functions across all platforms."""

    def __init__(self, scale: float = 1.0,
                 layer: Optional[AcceleratorLayer] = None):
        self.scale = scale
        self.layer = layer if layer is not None else AcceleratorLayer()
        self.cpu_platforms: Dict[str, CpuModel] = {
            "Haswell": haswell(),
            "XeonPhi": xeon_phi(),
        }
        self.accel_platforms: Dict[str, AcceleratedSystem] = {
            "PSAS": psas(),
            "MSAS": msas(),
            "MEALib": mealib_platform(),
        }

    def run_op(self, op: str) -> Dict[str, OpRun]:
        """All platforms for one operation."""
        workload = TABLE2[op]
        params = workload.params(self.scale)
        core = self.layer.accelerator(op)
        profile = core.profile(params)
        runs: Dict[str, OpRun] = {}
        for name, cpu in self.cpu_platforms.items():
            result = cpu.run_profile(profile)
            runs[name] = OpRun(op=op, platform=name, result=result,
                               flops=profile.flops,
                               useful_bytes=profile.bytes_total)
        for name, system in self.accel_platforms.items():
            execution = system.run(core, params)
            runs[name] = OpRun(op=op, platform=name,
                               result=execution.result,
                               flops=profile.flops,
                               useful_bytes=profile.bytes_total)
        return runs

    def run_all(self) -> Dict[str, Dict[str, OpRun]]:
        """op -> platform -> OpRun for the whole of Table 2."""
        return {op: self.run_op(op) for op in OP_ORDER}


def speedups_vs_haswell(runs: Dict[str, Dict[str, OpRun]]
                        ) -> Dict[str, Dict[str, float]]:
    """Fig 9's quantity: performance normalised to Haswell-MKL."""
    out: Dict[str, Dict[str, float]] = {}
    for op, by_platform in runs.items():
        base = by_platform["Haswell"].result.time
        out[op] = {p: base / r.result.time
                   for p, r in by_platform.items() if p != "Haswell"}
    return out


def efficiency_vs_haswell(runs: Dict[str, Dict[str, OpRun]]
                          ) -> Dict[str, Dict[str, float]]:
    """Fig 10's quantity: GFLOPS/W normalised to Haswell-MKL (flops
    cancel, so this is an energy ratio)."""
    out: Dict[str, Dict[str, float]] = {}
    for op, by_platform in runs.items():
        base = by_platform["Haswell"].result.energy
        out[op] = {p: base / r.result.energy
                   for p, r in by_platform.items() if p != "Haswell"}
    return out


def geometric_mean(values) -> float:
    vals = list(values)
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
