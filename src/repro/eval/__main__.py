"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    python -m repro.eval fig9           # one target
    python -m repro.eval all            # everything, prints EXPERIMENTS-
                                        # style paper-vs-measured output
"""

from __future__ import annotations

import sys

from repro.eval.figures import GENERATORS, render

ORDER = ("fig1", "table1", "table2", "table3", "table4", "fig9",
         "table5", "fig11", "fig12", "fig13")


def main(argv) -> int:
    if len(argv) != 1 or argv[0] not in set(GENERATORS) | {"all"}:
        targets = ", ".join(sorted(set(GENERATORS)))
        print(f"usage: python -m repro.eval <target>\n"
              f"targets: {targets}, all")
        return 2
    target = argv[0]
    names = ORDER if target == "all" else (target,)
    seen = set()
    for name in names:
        generator = GENERATORS[name]
        if generator in seen:
            continue
        seen.add(generator)
        report = generator()
        print("=" * 72)
        print(render(report))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
