"""Evaluation harness: workloads, runner, calibration, figure generators."""

from repro.eval.runner import (IndividualOpRunner, OpRun, PLATFORM_ORDER,
                               efficiency_vs_haswell, geometric_mean,
                               speedups_vs_haswell)
from repro.eval.workloads import OP_ORDER, TABLE2, Workload

__all__ = [
    "IndividualOpRunner", "OpRun", "PLATFORM_ORDER",
    "efficiency_vs_haswell", "geometric_mean", "speedups_vs_haswell",
    "OP_ORDER", "TABLE2", "Workload",
]
