"""Shared memory management: the software half of Section 3.3.

* :class:`~repro.memmgmt.physmem.PhysicalMemory` — sparse simulated
  physical memory;
* :class:`~repro.memmgmt.allocator.ContiguousAllocator` — first-fit
  physically contiguous allocation;
* :class:`~repro.memmgmt.pagetable.PageTable` — VA↔PA translation;
* :class:`~repro.memmgmt.driver.MealibDriver` — the device driver
  (``ioctl``/``mmap`` analogues, command/data space split);
* :class:`~repro.memmgmt.addrspace.UnifiedAddressSpace` /
  :class:`~repro.memmgmt.addrspace.MappedBuffer` — the dual-view facade
  used by the runtime and the accelerators.
"""

from repro.memmgmt.addrspace import MappedBuffer, UnifiedAddressSpace
from repro.memmgmt.allocator import AllocationError, ContiguousAllocator
from repro.memmgmt.driver import (DriverError, IoctlRequest, MealibDriver)
from repro.memmgmt.pagetable import (PAGE_SIZE, PageTable, TranslationError)
from repro.memmgmt.physmem import PhysicalMemory, PhysMemError

__all__ = [
    "MappedBuffer", "UnifiedAddressSpace", "AllocationError",
    "ContiguousAllocator", "DriverError", "IoctlRequest", "MealibDriver",
    "PAGE_SIZE", "PageTable", "TranslationError", "PhysicalMemory",
    "PhysMemError",
]
