"""The unified address space shared by CPU and accelerators.

A thin facade over driver + page table + physical memory: the CPU reads
and writes through virtual addresses, accelerators through physical ones,
and both resolve to the *same* backing bytes (Figure 7 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.memmgmt.driver import IoctlRequest, MealibDriver


@dataclass(frozen=True)
class MappedBuffer:
    """A physically contiguous buffer visible at both a VA and a PA."""

    va: int
    pa: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("buffer size must be positive")

    def contains_va(self, va: int, n: int = 1) -> bool:
        return self.va <= va and va + n <= self.va + self.size

    def va_to_pa(self, va: int) -> int:
        """Translate a VA inside this buffer (contiguity is guaranteed)."""
        if not self.contains_va(va):
            raise ValueError(f"VA {va:#x} outside buffer")
        return self.pa + (va - self.va)


class UnifiedAddressSpace:
    """Allocation + dual-view access for one local memory stack."""

    def __init__(self, driver: Optional[MealibDriver] = None):
        self.driver = driver if driver is not None else MealibDriver()

    # -- allocation --------------------------------------------------------

    def alloc(self, size: int) -> MappedBuffer:
        """Allocate a physically contiguous buffer and map it virtually.

        This is what ``mealib_mem_alloc`` bottoms out in: an ioctl for the
        physical span and a custom mmap for the virtual view.
        """
        pa = self.driver.ioctl(IoctlRequest.MEM_ALLOC, size)
        va = self.driver.mmap(pa, size)
        return MappedBuffer(va=va, pa=pa, size=size)

    def free(self, buffer: MappedBuffer) -> None:
        self.driver.ioctl(IoctlRequest.MEM_FREE, buffer.pa)

    def alloc_array(self, shape, dtype) -> Tuple[MappedBuffer, np.ndarray]:
        """Allocate a buffer sized for ``shape``/``dtype`` and return both
        the buffer and a CPU-side (virtual-view) ndarray over it."""
        dtype = np.dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        buf = self.alloc(count * dtype.itemsize)
        return buf, self.va_ndarray(buf, dtype, shape)

    # -- CPU (virtual) view -------------------------------------------------

    def va_read(self, va: int, n: int) -> bytes:
        pa = self.driver.virt_to_phys(va, n)
        return self.driver.phys.read(pa, n)

    def va_write(self, va: int, data: bytes) -> None:
        pa = self.driver.virt_to_phys(va, len(data))
        self.driver.phys.write(pa, data)

    def va_ndarray(self, buffer: MappedBuffer, dtype, shape) -> np.ndarray:
        """CPU view of a buffer. Identical storage to ``pa_ndarray``."""
        return self.driver.phys.ndarray(buffer.pa, dtype, shape)

    # -- accelerator (physical) view -----------------------------------------

    def pa_read(self, pa: int, n: int) -> bytes:
        return self.driver.phys.read(pa, n)

    def pa_write(self, pa: int, data: bytes) -> None:
        self.driver.phys.write(pa, data)

    def pa_ndarray(self, pa: int, dtype, shape) -> np.ndarray:
        """Accelerator view: raw physical addressing, no MMU involved."""
        return self.driver.phys.ndarray(pa, dtype, shape)

    # -- command space -------------------------------------------------------

    @property
    def command_va(self) -> int:
        return self.driver.command_va

    @property
    def command_pa(self) -> int:
        return self.driver.command_base

    @property
    def command_bytes(self) -> int:
        return self.driver.command_bytes
