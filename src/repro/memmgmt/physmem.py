"""Simulated physical memory.

The stack's physical address space can be gigabytes, so the backing store
is *sparse*: storage exists only for regions registered by the allocator,
each backed by a numpy byte array. Accelerators address this memory
physically; the CPU reaches the same bytes through the page table
(:mod:`repro.memmgmt.pagetable`), so both sides observe a single copy —
the paper's unified-address-space requirement.
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional, Tuple

import numpy as np


class PhysMemError(Exception):
    """Raised on out-of-region or overlapping physical accesses."""


class PhysicalMemory:
    """Sparse byte-addressable physical memory.

    ``fault_hook`` is the DRAM-fault injection point: when set, every
    :meth:`read` passes its result through ``hook(addr, data)``, which
    may return modified bytes (bit flips) or raise (uncorrectable ECC).
    Zero-copy :meth:`view`/:meth:`ndarray` paths model direct TSV access
    by the accelerator datapath and bypass the hook — that path is
    instead adjudicated at operand-fetch time by
    :class:`~repro.faults.datapath.DatapathEcc`, which calls
    :meth:`apply_flips` to land silent (aliased) corruption in the
    backing store. ``None`` (the default) costs nothing.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.fault_hook: Optional[Callable[[int, bytes], bytes]] = None
        self._starts: List[int] = []
        self._regions: List[Tuple[int, np.ndarray]] = []  # (start, backing)

    def add_region(self, start: int, size: int) -> None:
        """Register backing storage for ``[start, start+size)``."""
        if start < 0 or start + size > self.capacity:
            raise PhysMemError(
                f"region [{start:#x}, {start + size:#x}) outside capacity")
        if size <= 0:
            raise PhysMemError("region size must be positive")
        idx = bisect.bisect_right(self._starts, start)
        if idx > 0:
            prev_start, prev = self._regions[idx - 1]
            if prev_start + len(prev) > start:
                raise PhysMemError("region overlaps an existing region")
        if idx < len(self._starts) and start + size > self._starts[idx]:
            raise PhysMemError("region overlaps an existing region")
        self._starts.insert(idx, start)
        self._regions.insert(idx, (start, np.zeros(size, dtype=np.uint8)))

    def remove_region(self, start: int) -> None:
        """Drop the region that begins exactly at ``start``."""
        idx = bisect.bisect_left(self._starts, start)
        if idx >= len(self._starts) or self._starts[idx] != start:
            raise PhysMemError(f"no region starts at {start:#x}")
        del self._starts[idx]
        del self._regions[idx]

    def _locate(self, addr: int, n: int) -> Tuple[np.ndarray, int]:
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            raise PhysMemError(f"unbacked physical address {addr:#x}")
        start, backing = self._regions[idx]
        off = addr - start
        if off + n > len(backing):
            raise PhysMemError(
                f"access [{addr:#x}, {addr + n:#x}) crosses region end")
        return backing, off

    def read(self, addr: int, n: int) -> bytes:
        backing, off = self._locate(addr, n)
        data = backing[off:off + n].tobytes()
        if self.fault_hook is not None:
            data = self.fault_hook(addr, data)
        return data

    def write(self, addr: int, data: bytes) -> None:
        backing, off = self._locate(addr, len(data))
        backing[off:off + len(data)] = np.frombuffer(
            bytes(data), dtype=np.uint8)

    def view(self, addr: int, n: int) -> np.ndarray:
        """Zero-copy uint8 view of ``[addr, addr+n)``. The range must lie
        within a single backed region (true for allocator buffers)."""
        backing, off = self._locate(addr, n)
        return backing[off:off + n]

    def ndarray(self, addr: int, dtype, shape) -> np.ndarray:
        """Zero-copy typed view of physical memory.

        This is how both the simulated CPU (through a virtual mapping that
        resolves to the same region) and the accelerators (directly) touch
        buffer contents — there is a single copy of the data.
        """
        dtype = np.dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        raw = self.view(addr, count * dtype.itemsize)
        return raw.view(dtype).reshape(shape)

    def apply_flips(self, addr: int, mask: int) -> int:
        """XOR a codeword's flip ``mask`` into the backing store.

        ``addr`` is the (8-byte-aligned) word address; bit *i* of
        ``mask`` flips bit ``i % 8`` of byte ``addr + i // 8``. Bits
        that fall outside the backed region (a word straddling the end
        of the last region) are dropped. Returns the number of bits
        actually flipped. This is how silent (aliased) ECC corruption
        becomes observable through the zero-copy datapath views.
        """
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return 0
        start, backing = self._regions[idx]
        off = addr - start
        flipped = 0
        for i in range(8):
            byte_mask = (mask >> (i * 8)) & 0xFF
            if byte_mask and 0 <= off + i < len(backing):
                backing[off + i] ^= byte_mask
                flipped += bin(byte_mask).count("1")
        return flipped

    def regions(self) -> List[Tuple[int, int]]:
        """List of (start, size) backed regions, ascending."""
        return [(start, len(backing)) for start, backing in self._regions]
