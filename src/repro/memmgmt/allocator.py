"""First-fit contiguous physical allocator with coalescing.

The paper's accelerators have no MMU: they need *physically contiguous*
buffers. The device driver reserves a physical range of the local memory
stack and hands out contiguous spans from it through this allocator
(``mealib_mem_alloc``/``mealib_mem_free`` bottom out here).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class AllocationError(Exception):
    """Raised when a request cannot be satisfied or a free is invalid."""


def _align_up(x: int, align: int) -> int:
    return (x + align - 1) // align * align


class ContiguousAllocator:
    """First-fit allocator over ``[base, base + size)``."""

    def __init__(self, base: int, size: int):
        if size <= 0:
            raise ValueError("allocator size must be positive")
        self.base = base
        self.size = size
        # free list of (start, size), sorted by start, non-adjacent
        self._free: List[Tuple[int, int]] = [(base, size)]
        self._live: Dict[int, int] = {}

    def alloc(self, size: int, align: int = 64) -> int:
        """Allocate ``size`` physically contiguous bytes; returns address."""
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        if align <= 0 or (align & (align - 1)):
            raise AllocationError("alignment must be a positive power of 2")
        for idx, (start, span) in enumerate(self._free):
            aligned = _align_up(start, align)
            pad = aligned - start
            if pad + size > span:
                continue
            replacement = []
            if pad:
                replacement.append((start, pad))
            tail = span - pad - size
            if tail:
                replacement.append((aligned + size, tail))
            self._free[idx:idx + 1] = replacement
            self._live[aligned] = size
            return aligned
        raise AllocationError(
            f"cannot allocate {size} contiguous bytes "
            f"({self.free_bytes} free, fragmented)")

    def free(self, addr: int) -> int:
        """Release the allocation at ``addr``; returns its size."""
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of unallocated address {addr:#x}")
        # insert and coalesce
        entry = (addr, size)
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, entry)
        self._coalesce_around(lo)
        return size

    def _coalesce_around(self, idx: int) -> None:
        if idx + 1 < len(self._free):
            start, span = self._free[idx]
            nxt_start, nxt_span = self._free[idx + 1]
            if start + span == nxt_start:
                self._free[idx:idx + 2] = [(start, span + nxt_span)]
        if idx > 0:
            prev_start, prev_span = self._free[idx - 1]
            start, span = self._free[idx]
            if prev_start + prev_span == start:
                self._free[idx - 1:idx + 1] = [(prev_start,
                                                prev_span + span)]

    @property
    def free_bytes(self) -> int:
        return sum(span for _, span in self._free)

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def allocation_size(self, addr: int) -> int:
        """Size of the live allocation at ``addr``."""
        try:
            return self._live[addr]
        except KeyError:
            raise AllocationError(f"no live allocation at {addr:#x}")
