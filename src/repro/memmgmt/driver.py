"""The MEALib device driver.

Mirrors the paper's kernel module: it owns the reserved physically
contiguous range of the Local Memory Stack (LMS), splits it into a
*command space* (where accelerator descriptors live and where the
hardware monitors the Control Region for START) and a *data space*, and
exposes ``ioctl``-shaped allocation plus a custom ``mmap`` that installs
contiguous physical pages into the caller's virtual space.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict

from repro.memmgmt.allocator import ContiguousAllocator
from repro.memmgmt.pagetable import PAGE_SIZE, PageTable, TranslationError
from repro.memmgmt.physmem import PhysicalMemory

#: Default LMS capacity (one stack).
DEFAULT_STACK_BYTES = 4 << 30

#: Default command-space size — descriptors are small.
DEFAULT_COMMAND_BYTES = 1 << 20

#: Virtual addresses handed out by the driver's mmap start here, far away
#: from anything else in the simulated process.
MMAP_VA_BASE = 0x7F00_0000_0000


class IoctlRequest(Enum):
    """The driver's ioctl command set."""

    MEM_ALLOC = auto()
    MEM_FREE = auto()


class DriverError(Exception):
    """Raised on invalid driver requests."""


@dataclass(frozen=True)
class Mapping:
    """One live mmap: a VA span backed by contiguous physical pages."""

    va: int
    pa: int
    size: int


class MealibDriver:
    """Device driver for one local memory stack.

    Args:
        stack_bytes: physical capacity of the LMS.
        command_bytes: size of the reserved command space (descriptors).
    """

    def __init__(self, stack_bytes: int = DEFAULT_STACK_BYTES,
                 command_bytes: int = DEFAULT_COMMAND_BYTES):
        if command_bytes >= stack_bytes:
            raise ValueError("command space must be smaller than the stack")
        self.phys = PhysicalMemory(stack_bytes)
        self.command_base = 0
        self.command_bytes = command_bytes
        self.phys.add_region(self.command_base, command_bytes)
        self._data_alloc = ContiguousAllocator(
            base=command_bytes, size=stack_bytes - command_bytes)
        self.pagetable = PageTable()
        self._va_cursor = MMAP_VA_BASE
        self._mappings: Dict[int, Mapping] = {}   # by VA
        self._pa_to_va: Dict[int, int] = {}
        # The command space is mapped at driver install time so the runtime
        # can write descriptors through ordinary (virtual) stores.
        self.command_va = self.mmap(self.command_base, command_bytes)

    # -- ioctl ------------------------------------------------------------

    def ioctl(self, request: IoctlRequest, arg: int) -> int:
        """Dispatch an ioctl: MEM_ALLOC(size) -> pa, MEM_FREE(pa) -> size."""
        if request is IoctlRequest.MEM_ALLOC:
            return self._mem_alloc(arg)
        if request is IoctlRequest.MEM_FREE:
            return self._mem_free(arg)
        raise DriverError(f"unknown ioctl request: {request}")

    def _mem_alloc(self, size: int) -> int:
        if size <= 0:
            raise DriverError("allocation size must be positive")
        pa = self._data_alloc.alloc(size, align=PAGE_SIZE)
        # round the backing region to whole pages so mmap can expose it
        backed = (size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
        self.phys.add_region(pa, backed)
        return pa

    def _mem_free(self, pa: int) -> int:
        size = self._data_alloc.free(pa)
        va = self._pa_to_va.pop(pa, None)
        if va is not None:
            mapping = self._mappings.pop(va)
            self.pagetable.unmap_range(mapping.va, mapping.size)
        self.phys.remove_region(pa)
        return size

    # -- mmap -------------------------------------------------------------

    def mmap(self, pa: int, size: int) -> int:
        """Map ``[pa, pa+size)`` into virtual space; returns the VA."""
        if size <= 0:
            raise DriverError("mmap size must be positive")
        if pa % PAGE_SIZE:
            raise DriverError("mmap physical address must be page-aligned")
        span = (size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
        va = self._va_cursor
        self._va_cursor += span + PAGE_SIZE   # guard page between mappings
        self.pagetable.map_range(va, pa, span)
        mapping = Mapping(va=va, pa=pa, size=span)
        self._mappings[va] = mapping
        self._pa_to_va[pa] = va
        return va

    def munmap(self, va: int) -> None:
        mapping = self._mappings.pop(va, None)
        if mapping is None:
            raise DriverError(f"munmap of unmapped VA {va:#x}")
        self._pa_to_va.pop(mapping.pa, None)
        self.pagetable.unmap_range(mapping.va, mapping.size)

    # -- translation helpers ----------------------------------------------

    def virt_to_phys(self, va: int, size: int = 1) -> int:
        """The translation the runtime performs when filling descriptors."""
        try:
            return self.pagetable.translate_range(va, size)
        except TranslationError as exc:
            raise DriverError(str(exc)) from exc

    @property
    def live_mappings(self) -> int:
        return len(self._mappings)
