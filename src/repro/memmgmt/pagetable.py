"""Virtual-to-physical translation for the host side.

Legacy code addresses memory virtually; MEALib's accelerators address it
physically. The driver's custom ``mmap`` maps a contiguous physical span
into the process's virtual space page by page; the runtime performs
virtual→physical translation when it writes buffer addresses into the
accelerator descriptor (Section 3.3, "Address translation").
"""

from __future__ import annotations

from typing import Dict

PAGE_SIZE = 4096


class TranslationError(Exception):
    """Raised on unmapped virtual accesses."""


class PageTable:
    """A flat page table: virtual page number → physical page number."""

    def __init__(self, page_size: int = PAGE_SIZE):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page size must be a positive power of two")
        self.page_size = page_size
        self._entries: Dict[int, int] = {}

    def map_range(self, va: int, pa: int, size: int) -> None:
        """Map ``size`` bytes at virtual ``va`` to physical ``pa``.

        Both addresses must be page-aligned; the span is mapped with
        contiguous physical pages (that is the point of the driver's
        custom mmap).
        """
        ps = self.page_size
        if va % ps or pa % ps:
            raise TranslationError("mmap addresses must be page-aligned")
        if size <= 0:
            raise TranslationError("mapping size must be positive")
        pages = (size + ps - 1) // ps
        for i in range(pages):
            vpn = va // ps + i
            if vpn in self._entries:
                raise TranslationError(
                    f"virtual page {vpn:#x} is already mapped")
            self._entries[vpn] = pa // ps + i

    def unmap_range(self, va: int, size: int) -> None:
        ps = self.page_size
        if va % ps:
            raise TranslationError("munmap address must be page-aligned")
        pages = (size + ps - 1) // ps
        for i in range(pages):
            if self._entries.pop(va // ps + i, None) is None:
                raise TranslationError(
                    f"virtual page {(va // ps + i):#x} is not mapped")

    def translate(self, va: int) -> int:
        """Virtual → physical for a single address."""
        vpn, off = divmod(va, self.page_size)
        try:
            ppn = self._entries[vpn]
        except KeyError:
            raise TranslationError(f"unmapped virtual address {va:#x}")
        return ppn * self.page_size + off

    def translate_range(self, va: int, size: int) -> int:
        """Translate a buffer start, verifying the whole span is mapped to
        *contiguous* physical pages (what accelerators require)."""
        pa0 = self.translate(va)
        last = va + max(size, 1) - 1
        expected = pa0 + (last - va)
        if self.translate(last) != expected:
            raise TranslationError(
                f"virtual span at {va:#x} is not physically contiguous")
        return pa0

    @property
    def mapped_pages(self) -> int:
        return len(self._entries)
