"""MEALib reproduction: memory-accelerated library (MICRO 2015).

The package is organised bottom-up:

* :mod:`repro.memsys` — cycle-level DRAM substrate (3D stack + DDR);
* :mod:`repro.memmgmt` — simulated physical memory, allocator, page table,
  device driver (the shared-memory management of Section 3.3);
* :mod:`repro.mkl` — the software library baseline ("Intel MKL" stand-in);
* :mod:`repro.host` — host CPU / platform models (Table 3);
* :mod:`repro.accel` — the accelerator layer (Table 1, Figure 4);
* :mod:`repro.core` — MEALib proper: TDL, accelerator descriptors,
  configuration unit, runtime routines (Sections 2.3-3.5);
* :mod:`repro.compiler` — the source-to-source compiler (Section 3.4);
* :mod:`repro.apps` — STAP, SAR, and suite proxy workloads;
* :mod:`repro.eval` — the evaluation harness regenerating every table and
  figure of the paper.
"""

__version__ = "1.0.0"
