"""Fault injection and resilience modeling for MEALib.

The subsystems expose small hooks that stay inert (and free) when no
injector is attached; :class:`~repro.core.system.MealibSystem` wires an
injector through the physical memory, the memory device, the
configuration unit, and the runtime when one is passed. The datapath
ECC layer (:mod:`repro.faults.datapath`) and patrol scrubber
(:mod:`repro.faults.scrub`) ride the same wiring to cover the
accelerators' zero-copy TSV reads.
"""

from repro.faults.datapath import DatapathEcc, DatapathStats, merge_ranges
from repro.faults.ecc import (ECC_WORD_BITS, OUTCOME_CLEAN,
                              OUTCOME_CORRECTED, OUTCOME_DETECTED,
                              OUTCOME_SILENT, SecdedModel,
                              UncorrectableEccError, popcount)
from repro.faults.injector import (CuHangError, FaultConfig, FaultInjector,
                                   FaultStats)
from repro.faults.scrub import PatrolScrubber, ScrubConfig, ScrubStats

__all__ = [
    "ECC_WORD_BITS", "OUTCOME_CLEAN", "OUTCOME_CORRECTED",
    "OUTCOME_DETECTED", "OUTCOME_SILENT", "SecdedModel",
    "UncorrectableEccError", "CuHangError", "FaultConfig", "FaultInjector",
    "FaultStats", "DatapathEcc", "DatapathStats", "merge_ranges",
    "PatrolScrubber", "ScrubConfig", "ScrubStats", "popcount",
]
