"""Fault injection and resilience modeling for MEALib.

The subsystems expose small hooks that stay inert (and free) when no
injector is attached; :class:`~repro.core.system.MealibSystem` wires an
injector through the physical memory, the memory device, the
configuration unit, and the runtime when one is passed.
"""

from repro.faults.ecc import (ECC_WORD_BITS, OUTCOME_CLEAN,
                              OUTCOME_CORRECTED, OUTCOME_DETECTED,
                              OUTCOME_SILENT, SecdedModel,
                              UncorrectableEccError)
from repro.faults.injector import (CuHangError, FaultConfig, FaultInjector,
                                   FaultStats)

__all__ = [
    "ECC_WORD_BITS", "OUTCOME_CLEAN", "OUTCOME_CORRECTED",
    "OUTCOME_DETECTED", "OUTCOME_SILENT", "SecdedModel",
    "UncorrectableEccError", "CuHangError", "FaultConfig", "FaultInjector",
    "FaultStats",
]
