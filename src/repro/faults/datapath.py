"""In-datapath SECDED adjudication for the accelerators' TSV reads.

The accelerators read operands straight off the stacked DRAM's TSVs
through zero-copy numpy views (:meth:`PhysicalMemory.ndarray`), so the
per-read fault hook on the byte-copy :meth:`PhysicalMemory.read` path
never sees them. :class:`DatapathEcc` closes that gap: at every
accelerated step's operand fetch the configuration unit hands it the
step's physical operand ranges, and it adjudicates each 64-bit codeword
that carries latent cell flips (the injector's latent-flip map) exactly
the way the vault controller's SECDED pipeline would:

========  ===========================================================
flips     outcome
========  ===========================================================
0         clean — word streams through untouched
1         corrected on the fly; the flip is scrubbed from the cells
          and one correct-and-writeback cost is queued for the ledger
2         detected, not correctable: :class:`UncorrectableEccError`
          is raised (the runtime's retry machinery takes over) and the
          trapped line is demand-repaired from the host's coherent
          copy, so the retry reads clean data
>= 3      may alias to a valid codeword: *silent* corruption — the
          flips are applied to the backing store, so the functional
          result really is wrong
========  ===========================================================

With ECC disabled every dirty word takes the silent row. Write ranges
re-encode their codewords, so latent flips under them are simply
dropped. Words the step never touches stay latent — that is the gap
the patrol scrubber (:mod:`repro.faults.scrub`) exists to drain.

Costs are *queued*, not charged in place: the runtime drains them into
the ledger's ``fault`` category (``ecc-stream`` for the re-decode drain
of dirty words, ``ecc-correction`` for correct-and-writeback events),
so a fault-free step charges exactly nothing and the ECC-off path is
bit-identical to the unguarded runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.ecc import (ECC_WORD_BITS, SecdedModel,
                              UncorrectableEccError)
from repro.faults.injector import FaultInjector
from repro.memmgmt.physmem import PhysicalMemory
from repro.metrics import ExecResult, ZERO

#: Bytes per SECDED codeword.
WORD_BYTES = ECC_WORD_BITS // 8


@dataclass
class DatapathStats:
    """Adjudication counters of the datapath ECC layer alone."""

    guards: int = 0                 # operand-fetch adjudication passes
    words_checked: int = 0          # dirty words adjudicated
    words_corrected: int = 0
    words_repaired: int = 0         # detected doubles demand-repaired
    words_silent: int = 0
    words_rewritten: int = 0        # flips dropped by write re-encode

    def clear(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


def merge_ranges(ranges: Sequence[Tuple[int, int]]
                 ) -> List[Tuple[int, int]]:
    """Coalesce ``(start, size)`` byte ranges into disjoint ascending
    spans (adjudication then visits each codeword at most once)."""
    spans = sorted((start, start + size) for start, size in ranges
                   if size > 0)
    out: List[Tuple[int, int]] = []
    for start, end in spans:
        if out and start <= out[-1][1]:
            prev_start, prev_end = out[-1]
            out[-1] = (prev_start, max(prev_end, end))
        else:
            out.append((start, end))
    return [(start, end - start) for start, end in out]


class DatapathEcc:
    """SECDED adjudication at the accelerator operand-fetch boundary."""

    def __init__(self, injector: FaultInjector, phys: PhysicalMemory,
                 ecc: Optional[SecdedModel] = None):
        self.injector = injector
        self.phys = phys
        self.ecc = ecc if ecc is not None else injector.ecc
        self.stats = DatapathStats()
        self._pending_stream = ZERO

    def guard(self, reads: Sequence[Tuple[int, int]],
              writes: Sequence[Tuple[int, int]] = ()) -> None:
        """Adjudicate one step's operand fetch.

        ``reads``/``writes`` are ``(physical start, size)`` byte ranges.
        Raises :class:`UncorrectableEccError` when any read codeword
        carries a detected double-bit error (after repairing it, so the
        runtime's retry succeeds). Cheap no-op when the latent map is
        empty.
        """
        inj = self.injector
        if inj.latent_word_count == 0:
            return
        self.stats.guards += 1
        ecc_on = inj.config.ecc_enabled
        detected: List[int] = []
        dirty = inj.latent_words(merge_ranges(reads))
        if dirty:
            # Classify every dirty codeword in one batch: popcount over
            # the flip masks, then SECDED adjudication as boolean
            # predicates (1 flip corrected, 2 detected, >= 3 silent;
            # ECC off sends every dirty word down the silent row).
            masks = np.fromiter((m for _, m in dirty), dtype=np.uint64,
                                count=len(dirty))
            flips = np.bitwise_count(masks)
            if ecc_on:
                is_corr = flips == 1
                is_det = flips == 2
                is_silent = flips >= 3
            else:
                is_corr = np.zeros(len(dirty), dtype=bool)
                is_det = is_corr
                is_silent = ~is_corr
            n_corr = int(np.count_nonzero(is_corr))
            n_det = int(np.count_nonzero(is_det))
            n_silent = int(np.count_nonzero(is_silent))
            inj.stats.words_corrected += n_corr
            self.stats.words_corrected += n_corr
            # the trap handler demand-repairs detected doubles from the
            # host's coherent copy (one writeback event each), so the
            # descriptor retry reads clean data
            inj.stats.words_uncorrectable += n_det
            self.stats.words_repaired += n_det
            inj.queue_correction(n_corr + n_det)
            inj.stats.words_silent += n_silent
            self.stats.words_silent += n_silent
            for idx in range(len(dirty)):       # ascending word order
                word, mask = dirty[idx]
                if is_silent[idx]:              # silent corruption
                    self.phys.apply_flips(word, mask)
                elif is_det[idx]:
                    detected.append(word)
                inj.clear_latent_word(word)
            self.stats.words_checked += len(dirty)
            self._pending_stream = self._pending_stream.plus(
                self.ecc.stream_overhead(len(dirty) * WORD_BYTES))
        for word, _ in inj.latent_words(merge_ranges(writes)):
            # a write re-encodes the whole codeword: latent flips gone
            inj.clear_latent_word(word)
            inj.stats.words_rewritten += 1
            self.stats.words_rewritten += 1
        if detected:
            raise UncorrectableEccError(detected[0], len(detected))

    def drain_stream_overhead(self) -> ExecResult:
        """Re-decode drain cost accumulated since the last drain."""
        cost = self._pending_stream
        self._pending_stream = ZERO
        return cost
