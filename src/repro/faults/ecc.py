"""SECDED ECC model for the stacked DRAM.

Real 3D-stacked parts protect each 64-bit data word with 8 check bits
(a (72,64) Hamming SECDED code): any single-bit error in a word is
corrected on the fly, any double-bit error is *detected* but not
correctable, and three or more flipped bits can alias to a valid or
singly-corrupted codeword — silent data corruption.

The model here mirrors that adjudication for injected faults and prices
the resilience machinery:

* every protected word pays a small decode energy as it streams through
  the vault controller's ECC pipeline (charged in
  :meth:`SecdedModel.stream_overhead`, folded into the device timing
  model only when ECC is attached, so the unprotected baseline is
  untouched);
* every *correction* additionally pays a correct-and-writeback penalty
  (:meth:`SecdedModel.correction_cost`), surfaced to the runtime ledger
  under the ``fault`` category.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics import ExecResult

#: Data bits covered by one SECDED codeword.
ECC_WORD_BITS = 64


def popcount(mask: int) -> int:
    """Number of set bits in a codeword's flip mask (py3.9-safe)."""
    return bin(mask).count("1")

#: Outcomes of adjudicating one codeword.
OUTCOME_CLEAN = "clean"
OUTCOME_CORRECTED = "corrected"
OUTCOME_DETECTED = "detected"          # double-bit: flagged, not fixed
OUTCOME_SILENT = "silent"              # >= 3 bits: may alias, undetected


class UncorrectableEccError(Exception):
    """A read hit a detected-but-uncorrectable (double-bit) ECC error."""

    def __init__(self, addr: int, words: int = 1):
        super().__init__(
            f"uncorrectable ECC error at physical address {addr:#x} "
            f"({words} word{'s' if words != 1 else ''})")
        self.addr = addr
        self.words = words


@dataclass(frozen=True)
class SecdedModel:
    """(72,64) SECDED timing/energy constants.

    Attributes:
        e_decode_per_word: syndrome-decode energy per streamed word, J.
        t_pipeline: extra pipeline latency ECC adds to one drain, s.
        t_correct: latency of one correct-and-writeback event, s.
        e_correct: energy of one correct-and-writeback event, J.
    """

    e_decode_per_word: float = 5e-12
    t_pipeline: float = 2e-9
    t_correct: float = 25e-9
    e_correct: float = 2e-10

    def classify(self, flipped_bits: int) -> str:
        """SECDED adjudication of one codeword with ``flipped_bits``."""
        if flipped_bits <= 0:
            return OUTCOME_CLEAN
        if flipped_bits == 1:
            return OUTCOME_CORRECTED
        if flipped_bits == 2:
            return OUTCOME_DETECTED
        return OUTCOME_SILENT

    def correction_cost(self, corrections: int) -> ExecResult:
        """Cost of ``corrections`` correct-and-writeback events."""
        return ExecResult(time=corrections * self.t_correct,
                          energy=corrections * self.e_correct)

    def stream_overhead(self, n_bytes: int) -> ExecResult:
        """Decode-pipeline overhead of streaming ``n_bytes`` through ECC."""
        words = max(n_bytes * 8 // ECC_WORD_BITS, 1) if n_bytes else 0
        if not words:
            return ExecResult(0.0, 0.0)
        return ExecResult(time=self.t_pipeline,
                          energy=words * self.e_decode_per_word)
