"""Deterministic, seedable fault injection.

One :class:`FaultInjector` drives every fault model in the package from
a single ``numpy`` PRNG, so a campaign run is exactly reproducible from
its seed:

* **DRAM bit flips** — on every hooked physical-memory read, each data
  bit flips independently with probability ``dram_bit_error_rate``.
  Flips are grouped into 64-bit ECC codewords and adjudicated by the
  :class:`~repro.faults.ecc.SecdedModel`: single-bit errors are
  corrected (the caller sees clean data, the correction cost is
  queued), double-bit errors raise
  :class:`~repro.faults.ecc.UncorrectableEccError`, and triple-plus
  flips (or any flip with ECC disabled) silently corrupt the returned
  bytes.
* **Descriptor-word corruption** — with probability
  ``descriptor_corruption_rate`` per fetch, one aligned 32-bit word of
  the fetched descriptor image is replaced with a different random
  word (models TSV / command-path upsets).
* **CU / doorbell hangs** — with probability ``hang_rate`` per
  doorbell, the configuration unit never responds
  (:class:`CuHangError`; the runtime's watchdog turns this into a
  bounded timeout plus retry).
* **Tile failures** — with probability ``tile_fail_rate`` per
  descriptor execution, one healthy accelerator tile hard-fails for
  the rest of the run (the runtime reroutes its vault stripe to the
  surviving tiles, and degrades to host execution only when no tile
  is left).
* **NoC link failures** — with probability ``link_fail_rate`` per
  descriptor execution, one healthy mesh link hard-fails for the rest
  of the run; the adaptive router detours around it.
* **NoC link flaps** — with probability ``link_flap_rate`` per
  descriptor execution, one healthy mesh link is down for just that
  execution (marginal TSV/driver contact), then comes back.

The injector is pure policy: the subsystems own small hooks
(`PhysicalMemory.fault_hook`, `ConfigurationUnit.faults`) that stay
``None`` — and cost nothing — in the fault-free configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.ecc import (ECC_WORD_BITS, OUTCOME_CORRECTED,
                              OUTCOME_DETECTED, OUTCOME_SILENT,
                              SecdedModel, UncorrectableEccError)
from repro.metrics import ExecResult


class CuHangError(Exception):
    """The configuration unit stopped responding to the doorbell."""


@dataclass(frozen=True)
class FaultConfig:
    """Rates of every fault model (all default to 'no faults')."""

    seed: int = 0
    dram_bit_error_rate: float = 0.0        # per data bit per read
    descriptor_corruption_rate: float = 0.0  # per descriptor fetch
    hang_rate: float = 0.0                   # per doorbell
    tile_fail_rate: float = 0.0              # per descriptor execution
    link_fail_rate: float = 0.0              # per descriptor execution
    link_flap_rate: float = 0.0              # per descriptor execution
    ecc_enabled: bool = True

    def __post_init__(self) -> None:
        for name in ("dram_bit_error_rate", "descriptor_corruption_rate",
                     "hang_rate", "tile_fail_rate", "link_fail_rate",
                     "link_flap_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")


@dataclass
class FaultStats:
    """Counters of injected faults and how they were adjudicated."""

    reads_checked: int = 0
    bits_flipped: int = 0
    words_corrected: int = 0
    words_uncorrectable: int = 0
    words_silent: int = 0
    descriptor_corruptions: int = 0
    cu_hangs: int = 0
    tile_failures: int = 0
    link_failures: int = 0
    link_flaps: int = 0

    @property
    def faulty_words(self) -> int:
        return (self.words_corrected + self.words_uncorrectable
                + self.words_silent)

    @property
    def injected_events(self) -> int:
        """All fault events the injector produced."""
        return (self.faulty_words + self.descriptor_corruptions
                + self.cu_hangs + self.tile_failures
                + self.link_failures + self.link_flaps)

    @property
    def detected_events(self) -> int:
        """Events the hardened stack noticed (everything but silent)."""
        return self.injected_events - self.words_silent

    @property
    def detection_rate(self) -> float:
        if not self.injected_events:
            return 1.0
        return self.detected_events / self.injected_events

    def clear(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


class FaultInjector:
    """Seeded source of every injected fault (see module docstring)."""

    def __init__(self, config: Optional[FaultConfig] = None,
                 ecc: Optional[SecdedModel] = None, **rates):
        if config is not None and rates:
            raise ValueError("pass either a FaultConfig or keyword rates")
        self.config = config if config is not None else FaultConfig(**rates)
        self.ecc = ecc if ecc is not None else SecdedModel()
        self.stats = FaultStats()
        self._rng = np.random.default_rng(self.config.seed)
        self._pending_corrections = 0

    def reset(self) -> None:
        """Re-seed the PRNG and zero the statistics."""
        self._rng = np.random.default_rng(self.config.seed)
        self.stats.clear()
        self._pending_corrections = 0

    # -- DRAM data path (PhysicalMemory.fault_hook) --------------------------

    def dram_read(self, addr: int, data: bytes) -> bytes:
        """Adjudicate one physical read; returns the bytes the CPU or
        accelerator actually observes."""
        rate = self.config.dram_bit_error_rate
        if rate <= 0.0 or not data:
            return data
        self.stats.reads_checked += 1
        nbits = len(data) * 8
        k = int(self._rng.binomial(nbits, rate))
        if k == 0:
            return data
        k = min(k, nbits)
        positions = self._rng.choice(nbits, size=k, replace=False)
        self.stats.bits_flipped += k
        by_word: Dict[int, List[int]] = {}
        for pos in positions:
            by_word.setdefault(int(pos) // ECC_WORD_BITS, []).append(int(pos))
        corrupted: Optional[bytearray] = None
        uncorrectable = 0
        for _, bits in sorted(by_word.items()):
            if self.config.ecc_enabled:
                outcome = self.ecc.classify(len(bits))
            else:
                outcome = OUTCOME_SILENT
            if outcome == OUTCOME_CORRECTED:
                self.stats.words_corrected += 1
                self._pending_corrections += 1
            elif outcome == OUTCOME_DETECTED:
                self.stats.words_uncorrectable += 1
                uncorrectable += 1
            else:                                   # silent corruption
                self.stats.words_silent += 1
                if corrupted is None:
                    corrupted = bytearray(data)
                for bit in bits:
                    corrupted[bit // 8] ^= 1 << (bit % 8)
        if uncorrectable:
            raise UncorrectableEccError(addr, uncorrectable)
        return bytes(corrupted) if corrupted is not None else data

    def drain_correction_cost(self) -> Tuple[ExecResult, int]:
        """Cost of ECC corrections since the last drain (for the ledger)."""
        n = self._pending_corrections
        self._pending_corrections = 0
        return self.ecc.correction_cost(n), n

    # -- command path (ConfigurationUnit hooks) ------------------------------

    def corrupt_descriptor(self, raw: bytes) -> bytes:
        """Maybe corrupt one aligned 32-bit word of a fetched descriptor."""
        rate = self.config.descriptor_corruption_rate
        if rate <= 0.0 or len(raw) < 4:
            return raw
        if self._rng.random() >= rate:
            return raw
        idx = int(self._rng.integers(len(raw) // 4))
        old = raw[idx * 4:idx * 4 + 4]
        new = old
        while new == old:
            new = self._rng.bytes(4)
        self.stats.descriptor_corruptions += 1
        return raw[:idx * 4] + new + raw[idx * 4 + 4:]

    def sample_hang(self) -> bool:
        """Does this doorbell ring hang the configuration unit?"""
        if self.config.hang_rate <= 0.0:
            return False
        if self._rng.random() < self.config.hang_rate:
            self.stats.cu_hangs += 1
            return True
        return False

    def sample_tile_failure(self) -> Optional[int]:
        """Index of a tile (0-based draw) to hard-fail, or None."""
        if self.config.tile_fail_rate <= 0.0:
            return None
        if self._rng.random() < self.config.tile_fail_rate:
            self.stats.tile_failures += 1
            return int(self._rng.integers(1 << 30))
        return None

    def sample_link_failure(self) -> Optional[int]:
        """Draw for a mesh link to hard-fail this execution, or None.

        The caller maps the draw onto its list of currently healthy
        links (the injector is pure policy and owns no topology)."""
        if self.config.link_fail_rate <= 0.0:
            return None
        if self._rng.random() < self.config.link_fail_rate:
            self.stats.link_failures += 1
            return int(self._rng.integers(1 << 30))
        return None

    def sample_link_flap(self) -> Optional[int]:
        """Draw for a mesh link that is down for this execution only."""
        if self.config.link_flap_rate <= 0.0:
            return None
        if self._rng.random() < self.config.link_flap_rate:
            self.stats.link_flaps += 1
            return int(self._rng.integers(1 << 30))
        return None
