"""Deterministic, seedable fault injection.

One :class:`FaultInjector` drives every fault model in the package from
a single ``numpy`` PRNG, so a campaign run is exactly reproducible from
its seed:

* **DRAM bit flips** — on every hooked physical-memory read, each data
  bit flips independently with probability ``dram_bit_error_rate``.
  Flips are grouped into 64-bit ECC codewords and adjudicated by the
  :class:`~repro.faults.ecc.SecdedModel`: single-bit errors are
  corrected (the caller sees clean data, the correction cost is
  queued), double-bit errors raise
  :class:`~repro.faults.ecc.UncorrectableEccError`, and triple-plus
  flips (or any flip with ECC disabled) silently corrupt the returned
  bytes.
* **Latent cell flips** — with per-bit probability
  ``latent_flip_rate`` per accelerated step, upsets land in the DRAM
  *cells* of backed physical memory and stay there (the injector's
  latent-flip map) until something adjudicates the word: the
  accelerators' direct-TSV datapath
  (:class:`~repro.faults.datapath.DatapathEcc`) on operand fetch, the
  background patrol scrubber
  (:class:`~repro.faults.scrub.PatrolScrubber`) between steps, or a
  write that re-encodes the codeword. Unlike the per-read model above,
  latent flips *accumulate*: two singles landing in the same word pair
  into an uncorrectable double — the failure mode patrol scrubbing
  exists to prevent. Deposits draw from a dedicated PRNG stream, so a
  campaign's flip placement is identical across scrub-interval
  settings.
* **Descriptor-word corruption** — with probability
  ``descriptor_corruption_rate`` per fetch, one aligned 32-bit word of
  the fetched descriptor image is replaced with a different random
  word (models TSV / command-path upsets).
* **CU / doorbell hangs** — with probability ``hang_rate`` per
  doorbell, the configuration unit never responds
  (:class:`CuHangError`; the runtime's watchdog turns this into a
  bounded timeout plus retry).
* **Tile failures** — with probability ``tile_fail_rate`` per
  descriptor execution, one healthy accelerator tile hard-fails for
  the rest of the run (the runtime reroutes its vault stripe to the
  surviving tiles, and degrades to host execution only when no tile
  is left).
* **NoC link failures** — with probability ``link_fail_rate`` per
  descriptor execution, one healthy mesh link hard-fails for the rest
  of the run; the adaptive router detours around it.
* **NoC link flaps** — with probability ``link_flap_rate`` per
  descriptor execution, one healthy mesh link is down for just that
  execution (marginal TSV/driver contact), then comes back.

The injector is pure policy: the subsystems own small hooks
(`PhysicalMemory.fault_hook`, `ConfigurationUnit.faults`) that stay
``None`` — and cost nothing — in the fault-free configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.ecc import (ECC_WORD_BITS, OUTCOME_CORRECTED,
                              OUTCOME_DETECTED, OUTCOME_SILENT,
                              SecdedModel, UncorrectableEccError)
from repro.metrics import ExecResult


class CuHangError(Exception):
    """The configuration unit stopped responding to the doorbell."""


@dataclass(frozen=True)
class FaultConfig:
    """Rates of every fault model (all default to 'no faults')."""

    seed: int = 0
    dram_bit_error_rate: float = 0.0        # per data bit per read
    latent_flip_rate: float = 0.0            # per backed bit per step
    descriptor_corruption_rate: float = 0.0  # per descriptor fetch
    hang_rate: float = 0.0                   # per doorbell
    tile_fail_rate: float = 0.0              # per descriptor execution
    link_fail_rate: float = 0.0              # per descriptor execution
    link_flap_rate: float = 0.0              # per descriptor execution
    ecc_enabled: bool = True

    def __post_init__(self) -> None:
        for name in ("dram_bit_error_rate", "latent_flip_rate",
                     "descriptor_corruption_rate",
                     "hang_rate", "tile_fail_rate", "link_fail_rate",
                     "link_flap_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")


@dataclass
class FaultStats:
    """Counters of injected faults and how they were adjudicated."""

    reads_checked: int = 0
    bits_flipped: int = 0
    words_corrected: int = 0
    words_uncorrectable: int = 0
    words_silent: int = 0
    latent_flips_deposited: int = 0
    words_rewritten: int = 0                 # latent flips dropped by writes
    descriptor_corruptions: int = 0
    cu_hangs: int = 0
    tile_failures: int = 0
    link_failures: int = 0
    link_flaps: int = 0

    @property
    def faulty_words(self) -> int:
        return (self.words_corrected + self.words_uncorrectable
                + self.words_silent)

    @property
    def injected_events(self) -> int:
        """All fault events the injector produced."""
        return (self.faulty_words + self.descriptor_corruptions
                + self.cu_hangs + self.tile_failures
                + self.link_failures + self.link_flaps)

    @property
    def detected_events(self) -> int:
        """Events the hardened stack noticed (everything but silent)."""
        return self.injected_events - self.words_silent

    @property
    def detection_rate(self) -> float:
        if not self.injected_events:
            return 1.0
        return self.detected_events / self.injected_events

    def clear(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


class FaultInjector:
    """Seeded source of every injected fault (see module docstring)."""

    def __init__(self, config: Optional[FaultConfig] = None,
                 ecc: Optional[SecdedModel] = None, **rates):
        if config is not None and rates:
            raise ValueError("pass either a FaultConfig or keyword rates")
        self.config = config if config is not None else FaultConfig(**rates)
        self.ecc = ecc if ecc is not None else SecdedModel()
        self.stats = FaultStats()
        self._rng = np.random.default_rng(self.config.seed)
        # latent cell flips draw from their own stream so that scrub
        # policy (which consumes no randomness) can never perturb the
        # deposit sequence of a seeded campaign
        self._latent_rng = np.random.default_rng((self.config.seed, 1))
        self._pending_corrections = 0
        #: 8-byte-aligned word address -> 64-bit mask of flipped cells
        self._latent: Dict[int, int] = {}
        #: vault index -> accepted latent flips (thermal-coupled runs;
        #: populated only when deposits are given a ``vault_of`` mapping)
        self.latent_deposits_by_vault: Dict[int, int] = {}
        #: Fired whenever *new* latent flips land (deposits or planted
        #: test flips) — the schedule cache's fault invalidation hook.
        #: Clears (adjudication, scrub, rewrites) do not fire it: they
        #: happen live on both the cached and the fresh path.
        self.on_latent_change: Optional[Callable[[], None]] = None

    def reset(self) -> None:
        """Re-seed the PRNGs and zero the statistics and latent map."""
        self._rng = np.random.default_rng(self.config.seed)
        self._latent_rng = np.random.default_rng((self.config.seed, 1))
        self.stats.clear()
        self._pending_corrections = 0
        self._latent.clear()
        self.latent_deposits_by_vault.clear()

    # -- DRAM data path (PhysicalMemory.fault_hook) --------------------------

    def dram_read(self, addr: int, data: bytes) -> bytes:
        """Adjudicate one physical read; returns the bytes the CPU or
        accelerator actually observes."""
        rate = self.config.dram_bit_error_rate
        if rate <= 0.0 or not data:
            return data
        self.stats.reads_checked += 1
        nbits = len(data) * 8
        k = int(self._rng.binomial(nbits, rate))
        if k == 0:
            return data
        k = min(k, nbits)
        positions = self._rng.choice(nbits, size=k, replace=False)
        self.stats.bits_flipped += k
        by_word: Dict[int, List[int]] = {}
        for pos in positions:
            by_word.setdefault(int(pos) // ECC_WORD_BITS, []).append(int(pos))
        corrupted: Optional[bytearray] = None
        uncorrectable = 0
        for _, bits in sorted(by_word.items()):
            if self.config.ecc_enabled:
                outcome = self.ecc.classify(len(bits))
            else:
                outcome = OUTCOME_SILENT
            if outcome == OUTCOME_CORRECTED:
                self.stats.words_corrected += 1
                self._pending_corrections += 1
            elif outcome == OUTCOME_DETECTED:
                self.stats.words_uncorrectable += 1
                uncorrectable += 1
            else:                                   # silent corruption
                self.stats.words_silent += 1
                if corrupted is None:
                    corrupted = bytearray(data)
                for bit in bits:
                    corrupted[bit // 8] ^= 1 << (bit % 8)
        if uncorrectable:
            raise UncorrectableEccError(addr, uncorrectable)
        return bytes(corrupted) if corrupted is not None else data

    def drain_correction_cost(self) -> Tuple[ExecResult, int]:
        """Cost of ECC corrections since the last drain (for the ledger)."""
        n = self._pending_corrections
        self._pending_corrections = 0
        return self.ecc.correction_cost(n), n

    def queue_correction(self, n: int = 1) -> None:
        """Queue ``n`` correct-and-writeback events for the next drain.

        Used by the datapath ECC layer and the patrol scrubber, whose
        corrections ride the same ledger plumbing as the per-read model's.
        """
        self._pending_corrections += n

    # -- latent cell flips (the accelerator datapath / scrub model) ----------

    @property
    def latent_word_count(self) -> int:
        """Words currently carrying at least one latent cell flip."""
        return len(self._latent)

    def plant_latent_flips(self, addr: int, bits: Sequence[int]) -> int:
        """Plant cell flips in the 64-bit codeword containing ``addr``.

        ``bits`` are bit offsets (0..63) within that codeword. Returns
        the word's 8-byte-aligned physical address. Test hook: lets a
        fault battery construct exact single/double/triple-bit words.
        """
        word = addr & ~(ECC_WORD_BITS // 8 - 1)
        mask = self._latent.get(word, 0)
        for bit in bits:
            if not 0 <= bit < ECC_WORD_BITS:
                raise ValueError(f"bit offset {bit} outside the codeword")
            mask |= 1 << bit
        if mask:
            self._latent[word] = mask
            self.stats.latent_flips_deposited += len(bits)
            if self.on_latent_change is not None:
                self.on_latent_change()
        return word

    def deposit_latent_flips(
            self, regions: Sequence[Tuple[int, int]],
            factors: Optional[Sequence[float]] = None,
            cap: float = 1.0,
            vault_of: Optional[Callable[[int], int]] = None) -> int:
        """One accelerated step's worth of new latent cell flips.

        Draws ``Binomial(total backed bits, latent_flip_rate)`` upset
        positions uniformly over the given ``(start, size)`` regions and
        ORs them into the latent map (an upset pins the cell to a wrong
        value; a second hit on the same cell changes nothing). Returns
        the number of flips deposited. Consumes the dedicated latent
        PRNG identically regardless of scrub or read activity.

        Thermal coupling (``factors`` given) uses *thinning*: candidates
        are drawn at the capped rate ``latent_flip_rate * cap``, and a
        candidate landing on byte ``b`` is accepted iff its paired
        uniform ``u`` satisfies ``u * cap < factors[vault_of(b)]`` — so
        a vault with Arrhenius factor ``f`` sees flips at exactly
        ``rate * f`` while the seeded candidate stream stays identical
        across envelope and throttle policies. Hotter vaults accept a
        pointwise *superset* of a cooler run's flips: cross-run
        monotonicity holds by construction, not by luck. When
        ``factors`` is ``None`` the legacy single-rate path runs,
        consuming the PRNG byte-identically to earlier releases (the
        golden-baseline guarantee).
        """
        rate = self.config.latent_flip_rate
        if rate <= 0.0 or not regions:
            return 0
        total_bits = sum(size for _, size in regions) * 8
        if total_bits <= 0:
            return 0
        if factors is None:
            k = int(self._latent_rng.binomial(total_bits, rate))
            if k == 0:
                return 0
            k = min(k, total_bits)
            positions = self._latent_rng.choice(total_bits, size=k,
                                                replace=False)
            uniforms = None
        else:
            k = int(self._latent_rng.binomial(
                total_bits, min(rate * cap, 1.0)))
            if k == 0:
                return 0
            k = min(k, total_bits)
            positions = self._latent_rng.choice(total_bits, size=k,
                                                replace=False)
            uniforms = self._latent_rng.random(k)
        word_mask = ECC_WORD_BITS // 8 - 1
        deposited = 0
        for i, pos in enumerate(sorted(int(p) for p in positions)):
            rest = pos
            for start, size in regions:
                if rest >= size * 8:
                    rest -= size * 8
                    continue
                byte = start + rest // 8
                vault = vault_of(byte) if vault_of is not None else None
                if uniforms is not None:
                    factor = (factors[vault] if vault is not None
                              else 1.0)
                    if uniforms[i] * cap >= factor:
                        break                       # thinned away
                word = byte & ~word_mask
                bit = (byte - word) * 8 + rest % 8
                self._latent[word] = self._latent.get(word, 0) \
                    | (1 << bit)
                deposited += 1
                if vault is not None:
                    self.latent_deposits_by_vault[vault] = (
                        self.latent_deposits_by_vault.get(vault, 0) + 1)
                break
        self.stats.latent_flips_deposited += deposited
        if deposited and self.on_latent_change is not None:
            self.on_latent_change()
        return deposited

    def latent_words(self, ranges: Sequence[Tuple[int, int]]
                     ) -> List[Tuple[int, int]]:
        """``(word, mask)`` latent entries overlapping any ``(start,
        size)`` byte range, in ascending word order.

        The overlap query is vectorized: one integer comparison per
        (word, range) pair over a numpy view of the latent map instead
        of a nested Python loop — exact, order-preserving, and pinned
        against the scalar walk by ``tests/faults/test_injector.py``.
        """
        if not self._latent or not ranges:
            return []
        word_bytes = ECC_WORD_BITS // 8
        words = np.fromiter(self._latent.keys(), dtype=np.int64,
                            count=len(self._latent))
        hit = np.zeros(words.size, dtype=bool)
        for start, size in ranges:
            hit |= (words + word_bytes > start) & (words < start + size)
        out = sorted(int(w) for w in words[hit])
        return [(w, self._latent[w]) for w in out]

    def all_latent_words(self) -> List[Tuple[int, int]]:
        """Every latent ``(word, mask)`` entry, ascending (for patrol)."""
        return sorted(self._latent.items())

    def clear_latent_word(self, word: int) -> None:
        """Drop a word's latent flips (corrected, repaired, or
        overwritten by a re-encoding write)."""
        self._latent.pop(word, None)

    # -- command path (ConfigurationUnit hooks) ------------------------------

    def corrupt_descriptor(self, raw: bytes) -> bytes:
        """Maybe corrupt one aligned 32-bit word of a fetched descriptor."""
        rate = self.config.descriptor_corruption_rate
        if rate <= 0.0 or len(raw) < 4:
            return raw
        if self._rng.random() >= rate:
            return raw
        idx = int(self._rng.integers(len(raw) // 4))
        old = raw[idx * 4:idx * 4 + 4]
        new = old
        while new == old:
            new = self._rng.bytes(4)
        self.stats.descriptor_corruptions += 1
        return raw[:idx * 4] + new + raw[idx * 4 + 4:]

    def sample_hang(self) -> bool:
        """Does this doorbell ring hang the configuration unit?"""
        if self.config.hang_rate <= 0.0:
            return False
        if self._rng.random() < self.config.hang_rate:
            self.stats.cu_hangs += 1
            return True
        return False

    def sample_tile_failure(self) -> Optional[int]:
        """Index of a tile (0-based draw) to hard-fail, or None."""
        if self.config.tile_fail_rate <= 0.0:
            return None
        if self._rng.random() < self.config.tile_fail_rate:
            self.stats.tile_failures += 1
            return int(self._rng.integers(1 << 30))
        return None

    def sample_link_failure(self) -> Optional[int]:
        """Draw for a mesh link to hard-fail this execution, or None.

        The caller maps the draw onto its list of currently healthy
        links (the injector is pure policy and owns no topology)."""
        if self.config.link_fail_rate <= 0.0:
            return None
        if self._rng.random() < self.config.link_fail_rate:
            self.stats.link_failures += 1
            return int(self._rng.integers(1 << 30))
        return None

    def sample_link_flap(self) -> Optional[int]:
        """Draw for a mesh link that is down for this execution only."""
        if self.config.link_flap_rate <= 0.0:
            return None
        if self._rng.random() < self.config.link_flap_rate:
            self.stats.link_flaps += 1
            return int(self._rng.integers(1 << 30))
        return None
