"""Background patrol scrubbing of latent DRAM cell flips.

Latent single-bit upsets are harmless on their own — SECDED corrects
them the moment anything reads the word. The danger is *pairing*: two
singles accumulating in the same 64-bit codeword become a detected-but-
uncorrectable double. A patrol scrubber bounds the window in which a
single can sit unread: every ``interval`` accelerated steps it walks
backed physical memory, re-encoding every word through the SECDED
pipeline — singles are corrected and written back, doubles are repaired
from the host's coherent copy (counted, but off the demand path, so
they never abort a step), and triple-plus words alias silently into the
backing store just as they would on a demand read.

The walk is priced like hardware patrol: streaming every *backed* byte
through the vault controllers at ``bandwidth`` with a per-byte patrol
energy, plus the usual correct-and-writeback cost per repaired word.
The runtime charges it to the ledger's ``scrub`` category — background
maintenance, deliberately separate from the ``fault`` category that
prices demand-path adjudication.

``interval=0`` disables patrol entirely: :meth:`PatrolScrubber.tick`
never fires, no ledger entries appear, and the run is bit-identical to
one without a scrubber — the golden-baseline guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from repro.faults.ecc import (OUTCOME_CORRECTED, OUTCOME_DETECTED,
                              SecdedModel, popcount)
from repro.faults.injector import FaultInjector
from repro.memmgmt.physmem import PhysicalMemory
from repro.metrics import ExecResult, ZERO


@dataclass(frozen=True)
class ScrubConfig:
    """Patrol-scrub policy and cost constants.

    Attributes:
        interval: accelerated steps between patrol passes; 0 disables.
        bandwidth: patrol streaming bandwidth over backed memory, B/s.
        e_patrol_per_byte: patrol read-verify energy per byte, J.
    """

    interval: int = 0
    bandwidth: float = 12.8e9
    e_patrol_per_byte: float = 6e-12

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")
        if self.bandwidth <= 0.0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")


@dataclass
class ScrubStats:
    """What patrol passes found and fixed (off the demand path)."""

    passes: int = 0
    bytes_scanned: int = 0
    words_corrected: int = 0        # latent singles drained
    words_repaired: int = 0         # at-rest doubles, host-repaired
    words_silent: int = 0           # triple-plus, aliased into cells

    def clear(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


class PatrolScrubber:
    """Walks backed physical memory between steps, draining latent flips."""

    def __init__(self, injector: FaultInjector, phys: PhysicalMemory,
                 config: Optional[ScrubConfig] = None,
                 ecc: Optional[SecdedModel] = None):
        self.injector = injector
        self.phys = phys
        self.config = config if config is not None else ScrubConfig()
        self.ecc = ecc if ecc is not None else injector.ecc
        self.stats = ScrubStats()
        self._steps_since_scrub = 0

    def tick(self) -> Optional[ExecResult]:
        """Account one completed accelerated step; patrol when due.

        Returns the pass's cost when a patrol ran, else ``None``.
        """
        if self.config.interval <= 0:
            return None
        self._steps_since_scrub += 1
        if self._steps_since_scrub < self.config.interval:
            return None
        self._steps_since_scrub = 0
        return self.scrub()

    def scrub(self) -> ExecResult:
        """One full patrol pass over backed physical memory."""
        inj = self.injector
        ecc_on = inj.config.ecc_enabled
        corrections = 0
        for word, mask in inj.all_latent_words():
            outcome = (self.ecc.classify(popcount(mask)) if ecc_on
                       else None)
            if outcome == OUTCOME_CORRECTED:
                self.stats.words_corrected += 1
                corrections += 1
            elif outcome == OUTCOME_DETECTED:
                # at-rest double: repaired from the host's coherent copy
                # (one writeback), never surfaces on the demand path
                self.stats.words_repaired += 1
                corrections += 1
            else:
                # ECC off, or >= 3 flips aliasing to a valid codeword:
                # the patrol write-back pins the corruption into the cells
                self.stats.words_silent += 1
                self.phys.apply_flips(word, mask)
            inj.clear_latent_word(word)
        self.stats.passes += 1
        scanned = sum(size for _, size in self.phys.regions())
        self.stats.bytes_scanned += scanned
        cost = ExecResult(time=scanned / self.config.bandwidth,
                          energy=scanned * self.config.e_patrol_per_byte)
        if corrections:
            cost = cost.plus(self.ecc.correction_cost(corrections))
        return cost if scanned or corrections else ZERO
