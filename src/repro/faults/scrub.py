"""Background patrol scrubbing of latent DRAM cell flips.

Latent single-bit upsets are harmless on their own — SECDED corrects
them the moment anything reads the word. The danger is *pairing*: two
singles accumulating in the same 64-bit codeword become a detected-but-
uncorrectable double. A patrol scrubber bounds the window in which a
single can sit unread: every ``interval`` accelerated steps it walks
backed physical memory, re-encoding every word through the SECDED
pipeline — singles are corrected and written back, doubles are repaired
from the host's coherent copy (counted, but off the demand path, so
they never abort a step), and triple-plus words alias silently into the
backing store just as they would on a demand read.

The walk is priced like hardware patrol: streaming every *backed* byte
through the vault controllers at ``bandwidth`` with a per-byte patrol
energy, plus the usual correct-and-writeback cost per repaired word.
The runtime charges it to the ledger's ``scrub`` category — background
maintenance, deliberately separate from the ``fault`` category that
prices demand-path adjudication.

``interval=0`` disables patrol entirely: :meth:`PatrolScrubber.tick`
never fires, no ledger entries appear, and the run is bit-identical to
one without a scrubber — the golden-baseline guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.faults.ecc import (OUTCOME_CORRECTED, OUTCOME_DETECTED,
                              SecdedModel, popcount)
from repro.faults.injector import FaultInjector
from repro.memmgmt.physmem import PhysicalMemory
from repro.memsys.address import AddressMapping
from repro.metrics import ExecResult, ZERO


@dataclass(frozen=True)
class ScrubConfig:
    """Patrol-scrub policy and cost constants.

    Attributes:
        interval: accelerated steps between patrol passes; 0 disables.
        bandwidth: patrol streaming bandwidth over backed memory, B/s.
        e_patrol_per_byte: patrol read-verify energy per byte, J.
    """

    interval: int = 0
    bandwidth: float = 12.8e9
    e_patrol_per_byte: float = 6e-12

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")
        if self.bandwidth <= 0.0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")


@dataclass
class ScrubStats:
    """What patrol passes found and fixed (off the demand path)."""

    passes: int = 0
    bytes_scanned: int = 0
    words_corrected: int = 0        # latent singles drained
    words_repaired: int = 0         # at-rest doubles, host-repaired
    words_silent: int = 0           # triple-plus, aliased into cells

    def clear(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


class PatrolScrubber:
    """Walks backed physical memory between steps, draining latent flips."""

    def __init__(self, injector: FaultInjector, phys: PhysicalMemory,
                 config: Optional[ScrubConfig] = None,
                 ecc: Optional[SecdedModel] = None,
                 mapping: Optional[AddressMapping] = None):
        self.injector = injector
        self.phys = phys
        self.config = config if config is not None else ScrubConfig()
        self.ecc = ecc if ecc is not None else injector.ecc
        self.mapping = mapping
        self.stats = ScrubStats()
        self._steps_since_scrub = 0
        # Fired after a patrol pass that drained (or aliased) at least
        # one latent word — memory state changed behind the schedule
        # cache's back, so it hangs its scrub-epoch invalidation here.
        self.on_repair: Optional[Callable[[], None]] = None
        #: vault -> joules of the most recent patrol pass (the thermal
        #: model's heat feed). Patrol-stream energy lands on the vault
        #: whose stripe was walked and correction energy on the vault
        #: holding the corrected word — never smeared globally. Empty
        #: until a pass runs, or when no address mapping is attached.
        self.last_vault_energy: Dict[int, float] = {}

    def tick(self) -> Optional[ExecResult]:
        """Account one completed accelerated step; patrol when due.

        Returns the pass's cost when a patrol ran, else ``None``.
        """
        if self.config.interval <= 0:
            return None
        self._steps_since_scrub += 1
        if self._steps_since_scrub < self.config.interval:
            return None
        self._steps_since_scrub = 0
        return self.scrub()

    def scrub(self) -> ExecResult:
        """One full patrol pass over backed physical memory."""
        inj = self.injector
        ecc_on = inj.config.ecc_enabled
        corrections = 0
        drained = 0
        corr_by_vault: Dict[int, int] = {}
        for word, mask in inj.all_latent_words():
            drained += 1
            outcome = (self.ecc.classify(popcount(mask)) if ecc_on
                       else None)
            if outcome == OUTCOME_CORRECTED:
                self.stats.words_corrected += 1
                corrections += 1
            elif outcome == OUTCOME_DETECTED:
                # at-rest double: repaired from the host's coherent copy
                # (one writeback), never surfaces on the demand path
                self.stats.words_repaired += 1
                corrections += 1
            else:
                # ECC off, or >= 3 flips aliasing to a valid codeword:
                # the patrol write-back pins the corruption into the cells
                self.stats.words_silent += 1
                self.phys.apply_flips(word, mask)
            if outcome in (OUTCOME_CORRECTED, OUTCOME_DETECTED) \
                    and self.mapping is not None:
                v = self.mapping.unit_of(word)
                corr_by_vault[v] = corr_by_vault.get(v, 0) + 1
            inj.clear_latent_word(word)
        if drained and self.on_repair is not None:
            self.on_repair()
        self.stats.passes += 1
        regions = self.phys.regions()
        scanned = sum(size for _, size in regions)
        self.stats.bytes_scanned += scanned
        if self.mapping is not None:
            per_corr = self.ecc.correction_cost(1).energy
            e_byte = self.config.e_patrol_per_byte
            self.last_vault_energy = {
                v: b * e_byte + corr_by_vault.get(v, 0) * per_corr
                for v, b in self._vault_bytes(regions).items()}
        cost = ExecResult(time=scanned / self.config.bandwidth,
                          energy=scanned * self.config.e_patrol_per_byte)
        if corrections:
            cost = cost.plus(self.ecc.correction_cost(corrections))
        return cost if scanned or corrections else ZERO

    def _vault_bytes(self, regions: Sequence[Tuple[int, int]]
                     ) -> Dict[int, int]:
        """Patrol bytes per vault over the given ``(start, size)`` regions.

        The interleave's XOR-fold vault permutation is a bijection
        within every aligned cycle of ``units * interleave_bytes``
        bytes, so each vault owns exactly ``interleave_bytes`` of every
        full cycle; only the unaligned head and tail need per-block
        :meth:`~repro.memsys.address.AddressMapping.unit_of` calls.
        """
        m = self.mapping
        assert m is not None
        interleave = m.interleave_bytes
        cycle = m.units * interleave
        out: Dict[int, int] = dict.fromkeys(range(m.units), 0)

        def walk_blocks(addr: int, stop: int) -> None:
            while addr < stop:
                block_end = min(stop, (addr // interleave + 1) * interleave)
                out[m.unit_of(addr)] += block_end - addr
                addr = block_end

        for start, size in regions:
            end = start + size
            head_end = min(end, -(-start // cycle) * cycle)
            walk_blocks(start, head_end)
            if end > head_end:
                full = (end - head_end) // cycle
                if full:
                    for v in out:
                        out[v] += full * interleave
                walk_blocks(head_end + full * cycle, end)
        return out
