"""Design-space exploration for the FFT and SPMV accelerators (Fig 11).

Sweeps accelerator clock, deployed tile count, DRAM row-buffer size and
(for FFT) streaming block size; every point is evaluated with the same
cycle-level machinery as the headline results, yielding a
performance-vs-power cloud whose iso-efficiency spread reproduces the
paper's observation: FFT spans tens of GFLOPS/W while SPMV stays below
2 GFLOPS/W no matter the design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.accel.fft import FftAccelerator, FftParams
from repro.accel.noc import MeshNoc
from repro.accel.spmv import SpmvAccelerator, SpmvParams
from repro.memsys.dram3d import StackedDram
from repro.memsys.timing import HMC_VAULT
from repro.mkl.sparse import random_geometric_graph

#: The paper's frequency sweep.
FREQUENCIES_HZ = (0.8e9, 1.2e9, 1.6e9, 2.0e9)

DEFAULT_TILE_COUNTS = (4, 8, 16)
DEFAULT_ROW_BYTES = (1024, 2048, 4096)
DEFAULT_FFT_BLOCKS = (64, 256)
#: Datapath-width multiplier ("number of accelerator cores" per tile).
DEFAULT_CORE_MULTS = (1, 4)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    accelerator: str
    freq_hz: float
    tiles: int
    row_bytes: int
    block_elems: int
    gflops: float
    power_w: float
    core_mult: int = 1

    @property
    def gflops_per_watt(self) -> float:
        return self.gflops / self.power_w if self.power_w > 0 else 0.0


def _stack(row_bytes: int) -> StackedDram:
    return StackedDram(timing=HMC_VAULT.with_row_bytes(row_bytes))


def explore_fft(n: int = 2048, batch: int = 32,
                frequencies: Sequence[float] = FREQUENCIES_HZ,
                tile_counts: Sequence[int] = DEFAULT_TILE_COUNTS,
                row_bytes_options: Sequence[int] = DEFAULT_ROW_BYTES,
                block_options: Sequence[int] = DEFAULT_FFT_BLOCKS,
                core_mults: Sequence[int] = DEFAULT_CORE_MULTS,
                ) -> List[DesignPoint]:
    """Evaluate the FFT accelerator design space."""
    from repro.accel.synthesis import LogicBlock
    points = []
    params = FftParams(n=n, batch=batch, src_pa=0,
                       dst_pa=n * batch * 8)
    base_logic = FftAccelerator.logic
    for row_bytes in row_bytes_options:
        device = _stack(row_bytes)
        for block in block_options:
            for freq in frequencies:
                for tiles in tile_counts:
                    for mult in core_mults:
                        core = FftAccelerator(block_elems=block,
                                              tiles=tiles, freq_hz=freq)
                        core.logic = LogicBlock(
                            fpus=base_logic.fpus * mult,
                            sram_kb=base_logic.sram_kb,
                            extra_area=base_logic.extra_area * mult,
                            extra_pw_per_ghz=(
                                base_logic.extra_pw_per_ghz * mult))
                        execution = core.model(device, params)
                        prof = core.profile(params)
                        points.append(DesignPoint(
                            accelerator="FFT", freq_hz=freq,
                            tiles=tiles, row_bytes=row_bytes,
                            block_elems=block, core_mult=mult,
                            gflops=(prof.flops
                                    / execution.result.time / 1e9),
                            power_w=execution.result.power))
    return points


def explore_spmv(n: int = 1 << 14, seed: int = 11,
                 frequencies: Sequence[float] = FREQUENCIES_HZ,
                 tile_counts: Sequence[int] = DEFAULT_TILE_COUNTS,
                 row_bytes_options: Sequence[int] = DEFAULT_ROW_BYTES,
                 ) -> List[DesignPoint]:
    """Evaluate the SPMV accelerator design space."""
    matrix = random_geometric_graph(n, seed=seed)
    base = 0
    params = SpmvParams(
        rows=matrix.rows, cols=matrix.shape[1], nnz=matrix.nnz,
        indptr_pa=base, indices_pa=base + (matrix.rows + 1) * 8,
        data_pa=base + (matrix.rows + 1) * 8 + matrix.nnz * 8,
        x_pa=base + (matrix.rows + 1) * 8 + matrix.nnz * 12,
        y_pa=base + (matrix.rows + 1) * 8 + matrix.nnz * 12
        + matrix.shape[1] * 4)
    from repro.accel.synthesis import LogicBlock
    base_logic = SpmvAccelerator.logic
    points = []
    for row_bytes in row_bytes_options:
        device = _stack(row_bytes)
        for freq in frequencies:
            for tiles in tile_counts:
                for mult in DEFAULT_CORE_MULTS:
                    core = SpmvAccelerator(tiles=tiles, freq_hz=freq)
                    core.logic = LogicBlock(
                        fpus=base_logic.fpus * mult,
                        sram_kb=base_logic.sram_kb,
                        has_gather_engine=True,
                        extra_pw_per_ghz=0.02 * (mult - 1))
                    execution = core.model(device, params)
                    prof = core.profile(params)
                    points.append(DesignPoint(
                        accelerator="SPMV", freq_hz=freq, tiles=tiles,
                        row_bytes=row_bytes, block_elems=0,
                        core_mult=mult,
                        gflops=prof.flops / execution.result.time / 1e9,
                        power_w=execution.result.power))
    return points


def efficiency_range(points: Sequence[DesignPoint]) -> tuple:
    """(min, max) GFLOPS/W over a design-space cloud."""
    effs = [p.gflops_per_watt for p in points]
    return (min(effs), max(effs)) if effs else (0.0, 0.0)
