"""One accelerator tile: PEs + local memory + network controller.

Each tile sits under one vault controller (Figure 4). The tile holds the
switch state the configuration unit programs: which PE (accelerator) is
active and how its input/output ports are wired — to DRAM, or to another
accelerator in the same pass (chaining through local memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Port wiring targets the switch supports.
PORT_DRAM = "dram"
PORT_CHAIN = "chain"


class TileFailedError(Exception):
    """No accelerator tile can serve the descriptor: every tile is
    dead, or link failures cut the survivors off from a vault whose
    stripe they would have to serve. A *single* dead tile no longer
    raises — its vault stripe is rerouted to the healthy tiles."""


@dataclass
class SwitchConfig:
    """Input/output wiring of the active PE in a tile."""

    input_port: str = PORT_DRAM
    output_port: str = PORT_DRAM

    def __post_init__(self) -> None:
        for port in (self.input_port, self.output_port):
            if port not in (PORT_DRAM, PORT_CHAIN):
                raise ValueError(f"unknown switch port {port!r}")


@dataclass
class Tile:
    """A vault-attached accelerator tile.

    Attributes:
        vault: index of the vault this tile is bonded to.
        local_memory_kb: shared LM capacity of the tile.
        active_pe: name of the accelerator currently enabled (or None).
        switch: current port wiring.
        failed: the tile's logic is dead; it can no longer be
            configured. Its vault's DRAM (and mesh router) stay alive,
            so the vault's data stripe is served by the remaining
            healthy tiles over TSV + mesh instead of taking the whole
            accelerated path down.
    """

    vault: int
    local_memory_kb: int = 64
    active_pe: Optional[str] = None
    switch: SwitchConfig = field(default_factory=SwitchConfig)
    failed: bool = False

    def configure(self, pe_name: str, input_port: str = PORT_DRAM,
                  output_port: str = PORT_DRAM) -> None:
        """Program the tile for one pass (done by the decode unit)."""
        if self.failed:
            raise TileFailedError(
                f"tile on vault {self.vault} is marked failed")
        self.active_pe = pe_name
        self.switch = SwitchConfig(input_port=input_port,
                                   output_port=output_port)

    def mark_failed(self) -> None:
        """Hard-fail the tile (injected or detected by self-test)."""
        self.failed = True
        self.active_pe = None
        self.switch = SwitchConfig()

    def repair(self) -> None:
        """Return a failed tile to service.

        Used by the thermal governor when a vault it took offline cools
        back below its release threshold; an injected hard failure is
        never repaired (the injector does not call this).
        """
        self.failed = False

    def release(self) -> None:
        """Return the tile to idle at the end of a pass."""
        self.active_pe = None
        self.switch = SwitchConfig()

    @property
    def busy(self) -> bool:
        return self.active_pe is not None


def make_tiles(count: int = 16, local_memory_kb: int = 64
               ) -> Dict[int, Tile]:
    """The standard one-tile-per-vault arrangement."""
    return {v: Tile(vault=v, local_memory_kb=local_memory_kb)
            for v in range(count)}
