"""Accelerator base machinery: functional execution + timing model.

Every accelerator in Table 1 derives from :class:`AcceleratorCore` and
supplies three views of itself:

* ``run`` — functional execution against the unified address space
  (physical addressing, numpy views over the very bytes the CPU sees);
* ``profile``/``streams`` — the machine-independent op profile and the
  concrete DRAM access streams, which the shared :meth:`model` turns
  into time and energy on whichever memory device the platform has
  (processor-side DDR for PSAS, 2D DRAM for MSAS, the 3D stack for
  MEALib);
* a synthesised :class:`~repro.accel.synthesis.LogicBlock` per tile.

The timing model is the paper's: an accelerator is either bandwidth-bound
(time from the cycle-level DRAM simulation) or compute-bound (time from
its lane count and clock), and its energy is DRAM energy + logic power,
with lane activity derated when the memory system is the bottleneck.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import ClassVar, List, Mapping, Optional, Tuple, Type

from repro.accel.synthesis import LogicBlock, noc_power
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memsys.device import MemoryDevice
from repro.memsys.result import MemResult
from repro.memsys.trace import StreamSpec, simulate_streams
from repro.metrics import ExecResult
from repro.mkl.profiles import OpProfile

#: Tiles on the accelerator layer: one per vault.
DEFAULT_TILES = 16

#: Default accelerator clock (the middle of the Fig 11 sweep).
DEFAULT_FREQ_HZ = 1.6e9

#: Achieved fraction of peak lane throughput (pipeline fill, edges).
LANE_EFFICIENCY = 0.75

#: Flops per lane per cycle (fused multiply-add).
FLOPS_PER_LANE_CYCLE = 2.0


@dataclass(frozen=True)
class AccelExecution:
    """Outcome of modelling one accelerator invocation."""

    result: ExecResult
    mem: MemResult
    t_compute: float
    freq_hz: float

    @property
    def memory_bound(self) -> bool:
        return self.mem.time >= self.t_compute


class AcceleratorCore(ABC):
    """One fixed-function accelerator (an entry of Table 1)."""

    #: Accelerator name; matches the OpProfile name and the TDL opcode.
    name: ClassVar[str]
    #: Numeric opcode used in the descriptor Instruction Region.
    opcode: ClassVar[int]
    #: Per-tile synthesised logic.
    logic: ClassVar[LogicBlock]
    #: Parameter dataclass (must provide pack()/unpack()).
    params_type: ClassVar[Type]
    #: Flops per lane per cycle. 2 (an FMA) by default; datapaths built
    #: from larger fused units override it — an FFT butterfly unit
    #: retires 10 flops/cycle, a spline pipeline stage ~5.
    lane_flops: ClassVar[float] = FLOPS_PER_LANE_CYCLE

    def __init__(self, tiles: int = DEFAULT_TILES,
                 freq_hz: float = DEFAULT_FREQ_HZ):
        if tiles <= 0:
            raise ValueError("tile count must be positive")
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        self.tiles = tiles
        self.freq_hz = freq_hz

    # -- functional side -----------------------------------------------------

    @abstractmethod
    def run(self, space: UnifiedAddressSpace, params) -> None:
        """Execute the operation on physical memory (numerically)."""

    # -- modelling side --------------------------------------------------------

    @abstractmethod
    def profile(self, params) -> OpProfile:
        """Machine-independent characterisation of this invocation."""

    @abstractmethod
    def streams(self, params) -> List[StreamSpec]:
        """Concrete DRAM access streams of this invocation."""

    def compute_rate(self, freq_hz: Optional[float] = None,
                     tiles: Optional[int] = None) -> float:
        """Peak-achievable flops/second of the deployed lanes."""
        freq = freq_hz if freq_hz is not None else self.freq_hz
        n_tiles = tiles if tiles is not None else self.tiles
        return (n_tiles * self.logic.fpus * self.lane_flops
                * LANE_EFFICIENCY * freq)

    def logic_power(self, freq_hz: Optional[float] = None,
                    activity: float = 1.0,
                    tiles: Optional[int] = None) -> float:
        freq = freq_hz if freq_hz is not None else self.freq_hz
        n_tiles = tiles if tiles is not None else self.tiles
        return n_tiles * self.logic.power(freq, activity)

    def area_mm2(self, tiles: Optional[int] = None) -> float:
        n_tiles = tiles if tiles is not None else self.tiles
        return n_tiles * self.logic.area_mm2

    def model(self, device: MemoryDevice, params,
              freq_hz: Optional[float] = None,
              tiles: Optional[int] = None) -> AccelExecution:
        """Time/energy of one invocation on ``device``.

        The memory side comes from the cycle-level DRAM simulation of
        this invocation's streams; the compute side from the deployed
        lanes. Whichever is slower sets the time. Energy adds DRAM
        energy (extended by static power if compute-bound), activity-
        derated logic power, and the mesh NoC.
        """
        freq = freq_hz if freq_hz is not None else self.freq_hz
        n_tiles = tiles if tiles is not None else self.tiles
        prof = self.profile(params)
        mem = simulate_streams(device, self.streams(params))
        # A tile only drives its own vault's TSV bus: deploying fewer
        # tiles than the device has vaults proportionally limits the
        # reachable bandwidth (a Fig 11 design-space axis).
        if n_tiles < device.units:
            stretched = mem.time * device.units / n_tiles
            mem = MemResult(
                time=stretched,
                energy=mem.energy + device.static_power()
                * (stretched - mem.time),
                bytes_moved=mem.bytes_moved)
        rate = self.compute_rate(freq, tiles)
        t_compute = prof.flops / rate if prof.flops else 0.0
        time = max(mem.time, t_compute, 1e-12)
        dram_energy = mem.energy
        if time > mem.time:
            dram_energy += device.static_power() * (time - mem.time)
        # lanes clock (and burn) even when bandwidth-starved: these
        # simple cores have no clock gating, so activity stays high
        activity = min(1.0, t_compute / time) if time else 0.0
        logic = self.logic_power(freq, activity=max(activity, 0.8),
                                 tiles=tiles)
        energy = dram_energy + (logic + noc_power()) * time
        return AccelExecution(
            result=ExecResult(time=time, energy=energy),
            mem=mem, t_compute=t_compute, freq_hz=freq)

    # -- datapath footprint ---------------------------------------------------

    def operand_spans(self, params, count: int = 1, strides=None,
                      writes: bool = False) -> List[Tuple[int, int]]:
        """Physical ``(start, size)`` byte extents of this invocation's
        DRAM streams in one direction (reads, or writes with
        ``writes=True``).

        This is the operand footprint the in-datapath ECC layer
        (:class:`~repro.faults.datapath.DatapathEcc`) adjudicates before
        the tiles stream the data off the TSVs. For looped COMPs the
        extents are widened over the whole loop: stream bases are affine
        in the address-typed parameters, so the loop's footprint is
        bracketed by the two corner iterations where every field sits at
        its minimum / maximum accumulated offset.
        """
        def span(stream: StreamSpec) -> Tuple[int, int]:
            if stream.kind == "gather":
                return stream.base, stream.region_bytes
            if stream.kind == "blocked":
                blocks = -(-stream.n_elems // stream.block_elems)
                size = ((blocks - 1) * stream.block_stride
                        + stream.block_elems * stream.elem_bytes)
                return stream.base, size
            step = stream.stride or stream.elem_bytes
            reach = (stream.n_elems - 1) * step
            lo = stream.base + min(0, reach)
            return lo, abs(reach) + stream.elem_bytes

        def direction(p) -> List[StreamSpec]:
            return [s for s in self.streams(p)
                    if s.is_write == writes and s.n_elems > 0]

        base_streams = direction(params)
        spans = [span(s) for s in base_streams]
        if strides is None or not spans:
            return spans
        if not isinstance(strides, StrideTable):
            strides = linear_strides(type(params), strides)
        iters = strides.total if strides.trips != (0,) else max(count, 1)
        if iters <= 1:
            return spans
        corners = {"lo": {}, "hi": {}}
        for field, deltas in strides.deltas.items():
            lo_off = hi_off = 0
            for level, delta in enumerate(deltas):
                trip = strides.trips[level] or max(count, 1)
                reach = delta * (trip - 1)
                lo_off += min(0, reach)
                hi_off += max(0, reach)
            if lo_off:
                corners["lo"][field] = getattr(params, field) + lo_off
            if hi_off:
                corners["hi"][field] = getattr(params, field) + hi_off
        for updates in corners.values():
            if not updates:
                continue
            for idx, s in enumerate(direction(replace(params, **updates))):
                start, size = span(s)
                old_start, old_size = spans[idx]
                end = max(old_start + old_size, start + size)
                start = min(old_start, start)
                spans[idx] = (start, end - start)
        return spans

    # -- descriptor plumbing --------------------------------------------------

    def pack_params(self, params) -> bytes:
        return params.pack()

    def unpack_params(self, data: bytes):
        return self.params_type.unpack(data)


# -- LOOP stride tables -------------------------------------------------------
#
# A COMP inside a LOOP block advances its address-typed parameters between
# iterations. The compiler derives the strides from the (possibly nested)
# OpenMP loop bounds, so the table is mixed-radix: ``trips`` lists the
# nest's trip counts outermost-first, and each address field carries one
# signed delta per nest level. A one-level table with trip 0 means "pure
# linear": offset = delta * iteration, with the count supplied by the
# LOOP instruction. The table is packed behind the parameter record in
# the descriptor's Parameter Region.


@dataclass(frozen=True)
class StrideTable:
    """Mixed-radix per-iteration address advance for looped COMPs."""

    trips: tuple
    deltas: Mapping[str, tuple]

    def __post_init__(self) -> None:
        for field_deltas in self.deltas.values():
            if len(field_deltas) != len(self.trips):
                raise ValueError("delta arity must match trip arity")

    @property
    def total(self) -> int:
        out = 1
        for t in self.trips:
            out *= t
        return out

    def offsets(self, iteration: int) -> Mapping[str, int]:
        """Address offsets of loop ``iteration`` (row-major over trips)."""
        if len(self.trips) == 1:
            return {f: d[0] * iteration for f, d in self.deltas.items()}
        digits = []
        rest = iteration
        for trip in reversed(self.trips):
            digits.append(rest % trip)
            rest //= trip
        digits.reverse()
        return {f: sum(d * g for d, g in zip(field_deltas, digits))
                for f, field_deltas in self.deltas.items()}


def linear_strides(params_type: Type,
                   strides: Mapping[str, int]) -> StrideTable:
    """A one-level table: every iteration advances by a fixed delta."""
    for key in strides:
        if key not in params_type.ADDR_FIELDS:
            raise ValueError(f"{key!r} is not an address field of "
                             f"{params_type.__name__}")
    return StrideTable(trips=(0,),
                       deltas={f: (int(strides.get(f, 0)),)
                               for f in params_type.ADDR_FIELDS})


def pack_strides(params_type: Type, strides) -> bytes:
    """Pack a stride table (a mapping means a linear table)."""
    if not isinstance(strides, StrideTable):
        strides = linear_strides(params_type, strides)
    ndims = len(strides.trips)
    out = bytearray(struct.pack("<I", ndims))
    out.extend(struct.pack(f"<{ndims}q", *strides.trips))
    for field in params_type.ADDR_FIELDS:
        deltas = strides.deltas.get(field, (0,) * ndims)
        out.extend(struct.pack(f"<{ndims}q", *deltas))
    return bytes(out)


def unpack_strides(params_type: Type, blob: bytes) -> StrideTable:
    """Inverse of :func:`pack_strides`."""
    (ndims,) = struct.unpack_from("<I", blob, 0)
    pos = 4
    trips = struct.unpack_from(f"<{ndims}q", blob, pos)
    pos += 8 * ndims
    deltas = {}
    for field in params_type.ADDR_FIELDS:
        deltas[field] = struct.unpack_from(f"<{ndims}q", blob, pos)
        pos += 8 * ndims
    return StrideTable(trips=tuple(trips), deltas=deltas)


def shift_params(params, strides, iteration: int):
    """Advance a parameter record to loop ``iteration``."""
    if strides is None or iteration < 0:
        return params
    if not isinstance(strides, StrideTable):
        strides = linear_strides(type(params), strides)
    if iteration == 0:
        return params
    updates = {field: getattr(params, field) + off
               for field, off in strides.offsets(iteration).items() if off}
    return replace(params, **updates) if updates else params
