"""The FFT accelerator (fftwf_execute): batched 1-D complex FFTs.

Modeled after the DRAM-optimised streaming FFT cores the paper cites
(Akin et al., ASAP'14): each tile holds a radix pipeline plus a local
SRAM working set, data arrives in row-buffer-friendly blocks (the reshape
engine provides the blocked layout), and a full batch makes exactly one
read and one write sweep over DRAM.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.accel.base import AcceleratorCore
from repro.accel.synthesis import LogicBlock
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memsys.trace import StreamSpec
from repro.mkl.fftw import FFTW_FORWARD, fft_radix2
from repro.mkl.profiles import COMPLEX, OpProfile, fft_profile

_FORMAT = struct.Struct("<qqqqi")

#: Elements per dense DRAM block (matches the stack's 2 KiB rows).
FFT_BLOCK_ELEMS = 256


@dataclass(frozen=True)
class FftParams:
    """Parameters of one batched-FFT invocation.

    Attributes:
        n: transform length (power of two).
        batch: number of independent transforms.
        src_pa / dst_pa: contiguous complex64 input/output
            (batch x n, row-major).
        sign: FFTW_FORWARD (-1) or FFTW_BACKWARD (+1).
    """

    n: int
    batch: int
    src_pa: int
    dst_pa: int
    sign: int = FFTW_FORWARD

    #: address-typed fields, in stride-table order
    ADDR_FIELDS = ('src_pa', 'dst_pa')
    #: packed byte size of one parameter record
    SIZE = _FORMAT.size

    def pack(self) -> bytes:
        return _FORMAT.pack(self.n, self.batch, self.src_pa, self.dst_pa,
                            self.sign)

    @classmethod
    def unpack(cls, data: bytes) -> "FftParams":
        return cls(*_FORMAT.unpack(data[:_FORMAT.size]))


class FftAccelerator(AcceleratorCore):
    """Streaming radix pipelines, one per tile, batched over vaults."""

    name = "FFT"
    opcode = 6
    logic = LogicBlock(fpus=16, sram_kb=64, extra_area=0.010,
                       extra_pw_per_ghz=0.004)   # twiddle ROM + AGU
    params_type = FftParams
    #: each "lane" is a radix-2 butterfly unit: 10 flops/cycle
    lane_flops = 10.0

    def __init__(self, block_elems: int = FFT_BLOCK_ELEMS, **kwargs):
        super().__init__(**kwargs)
        if block_elems <= 0:
            raise ValueError("block size must be positive")
        self.block_elems = block_elems

    def run(self, space: UnifiedAddressSpace, params: FftParams) -> None:
        src = space.pa_ndarray(params.src_pa, np.complex64,
                               (params.batch, params.n))
        dst = space.pa_ndarray(params.dst_pa, np.complex64,
                               (params.batch, params.n))
        dst[:] = fft_radix2(src, params.sign)

    def profile(self, params: FftParams) -> OpProfile:
        return fft_profile(params.n, params.batch)

    def streams(self, params: FftParams) -> List[StreamSpec]:
        total = params.n * params.batch
        block = min(self.block_elems, params.n)
        stride = block * COMPLEX
        return [
            StreamSpec(base=params.src_pa, n_elems=total,
                       elem_bytes=COMPLEX, kind="blocked",
                       block_elems=block, block_stride=stride),
            StreamSpec(base=params.dst_pa, n_elems=total,
                       elem_bytes=COMPLEX, kind="blocked",
                       block_elems=block, block_stride=stride,
                       is_write=True),
        ]
