"""The assembled accelerator layer.

Bundles one instance of every Table 1 accelerator, the 4x4 mesh NoC, and
the per-vault tiles; provides the registry the configuration unit
dispatches on and the area/power accounting behind Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.accel.axpy import AxpyAccelerator
from repro.accel.base import AcceleratorCore, DEFAULT_FREQ_HZ, DEFAULT_TILES
from repro.accel.dot import DotAccelerator
from repro.accel.fft import FftAccelerator
from repro.accel.gemv import GemvAccelerator
from repro.accel.noc import MeshNoc, NocUnreachableError
from repro.accel.reshp import ReshpAccelerator
from repro.accel.resmp import ResmpAccelerator
from repro.accel.spmv import SpmvAccelerator
from repro.accel.synthesis import AREA_TSV_ARRAY, LAYER_AREA_BUDGET_MM2
from repro.accel.tile import Tile, make_tiles

ACCELERATOR_TYPES = (
    AxpyAccelerator, DotAccelerator, GemvAccelerator, SpmvAccelerator,
    ResmpAccelerator, FftAccelerator, ReshpAccelerator,
)


@dataclass(frozen=True)
class ComponentBudget:
    """One row of Table 5."""

    component: str
    power_w: Optional[float]
    area_mm2: Optional[float]

    def area_fraction(self) -> Optional[float]:
        if self.area_mm2 is None:
            return None
        return self.area_mm2 / LAYER_AREA_BUDGET_MM2


class AcceleratorLayer:
    """All deployed accelerators plus tiles and NoC."""

    def __init__(self, tiles: int = DEFAULT_TILES,
                 freq_hz: float = DEFAULT_FREQ_HZ):
        self.freq_hz = freq_hz
        self.noc = MeshNoc()
        self.tiles: Dict[int, Tile] = make_tiles(tiles)
        self.accelerators: Dict[str, AcceleratorCore] = {}
        # Optional ThermalModel (repro.thermal.rc). When attached, the
        # reroute-target choice prefers the coolest serving tile among
        # the minimal-distance candidates; None (the default) keeps the
        # purely topological choice — the golden-baseline guarantee.
        self.thermal: Optional[object] = None
        # Fired whenever a tile's health actually transitions (fail or
        # repair). The schedule cache hangs its health-epoch
        # invalidation off this hook.
        self.on_health_change: Optional[Callable[[], None]] = None
        for accel_type in ACCELERATOR_TYPES:
            core = accel_type(tiles=tiles, freq_hz=freq_hz)
            self.accelerators[core.name] = core

    # -- tile health ----------------------------------------------------------

    def mark_tile_failed(self, vault: int) -> None:
        """Hard-fail the tile bonded to ``vault``."""
        tile = self.tiles[vault]
        changed = not tile.failed
        tile.mark_failed()
        if changed and self.on_health_change is not None:
            self.on_health_change()

    def repair_tile(self, vault: int) -> None:
        """Return a failed tile to service (thermal recovery)."""
        tile = self.tiles[vault]
        changed = tile.failed
        tile.repair()
        if changed and self.on_health_change is not None:
            self.on_health_change()

    def failed_tiles(self) -> List[int]:
        """Vault indices whose tiles are marked failed, ascending."""
        return sorted(v for v, t in self.tiles.items() if t.failed)

    @property
    def healthy(self) -> bool:
        """True when every tile can still be configured."""
        return not any(t.failed for t in self.tiles.values())

    @property
    def degraded(self) -> bool:
        """True when a tile is dead or a mesh link is failed — the
        layer still runs, but in the partial-degradation regime."""
        return not self.healthy or self.noc.degraded

    def serving_tiles(self) -> List[int]:
        """Tiles that can take part in an accelerated pass: healthy
        tiles inside the largest mesh-connected group of healthy tiles
        (routers of dead tiles still forward traffic, so only *link*
        failures can split the group). Ascending vault order."""
        healthy = sorted(v for v, t in self.tiles.items() if not t.failed)
        if not healthy or not self.noc.degraded:
            return healthy
        healthy_set = set(healthy)
        best: List[int] = []
        seen: set = set()
        for vault in healthy:
            if vault in seen:
                continue
            group = sorted(t for t in self.noc.reachable(vault)
                           if t in healthy_set)
            seen.update(group)
            if len(group) > len(best):
                best = group
        return best

    def reroute_map(self) -> Dict[int, Optional[int]]:
        """Serving tile for every vault whose own tile cannot serve it.

        Maps each degraded vault (dead tile, or healthy tile isolated
        from the serving group) to the nearest serving tile by adaptive
        route hops — the tile its data stripe is rerouted to over
        TSV + mesh. Among equally-near candidates the choice is
        thermal-aware when a thermal model is attached: the *coolest*
        candidate wins (ties broken by lowest tile index, so the pick
        is deterministic); without one, the lowest tile index wins —
        exactly the historical first-found order, preserving the golden
        baselines. ``None`` marks a vault no serving tile can reach;
        one such vault forces the whole descriptor to the host, since
        vault interleaving spreads every operand over every vault.
        """
        serving = self.serving_tiles()
        serving_set = set(serving)
        thermal = self.thermal
        out: Dict[int, Optional[int]] = {}
        for vault in sorted(self.tiles):
            if vault in serving_set:
                continue
            best: Optional[int] = None
            best_key: Optional[tuple] = None
            for tile in serving:
                try:
                    h = self.noc.route_hops(vault, tile)
                except NocUnreachableError:
                    continue
                key = ((h, tile) if thermal is None
                       else (h, thermal.temperature(tile), tile))
                if best_key is None or key < best_key:
                    best, best_key = tile, key
            out[vault] = best
        return out

    # -- vault-bandwidth contention -------------------------------------------

    def contention_slowdown(self, streams: int) -> float:
        """Pass-time stretch factor when ``streams`` descriptor
        streams share the stack concurrently.

        Every Table 1 accelerator saturates its vault's TSV bus on its
        own (the same convention behind :meth:`peak_layer_power`:
        accelerators never profitably run concurrently because each
        fills the stack's bandwidth), so ``k`` co-running passes
        time-share every vault bus and each drain takes ``k`` times
        its solo duration. The serving runtime prices the stretch into
        the ``contention`` ledger category; 1 stream means no sharing
        and exactly factor 1.0.
        """
        if streams < 1:
            raise ValueError(f"streams must be >= 1, got {streams}")
        return float(streams)

    def accelerator(self, name: str) -> AcceleratorCore:
        try:
            return self.accelerators[name]
        except KeyError:
            raise KeyError(
                f"no accelerator named {name!r}; deployed: "
                f"{sorted(self.accelerators)}")

    def by_opcode(self, opcode: int) -> AcceleratorCore:
        for core in self.accelerators.values():
            if core.opcode == opcode:
                return core
        raise KeyError(f"no accelerator with opcode {opcode}")

    @property
    def names(self) -> List[str]:
        return sorted(self.accelerators)

    # -- Table 5 accounting ---------------------------------------------------

    def layer_area_mm2(self) -> float:
        """Total area of accelerator-layer components (RESHP excluded —
        it lives on the DRAM logic layer)."""
        area = sum(core.area_mm2() for core in self.accelerators.values()
                   if core.name != "RESHP")
        return area + self.noc.area_mm2 + AREA_TSV_ARRAY

    def area_budget_ok(self) -> bool:
        return self.layer_area_mm2() <= LAYER_AREA_BUDGET_MM2

    def peak_layer_power(self, dram_power_by_accel: Dict[str, float]
                         ) -> float:
        """The Table 5 'total' convention: accelerators never run
        concurrently (each saturates the stack), so layer power is the
        hungriest accelerator (logic + DRAM) plus the NoC."""
        worst = max(
            core.logic_power(self.freq_hz)
            + dram_power_by_accel.get(core.name, 0.0)
            for core in self.accelerators.values())
        return worst + self.noc.power
