"""The DOT accelerator (cblas_sdot / cblas_cdotc_sub).

Supports real and complex-conjugated dot products — the complex variant
is what STAP's 16M ``cblas_cdotc_sub`` calls map to — with the strided
access the BLAS interface allows. The scalar result is written back to a
physical output address, matching the ``_sub`` (store-result) interface.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.accel.base import AcceleratorCore
from repro.accel.synthesis import LogicBlock
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memsys.trace import StreamSpec
from repro.mkl.profiles import OpProfile, cdotc_profile, dot_profile

_FORMAT = struct.Struct("<qqqqiiB")

DTYPE_F32 = 0
DTYPE_C64 = 1


@dataclass(frozen=True)
class DotParams:
    """Parameters of one DOT invocation.

    Attributes:
        n: elements per vector.
        x_pa / y_pa: operand physical addresses.
        out_pa: where the scalar result is stored.
        incx / incy: element strides (BLAS increments).
        dtype: DTYPE_F32 (sdot) or DTYPE_C64 (cdotc: conj(x).y).
    """

    n: int
    x_pa: int
    y_pa: int
    out_pa: int
    incx: int = 1
    incy: int = 1
    dtype: int = DTYPE_F32

    #: address-typed fields, in stride-table order
    ADDR_FIELDS = ('x_pa', 'y_pa', 'out_pa')
    #: packed byte size of one parameter record
    SIZE = _FORMAT.size

    def pack(self) -> bytes:
        return _FORMAT.pack(self.n, self.x_pa, self.y_pa, self.out_pa,
                            self.incx, self.incy, self.dtype)

    @classmethod
    def unpack(cls, data: bytes) -> "DotParams":
        n, x_pa, y_pa, out_pa, incx, incy, dtype = _FORMAT.unpack(
            data[:_FORMAT.size])
        return cls(n=n, x_pa=x_pa, y_pa=y_pa, out_pa=out_pa, incx=incx,
                   incy=incy, dtype=dtype)

    @property
    def elem_bytes(self) -> int:
        return 8 if self.dtype == DTYPE_C64 else 4


class DotAccelerator(AcceleratorCore):
    """Dual-stream reduce: per-tile partial sums, NoC reduction tree."""

    name = "DOT"
    opcode = 2
    logic = LogicBlock(fpus=4, sram_kb=2, extra_area=0.010,
                       extra_pw_per_ghz=0.002)   # the reduction tree
    params_type = DotParams

    def run(self, space: UnifiedAddressSpace, params: DotParams) -> None:
        np_dtype = np.complex64 if params.dtype == DTYPE_C64 else np.float32
        span_x = 1 + (params.n - 1) * abs(params.incx)
        span_y = 1 + (params.n - 1) * abs(params.incy)
        x = space.pa_ndarray(params.x_pa, np_dtype, (span_x,))
        y = space.pa_ndarray(params.y_pa, np_dtype, (span_y,))
        xv = x[::params.incx] if params.incx != 1 else x
        yv = y[::params.incy] if params.incy != 1 else y
        if params.dtype == DTYPE_C64:
            out = np.dot(np.conj(xv[:params.n]), yv[:params.n])
        else:
            out = np.dot(xv[:params.n], yv[:params.n])
        space.pa_ndarray(params.out_pa, np_dtype, (1,))[0] = out

    def profile(self, params: DotParams) -> OpProfile:
        if params.dtype == DTYPE_C64:
            return cdotc_profile(params.n)
        return dot_profile(params.n)

    def streams(self, params: DotParams) -> List[StreamSpec]:
        eb = params.elem_bytes
        out = []
        for base, inc in ((params.x_pa, params.incx),
                          (params.y_pa, params.incy)):
            if abs(inc) == 1:
                out.append(StreamSpec(base=base, n_elems=params.n,
                                      elem_bytes=eb))
            else:
                out.append(StreamSpec(base=base, n_elems=params.n,
                                      elem_bytes=eb, kind="strided",
                                      stride=abs(inc) * eb))
        return out
