"""The accelerator-layer mesh network (Figure 4's NC grid).

Sixteen tiles in a 4x4 mesh, XY-routed when fully healthy. The NoC
carries inter-tile traffic for chained passes, the DOT reduction tree,
and (since the partial-degradation model) rerouted vault stripes; its
power and area enter Table 5 (1.44 mm^2, 0.095 W in the paper).

Partial degradation: individual mesh links can fail (or flap) without
taking the whole layer down. A mutable :class:`LinkHealth` overlay
records dead links, and :meth:`MeshNoc.route` runs a minimal-adaptive
router over the healthy links — it prefers the XY dimension-order
moves (west-first flavour) and detours, minimally when possible, around
failures. Transfer time/energy then reflect the detoured hop paths, and
:meth:`MeshNoc.bisection_bandwidth` reports the degraded cross-mesh
bandwidth the rerouted stripes drain through.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.accel.synthesis import noc_area, noc_power

#: An undirected mesh link between two adjacent routers, as a
#: normalised ``(low, high)`` tile-index pair.
Link = Tuple[int, int]


class NocUnreachableError(Exception):
    """No healthy path exists between two routers of the mesh (link
    failures disconnected them)."""

    def __init__(self, src: int, dst: int, failed: FrozenSet[Link]):
        self.src = src
        self.dst = dst
        self.failed = failed
        super().__init__(
            f"no healthy route from tile {src} to tile {dst} "
            f"({len(failed)} failed links)")


def _link(a: int, b: int) -> Link:
    return (a, b) if a <= b else (b, a)


@dataclass
class LinkHealth:
    """Mutable health overlay of the mesh links.

    The :class:`MeshNoc` itself stays a frozen value object; all
    degradation state lives here so a fault campaign can fail and
    restore links on a shared mesh instance.
    """

    _failed: Set[Link] = field(default_factory=set)
    #: Fired whenever the failed-link set actually changes (a link
    #: failing or coming back). The schedule cache hangs its
    #: health-epoch invalidation off this hook.
    on_change: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False)

    def _fire(self) -> None:
        if self.on_change is not None:
            self.on_change()

    def fail(self, a: int, b: int) -> None:
        link = _link(a, b)
        if link not in self._failed:
            self._failed.add(link)
            self._fire()

    def restore(self, a: int, b: int) -> None:
        link = _link(a, b)
        if link in self._failed:
            self._failed.discard(link)
            self._fire()

    def restore_all(self) -> None:
        if self._failed:
            self._failed.clear()
            self._fire()

    def is_healthy(self, a: int, b: int) -> bool:
        return _link(a, b) not in self._failed

    @property
    def failed_links(self) -> FrozenSet[Link]:
        return frozenset(self._failed)

    @property
    def degraded(self) -> bool:
        return bool(self._failed)


@dataclass(frozen=True)
class MeshNoc:
    """A rows x cols mesh of routers with XY dimension-order routing.

    Attributes:
        rows / cols: mesh shape (4x4 for 16 vault tiles).
        link_bw: per-link bandwidth, bytes/s.
        hop_latency: per-hop router+link latency, seconds.
        energy_per_byte_hop: transport energy, joules per byte per hop.
        health: mutable link-health overlay (excluded from equality —
            two meshes of the same geometry are the same mesh).
    """

    rows: int = 4
    cols: int = 4
    link_bw: float = 32e9
    hop_latency: float = 2e-9
    energy_per_byte_hop: float = 1.0e-12
    health: LinkHealth = field(default_factory=LinkHealth,
                               compare=False, repr=False)

    @property
    def tiles(self) -> int:
        return self.rows * self.cols

    def coords(self, tile: int):
        if not 0 <= tile < self.tiles:
            raise ValueError(f"tile {tile} outside {self.tiles}-tile mesh")
        return divmod(tile, self.cols)

    def hops(self, src: int, dst: int) -> int:
        """XY-routing hop count between two tiles (failure-blind)."""
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    # -- link topology and health ---------------------------------------------

    def links(self) -> List[Link]:
        """Every undirected link of the mesh, normalised and sorted."""
        out: List[Link] = []
        for tile in range(self.tiles):
            r, c = divmod(tile, self.cols)
            if c + 1 < self.cols:
                out.append((tile, tile + 1))
            if r + 1 < self.rows:
                out.append((tile, tile + self.cols))
        return out

    def healthy_links(self) -> List[Link]:
        return [l for l in self.links() if self.health.is_healthy(*l)]

    @property
    def failed_links(self) -> FrozenSet[Link]:
        return self.health.failed_links

    @property
    def degraded(self) -> bool:
        return self.health.degraded

    def fail_link(self, a: int, b: int) -> None:
        """Mark the link between adjacent tiles ``a`` and ``b`` failed."""
        self.coords(a), self.coords(b)
        if self.hops(a, b) != 1:
            raise ValueError(f"tiles {a} and {b} are not mesh-adjacent")
        self.health.fail(a, b)

    def restore_link(self, a: int, b: int) -> None:
        """Bring a failed link back (repair, or the end of a flap)."""
        self.health.restore(a, b)

    def _neighbors(self, tile: int, dst: int) -> List[int]:
        """Healthy neighbours of ``tile``, in minimal-adaptive
        preference order: the X move toward ``dst`` first (the
        west-first flavour of dimension order), then the Y move toward
        it, then the non-productive directions as escapes."""
        r, c = divmod(tile, self.cols)
        rd, cd = divmod(dst, self.cols)
        productive: List[int] = []
        escape: List[int] = []
        if cd < c:
            productive.append(tile - 1)
        elif cd > c:
            productive.append(tile + 1)
        if rd < r:
            productive.append(tile - self.cols)
        elif rd > r:
            productive.append(tile + self.cols)
        for cand in (tile - 1, tile + 1, tile - self.cols,
                     tile + self.cols):
            rr, cc = divmod(cand, self.cols)
            if (0 <= cand < self.tiles and abs(rr - r) + abs(cc - c) == 1
                    and cand not in productive):
                escape.append(cand)
        order = productive + escape
        return [n for n in order if self.health.is_healthy(tile, n)]

    def route(self, src: int, dst: int) -> List[int]:
        """Hop path from ``src`` to ``dst`` over healthy links only.

        Minimal-adaptive: a breadth-first search whose neighbour order
        prefers the XY dimension-order moves, so the fault-free route
        is the minimal XY path and detours grow only as far as the
        failures force them. The returned path is loop-free by
        construction. Raises :class:`NocUnreachableError` when the
        failures disconnect the pair.
        """
        self.coords(src), self.coords(dst)
        if src == dst:
            return [src]
        parent: Dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            tile = queue.popleft()
            for nxt in self._neighbors(tile, dst):
                if nxt in parent:
                    continue
                parent[nxt] = tile
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(nxt)
        raise NocUnreachableError(src, dst, self.failed_links)

    def route_hops(self, src: int, dst: int) -> int:
        """Hop count of the adaptive route (== :meth:`hops` when no
        link is failed)."""
        if not self.health.degraded:
            return self.hops(src, dst)
        return len(self.route(src, dst)) - 1

    def hops_batch(self, srcs: "np.ndarray", dst: int) -> "np.ndarray":
        """XY hop counts from every tile in ``srcs`` to ``dst`` in one
        vectorized Manhattan-distance evaluation (failure-blind)."""
        srcs = np.asarray(srcs, dtype=np.int64)
        if srcs.size and (int(srcs.min()) < 0
                          or int(srcs.max()) >= self.tiles):
            raise ValueError(f"tile outside {self.tiles}-tile mesh")
        rd, cd = self.coords(dst)
        rows, cols = np.divmod(srcs, self.cols)
        return np.abs(rows - rd) + np.abs(cols - cd)

    def route_hops_batch(self, srcs: "np.ndarray", dst: int
                         ) -> "np.ndarray":
        """:meth:`route_hops` over an array of sources: the vectorized
        Manhattan kernel when every link is healthy, falling back to
        per-pair adaptive routing only in the degraded regime."""
        if not self.health.degraded:
            return self.hops_batch(srcs, dst)
        return np.array([len(self.route(int(s), dst)) - 1 for s in srcs],
                        dtype=np.int64)

    def reachable(self, src: int) -> Set[int]:
        """All tiles reachable from ``src`` over healthy links."""
        self.coords(src)
        seen = {src}
        queue = deque([src])
        while queue:
            tile = queue.popleft()
            for nxt in self._neighbors(tile, tile):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    # -- transfers -------------------------------------------------------------

    def transfer_time(self, n_bytes: int, src: int, dst: int) -> float:
        """Latency + serialisation of one tile-to-tile transfer, along
        the adaptive route when links are failed."""
        h = self.route_hops(src, dst)
        if h == 0:
            return 0.0
        return h * self.hop_latency + n_bytes / self.link_bw

    def transfer_energy(self, n_bytes: int, src: int, dst: int) -> float:
        return n_bytes * self.route_hops(src, dst) * self.energy_per_byte_hop

    def bisection_bandwidth(self) -> float:
        """Aggregate bandwidth across the narrower mesh bisection,
        counting only healthy links — the ceiling rerouted vault
        stripes drain through."""
        col_cut = self.cols // 2
        row_cut = self.rows // 2
        vertical = sum(
            1 for r in range(self.rows)
            if self.health.is_healthy(r * self.cols + col_cut - 1,
                                      r * self.cols + col_cut)
        ) if col_cut else 0
        horizontal = sum(
            1 for c in range(self.cols)
            if self.health.is_healthy((row_cut - 1) * self.cols + c,
                                      row_cut * self.cols + c)
        ) if row_cut else 0
        cuts = [n for n, exists in ((vertical, col_cut),
                                    (horizontal, row_cut)) if exists]
        return min(cuts) * self.link_bw if cuts else 0.0

    @property
    def power(self) -> float:
        return noc_power(self.tiles)

    @property
    def area_mm2(self) -> float:
        return noc_area(self.tiles)

    def mean_hops(self) -> float:
        """Average hop distance over all tile pairs (for reductions)."""
        if self.tiles < 2:
            return 0.0
        rows, cols = np.divmod(np.arange(self.tiles), self.cols)
        total = (np.abs(rows[:, None] - rows[None, :]).sum()
                 + np.abs(cols[:, None] - cols[None, :]).sum())
        return int(total) / (self.tiles * (self.tiles - 1))
