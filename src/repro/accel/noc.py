"""The accelerator-layer mesh network (Figure 4's NC grid).

Sixteen tiles in a 4x4 mesh, XY-routed. The NoC carries inter-tile
traffic for chained passes and the DOT reduction tree; its power and
area enter Table 5 (1.44 mm^2, 0.095 W in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.synthesis import noc_area, noc_power


@dataclass(frozen=True)
class MeshNoc:
    """A rows x cols mesh of routers with XY dimension-order routing.

    Attributes:
        rows / cols: mesh shape (4x4 for 16 vault tiles).
        link_bw: per-link bandwidth, bytes/s.
        hop_latency: per-hop router+link latency, seconds.
        energy_per_byte_hop: transport energy, joules per byte per hop.
    """

    rows: int = 4
    cols: int = 4
    link_bw: float = 32e9
    hop_latency: float = 2e-9
    energy_per_byte_hop: float = 1.0e-12

    @property
    def tiles(self) -> int:
        return self.rows * self.cols

    def coords(self, tile: int):
        if not 0 <= tile < self.tiles:
            raise ValueError(f"tile {tile} outside {self.tiles}-tile mesh")
        return divmod(tile, self.cols)

    def hops(self, src: int, dst: int) -> int:
        """XY-routing hop count between two tiles."""
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def transfer_time(self, n_bytes: int, src: int, dst: int) -> float:
        """Latency + serialisation of one tile-to-tile transfer."""
        h = self.hops(src, dst)
        if h == 0:
            return 0.0
        return h * self.hop_latency + n_bytes / self.link_bw

    def transfer_energy(self, n_bytes: int, src: int, dst: int) -> float:
        return n_bytes * self.hops(src, dst) * self.energy_per_byte_hop

    @property
    def power(self) -> float:
        return noc_power(self.tiles)

    @property
    def area_mm2(self) -> float:
        return noc_area(self.tiles)

    def mean_hops(self) -> float:
        """Average hop distance over all tile pairs (for reductions)."""
        total, pairs = 0, 0
        for a in range(self.tiles):
            for b in range(self.tiles):
                if a != b:
                    total += self.hops(a, b)
                    pairs += 1
        return total / pairs if pairs else 0.0
