"""The RESMP accelerator (dfsInterpolate1D): 1-D data resampling.

Resamples ``blocks`` independent complex series (the SAR range lines)
from a uniform input grid onto arbitrary sites using the cubic-spline
kernel of :mod:`repro.mkl.resample`. Spline fitting is recurrence-bound,
so this accelerator is the least bandwidth-hungry of the set — which is
why its Table 5 power is the lowest (8.19 W in the paper).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.accel.base import AcceleratorCore
from repro.accel.synthesis import LogicBlock
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memsys.trace import StreamSpec
from repro.mkl.profiles import COMPLEX, FLOAT, OpProfile, resmp_profile
from repro.mkl.resample import interpolate_1d

_FORMAT = struct.Struct("<qqqqqqq")


@dataclass(frozen=True)
class ResmpParams:
    """Parameters of one RESMP invocation.

    Attributes:
        blocks: independent series, laid out contiguously.
        n_in: input samples per series (on a uniform 0..n_in-1 grid).
        n_out: output sites per series.
        in_pa: complex64 input series (blocks x n_in).
        sites_pa: float32 sites (blocks x n_out).
        out_pa: complex64 output (blocks x n_out).
        knots_pa: float32 knot coordinates (n_in), shared by all blocks.
    """

    blocks: int
    n_in: int
    n_out: int
    in_pa: int
    sites_pa: int
    out_pa: int
    knots_pa: int

    #: address-typed fields, in stride-table order
    ADDR_FIELDS = ('in_pa', 'sites_pa', 'out_pa', 'knots_pa')
    #: packed byte size of one parameter record
    SIZE = _FORMAT.size

    def pack(self) -> bytes:
        return _FORMAT.pack(self.blocks, self.n_in, self.n_out,
                            self.in_pa, self.sites_pa, self.out_pa,
                            self.knots_pa)

    @classmethod
    def unpack(cls, data: bytes) -> "ResmpParams":
        return cls(*_FORMAT.unpack(data[:_FORMAT.size]))


class ResmpAccelerator(AcceleratorCore):
    """Per-tile spline pipelines over independent series."""

    name = "RESMP"
    opcode = 5
    logic = LogicBlock(fpus=8, sram_kb=4)
    params_type = ResmpParams
    #: each lane is a fused spline-recurrence stage (~5 flops/cycle);
    #: independent series keep the pipelines full
    lane_flops = 5.0

    def run(self, space: UnifiedAddressSpace, params: ResmpParams) -> None:
        knots = space.pa_ndarray(params.knots_pa, np.float32,
                                 (params.n_in,))
        series = space.pa_ndarray(params.in_pa, np.complex64,
                                  (params.blocks, params.n_in))
        sites = space.pa_ndarray(params.sites_pa, np.float32,
                                 (params.blocks, params.n_out))
        out = space.pa_ndarray(params.out_pa, np.complex64,
                               (params.blocks, params.n_out))
        for b in range(params.blocks):
            out[b] = interpolate_1d(knots.astype(np.float64), series[b],
                                    sites[b].astype(np.float64))

    def profile(self, params: ResmpParams) -> OpProfile:
        return resmp_profile(params.n_in, params.n_out, params.blocks)

    def streams(self, params: ResmpParams) -> List[StreamSpec]:
        b = params.blocks
        return [
            StreamSpec(base=params.in_pa, n_elems=b * params.n_in,
                       elem_bytes=COMPLEX),
            StreamSpec(base=params.sites_pa, n_elems=b * params.n_out,
                       elem_bytes=FLOAT),
            StreamSpec(base=params.out_pa, n_elems=b * params.n_out,
                       elem_bytes=COMPLEX, is_write=True),
        ]
