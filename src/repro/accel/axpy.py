"""The AXPY accelerator (cblas_saxpy): y := alpha x + y."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.accel.base import AcceleratorCore
from repro.accel.synthesis import LogicBlock
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memsys.trace import StreamSpec
from repro.mkl.profiles import OpProfile, axpy_profile

_FORMAT = struct.Struct("<qfqq")


@dataclass(frozen=True)
class AxpyParams:
    """Parameters of one AXPY invocation (PR entry).

    Attributes:
        n: vector length (elements).
        alpha: scale factor.
        x_pa / y_pa: physical addresses of the operand vectors.
    """

    n: int
    alpha: float
    x_pa: int
    y_pa: int

    #: address-typed fields, in stride-table order
    ADDR_FIELDS = ('x_pa', 'y_pa')
    #: packed byte size of one parameter record
    SIZE = _FORMAT.size

    def pack(self) -> bytes:
        return _FORMAT.pack(self.n, self.alpha, self.x_pa, self.y_pa)

    @classmethod
    def unpack(cls, data: bytes) -> "AxpyParams":
        n, alpha, x_pa, y_pa = _FORMAT.unpack(data[:_FORMAT.size])
        return cls(n=n, alpha=alpha, x_pa=x_pa, y_pa=y_pa)


class AxpyAccelerator(AcceleratorCore):
    """Streams x and y through FMA lanes, writes y back."""

    name = "AXPY"
    opcode = 1
    logic = LogicBlock(fpus=3, sram_kb=2)
    params_type = AxpyParams

    def run(self, space: UnifiedAddressSpace, params: AxpyParams) -> None:
        x = space.pa_ndarray(params.x_pa, np.float32, (params.n,))
        y = space.pa_ndarray(params.y_pa, np.float32, (params.n,))
        y += np.float32(params.alpha) * x

    def profile(self, params: AxpyParams) -> OpProfile:
        return axpy_profile(params.n)

    def streams(self, params: AxpyParams) -> List[StreamSpec]:
        return [
            StreamSpec(base=params.x_pa, n_elems=params.n, elem_bytes=4),
            StreamSpec(base=params.y_pa, n_elems=params.n, elem_bytes=4),
            StreamSpec(base=params.y_pa, n_elems=params.n, elem_bytes=4,
                       is_write=True),
        ]
