"""The accelerator layer: Table 1's cores, tiles, NoC, and synthesis.

Public surface: one ``*Accelerator`` class + ``*Params`` dataclass per
Table 1 entry, the assembled :class:`~repro.accel.layer.AcceleratorLayer`,
the :class:`~repro.accel.noc.MeshNoc`, and the Fig 11 design-space
exploration helpers.
"""

from repro.accel.axpy import AxpyAccelerator, AxpyParams
from repro.accel.base import (AccelExecution, AcceleratorCore,
                              DEFAULT_FREQ_HZ, DEFAULT_TILES)
from repro.accel.design_space import (DesignPoint, FREQUENCIES_HZ,
                                      efficiency_range, explore_fft,
                                      explore_spmv)
from repro.accel.dot import (DTYPE_C64, DTYPE_F32, DotAccelerator,
                             DotParams)
from repro.accel.fft import FftAccelerator, FftParams
from repro.accel.gemv import GemvAccelerator, GemvParams
from repro.accel.layer import (ACCELERATOR_TYPES, AcceleratorLayer,
                               ComponentBudget)
from repro.accel.noc import LinkHealth, MeshNoc, NocUnreachableError
from repro.accel.reshp import ReshpAccelerator, ReshpParams
from repro.accel.resmp import ResmpAccelerator, ResmpParams
from repro.accel.spmv import SpmvAccelerator, SpmvParams
from repro.accel.synthesis import (LAYER_AREA_BUDGET_MM2, LogicBlock,
                                   noc_area, noc_power)
from repro.accel.tile import PORT_CHAIN, PORT_DRAM, SwitchConfig, Tile

__all__ = [
    "AxpyAccelerator", "AxpyParams", "AccelExecution", "AcceleratorCore",
    "DEFAULT_FREQ_HZ", "DEFAULT_TILES", "DesignPoint", "FREQUENCIES_HZ",
    "efficiency_range", "explore_fft", "explore_spmv", "DTYPE_C64",
    "DTYPE_F32", "DotAccelerator", "DotParams", "FftAccelerator",
    "FftParams", "GemvAccelerator", "GemvParams", "ACCELERATOR_TYPES",
    "AcceleratorLayer", "ComponentBudget", "LinkHealth", "MeshNoc",
    "NocUnreachableError", "ReshpAccelerator",
    "ReshpParams", "ResmpAccelerator", "ResmpParams", "SpmvAccelerator",
    "SpmvParams", "LAYER_AREA_BUDGET_MM2", "LogicBlock", "noc_area",
    "noc_power", "PORT_CHAIN", "PORT_DRAM", "SwitchConfig", "Tile",
]
