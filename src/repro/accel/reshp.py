"""The RESHP accelerator (mkl_simatcopy / rank-0 FFTW guru plans).

Unlike the other accelerators, RESHP lives on the DRAM *logic layer*
(Section 2.1): it is the data-reshape infrastructure, usable both by the
CPU and by other accelerators (e.g. to produce the blocked layout the
FFT pipeline wants). It has no FP datapath — its Table 5 power entry
(22.7 W) is almost entirely DRAM power; the added logic is 0.45 mm^2 /
0.25 W.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.accel.base import AcceleratorCore
from repro.accel.synthesis import LogicBlock
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memsys.reshape import ReshapeUnit
from repro.memsys.trace import StreamSpec
from repro.mkl.profiles import OpProfile, reshp_profile

_FORMAT = struct.Struct("<qqqqq")

#: The paper's logic-layer additions (MUX + reshape unit).
RESHP_AREA_MM2 = 0.45
RESHP_POWER_W = 0.25


@dataclass(frozen=True)
class ReshpParams:
    """Parameters of one transpose/reshape invocation.

    Attributes:
        rows / cols: source matrix shape (row-major).
        elem_bytes: element size (4 = float32, 8 = complex64).
        src_pa / dst_pa: physical addresses. Equal addresses mean an
            in-place square transpose (tile-pair swaps).
    """

    rows: int
    cols: int
    elem_bytes: int
    src_pa: int
    dst_pa: int

    #: address-typed fields, in stride-table order
    ADDR_FIELDS = ('src_pa', 'dst_pa')
    #: packed byte size of one parameter record
    SIZE = _FORMAT.size

    def pack(self) -> bytes:
        return _FORMAT.pack(self.rows, self.cols, self.elem_bytes,
                            self.src_pa, self.dst_pa)

    @classmethod
    def unpack(cls, data: bytes) -> "ReshpParams":
        return cls(*_FORMAT.unpack(data[:_FORMAT.size]))


class ReshpAccelerator(AcceleratorCore):
    """Tiled transpose engine on the DRAM logic layer."""

    name = "RESHP"
    opcode = 7
    logic = LogicBlock(fpus=0, sram_kb=64)   # SRAM staging tile, no FPUs
    params_type = ReshpParams

    def __init__(self, reshape_unit: ReshapeUnit = None, **kwargs):
        super().__init__(**kwargs)
        self.unit = reshape_unit if reshape_unit is not None \
            else ReshapeUnit()

    def run(self, space: UnifiedAddressSpace, params: ReshpParams) -> None:
        dtype = {4: np.float32, 8: np.complex64}.get(params.elem_bytes)
        if dtype is None:
            raise ValueError(
                f"unsupported element size {params.elem_bytes}")
        src = space.pa_ndarray(params.src_pa, dtype,
                               (params.rows, params.cols))
        if params.src_pa == params.dst_pa:
            if params.rows != params.cols:
                raise ValueError("in-place reshape must be square")
            src[:] = src.T.copy()
            return
        dst = space.pa_ndarray(params.dst_pa, dtype,
                               (params.cols, params.rows))
        dst[:] = src.T

    def profile(self, params: ReshpParams) -> OpProfile:
        return reshp_profile(params.rows, params.cols, params.elem_bytes)

    def streams(self, params: ReshpParams) -> List[StreamSpec]:
        return self.unit.transpose_streams(
            params.src_pa, params.dst_pa, params.rows, params.cols,
            params.elem_bytes)

    def area_mm2(self, tiles=None) -> float:
        """Logic-layer additions only (the paper's 0.45 mm^2)."""
        return RESHP_AREA_MM2

    def logic_power(self, freq_hz=None, activity: float = 1.0,
                    tiles=None) -> float:
        return RESHP_POWER_W * max(activity, 0.25)
