"""32 nm-class synthesis library: area and power of accelerator logic.

Stands in for the paper's Synopsys Design Compiler flow. Each accelerator
is assembled from counted components (FP datapath lanes, local SRAM,
control, special engines); the constants below are in the published
32 nm ballpark and are chosen so the assembled totals land near the
paper's Table 5 (e.g. FFT 16.13 mm², SPMV 14.17 mm², NoC 1.44 mm²).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Area constants, mm^2.
AREA_FPU = 0.012                 # one FP32 FMA lane incl. operand regs
AREA_SRAM_PER_KB = 0.011         # local-memory SRAM macro
AREA_CTRL = 0.030                # per-tile sequencer/AGU block
AREA_ROUTER = 0.090              # one mesh router + link drivers
AREA_TSV_ARRAY = 1.75            # the stack's TSV field (paper Table 5)
AREA_GATHER_ENGINE = 0.100       # SPMV index/gather unit per tile

#: Power constants, watts per GHz of clock (dynamic, at full activity).
PW_FPU_PER_GHZ = 0.014
PW_SRAM_PER_KB_PER_GHZ = 0.0008
PW_CTRL_PER_GHZ = 0.004
PW_GATHER_PER_GHZ = 0.030
PW_ROUTER = 0.0059               # per router, mostly static+clock

#: Total area budget of the accelerator layer (HMC 2011 die, Table 5).
LAYER_AREA_BUDGET_MM2 = 68.0


@dataclass(frozen=True)
class LogicBlock:
    """Synthesised logic of one accelerator tile.

    Attributes:
        fpus: FP32 lanes in the tile's PEs.
        sram_kb: local-memory capacity in KiB.
        has_gather_engine: SPMV-style index fetch/gather hardware.
        extra_area: any special datapath area not covered above, mm^2.
        extra_pw_per_ghz: matching power, W/GHz.
    """

    fpus: int
    sram_kb: int
    has_gather_engine: bool = False
    extra_area: float = 0.0
    extra_pw_per_ghz: float = 0.0

    @property
    def area_mm2(self) -> float:
        """Tile area in mm^2."""
        area = (self.fpus * AREA_FPU
                + self.sram_kb * AREA_SRAM_PER_KB
                + AREA_CTRL + self.extra_area)
        if self.has_gather_engine:
            area += AREA_GATHER_ENGINE
        return area

    def power(self, freq_hz: float, activity: float = 1.0) -> float:
        """Tile logic power in watts at ``freq_hz``.

        ``activity`` scales the datapath (a bandwidth-starved accelerator
        clocks its lanes but they switch less).
        """
        ghz = freq_hz / 1e9
        pw = (self.fpus * PW_FPU_PER_GHZ
              + self.sram_kb * PW_SRAM_PER_KB_PER_GHZ
              + PW_CTRL_PER_GHZ + self.extra_pw_per_ghz)
        if self.has_gather_engine:
            pw += PW_GATHER_PER_GHZ
        return pw * ghz * max(activity, 0.25)


def noc_power(routers: int = 16) -> float:
    """Mesh NoC power (routers + links)."""
    return routers * PW_ROUTER


def noc_area(routers: int = 16) -> float:
    return routers * AREA_ROUTER
