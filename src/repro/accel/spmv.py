"""The SPMV accelerator (mkl_scsrgemv): y := A x for CSR A.

Values, column indices, and row pointers stream sequentially; the x
vector is *gathered* by column index — the pattern that keeps SpMV far
from peak bandwidth on every platform (the paper's Fig 9 shows MEALib's
smallest speedup, 11x, here, and Fig 11's SPMV design space tops out
below 2 GFLOPS/W). A dedicated gather engine per tile tracks in-flight
index loads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.accel.base import AcceleratorCore
from repro.accel.synthesis import LogicBlock
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memsys.trace import StreamSpec
from repro.mkl.profiles import FLOAT, OpProfile
from repro.mkl.sparse import CsrMatrix, scsrgemv

_FORMAT = struct.Struct("<qqqqqqqqq")


@dataclass(frozen=True)
class SpmvParams:
    """Parameters of one SPMV invocation.

    The matrix shape metadata travels with the pointer fields because the
    accelerator (and the performance model) needs nnz up front.
    ``locality_bytes`` bounds the span of x the gathers of nearby rows
    touch (banded/geometric matrices like rgg have strong index
    locality); 0 means gathers range over all of x.
    """

    rows: int
    cols: int
    nnz: int
    indptr_pa: int
    indices_pa: int
    data_pa: int
    x_pa: int
    y_pa: int
    locality_bytes: int = 0

    #: address-typed fields, in stride-table order
    ADDR_FIELDS = ('indptr_pa', 'indices_pa', 'data_pa', 'x_pa', 'y_pa')
    #: packed byte size of one parameter record
    SIZE = _FORMAT.size

    def pack(self) -> bytes:
        return _FORMAT.pack(self.rows, self.cols, self.nnz,
                            self.indptr_pa, self.indices_pa, self.data_pa,
                            self.x_pa, self.y_pa, self.locality_bytes)

    @classmethod
    def unpack(cls, data: bytes) -> "SpmvParams":
        fields = _FORMAT.unpack(data[:_FORMAT.size])
        return cls(*fields)


class SpmvAccelerator(AcceleratorCore):
    """Stream-and-gather CSR engine."""

    name = "SPMV"
    opcode = 4
    logic = LogicBlock(fpus=8, sram_kb=64, has_gather_engine=True)
    params_type = SpmvParams

    def run(self, space: UnifiedAddressSpace, params: SpmvParams) -> None:
        indptr = space.pa_ndarray(params.indptr_pa, np.int64,
                                  (params.rows + 1,))
        indices = space.pa_ndarray(params.indices_pa, np.int64,
                                   (params.nnz,))
        data = space.pa_ndarray(params.data_pa, np.float32, (params.nnz,))
        x = space.pa_ndarray(params.x_pa, np.float32, (params.cols,))
        y = space.pa_ndarray(params.y_pa, np.float32, (params.rows,))
        matrix = CsrMatrix(indptr=indptr, indices=indices, data=data,
                           shape=(params.rows, params.cols))
        scsrgemv(matrix, x, y)

    def profile(self, params: SpmvParams) -> OpProfile:
        read = (params.nnz * (FLOAT + 8)            # data + int64 indices
                + (params.rows + 1) * 8             # row pointers
                + params.nnz * FLOAT)               # gathered x
        return OpProfile("SPMV", flops=2.0 * params.nnz, bytes_read=read,
                         bytes_written=params.rows * FLOAT,
                         pattern="gather")

    def streams(self, params: SpmvParams) -> List[StreamSpec]:
        return [
            StreamSpec(base=params.data_pa, n_elems=params.nnz,
                       elem_bytes=4),
            StreamSpec(base=params.indices_pa, n_elems=params.nnz,
                       elem_bytes=8),
            StreamSpec(base=params.indptr_pa, n_elems=params.rows + 1,
                       elem_bytes=8),
            StreamSpec(base=params.x_pa, n_elems=params.nnz, elem_bytes=4,
                       kind="gather",
                       region_bytes=(min(params.locality_bytes,
                                         params.cols * 4)
                                     if params.locality_bytes
                                     else params.cols * 4)),
            StreamSpec(base=params.y_pa, n_elems=params.rows,
                       elem_bytes=4, is_write=True),
        ]
