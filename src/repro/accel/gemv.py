"""The GEMV accelerator (cblas_sgemv): y := alpha A x + beta y.

The matrix streams once from DRAM (the dominant traffic); x is staged in
each tile's local memory and reused across rows, so it contributes one
read. Row blocks are distributed across vault tiles.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.accel.base import AcceleratorCore
from repro.accel.synthesis import LogicBlock
from repro.memmgmt.addrspace import UnifiedAddressSpace
from repro.memsys.trace import StreamSpec
from repro.mkl.profiles import OpProfile, gemv_profile

_FORMAT = struct.Struct("<qqffqqq")


@dataclass(frozen=True)
class GemvParams:
    """Parameters of one GEMV invocation (row-major A, no transpose)."""

    m: int
    n: int
    alpha: float
    beta: float
    a_pa: int
    x_pa: int
    y_pa: int

    #: address-typed fields, in stride-table order
    ADDR_FIELDS = ('a_pa', 'x_pa', 'y_pa')
    #: packed byte size of one parameter record
    SIZE = _FORMAT.size

    def pack(self) -> bytes:
        return _FORMAT.pack(self.m, self.n, self.alpha, self.beta,
                            self.a_pa, self.x_pa, self.y_pa)

    @classmethod
    def unpack(cls, data: bytes) -> "GemvParams":
        m, n, alpha, beta, a_pa, x_pa, y_pa = _FORMAT.unpack(
            data[:_FORMAT.size])
        return cls(m=m, n=n, alpha=alpha, beta=beta, a_pa=a_pa, x_pa=x_pa,
                   y_pa=y_pa)


class GemvAccelerator(AcceleratorCore):
    """Streaming matrix-vector engine with x held in tile local memory."""

    name = "GEMV"
    opcode = 3
    logic = LogicBlock(fpus=6, sram_kb=4)
    params_type = GemvParams

    def run(self, space: UnifiedAddressSpace, params: GemvParams) -> None:
        a = space.pa_ndarray(params.a_pa, np.float32,
                             (params.m, params.n))
        x = space.pa_ndarray(params.x_pa, np.float32, (params.n,))
        y = space.pa_ndarray(params.y_pa, np.float32, (params.m,))
        y *= np.float32(params.beta)
        y += np.float32(params.alpha) * (a @ x)

    def profile(self, params: GemvParams) -> OpProfile:
        return gemv_profile(params.m, params.n)

    def streams(self, params: GemvParams) -> List[StreamSpec]:
        return [
            StreamSpec(base=params.a_pa, n_elems=params.m * params.n,
                       elem_bytes=4),
            StreamSpec(base=params.x_pa, n_elems=params.n, elem_bytes=4),
            StreamSpec(base=params.y_pa, n_elems=params.m, elem_bytes=4,
                       is_write=True),
        ]
