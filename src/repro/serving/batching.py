"""Admission batching: coalescing compatible small calls.

Small AXPY/DOT calls are invocation-dominated — the wbinvd flush,
descriptor store and doorbell cost as much as the pass itself (the
paper's Fig 12 motivation for descriptor-level batching). The serving
runtime therefore coalesces *adjacent* queued calls of one tenant and
one op into a single multi-PASS descriptor::

    PASS { COMP AXPY b0.para }
    PASS { COMP AXPY b1.para }
    ...

paying one invocation for the whole batch. One PASS per member — never
a LOOP — because the configuration unit models every pass
independently: each member's pass cost is bit-identical to the cost of
running it as its own descriptor, so the ``accelerator`` ledger totals
of a batched run and an unbatched run are *exactly* equal (a LOOP
would aggregate the members into one long stream and change the memory
model — a different, not-equivalent program). Functional effects are
likewise identical: passes execute in member order against the same
operand buffers.

Only the fixed per-descriptor costs differ, which is the whole point:
the batch pays one invocation overhead and one fetch instead of one
per member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.runtime import AccPlan
from repro.core.tdl import ParamStore


@dataclass(frozen=True)
class BatchPolicy:
    """Which calls may coalesce, and how far.

    Attributes:
        ops: op names eligible for batching (the invocation-dominated
            BLAS-1 pair by default).
        max_batch: most members one coalesced descriptor may carry.
        max_bytes: "small call" threshold — a call whose working set
            (input + output bytes) exceeds it is never batched; big
            calls amortize their own invocation and would only delay
            their co-members.
    """

    ops: Tuple[str, ...] = ("AXPY", "DOT")
    max_batch: int = 8
    max_bytes: int = 32 << 20

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("ops must name at least one batchable op")
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_bytes < 1:
            raise ValueError(
                f"max_bytes must be >= 1, got {self.max_bytes}")

    def batchable(self, op: str, working_set_bytes: int) -> bool:
        """May a call of ``op`` with this working set join a batch?"""
        return op in self.ops and working_set_bytes <= self.max_bytes


def call_sizes(layer, op: str, params: object) -> Tuple[int, int]:
    """(input bytes, output bytes) of one call — the Listing 2 buffer
    sizes that size the coherence flush at execute time."""
    streams = layer.accelerator(op).streams(params)
    return (sum(s.total_bytes for s in streams if not s.is_write),
            sum(s.total_bytes for s in streams if s.is_write))


def coalesce(system, members: Sequence[Tuple[str, object]]) -> AccPlan:
    """Lower ``members`` — ``(op, params)`` pairs — into one coalesced
    descriptor, one PASS per member, in member order.

    A single-member "batch" is exactly the solo descriptor for that
    call (same instruction stream, same parameter bytes); the caller
    owns the returned plan and must ``acc_destroy`` it after use.
    """
    if not members:
        raise ValueError("cannot coalesce an empty batch")
    store = ParamStore()
    lines: List[str] = []
    in_size = 0
    out_size = 0
    for i, (op, params) in enumerate(members):
        name = f"b{i}.para"
        store.add(name, params.pack())
        lines.append(f"PASS {{ COMP {op} {name} }}")
        r, w = call_sizes(system.layer, op, params)
        in_size += r
        out_size += w
    return system.runtime.acc_plan("\n".join(lines), store,
                                   in_size=in_size, out_size=out_size)
