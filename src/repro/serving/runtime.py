"""Deterministic multi-tenant serving over one :class:`MealibSystem`.

The serving runtime multiplexes many independent client streams
(*tenants*) onto one accelerated memory stack. Each tenant has a FIFO
descriptor queue, a QoS class and an admission bound
(:class:`~repro.serving.qos.TenantConfig`); a virtual-time engine
dispatches rounds of up to ``max_concurrency`` concurrent descriptor
streams and advances a model clock — no wall-clock anywhere, so a
given arrival trace always serves identically, bit for bit.

**Scheduling.** Each round selects queue *heads* (FIFO within a
tenant is structural — nothing can overtake inside a queue) by
effective priority ``qos − elapsed_wait // aging_quantum``: lower
dispatches sooner, and every elapsed quantum promotes a waiting head
one level, so bulk work behind a sustained interactive flood is
dispatched after a bounded wait — priority shapes latency, it never
starves anyone. Ties break by arrival time then admission order.

**Batching.** With a :class:`~repro.serving.batching.BatchPolicy`,
adjacent same-op batchable calls at the front of the selected tenant's
queue coalesce into one multi-PASS descriptor and ride one invocation
(see :mod:`repro.serving.batching` for why this is *exactly*
equivalent in functional results and ``accelerator`` ledger totals).

**Contention.** A round of ``k`` units executes each unit with
``concurrency=k``: the configuration unit prices the vault-bandwidth
time-share into the ``contention`` ledger category *without touching
the call's returned solo decomposition* (the scrub convention), and
the serving runtime folds the stretch into the request's latency —
``finish = dispatch + solo time + contention stretch``. A
single-tenant, ``max_concurrency=1`` run therefore produces per-call
results and ledger contents bit-identical to calling the system
directly.

**Attribution.** Every dispatched call is bracketed: the schedule
cache is tagged with the tenant (per-tenant hit/stale/eviction stats)
and the ledger entries it appends are recorded as that tenant's slice.
Slices partition the system ledger exactly — every entry belongs to
exactly one tenant — so summing any category across tenants reproduces
the system total joule for joule
(:meth:`ServingRuntime.verify_tenant_decomposition` machine-checks
both facts).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import (Deque, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.core.runtime import AccPlan, Ledger
from repro.core.system import MealibSystem
from repro.eval.workloads import TABLE2
from repro.metrics import ExecResult
from repro.serving.batching import BatchPolicy, call_sizes, coalesce
from repro.serving.qos import TenantConfig
from repro.serving.traffic import Arrival


@dataclass
class Request:
    """One admitted (or shed) call in a tenant's stream."""

    tenant: str
    arrival: float
    seq: int                         # admission order, unique
    op: Optional[str] = None         # owned submissions
    params: Optional[object] = None
    plan: Optional[AccPlan] = None   # borrowed plan (submit_plan)
    batchable: bool = False
    shed: bool = False
    start: float = math.nan          # dispatch time
    finish: float = math.nan         # dispatch + solo time + stretch
    #: The execute's returned (solo) decomposition. For a coalesced
    #: batch every member carries the whole batch's result.
    result: Optional[ExecResult] = None
    batch_size: int = 0              # members in the dispatched unit

    @property
    def latency(self) -> float:
        """Queueing wait + service + contention stretch."""
        return self.finish - self.arrival


@dataclass
class TenantStats:
    """One tenant's serving outcome."""

    submitted: int = 0
    shed: int = 0
    completed: int = 0
    batched_calls: int = 0           # completed in a >1-member batch
    latencies: List[float] = field(default_factory=list)


def _percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return math.nan
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class ServingRuntime:
    """Multiplex tenant streams onto one system, deterministically."""

    def __init__(self, system: MealibSystem,
                 tenants: Sequence[TenantConfig],
                 max_concurrency: int = 4,
                 batching: Optional[BatchPolicy] = None,
                 aging_quantum: float = 5e-3,
                 functional: bool = True):
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}")
        if aging_quantum <= 0.0:
            raise ValueError(
                f"aging_quantum must be positive, got {aging_quantum}")
        if not tenants:
            raise ValueError("at least one tenant is required")
        self.system = system
        self.tenants: Dict[str, TenantConfig] = {}
        for cfg in tenants:
            if cfg.tenant in self.tenants:
                raise ValueError(f"duplicate tenant {cfg.tenant!r}")
            self.tenants[cfg.tenant] = cfg
        self.max_concurrency = max_concurrency
        self.batching = batching
        self.aging_quantum = aging_quantum
        self.functional = functional
        self.clock = 0.0
        self.stats: Dict[str, TenantStats] = {
            t: TenantStats() for t in self.tenants}
        self.requests: List[Request] = []
        self._pending: List[Request] = []
        self._queues: Dict[str, Deque[Request]] = {
            t: deque() for t in self.tenants}
        self._seq = 0
        # tenant -> contiguous [n0, n1) slices of the system ledger's
        # entry list; together they partition everything logged from
        # _base_entries on (the decomposition invariant)
        self._slices: List[Tuple[str, int, int]] = []
        self._base_entries = len(system.ledger.entries)
        self._t_first: Optional[float] = None

    # -- admission -----------------------------------------------------------

    def _admit(self, request: Request) -> Request:
        if request.arrival < 0.0:
            raise ValueError("arrival time must be non-negative")
        self.stats[request.tenant].submitted += 1
        self._pending.append(request)
        self.requests.append(request)
        return request

    def submit(self, tenant: str, op: str, params: object,
               arrival: float = 0.0) -> Request:
        """Admit one owned call: the runtime lowers (and, policy
        permitting, coalesces) its descriptor at dispatch and destroys
        it after execution."""
        if tenant not in self.tenants:
            raise KeyError(f"unknown tenant {tenant!r}")
        batchable = False
        if self.batching is not None:
            r, w = call_sizes(self.system.layer, op, params)
            batchable = self.batching.batchable(op, r + w)
        self._seq += 1
        return self._admit(Request(tenant=tenant, arrival=arrival,
                                   seq=self._seq, op=op, params=params,
                                   batchable=batchable))

    def submit_plan(self, tenant: str, plan: AccPlan,
                    arrival: float = 0.0) -> Request:
        """Admit one call on a caller-owned, reusable plan (the
        repeated-call serving shape — consecutive executes of the same
        plan hit the schedule cache). Never batched, never destroyed."""
        if tenant not in self.tenants:
            raise KeyError(f"unknown tenant {tenant!r}")
        self._seq += 1
        return self._admit(Request(tenant=tenant, arrival=arrival,
                                   seq=self._seq, plan=plan))

    def submit_arrival(self, a: Arrival) -> Request:
        """Admit one generated arrival (Table 2 params at its scale)."""
        return self.submit(a.tenant, a.op, TABLE2[a.op].params(a.scale),
                           arrival=a.time)

    # -- the virtual-time engine ---------------------------------------------

    def _ingest(self, pending: List[Request], i: int) -> int:
        """Move arrivals due by the clock into tenant queues, shedding
        at full queues (the admission bound), in arrival order."""
        while i < len(pending) and pending[i].arrival <= self.clock:
            r = pending[i]
            i += 1
            queue = self._queues[r.tenant]
            if len(queue) >= self.tenants[r.tenant].max_queue_depth:
                r.shed = True
                self.stats[r.tenant].shed += 1
            else:
                queue.append(r)
        return i

    def _effective_priority(self, head: Request) -> int:
        waited = self.clock - head.arrival
        aged = int(waited // self.aging_quantum)
        return int(self.tenants[head.tenant].qos) - aged

    def _select_units(self) -> List[List[Request]]:
        """Pick this round's dispatch units: up to ``max_concurrency``
        queue heads by effective priority, each optionally extended
        into a batch from its own queue's front."""
        units: List[List[Request]] = []
        while len(units) < self.max_concurrency:
            best: Optional[Request] = None
            for queue in self._queues.values():
                if not queue:
                    continue
                head = queue[0]
                key = (self._effective_priority(head), head.arrival,
                       head.seq)
                if best is None or key < (
                        self._effective_priority(best), best.arrival,
                        best.seq):
                    best = head
            if best is None:
                break
            queue = self._queues[best.tenant]
            queue.popleft()
            unit = [best]
            if self.batching is not None and best.batchable:
                while (len(unit) < self.batching.max_batch and queue
                       and queue[0].batchable
                       and queue[0].op == best.op):
                    unit.append(queue.popleft())
            units.append(unit)
        return units

    def _dispatch(self, unit: List[Request], width: int) -> float:
        """Execute one unit under a round of ``width`` streams; returns
        its finish time on the virtual clock."""
        tenant = unit[0].tenant
        owned: Optional[AccPlan] = None
        if unit[0].plan is not None:
            plan = unit[0].plan
        else:
            plan = coalesce(self.system,
                            [(r.op, r.params) for r in unit])
            owned = plan
        ledger = self.system.ledger
        cache = self.system.schedule_cache
        n0 = len(ledger.entries)
        if cache is not None:
            cache.set_tenant(tenant)
        try:
            result = self.system.runtime.acc_execute(
                plan, functional=self.functional, concurrency=width)
        finally:
            if cache is not None:
                cache.set_tenant(None)
            if owned is not None:
                self.system.runtime.acc_destroy(owned)
        n1 = len(ledger.entries)
        self._slices.append((tenant, n0, n1))
        # the call's contention stretch was ledgered, not returned (the
        # scrub convention): recover it from this call's own entries
        # and fold it into the latency
        stretch = math.fsum(e.result.time for e in ledger.entries[n0:n1]
                            if e.category == "contention")
        finish = self.clock + result.time + stretch
        stats = self.stats[tenant]
        for r in unit:
            r.start = self.clock
            r.finish = finish
            r.result = result
            r.batch_size = len(unit)
            stats.completed += 1
            stats.latencies.append(finish - r.arrival)
            if len(unit) > 1:
                stats.batched_calls += 1
        return finish

    def run(self) -> None:
        """Drain every submitted arrival through the virtual clock."""
        pending = sorted(self._pending,
                         key=lambda r: (r.arrival, r.seq))
        self._pending = []
        if pending and self._t_first is None:
            self._t_first = pending[0].arrival
        i = self._ingest(pending, 0)
        while i < len(pending) or any(self._queues.values()):
            if not any(self._queues.values()):
                # idle: jump the clock to the next arrival
                self.clock = max(self.clock, pending[i].arrival)
                i = self._ingest(pending, i)
                continue
            units = self._select_units()
            finishes = [self._dispatch(u, len(units)) for u in units]
            self.clock = max(finishes)
            i = self._ingest(pending, i)

    # -- attribution & reporting ---------------------------------------------

    def tenant_ledger(self, tenant: str) -> Ledger:
        """This tenant's attributed slice of the system ledger (shared
        :class:`~repro.core.runtime.LedgerEntry` objects, so totals are
        computed over the very entries the system logged)."""
        if tenant not in self.tenants:
            raise KeyError(f"unknown tenant {tenant!r}")
        out = Ledger()
        entries = self.system.ledger.entries
        for t, n0, n1 in self._slices:
            if t == tenant:
                out.entries.extend(entries[n0:n1])
        return out

    def verify_tenant_decomposition(self) -> None:
        """Machine-check the attribution invariant.

        1. The recorded tenant slices exactly partition every ledger
           entry logged since this runtime attached — contiguous, no
           gap, no overlap (anything else means a foreign call was
           interleaved and attribution is void).
        2. Per category, the correctly-rounded sum
           (:func:`math.fsum`) of every tenant's attributed entries
           equals the same sum over the system ledger, in both time
           and energy — joule for joule. With the exact partition of
           (1) the summed multisets are identical and ``fsum`` is
           order-independent, so this holds to the last bit.

        Raises :class:`AssertionError` on any violation.
        """
        entries = self.system.ledger.entries
        pos = self._base_entries
        for tenant, n0, n1 in self._slices:
            if n0 != pos or n1 < n0:
                raise AssertionError(
                    f"tenant slice [{n0}, {n1}) for {tenant!r} does "
                    f"not continue the partition at entry {pos}: a "
                    "call outside the serving runtime interleaved "
                    "with serving dispatches")
            pos = n1
        if pos != len(entries):
            raise AssertionError(
                f"{len(entries) - pos} ledger entries after the last "
                "tenant slice are attributed to no tenant")
        served = entries[self._base_entries:]
        categories = sorted({e.category for e in served})
        by_tenant = {t: self.tenant_ledger(t) for t in self.tenants}
        for category in categories:
            sys_time = math.fsum(e.result.time for e in served
                                 if e.category == category)
            sys_energy = math.fsum(e.result.energy for e in served
                                   if e.category == category)
            ten_time = math.fsum(
                e.result.time for led in by_tenant.values()
                for e in led.entries if e.category == category)
            ten_energy = math.fsum(
                e.result.energy for led in by_tenant.values()
                for e in led.entries if e.category == category)
            if ten_time != sys_time or ten_energy != sys_energy:
                raise AssertionError(
                    f"ledger[{category}] does not decompose: tenants "
                    f"sum to ({ten_time!r}, {ten_energy!r}), system "
                    f"holds ({sys_time!r}, {sys_energy!r})")

    def report(self) -> Dict[str, object]:
        """Serving outcome: per-tenant latency percentiles, goodput
        (completed requests per model second of the serving span) and
        shed counts, plus the system-wide contention total."""
        t0 = self._t_first if self._t_first is not None else 0.0
        span = self.clock - t0
        per_tenant: Dict[str, Dict[str, Union[int, float]]] = {}
        for tenant, stats in self.stats.items():
            lat = sorted(stats.latencies)
            per_tenant[tenant] = {
                "submitted": stats.submitted,
                "shed": stats.shed,
                "completed": stats.completed,
                "batched_calls": stats.batched_calls,
                "p50_latency_s": _percentile(lat, 50.0),
                "p99_latency_s": _percentile(lat, 99.0),
                "goodput_rps": (stats.completed / span
                                if span > 0 else 0.0),
            }
        contention = self.system.contention_total()
        completed = sum(s.completed for s in self.stats.values())
        return {
            "span_s": span,
            "completed": completed,
            "shed": sum(s.shed for s in self.stats.values()),
            "goodput_rps": completed / span if span > 0 else 0.0,
            "contention_time_s": contention.time,
            "contention_energy_j": contention.energy,
            "contended_executes":
                self.system.runtime.counters.contended_executes,
            "tenants": per_tenant,
        }
