"""QoS classes and per-tenant admission configuration.

Every client stream (tenant) the serving runtime multiplexes onto one
:class:`~repro.core.system.MealibSystem` carries a QoS class — its
scheduling priority — and an admission bound on how many lowered
descriptors it may keep queued in the command space at once. Requests
arriving at a full queue are *shed* at admission (counted per tenant,
never executed, never planned into the command space), which is what
keeps an open-loop overload from growing the queue — and the
command-space footprint — without bound.

Priorities are small integers, lower = more urgent. The scheduler ages
queued requests (see :class:`~repro.serving.runtime.ServingRuntime`):
each elapsed ``aging_quantum`` promotes a waiting request by one
priority level, so a bulk-class request behind a sustained interactive
flood is eventually dispatched — priority shapes latency, it never
starves anyone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class QosClass(enum.IntEnum):
    """Scheduling priority of one tenant's stream (lower = sooner)."""

    INTERACTIVE = 0      # latency-sensitive small calls
    STANDARD = 1         # the default
    BULK = 2             # throughput work, happy to wait


@dataclass(frozen=True)
class TenantConfig:
    """One client stream's identity, QoS class and admission bound.

    Attributes:
        tenant: stable identifier (ledger labels, cache tags).
        qos: scheduling priority class.
        max_queue_depth: admission control — the most requests this
            tenant may hold queued (each queued request is a lowered
            descriptor resident in the command space). Arrivals beyond
            it are shed.
    """

    tenant: str
    qos: QosClass = QosClass.STANDARD
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant id must be non-empty")
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got "
                f"{self.max_queue_depth}")
