"""Seeded open-loop traffic generation for the serving bench.

An *open-loop* generator emits arrival timestamps independently of the
server's progress — the offered load is a property of the trace, not of
how fast the stack drains it, which is what makes latency-vs-load
curves honest (a closed loop self-throttles and hides saturation).

Two arrival processes over a configurable op mix (the SAR/STAP/BLAS
operations of Table 2):

* ``poisson`` — exponential inter-arrival gaps at ``rate`` requests
  per second of model time (memoryless steady load);
* ``bursty`` — a batch-Poisson (Erlang-gapped burst) process: bursts
  of ``burst_size`` back-to-back requests whose burst gaps keep the
  *mean* rate at ``rate``. Same offered load, much uglier tail.

Everything is deterministic from ``(seed, stream)`` — one dedicated
:func:`numpy.random.default_rng` stream per tenant trace, so adding a
tenant or changing one trace's length never perturbs another's
arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Default op mix: the BLAS pair the batcher coalesces, plus the
#: SAR/STAP kernels (GEMV for STAP weight application, FFT/RESMP for
#: the SAR imaging chain).
DEFAULT_MIX: Dict[str, float] = {
    "AXPY": 0.3, "DOT": 0.3, "GEMV": 0.2, "FFT": 0.1, "RESMP": 0.1,
}


@dataclass(frozen=True)
class Arrival:
    """One open-loop request arrival."""

    time: float                  # model-time arrival timestamp, s
    tenant: str
    op: str
    scale: float                 # Table 2 data-set scale factor


@dataclass(frozen=True)
class TrafficConfig:
    """One tenant trace's shape.

    Attributes:
        rate: mean offered load, requests per model second.
        n_requests: trace length.
        mix: op -> weight (normalised internally).
        process: ``"poisson"`` or ``"bursty"``.
        burst_size: requests per burst (bursty only).
        scale: Table 2 scale of every generated call.
        start: trace start time offset.
    """

    rate: float
    n_requests: int
    mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MIX))
    process: str = "poisson"
    burst_size: int = 4
    scale: float = 0.004
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.process not in ("poisson", "bursty"):
            raise ValueError(
                f"unknown arrival process {self.process!r}")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if not self.mix or any(w < 0 for w in self.mix.values()) \
                or sum(self.mix.values()) <= 0:
            raise ValueError("mix must hold non-negative weights with "
                             "a positive sum")


def _gaps(config: TrafficConfig, rng: np.random.Generator
          ) -> np.ndarray:
    """Inter-arrival gaps realising the configured process at the
    configured mean rate."""
    n = config.n_requests
    if config.process == "poisson":
        return rng.exponential(1.0 / config.rate, size=n)
    # bursty: zero gaps inside a burst, exponential burst gaps whose
    # mean keeps the overall rate at `rate`
    b = config.burst_size
    n_bursts = (n + b - 1) // b
    burst_gap = b / config.rate
    gaps = np.zeros(n)
    gaps[::b] = rng.exponential(burst_gap, size=n_bursts)
    return gaps


def generate_trace(tenant: str, config: TrafficConfig,
                   seed: int, stream: int = 0) -> List[Arrival]:
    """One tenant's deterministic arrival trace.

    ``(seed, stream)`` seeds a dedicated PRNG stream: traces for
    different ``stream`` indices are independent, and regenerating
    with the same pair is bit-identical.
    """
    rng = np.random.default_rng((seed, stream))
    times = config.start + np.cumsum(_gaps(config, rng))
    ops = sorted(config.mix)
    weights = np.array([config.mix[op] for op in ops], dtype=float)
    weights /= weights.sum()
    choices = rng.choice(len(ops), size=config.n_requests, p=weights)
    return [Arrival(time=float(t), tenant=tenant, op=ops[int(c)],
                    scale=config.scale)
            for t, c in zip(times, choices)]


def merge_traces(*traces: Sequence[Arrival]) -> List[Arrival]:
    """Interleave tenant traces into one arrival-ordered stream.

    Ties break by trace order then position — fully deterministic, so
    the admission order every consumer sees is reproducible.
    """
    tagged: List[Tuple[float, int, int, Arrival]] = []
    for ti, trace in enumerate(traces):
        for pi, a in enumerate(trace):
            tagged.append((a.time, ti, pi, a))
    tagged.sort(key=lambda item: item[:3])
    return [a for _, _, _, a in tagged]


def offered_load(trace: Sequence[Arrival]) -> float:
    """Mean arrival rate of a merged trace (requests per model s)."""
    if len(trace) < 2:
        return 0.0
    span = trace[-1].time - trace[0].time
    return (len(trace) - 1) / span if span > 0 else float("inf")
