"""Multi-tenant serving runtime over one accelerated memory stack.

Multiplexes many independent client streams onto one
:class:`~repro.core.system.MealibSystem`: per-tenant descriptor queues
with QoS classes and admission control (:mod:`repro.serving.qos`),
coalescing of compatible small calls into multi-PASS descriptors
(:mod:`repro.serving.batching`), exact vault-bandwidth contention
pricing with per-tenant ledger attribution, and seeded open-loop
traffic generation for the latency/goodput bench
(:mod:`repro.serving.traffic`). See
:class:`~repro.serving.runtime.ServingRuntime` for the engine and its
determinism/attribution invariants.
"""

from repro.serving.batching import BatchPolicy, call_sizes, coalesce
from repro.serving.qos import QosClass, TenantConfig
from repro.serving.runtime import Request, ServingRuntime, TenantStats
from repro.serving.traffic import (DEFAULT_MIX, Arrival, TrafficConfig,
                                   generate_trace, merge_traces,
                                   offered_load)

__all__ = [
    "Arrival",
    "BatchPolicy",
    "DEFAULT_MIX",
    "QosClass",
    "Request",
    "ServingRuntime",
    "TenantConfig",
    "TenantStats",
    "TrafficConfig",
    "call_sizes",
    "coalesce",
    "generate_trace",
    "merge_traces",
    "offered_load",
]
