"""Dense BLAS routines (the MKL stand-in), implemented from scratch.

Semantics follow CBLAS: flat arrays with explicit increments for Level-1,
row-major matrices with leading dimensions for Level-2/3. numpy is used
as the *elementwise* compute substrate (the way MKL uses SIMD units), but
algorithmic structure — striding, blocking, triangular solves, rank-k
updates — is implemented here and verified against numpy reference
results in the tests.
"""

from __future__ import annotations

import numpy as np

#: Tile edge used by the blocked Level-3 routines.
BLOCK = 64


def _strided(x: np.ndarray, n: int, inc: int) -> np.ndarray:
    """The CBLAS view: ``n`` elements of ``x`` at increment ``inc``."""
    if n < 0:
        raise ValueError("negative element count")
    if inc == 0:
        raise ValueError("zero increment")
    if inc > 0:
        view = x[: 1 + (n - 1) * inc: inc] if n else x[:0]
    else:
        start = (n - 1) * (-inc)
        view = x[start::inc] if n else x[:0]
    if view.shape[0] != n:
        raise ValueError(
            f"array too small for n={n}, inc={inc} (got {view.shape[0]})")
    return view


def saxpy(n: int, alpha: float, x: np.ndarray, incx: int,
          y: np.ndarray, incy: int) -> None:
    """y := alpha * x + y  (cblas_saxpy)."""
    xv = _strided(x, n, incx)
    yv = _strided(y, n, incy)
    yv += np.float32(alpha) * xv


def scopy(n: int, x: np.ndarray, incx: int, y: np.ndarray,
          incy: int) -> None:
    """y := x  (cblas_scopy)."""
    yv = _strided(y, n, incy)
    yv[:] = _strided(x, n, incx)


def sdot(n: int, x: np.ndarray, incx: int, y: np.ndarray,
         incy: int) -> float:
    """return x . y  (cblas_sdot)."""
    xv = _strided(x, n, incx)
    yv = _strided(y, n, incy)
    return float(np.dot(xv, yv))


def cdotc(n: int, x: np.ndarray, incx: int, y: np.ndarray,
          incy: int) -> complex:
    """return conj(x) . y  (cblas_cdotc_sub)."""
    xv = _strided(x, n, incx)
    yv = _strided(y, n, incy)
    return complex(np.dot(np.conj(xv), yv))


def sgemv(trans: bool, m: int, n: int, alpha: float, a: np.ndarray,
          lda: int, x: np.ndarray, incx: int, beta: float,
          y: np.ndarray, incy: int) -> None:
    """y := alpha * op(A) x + beta * y with A row-major m x n
    (cblas_sgemv, CblasRowMajor)."""
    if lda < n:
        raise ValueError("lda must be >= n for a row-major matrix")
    mat = a[: m * lda].reshape(m, lda)[:, :n]
    if trans:
        xv = _strided(x, m, incx)
        yv = _strided(y, n, incy)
        prod = mat.T @ xv
    else:
        xv = _strided(x, n, incx)
        yv = _strided(y, m, incy)
        prod = mat @ xv
    yv *= np.float32(beta) if yv.dtype == np.float32 else beta
    yv += np.asarray(alpha * prod, dtype=yv.dtype)


def cherk(upper: bool, n: int, k: int, alpha: float, a: np.ndarray,
          beta: float, c: np.ndarray) -> None:
    """C := alpha * A A^H + beta * C on the stored triangle (cblas_cherk).

    ``a`` is row-major ``n x k`` complex, ``c`` row-major ``n x n``
    complex. The update is computed tile-by-tile (the way a blocked BLAS
    implements it) and only the selected triangle of C is written — the
    other triangle is left untouched, as BLAS mandates.
    """
    amat = a.reshape(n, k)
    cmat = c.reshape(n, n)
    for i0 in range(0, n, BLOCK):
        i1 = min(i0 + BLOCK, n)
        for j0 in range(0, n, BLOCK):
            j1 = min(j0 + BLOCK, n)
            if upper and j1 <= i0:
                continue
            if not upper and j0 >= i1:
                continue
            tile = alpha * (amat[i0:i1] @ amat[j0:j1].conj().T)
            tile += beta * cmat[i0:i1, j0:j1]
            # mask to the triangle within diagonal tiles
            rows = np.arange(i0, i1)[:, None]
            cols = np.arange(j0, j1)[None, :]
            keep = cols >= rows if upper else cols <= rows
            block = cmat[i0:i1, j0:j1]
            block[keep] = tile[keep]


def ctrsm_left_lower(n: int, m: int, alpha: complex, a: np.ndarray,
                     b: np.ndarray, unit_diag: bool = False) -> None:
    """Solve L X = alpha B for X, overwriting B (cblas_ctrsm, Left/Lower/
    NoTrans). ``a`` is row-major n x n (lower triangle used), ``b`` is
    row-major n x m. Blocked forward substitution."""
    lmat = a.reshape(n, n)
    bmat = b.reshape(n, m)
    if alpha != 1.0:
        bmat *= alpha
    for j0 in range(0, n, BLOCK):
        j1 = min(j0 + BLOCK, n)
        # solve the diagonal block by scalar forward substitution rows
        for i in range(j0, j1):
            if i > j0:
                bmat[i] -= lmat[i, j0:i] @ bmat[j0:i]
            if not unit_diag:
                bmat[i] /= lmat[i, i]
        # eliminate from the trailing rows
        if j1 < n:
            bmat[j1:] -= lmat[j1:, j0:j1] @ bmat[j0:j1]


def ctrsm_left_upper(n: int, m: int, alpha: complex, a: np.ndarray,
                     b: np.ndarray, unit_diag: bool = False) -> None:
    """Solve U X = alpha B for X, overwriting B (Left/Upper/NoTrans).
    Blocked backward substitution."""
    umat = a.reshape(n, n)
    bmat = b.reshape(n, m)
    if alpha != 1.0:
        bmat *= alpha
    j0_list = list(range(0, n, BLOCK))
    for j0 in reversed(j0_list):
        j1 = min(j0 + BLOCK, n)
        for i in range(j1 - 1, j0 - 1, -1):
            if i < j1 - 1:
                bmat[i] -= umat[i, i + 1:j1] @ bmat[i + 1:j1]
            if not unit_diag:
                bmat[i] /= umat[i, i]
        if j0 > 0:
            bmat[:j0] -= umat[:j0, j0:j1] @ bmat[j0:j1]


def cpotrf_lower(n: int, a: np.ndarray) -> None:
    """Cholesky factorisation A = L L^H, lower triangle in place.

    STAP's covariance solve needs a factorisation feeding the two ctrsm
    calls; MKL's LAPACK provides it, so our stand-in does too. Blocked
    right-looking algorithm.
    """
    amat = a.reshape(n, n)
    for k0 in range(0, n, BLOCK):
        k1 = min(k0 + BLOCK, n)
        # factor the diagonal block (unblocked)
        for j in range(k0, k1):
            amat[j, j] = np.sqrt(
                (amat[j, j] - np.vdot(amat[j, k0:j], amat[j, k0:j])).real)
            for i in range(j + 1, k1):
                amat[i, j] = (amat[i, j]
                              - amat[i, k0:j] @ np.conj(amat[j, k0:j])
                              ) / amat[j, j]
        if k1 < n:
            # panel solve: rows below, columns of this block
            panel = amat[k1:, k0:k1]
            diag = amat[k0:k1, k0:k1]
            # panel := panel * inv(L_diag^H): solve X L^H = panel
            lh = np.conj(diag.T)
            for i in range(panel.shape[0]):
                row = panel[i]
                for j in range(k1 - k0):
                    row[j] = (row[j] - row[:j] @ lh[:j, j]) / lh[j, j]
            # trailing update
            amat[k1:, k1:] -= panel @ np.conj(panel.T)
    # zero the strict upper triangle for a clean L
    iu = np.triu_indices(n, 1)
    amat[iu] = 0
