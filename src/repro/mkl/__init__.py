"""The software library baseline: an MKL/FFTW stand-in built from scratch.

Functional semantics match the routines in the paper's Table 1 and
Table 4; every routine is verified against numpy/scipy references in
``tests/mkl``. :mod:`repro.mkl.profiles` characterises each operation for
the performance models.
"""

from repro.mkl.blas import (cdotc, cherk, cpotrf_lower, ctrsm_left_lower,
                            ctrsm_left_upper, saxpy, scopy, sdot, sgemv)
from repro.mkl.fftw import (FFTW_BACKWARD, FFTW_FORWARD, FftwError, IoDim,
                            Plan, execute, fft_bluestein, fft_flops,
                            fft_radix2, plan_dft_1d, plan_guru_dft)
from repro.mkl.profiles import (OpProfile, axpy_profile, cdotc_profile,
                                cherk_profile, ctrsm_profile, dot_profile,
                                fft2d_profile, fft_profile, gemv_profile,
                                reshp_profile, resmp_profile, spmv_profile)
from repro.mkl.resample import (CubicSpline1D, ResampleError,
                                fit_cubic_spline, interpolate_1d,
                                resample_flops, thomas_solve)
from repro.mkl.sparse import (CsrMatrix, SparseError,
                              random_geometric_graph, scsrgemv, spmv_flops)
from repro.mkl.transpose import simatcopy, somatcopy

__all__ = [
    "cdotc", "cherk", "cpotrf_lower", "ctrsm_left_lower",
    "ctrsm_left_upper", "saxpy", "scopy", "sdot", "sgemv",
    "FFTW_BACKWARD", "FFTW_FORWARD", "FftwError", "IoDim", "Plan",
    "execute", "fft_bluestein", "fft_flops", "fft_radix2",
    "plan_dft_1d", "plan_guru_dft",
    "OpProfile", "axpy_profile", "cdotc_profile", "cherk_profile",
    "ctrsm_profile", "dot_profile", "fft2d_profile", "fft_profile",
    "gemv_profile", "reshp_profile", "resmp_profile", "spmv_profile",
    "CubicSpline1D", "ResampleError", "fit_cubic_spline", "interpolate_1d",
    "resample_flops", "thomas_solve", "CsrMatrix", "SparseError",
    "random_geometric_graph", "scsrgemv", "spmv_flops", "simatcopy",
    "somatcopy",
]
