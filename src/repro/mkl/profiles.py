"""Operation profiles: the single source of truth for op characteristics.

Every library operation is summarised as an :class:`OpProfile` — flop
count, bytes read/written, and dominant access pattern. Host CPU models
consume profiles through a roofline (compute vs. achieved bandwidth);
accelerators additionally expand the same quantities into concrete DRAM
access streams. Keeping both sides keyed off one profile guarantees the
comparison platforms run *the same operation*.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from repro.mkl.sparse import CsrMatrix

#: Access-pattern classes, in decreasing CPU friendliness.
PATTERNS = ("stream", "blocked", "gather", "transpose")

FLOAT = 4
COMPLEX = 8


@dataclass(frozen=True)
class OpProfile:
    """Machine-independent characterisation of one library operation.

    Attributes:
        name: accelerator opcode name ('AXPY', 'DOT', ...).
        flops: floating-point operations.
        bytes_read: payload bytes read from memory.
        bytes_written: payload bytes written to memory.
        pattern: dominant access pattern (one of :data:`PATTERNS`).
        passes: number of full sweeps over the data (multi-pass
            algorithms such as 2-D FFT re-visit memory).
        threads: thread count the *library* runs this op with, when it
            differs from the platform default (MKL's simatcopy is
            sequential, for instance). None = platform default.
    """

    name: str
    flops: float
    bytes_read: int
    bytes_written: int
    pattern: str = "stream"
    passes: int = 1
    threads: int = None

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("profile quantities must be non-negative")

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte — what decides memory- vs compute-bounded."""
        return self.flops / self.bytes_total if self.bytes_total else 0.0


def axpy_profile(n: int) -> OpProfile:
    """y := a x + y over length-n float vectors."""
    return OpProfile("AXPY", flops=2.0 * n, bytes_read=2 * n * FLOAT,
                     bytes_written=n * FLOAT)


def dot_profile(n: int) -> OpProfile:
    """x . y over length-n float vectors."""
    return OpProfile("DOT", flops=2.0 * n, bytes_read=2 * n * FLOAT,
                     bytes_written=0)


def cdotc_profile(n: int) -> OpProfile:
    """conj(x) . y over length-n complex vectors (8 flops/element)."""
    return OpProfile("DOT", flops=8.0 * n, bytes_read=2 * n * COMPLEX,
                     bytes_written=0)


def gemv_profile(m: int, n: int) -> OpProfile:
    """y := A x, A m-by-n float: the matrix read dominates."""
    return OpProfile("GEMV", flops=2.0 * m * n,
                     bytes_read=(m * n + n) * FLOAT,
                     bytes_written=m * FLOAT)


def spmv_profile(a: CsrMatrix, index_bytes: int = 4) -> OpProfile:
    """y := A x for CSR A: streams values+indices, gathers x."""
    read = (a.nnz * (FLOAT + index_bytes)       # data + column indices
            + (a.rows + 1) * index_bytes        # row pointers
            + a.nnz * FLOAT)                    # gathered x elements
    return OpProfile("SPMV", flops=2.0 * a.nnz, bytes_read=read,
                     bytes_written=a.rows * FLOAT, pattern="gather")


def resmp_profile(n_in: int, n_out: int, blocks: int = 1) -> OpProfile:
    """Cubic resampling of ``blocks`` independent complex series."""
    flops = blocks * (20.0 * n_in + 12.0 * n_out) * 2   # re + im
    read = blocks * (n_in * COMPLEX + n_out * FLOAT)
    return OpProfile("RESMP", flops=flops, bytes_read=read,
                     bytes_written=blocks * n_out * COMPLEX)


def fft_profile(n: int, batch: int = 1) -> OpProfile:
    """Batched complex 1-D FFTs of power-of-two length ``n``."""
    flops = 5.0 * n * log2(n) * batch if n > 1 else 0.0
    moved = n * batch * COMPLEX
    return OpProfile("FFT", flops=flops, bytes_read=moved,
                     bytes_written=moved, pattern="blocked")


def fft2d_profile(rows: int, cols: int) -> OpProfile:
    """2-D complex FFT = row pass + column pass (two memory sweeps)."""
    flops = 5.0 * cols * log2(cols) * rows + 5.0 * rows * log2(rows) * cols
    moved = rows * cols * COMPLEX
    return OpProfile("FFT", flops=flops, bytes_read=2 * moved,
                     bytes_written=2 * moved, pattern="blocked", passes=2)


def reshp_profile(rows: int, cols: int,
                  elem_bytes: int = FLOAT) -> OpProfile:
    """Matrix transpose: zero flops, pure layout change."""
    moved = rows * cols * elem_bytes
    return OpProfile("RESHP", flops=0.0, bytes_read=moved,
                     bytes_written=moved, pattern="transpose",
                     threads=1)      # mkl_simatcopy is sequential


def cherk_profile(n: int, k: int) -> OpProfile:
    """C := A A^H + C, n-by-k complex A: compute-bounded (Level-3)."""
    return OpProfile("CHERK", flops=4.0 * n * n * k,
                     bytes_read=(n * k + n * n // 2) * COMPLEX,
                     bytes_written=(n * n // 2) * COMPLEX,
                     pattern="blocked")


def ctrsm_profile(n: int, m: int) -> OpProfile:
    """Triangular solve with m right-hand sides: compute-bounded."""
    return OpProfile("CTRSM", flops=4.0 * n * n * m,
                     bytes_read=(n * n // 2 + n * m) * COMPLEX,
                     bytes_written=n * m * COMPLEX, pattern="blocked")
