"""Sparse BLAS: CSR matrices, SpMV, and the RGG workload generator.

The paper accelerates ``mkl_scsrgemv`` and evaluates it on ``rgg`` (a
random geometric graph) from the UF Sparse Matrix Collection. The
collection isn't available offline, so :func:`random_geometric_graph`
generates the same structural class — uniform points in the unit square
connected within a radius — with cell-binned neighbour search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class SparseError(Exception):
    """Raised on malformed CSR structures."""


@dataclass(frozen=True)
class CsrMatrix:
    """Compressed sparse row matrix (0-based indices).

    Attributes:
        indptr: row pointers, length rows+1.
        indices: column index per stored value.
        data: stored values (float32).
        shape: (rows, cols).
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple

    def __post_init__(self) -> None:
        rows, _ = self.shape
        if len(self.indptr) != rows + 1:
            raise SparseError("indptr length must be rows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise SparseError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise SparseError("indices and data length mismatch")
        if len(self.indices) and (self.indices.min() < 0
                                  or self.indices.max() >= self.shape[1]):
            raise SparseError("column index out of range")

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def rows(self) -> int:
        return self.shape[0]

    @property
    def avg_row_nnz(self) -> float:
        return self.nnz / self.rows if self.rows else 0.0

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype)
        for r in range(self.rows):
            lo, hi = self.indptr[r], self.indptr[r + 1]
            out[r, self.indices[lo:hi]] = self.data[lo:hi]
        return out


def scsrgemv(a: CsrMatrix, x: np.ndarray, y: np.ndarray) -> None:
    """y := A x for CSR A (mkl_scsrgemv, 0-based variant).

    Implemented as gather + segmented reduction (``np.add.reduceat``),
    which mirrors how a real SpMV kernel streams ``data``/``indices``
    while gathering from ``x``.
    """
    rows, cols = a.shape
    if len(x) < cols or len(y) < rows:
        raise SparseError("vector operands too small")
    products = (a.data * x[a.indices]).astype(np.float64)
    # segmented sum via prefix sums: exact for empty rows, unlike reduceat
    prefix = np.zeros(a.nnz + 1, dtype=np.float64)
    np.cumsum(products, out=prefix[1:])
    y[:rows] = (prefix[a.indptr[1:]] - prefix[a.indptr[:-1]]).astype(
        y.dtype)


def random_geometric_graph(n: int, radius: float = None,
                           seed: int = 0) -> CsrMatrix:
    """Build the adjacency matrix of a random geometric graph in CSR form.

    Points are uniform in the unit square; an edge joins points closer
    than ``radius`` (default chosen to give the connectivity regime of
    the UF ``rgg`` matrices, ~15 neighbours per vertex). Neighbour
    search is cell-binned so generation is near-linear in ``n``.
    """
    rng = np.random.default_rng(seed)
    if radius is None:
        radius = np.sqrt(15.0 / (np.pi * n))
    pts = rng.random((n, 2))
    cell = radius
    grid = {}
    cells = np.floor(pts / cell).astype(np.int64)
    for i, (cx, cy) in enumerate(cells):
        grid.setdefault((cx, cy), []).append(i)
    indptr = np.zeros(n + 1, dtype=np.int64)
    cols_per_row = []
    r2 = radius * radius
    for i in range(n):
        cx, cy = cells[i]
        neigh = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neigh.extend(grid.get((cx + dx, cy + dy), ()))
        cand = np.array([j for j in neigh if j != i], dtype=np.int64)
        if len(cand):
            d2 = np.sum((pts[cand] - pts[i]) ** 2, axis=1)
            hit = np.sort(cand[d2 < r2])
        else:
            hit = cand
        cols_per_row.append(hit)
        indptr[i + 1] = indptr[i] + len(hit)
    indices = (np.concatenate(cols_per_row) if n
               else np.zeros(0, dtype=np.int64))
    data = rng.random(len(indices)).astype(np.float32)
    return CsrMatrix(indptr=indptr, indices=indices, data=data,
                     shape=(n, n))


def spmv_flops(a: CsrMatrix) -> float:
    """2 flops per stored nonzero."""
    return 2.0 * a.nnz
