"""1-D data resampling (the MKL data-fitting ``dfsInterpolate1D`` stand-in).

Constructs a natural cubic spline over the input samples (tridiagonal
system solved with the Thomas algorithm, implemented here) and evaluates
it at the requested sites. A linear mode is provided as the cheap
alternative MKL also offers. This is the RESMP operation the SAR range
interpolation chain uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class ResampleError(Exception):
    """Raised on malformed interpolation inputs."""


def thomas_solve(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray,
                 rhs: np.ndarray) -> np.ndarray:
    """Solve a tridiagonal system in O(n) (Thomas algorithm).

    ``lower[i]`` multiplies x[i-1] in row i (lower[0] unused); ``upper[i]``
    multiplies x[i+1] (upper[-1] unused).
    """
    n = len(diag)
    if not (len(lower) == len(upper) == len(rhs) == n):
        raise ResampleError("tridiagonal bands must have equal length")
    cp = np.empty(n, dtype=np.float64)
    dp = np.empty(n, dtype=np.float64)
    if diag[0] == 0:
        raise ResampleError("singular tridiagonal system")
    cp[0] = upper[0] / diag[0]
    dp[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] * cp[i - 1]
        if denom == 0:
            raise ResampleError("singular tridiagonal system")
        cp[i] = upper[i] / denom
        dp[i] = (rhs[i] - lower[i] * dp[i - 1]) / denom
    x = np.empty(n, dtype=np.float64)
    x[-1] = dp[-1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] * x[i + 1]
    return x


@dataclass(frozen=True)
class CubicSpline1D:
    """A natural cubic spline fit over sorted knots."""

    x: np.ndarray
    y: np.ndarray
    second_derivs: np.ndarray

    def evaluate(self, sites: np.ndarray) -> np.ndarray:
        """Evaluate the spline at ``sites`` (clamped to the knot range)."""
        xs = np.clip(sites, self.x[0], self.x[-1])
        idx = np.clip(np.searchsorted(self.x, xs) - 1, 0, len(self.x) - 2)
        x0, x1 = self.x[idx], self.x[idx + 1]
        h = x1 - x0
        a = (x1 - xs) / h
        b = (xs - x0) / h
        return (a * self.y[idx] + b * self.y[idx + 1]
                + ((a ** 3 - a) * self.second_derivs[idx]
                   + (b ** 3 - b) * self.second_derivs[idx + 1])
                * h * h / 6.0)


def fit_cubic_spline(x: np.ndarray, y: np.ndarray) -> CubicSpline1D:
    """Fit a natural cubic spline (zero curvature at the ends)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = len(x)
    if n < 3:
        raise ResampleError("spline needs at least 3 knots")
    if len(y) != n:
        raise ResampleError("x and y length mismatch")
    h = np.diff(x)
    if np.any(h <= 0):
        raise ResampleError("knots must be strictly increasing")
    lower = np.zeros(n - 2)
    diag = np.zeros(n - 2)
    upper = np.zeros(n - 2)
    rhs = np.zeros(n - 2)
    for i in range(1, n - 1):
        lower[i - 1] = h[i - 1]
        diag[i - 1] = 2.0 * (h[i - 1] + h[i])
        upper[i - 1] = h[i]
        rhs[i - 1] = 6.0 * ((y[i + 1] - y[i]) / h[i]
                            - (y[i] - y[i - 1]) / h[i - 1])
    inner = thomas_solve(lower, diag, upper, rhs)
    second = np.zeros(n)
    second[1:-1] = inner
    return CubicSpline1D(x=x, y=y, second_derivs=second)


def interpolate_1d(x: np.ndarray, y: np.ndarray, sites: np.ndarray,
                   method: str = "cubic") -> np.ndarray:
    """dfsInterpolate1D: resample ``(x, y)`` at ``sites``.

    Complex inputs (the SAR case) are resampled on real and imaginary
    parts independently, which is what MKL's data-fitting does when the
    application splits components.
    """
    if method not in ("cubic", "linear"):
        raise ResampleError(f"unknown method {method!r}")
    y = np.asarray(y)
    if np.iscomplexobj(y):
        real = interpolate_1d(x, y.real, sites, method)
        imag = interpolate_1d(x, y.imag, sites, method)
        return (real + 1j * imag).astype(y.dtype)
    if method == "linear":
        return np.interp(sites, x, y)
    return fit_cubic_spline(x, y).evaluate(np.asarray(sites))


def resample_flops(n_in: int, n_out: int, method: str = "cubic") -> float:
    """Approximate flop count: spline fit is ~20 flops/knot (tridiagonal
    setup+solve), evaluation ~12 flops/site; linear is ~4 flops/site."""
    if method == "linear":
        return 4.0 * n_out
    return 20.0 * n_in + 12.0 * n_out
