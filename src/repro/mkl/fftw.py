"""FFTW-style planner API with a from-scratch FFT kernel.

Implements the subset of FFTW's guru interface that the paper's STAP code
uses (Listing 1):

* ``plan_guru_dft(rank=0, ...)`` — no transform dimensions: a pure strided
  copy / data-layout change (the paper maps this to the RESHP engine);
* ``plan_guru_dft(rank=1, ...)`` — batched strided 1-D complex DFTs (the
  paper maps this to the FFT accelerator).

The transform itself is an iterative radix-2 Cooley–Tukey with explicit
bit-reversal, vectorised over the batch dimension, verified against
``numpy.fft`` in the tests. Power-of-two lengths only (as hardware FFT
pipelines require; the paper's workloads are all powers of two).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

FFTW_FORWARD = -1
FFTW_BACKWARD = +1


class FftwError(Exception):
    """Raised on unsupported plans or malformed dimension descriptors."""


@dataclass(frozen=True)
class IoDim:
    """One guru dimension: count plus input/output strides in elements."""

    n: int
    istride: int
    ostride: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise FftwError("dimension count must be positive")


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses ``log2(n)``-bit indices."""
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


def fft_radix2(batch: np.ndarray, sign: int = FFTW_FORWARD) -> np.ndarray:
    """Radix-2 DIT FFT along the last axis of a (batch, n) complex array.

    Args:
        batch: complex array whose last axis has power-of-two length.
        sign: ``FFTW_FORWARD`` (-1) or ``FFTW_BACKWARD`` (+1, unscaled,
            matching FFTW's convention).

    Returns:
        A new array of the same shape with transformed rows.
    """
    n = batch.shape[-1]
    if n & (n - 1):
        raise FftwError(f"FFT length must be a power of two, got {n}")
    if n == 1:
        return batch.copy()
    work = batch[..., _bit_reverse_permutation(n)].astype(
        np.complex64 if batch.dtype == np.complex64 else np.complex128)
    lead = work.shape[:-1]
    span = 1
    while span < n:
        step = span * 2
        angles = sign * math.pi / span * np.arange(span)
        tw = np.exp(1j * angles).astype(work.dtype)
        view = work.reshape(*lead, n // step, 2, span)
        twisted = view[..., 1, :] * tw            # copy of the odd half
        even = view[..., 0, :]
        view[..., 1, :] = even - twisted
        view[..., 0, :] = even + twisted
        span = step
    return work


def fft_bluestein(batch: np.ndarray,
                  sign: int = FFTW_FORWARD) -> np.ndarray:
    """Arbitrary-length DFT via Bluestein's chirp-z algorithm.

    Re-expresses a length-``n`` DFT as a convolution, evaluated with
    three power-of-two FFTs of length >= 2n-1. Extends the library (and
    would extend a hardware FFT pipeline) beyond power-of-two sizes —
    an avenue the paper leaves as future flexibility.
    """
    n = batch.shape[-1]
    if n & (n - 1) == 0:
        return fft_radix2(batch, sign)
    m = 1 << (2 * n - 1).bit_length()
    k = np.arange(n)
    chirp = np.exp(sign * 1j * math.pi * (k * k % (2 * n)) / n)
    a = np.zeros(batch.shape[:-1] + (m,), dtype=np.complex128)
    a[..., :n] = batch * chirp
    b = np.zeros(m, dtype=np.complex128)
    b[:n] = np.conj(chirp)
    b[m - n + 1:] = np.conj(chirp[1:][::-1])
    fa = fft_radix2(a)
    fb = fft_radix2(b[None])[0]
    conv = fft_radix2(fa * fb, FFTW_BACKWARD) / m
    out = conv[..., :n] * chirp
    return out.astype(batch.dtype if np.iscomplexobj(batch)
                      else np.complex128)


def fft_flops(n: int, batch: int = 1) -> float:
    """Standard 5 n log2 n flop count for a complex FFT."""
    return 5.0 * n * math.log2(n) * batch if n > 1 else 0.0


@dataclass
class Plan:
    """An FFTW plan: fixed transform shape bound to fixed buffers."""

    rank: int
    dims: Tuple[IoDim, ...]
    howmany_dims: Tuple[IoDim, ...]
    src: np.ndarray
    dst: np.ndarray
    sign: int

    @property
    def is_copy(self) -> bool:
        """rank-0 plans move data without transforming it."""
        return self.rank == 0

    @property
    def fft_length(self) -> int:
        return self.dims[0].n if self.rank else 1

    @property
    def batch(self) -> int:
        out = 1
        for d in self.howmany_dims:
            out *= d.n
        return out

    @property
    def flops(self) -> float:
        return fft_flops(self.fft_length, self.batch)

    @property
    def elements_moved(self) -> int:
        return self.fft_length * self.batch


def plan_guru_dft(rank: int, dims: Optional[Sequence[IoDim]],
                  howmany_rank: int, howmany_dims: Sequence[IoDim],
                  src: np.ndarray, dst: np.ndarray,
                  sign: int = FFTW_FORWARD) -> Plan:
    """Create a guru plan (fftwf_plan_guru_dft).

    Only rank 0 (strided copy) and rank 1 (batched 1-D DFT) are
    supported — the two shapes the paper's workloads use.
    """
    if rank not in (0, 1):
        raise FftwError(f"unsupported transform rank {rank}")
    if rank >= 1 and (not dims or len(dims) != rank):
        raise FftwError("rank and dims disagree")
    if len(howmany_dims) != howmany_rank:
        raise FftwError("howmany_rank and howmany_dims disagree")
    if sign not in (FFTW_FORWARD, FFTW_BACKWARD):
        raise FftwError(f"bad sign {sign}")
    if not np.iscomplexobj(src) or not np.iscomplexobj(dst):
        raise FftwError("guru dft plans operate on complex arrays")
    return Plan(rank=rank, dims=tuple(dims or ()),
                howmany_dims=tuple(howmany_dims), src=src, dst=dst,
                sign=sign)


def plan_dft_1d(n: int, src: np.ndarray, dst: np.ndarray,
                sign: int = FFTW_FORWARD) -> Plan:
    """The simple interface: one contiguous length-``n`` transform."""
    return plan_guru_dft(1, [IoDim(n, 1, 1)], 0, [], src, dst, sign)


def _iter_batch_offsets(howmany_dims: Sequence[IoDim]
                        ) -> List[Tuple[int, int]]:
    """All (input_offset, output_offset) pairs of the batch space."""
    offsets = [(0, 0)]
    for dim in howmany_dims:
        offsets = [(i + k * dim.istride, o + k * dim.ostride)
                   for i, o in offsets for k in range(dim.n)]
    return offsets


def execute(plan: Plan) -> None:
    """Execute a plan on its bound buffers (fftwf_execute)."""
    src = plan.src.reshape(-1)
    dst = plan.dst.reshape(-1)
    offsets = _iter_batch_offsets(plan.howmany_dims)
    if plan.is_copy:
        for ioff, ooff in offsets:
            dst[ooff] = src[ioff]
        return
    dim = plan.dims[0]
    n = dim.n
    gathered = np.empty((len(offsets), n), dtype=plan.src.dtype)
    for row, (ioff, _) in enumerate(offsets):
        gathered[row] = src[ioff: ioff + n * dim.istride: dim.istride] \
            if dim.istride else src[ioff]
    transformed = fft_radix2(gathered, plan.sign)
    for row, (_, ooff) in enumerate(offsets):
        dst[ooff: ooff + n * dim.ostride: dim.ostride] = transformed[row]
