"""Matrix transpose / copy routines (mkl_simatcopy family).

Blocked implementations: tiles of the source are staged and stored to the
destination so that both sides move dense cache lines — the same
structure the hardware reshape engine uses, here expressed in software.
"""

from __future__ import annotations

import numpy as np

#: Tile edge for the blocked transpose.
TILE = 64


def somatcopy(rows: int, cols: int, alpha: float, a: np.ndarray,
              b: np.ndarray) -> None:
    """B := alpha * A^T, out of place (mkl_somatcopy 'T').

    ``a`` holds a row-major ``rows x cols`` matrix; ``b`` receives the
    row-major ``cols x rows`` transpose.
    """
    src = a[: rows * cols].reshape(rows, cols)
    dst = b[: rows * cols].reshape(cols, rows)
    for i0 in range(0, rows, TILE):
        i1 = min(i0 + TILE, rows)
        for j0 in range(0, cols, TILE):
            j1 = min(j0 + TILE, cols)
            dst[j0:j1, i0:i1] = alpha * src[i0:i1, j0:j1].T


def simatcopy(rows: int, cols: int, alpha: float, a: np.ndarray) -> None:
    """A := alpha * A^T, in place (mkl_simatcopy 'T').

    Square matrices swap tiles across the diagonal; rectangular matrices
    go through a scratch buffer (as MKL itself effectively does).
    """
    if rows == cols:
        mat = a[: rows * cols].reshape(rows, rows)
        for i0 in range(0, rows, TILE):
            i1 = min(i0 + TILE, rows)
            for j0 in range(i0, rows, TILE):
                j1 = min(j0 + TILE, rows)
                upper = mat[i0:i1, j0:j1].copy()
                mat[i0:i1, j0:j1] = alpha * mat[j0:j1, i0:i1].T
                mat[j0:j1, i0:i1] = alpha * upper.T
        return
    scratch = np.empty(rows * cols, dtype=a.dtype)
    somatcopy(rows, cols, alpha, a, scratch)
    a[: rows * cols] = scratch
