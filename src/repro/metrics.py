"""Shared result records and metric helpers (GFLOPS, GFLOPS/W, EDP).

Every execution model in the package — host CPUs, accelerators, the
MEALib runtime — reports an :class:`ExecResult`. The evaluation harness
combines them with the metric helpers the paper uses: GFLOPS for
performance (GB/s for the flop-free RESHP), GFLOPS/W for energy
efficiency, and energy-delay product for the STAP comparison.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExecResult:
    """Time and energy of one execution.

    Attributes:
        time: wall-clock seconds.
        energy: joules.
    """

    time: float
    energy: float

    def __post_init__(self) -> None:
        if self.time < 0 or self.energy < 0:
            raise ValueError("time and energy must be non-negative")

    @property
    def power(self) -> float:
        """Average power in watts."""
        return self.energy / self.time if self.time > 0 else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s), the paper's efficiency metric for
        STAP (Gonzalez & Horowitz)."""
        return self.energy * self.time

    def plus(self, other: "ExecResult") -> "ExecResult":
        """Sequential composition: times and energies add."""
        return ExecResult(self.time + other.time,
                          self.energy + other.energy)

    def repeated(self, times: int) -> "ExecResult":
        """The same execution performed ``times`` times back to back."""
        if times < 0:
            raise ValueError("repeat count must be non-negative")
        return ExecResult(self.time * times, self.energy * times)


ZERO = ExecResult(0.0, 0.0)


def gflops(flops: float, result: ExecResult) -> float:
    """Performance in giga floating-point operations per second."""
    return flops / result.time / 1e9 if result.time > 0 else 0.0


def gbytes_per_s(n_bytes: float, result: ExecResult) -> float:
    """Throughput in GB/s (used for RESHP, which has no flops)."""
    return n_bytes / result.time / 1e9 if result.time > 0 else 0.0


def gflops_per_watt(flops: float, result: ExecResult) -> float:
    """Energy efficiency in GFLOPS per watt = flops / energy / 1e9."""
    return flops / result.energy / 1e9 if result.energy > 0 else 0.0


def speedup(baseline: ExecResult, contender: ExecResult) -> float:
    """How many times faster ``contender`` is than ``baseline``."""
    if contender.time <= 0:
        raise ValueError("contender time must be positive")
    return baseline.time / contender.time


def efficiency_gain(baseline: ExecResult, contender: ExecResult,
                    flops: float = 1.0) -> float:
    """GFLOPS/W ratio of contender over baseline (flops cancel)."""
    if contender.energy <= 0 or baseline.energy <= 0:
        raise ValueError("energies must be positive")
    return baseline.energy / contender.energy


def edp_gain(baseline: ExecResult, contender: ExecResult) -> float:
    """EDP ratio of baseline over contender (>1 means contender wins)."""
    if contender.edp <= 0:
        raise ValueError("contender EDP must be positive")
    return baseline.edp / contender.edp
