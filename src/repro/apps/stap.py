"""STAP (Space-Time Adaptive Processing) from the PERFECT suite.

The paper's real-world application (Section 3.1, Listing 1; evaluated in
Figs 13/14). The legacy program is written in the C subset and uses the
five Table 4 library functions:

1. corner turn — ``fftwf_plan_guru_dft`` rank-0 (→ RESHP);
2. Doppler processing — batched ``fftwf_execute`` (→ FFT), chained with
   the corner turn into one PASS by the compiler;
3. covariance + weight solve — ``cblas_cherk`` / ``cpotrf`` /
   ``cblas_ctrsm`` per (doppler, block), compute-bounded, kept on the
   host;
4. adaptive weighting — an OpenMP nest of ``cblas_cdotc_sub`` inner
   products, collapsed by the compiler into one LOOP descriptor;
5. detection normalisation — an OpenMP'd ``cblas_saxpy`` sweep, another
   LOOP descriptor.

That yields exactly 3 accelerator descriptors, as the paper reports for
its 17 M-call STAP. Radar data is synthetic (the PERFECT input set is
not redistributable); sizes are scaled so the functional run is
laptop-fast, with the paper-size extrapolation handled by the models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.compiler.interp import RunOutcome, run_original, run_translated
from repro.core.system import MealibSystem
from repro.host.cpu import CpuModel


@dataclass(frozen=True)
class StapConfig:
    """Dimensions of one STAP problem instance.

    The datacube is stored pulse-major as ``[n_pulse][n_cr]`` where
    ``n_cr`` is the channel*range product, so the corner turn is a
    single 2-D transpose (which is also what lets the compiler chain it
    with the Doppler FFT).
    """

    name: str
    n_pulse: int          # Doppler FFT length (power of two)
    n_cr: int             # channel x range product
    n_dop: int            # doppler bins processed adaptively
    n_blocks: int         # training blocks
    tdof: int             # space-time degrees of freedom
    n_steering: int       # steering vectors
    tbs: int              # training-block snapshots

    @property
    def dot_calls(self) -> int:
        return self.n_dop * self.n_blocks * self.n_steering * self.tbs

    @property
    def axpy_chunks(self) -> int:
        return self.n_dop * self.n_blocks

    @property
    def library_calls(self) -> int:
        """Total library calls in the original program."""
        host = 4 * self.n_dop * self.n_blocks   # cherk+potrf+2 trsm
        return 2 + host + self.dot_calls + self.axpy_chunks


#: Functional presets: small enough that the numerics run in seconds,
#: used by tests/examples to validate baseline == MEALib outputs.
PRESETS: Dict[str, StapConfig] = {
    "small": StapConfig(name="small", n_pulse=32, n_cr=64, n_dop=4,
                        n_blocks=2, tdof=16, n_steering=4, tbs=24),
    "medium": StapConfig(name="medium", n_pulse=64, n_cr=128, n_dop=6,
                         n_blocks=2, tdof=24, n_steering=6, tbs=36),
    "large": StapConfig(name="large", n_pulse=128, n_cr=256, n_dop=8,
                        n_blocks=3, tdof=32, n_steering=8, tbs=48),
}

#: Paper-scale presets for the Fig 13/14 timing runs (timing models
#: only; the large set reaches the paper's ~16.7M cdotc calls). The
#: dimensions follow PERFECT STAP's scaling: DOF and steering grow with
#: the set, the large set's adaptive-weighting nest hits 2^24 calls.
PAPER_PRESETS: Dict[str, StapConfig] = {
    "small": StapConfig(name="small", n_pulse=256, n_cr=8192, n_dop=128,
                        n_blocks=4, tdof=80, n_steering=16, tbs=256),
    "medium": StapConfig(name="medium", n_pulse=512, n_cr=12288,
                         n_dop=192, n_blocks=4, tdof=80, n_steering=32,
                         tbs=256),
    "large": StapConfig(name="large", n_pulse=512, n_cr=16384, n_dop=256,
                        n_blocks=4, tdof=72, n_steering=64, tbs=256),
}


def stap_source(cfg: StapConfig) -> str:
    """The legacy STAP program in the C subset (Listing 1's shape)."""
    c = cfg
    det_len = c.n_dop * c.n_blocks * c.n_steering * c.tbs * 2
    chunk = det_len // c.axpy_chunks
    return f"""
// STAP: Space-Time Adaptive Processing (PERFECT), MKL+FFTW+OpenMP
#define N_PULSE {c.n_pulse}
#define N_CR {c.n_cr}
#define N_DOP {c.n_dop}
#define N_BLOCKS {c.n_blocks}
#define TDOF {c.tdof}
#define N_STEERING {c.n_steering}
#define TBS {c.tbs}
#define DET_CHUNK {chunk}

complex *datacube;
complex *pulse_major;
complex *doppler;
complex snapshots[N_DOP][N_BLOCKS][TDOF][TBS];
complex cov[N_DOP][N_BLOCKS][TDOF][TDOF];
complex wts[N_DOP][N_BLOCKS][N_STEERING][TDOF];
complex prods[N_DOP][N_BLOCKS][N_STEERING][TBS];
float det_in[N_DOP][N_BLOCKS][DET_CHUNK];
float det_out[N_DOP][N_BLOCKS][DET_CHUNK];
fftwf_plan plan_ct;
fftwf_plan plan_fft;
fftw_iodim howmany_ct[2] = {{{{N_PULSE, N_CR, 1}}, {{N_CR, 1, N_PULSE}}}};
fftw_iodim dims[1] = {{{{N_PULSE, 1, 1}}}};
fftw_iodim howmany_fft[1] = {{{{N_CR, N_PULSE, N_PULSE}}}};
int dop;
int block;
int sv;
int cell;

// data allocation
datacube = malloc(sizeof(complex) * N_PULSE * N_CR);
pulse_major = malloc(sizeof(complex) * N_CR * N_PULSE);
doppler = malloc(sizeof(complex) * N_CR * N_PULSE);

// data copy (corner turn) + Doppler FFT: chained by the compiler
plan_ct = fftwf_plan_guru_dft(0, NULL, 2, howmany_ct,
                              datacube, pulse_major,
                              FFTW_FORWARD, FFTW_WISDOM_ONLY);
plan_fft = fftwf_plan_guru_dft(1, dims, 1, howmany_fft,
                               pulse_major, doppler,
                               FFTW_FORWARD, FFTW_WISDOM_ONLY);
fftwf_execute(plan_ct);
fftwf_execute(plan_fft);

// covariance estimation + weight solve: compute-bounded, on the host
for (dop = 0; dop < N_DOP; ++dop) {{
  for (block = 0; block < N_BLOCKS; ++block) {{
    cblas_cherk(TDOF, TBS, 1.0, &snapshots[dop][block][0][0],
                0.0, &cov[dop][block][0][0]);
    cpotrf_lower(TDOF, &cov[dop][block][0][0]);
    cblas_ctrsm_lower(TDOF, N_STEERING, &cov[dop][block][0][0],
                      &wts[dop][block][0][0]);
    cblas_ctrsm_upper(TDOF, N_STEERING, &cov[dop][block][0][0],
                      &wts[dop][block][0][0]);
  }}
}}

// multiple parallel inner products (adaptive weighting)
#pragma omp parallel for
for (dop = 0; dop < N_DOP; ++dop)
  for (block = 0; block < N_BLOCKS; ++block)
    for (sv = 0; sv < N_STEERING; ++sv)
      for (cell = 0; cell < TBS; ++cell)
        cblas_cdotc_sub(TDOF, &wts[dop][block][sv][0], 1,
                        &snapshots[dop][block][0][cell], TBS,
                        &prods[dop][block][sv][cell]);

// detection normalisation (vector scaling and accumulate)
#pragma omp parallel for
for (dop = 0; dop < N_DOP; ++dop)
  for (block = 0; block < N_BLOCKS; ++block)
    cblas_saxpy(DET_CHUNK, 0.5, &det_in[dop][block][0], 1,
                &det_out[dop][block][0], 1);

free(datacube);
"""


def stap_inputs(cfg: StapConfig, seed: int = 0) -> Dict[str, np.ndarray]:
    """Synthetic radar returns + training snapshots + steering weights."""
    c = cfg
    rng = np.random.default_rng(seed)

    def cnormal(*shape):
        return (rng.standard_normal(shape)
                + 1j * rng.standard_normal(shape)).astype(np.complex64)

    snapshots = cnormal(c.n_dop, c.n_blocks, c.tdof, c.tbs)
    # seed wts with the steering vectors (the solve runs in place)
    steering = cnormal(c.n_steering, c.tdof)
    wts = np.broadcast_to(
        steering, (c.n_dop, c.n_blocks, c.n_steering, c.tdof)).copy()
    det_len = c.dot_calls * 2 // c.axpy_chunks
    return {
        "datacube": cnormal(c.n_pulse, c.n_cr),
        "snapshots": snapshots,
        "wts": wts,
        "det_in": rng.standard_normal(
            (c.n_dop, c.n_blocks, det_len)).astype(np.float32),
        "det_out": np.zeros((c.n_dop, c.n_blocks, det_len),
                            dtype=np.float32),
    }


def run_stap_baseline(cfg: StapConfig, host: Optional[CpuModel] = None,
                      seed: int = 0) -> RunOutcome:
    """The optimised MKL+OpenMP baseline on the host CPU."""
    return run_original(stap_source(cfg), host=host,
                        inputs=stap_inputs(cfg, seed))


def run_stap_mealib(cfg: StapConfig,
                    system: Optional[MealibSystem] = None,
                    seed: int = 0) -> RunOutcome:
    """STAP compiled by the source-to-source compiler, run on MEALib."""
    return run_translated(stap_source(cfg), system=system,
                          inputs=stap_inputs(cfg, seed))


@dataclass(frozen=True)
class StapGains:
    """One Fig 13 data point plus the Fig 14 breakdown inputs."""

    preset: str
    speedup: float
    edp_gain: float
    host_time_share: float
    host_energy_share: float
    invocation_time_share: float       # of total accelerator-side time
    invocation_energy_share: float
    accel_time_shares: Dict[str, float]
    accel_energy_shares: Dict[str, float]
    descriptors: int
    original_calls: int


def stap_gains(preset: str, system: Optional[MealibSystem] = None
               ) -> StapGains:
    """Run one paper-scale STAP set through both paths (timing models
    only) and assemble the Fig 13/14 quantities."""
    from repro.compiler.interp import baseline_timing
    cfg = PAPER_PRESETS[preset]
    source = stap_source(cfg)
    baseline = baseline_timing(source)
    sys_ = system if system is not None else MealibSystem(
        stack_bytes=8 << 30)
    mealib = run_translated(source, system=sys_, functional=False)
    host, accel, invocation = sys_.breakdown()
    total = sys_.total()
    accel_side = accel.plus(invocation)
    by_accel = sys_.ledger.by_label("accelerator")
    return StapGains(
        preset=preset,
        speedup=baseline.result.time / mealib.result.time,
        edp_gain=baseline.result.edp / mealib.result.edp,
        host_time_share=host.time / total.time,
        host_energy_share=host.energy / total.energy,
        invocation_time_share=invocation.time / accel_side.time,
        invocation_energy_share=invocation.energy / accel_side.energy,
        accel_time_shares={k: v.time / accel.time
                           for k, v in by_accel.items()},
        accel_energy_shares={k: v.energy / accel.energy
                             for k, v in by_accel.items()},
        descriptors=mealib.descriptors,
        original_calls=mealib.library_calls)
