"""Figure 1 workloads: library-vs-original speedups across suites.

The paper's motivation figure compares original benchmark code against
library-based rewrites: R statistical benchmarks sped up with MKL (up to
27x), PNNL PERFECT kernels (up to 42x), and PARSEC benchmarks with an
AVX library (up to 24x). We model each benchmark as an operation profile
executed two ways on the same Haswell: *original* — scalar, usually
single-threaded, with an interpreter factor for R — and *library* —
SIMD, single- or multi-threaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.host.cpu import CpuModel
from repro.host.platforms import haswell
from repro.mkl.profiles import (OpProfile, cherk_profile, fft2d_profile,
                                gemv_profile, resmp_profile)


@dataclass(frozen=True)
class SuiteBenchmark:
    """One Fig 1 bar.

    Attributes:
        suite: 'R' | 'PERFECT' | 'PARSEC'.
        name: benchmark name.
        profile: the dominant library operation of the benchmark.
        interpreter_slowdown: original-code interpreter factor. R's
            matrix primitives bottom out in its bundled reference BLAS
            (scalar C), so the factor is small; loop-heavy R code pays
            more.
        original_threads: threads the original code uses.
        naive_flop_factor: extra algorithmic work the original does
            (e.g. computing a full Hermitian update instead of one
            triangle, or refitting spline coefficients per site).
    """

    suite: str
    name: str
    profile: OpProfile
    interpreter_slowdown: float = 1.0
    original_threads: int = 1
    naive_flop_factor: float = 1.0


def _gemm_profile(n: int, k: int) -> OpProfile:
    """Dense matmul-like kernel (compute-bound, blocked)."""
    return OpProfile("GEMM", flops=2.0 * n * n * k,
                     bytes_read=(2 * n * k) * 4, bytes_written=n * n * 4,
                     pattern="blocked")


#: The Fig 1 benchmark set (proxy kernels per suite).
BENCHMARKS: List[SuiteBenchmark] = [
    # R: reference-BLAS originals vs MKL-backed primitives
    SuiteBenchmark("R", "crossprod", _gemm_profile(2048, 2048),
                   interpreter_slowdown=1.15),
    SuiteBenchmark("R", "lm-fit", _gemm_profile(4096, 512)),
    SuiteBenchmark("R", "pca", gemv_profile(8192, 8192),
                   interpreter_slowdown=1.5),
    # PERFECT: hand-written C kernels vs MKL/FFTW
    SuiteBenchmark("PERFECT", "2d-fft", fft2d_profile(4096, 4096)),
    SuiteBenchmark("PERFECT", "stap-covariance",
                   cherk_profile(1024, 4096), naive_flop_factor=1.75),
    SuiteBenchmark("PERFECT", "sar-interp",
                   resmp_profile(4096, 4096, blocks=512),
                   naive_flop_factor=2.0),
    # PARSEC: scalar reference code vs the SIMD-aware library
    SuiteBenchmark("PARSEC", "streamcluster",
                   _gemm_profile(1024, 512)),
    SuiteBenchmark("PARSEC", "swaptions", _gemm_profile(512, 2048)),
    SuiteBenchmark("PARSEC", "canneal", gemv_profile(4096, 4096)),
]


@dataclass(frozen=True)
class Fig1Row:
    suite: str
    name: str
    speedup_single: float
    speedup_multi: float


def library_speedups(host: CpuModel = None) -> List[Fig1Row]:
    """Regenerate Figure 1: per-benchmark library speedups."""
    cpu = host if host is not None else haswell()
    rows = []
    for bench in BENCHMARKS:
        naive = cpu.run_naive(
            bench.profile, threads=bench.original_threads,
            interpreter_slowdown=(bench.interpreter_slowdown
                                  * bench.naive_flop_factor))
        single = cpu.run_profile(bench.profile, threads=1)
        multi = cpu.run_profile(bench.profile)
        rows.append(Fig1Row(
            suite=bench.suite, name=bench.name,
            speedup_single=naive.time / single.time,
            speedup_multi=naive.time / multi.time))
    return rows


def suite_maxima(rows: List[Fig1Row] = None) -> Dict[str, float]:
    """Best multi-thread speedup per suite (the paper's callouts:
    R 27x, PERFECT 42x, PARSEC 24x)."""
    rows = rows if rows is not None else library_speedups()
    out: Dict[str, float] = {}
    for row in rows:
        out[row.suite] = max(out.get(row.suite, 0.0), row.speedup_multi)
    return out
