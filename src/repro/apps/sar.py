"""SAR (Synthetic Aperture Radar) image formation.

The paper's accelerator-chaining showcase (Section 5.4, Fig 12a): range
interpolation (``dfsInterpolate1D`` → RESMP) feeds an azimuth FFT
(``fftwf_execute`` → FFT). Written in the C subset, the compiler chains
the two calls into a single PASS whose intermediate never touches DRAM.
Phase histories are synthetic (same substitution note as STAP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.compiler.interp import RunOutcome, run_original, run_translated
from repro.core.system import MealibSystem


@dataclass(frozen=True)
class SarConfig:
    """One image-formation problem: ``side`` x ``side`` pixels."""

    side: int

    def __post_init__(self) -> None:
        if self.side & (self.side - 1):
            raise ValueError("image side must be a power of two")


def sar_source(cfg: SarConfig) -> str:
    """Legacy SAR image-formation code in the C subset."""
    n = cfg.side
    return f"""
// SAR image formation: range interpolation + azimuth FFT
#define N {n}
#define BLOCKS {n}

float *knots;
float *sites;
complex *range_lines;
complex *interp;
complex *image;
fftwf_plan plan_az;
fftw_iodim dims[1] = {{{{N, 1, 1}}}};
fftw_iodim howmany[1] = {{{{BLOCKS, N, N}}}};

knots = malloc(sizeof(float) * N);
sites = malloc(sizeof(float) * BLOCKS * N);
range_lines = malloc(sizeof(complex) * BLOCKS * N);
interp = malloc(sizeof(complex) * BLOCKS * N);
image = malloc(sizeof(complex) * BLOCKS * N);

// range interpolation onto the polar-to-rect grid
dfsInterpolate1D(BLOCKS, N, knots, range_lines, N, sites, interp);

// azimuth FFT — chained with the interpolation by the compiler
plan_az = fftwf_plan_guru_dft(1, dims, 1, howmany, interp, image,
                              FFTW_FORWARD, FFTW_WISDOM_ONLY);
fftwf_execute(plan_az);

free(range_lines);
"""


def sar_inputs(cfg: SarConfig, seed: int = 0) -> Dict[str, np.ndarray]:
    """Synthetic phase history plus a mildly warped resampling grid."""
    n = cfg.side
    rng = np.random.default_rng(seed)
    knots = np.arange(n, dtype=np.float32)
    warp = 0.35 * np.sin(np.linspace(0, np.pi, n, dtype=np.float32))
    sites = np.clip(knots[None, :] + warp[:, None], 0, n - 1)
    lines = (rng.standard_normal((n, n))
             + 1j * rng.standard_normal((n, n))).astype(np.complex64)
    return {"knots": knots, "sites": sites.astype(np.float32),
            "range_lines": lines}


def run_sar_baseline(cfg: SarConfig, seed: int = 0) -> RunOutcome:
    return run_original(sar_source(cfg), inputs=sar_inputs(cfg, seed))


def run_sar_mealib(cfg: SarConfig,
                   system: Optional[MealibSystem] = None,
                   seed: int = 0) -> RunOutcome:
    return run_translated(sar_source(cfg), system=system,
                          inputs=sar_inputs(cfg, seed))
