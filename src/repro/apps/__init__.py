"""Applications: STAP, SAR, and the Fig 1 suite proxies."""

from repro.apps.sar import (SarConfig, run_sar_baseline, run_sar_mealib,
                            sar_inputs, sar_source)
from repro.apps.stap import (PAPER_PRESETS, PRESETS, StapConfig,
                             StapGains, run_stap_baseline,
                             run_stap_mealib, stap_gains, stap_inputs,
                             stap_source)
from repro.apps.suites import (BENCHMARKS, Fig1Row, SuiteBenchmark,
                               library_speedups, suite_maxima)

__all__ = [
    "SarConfig", "run_sar_baseline", "run_sar_mealib", "sar_inputs",
    "sar_source", "PAPER_PRESETS", "PRESETS", "StapConfig", "StapGains",
    "run_stap_baseline", "run_stap_mealib", "stap_gains", "stap_inputs",
    "stap_source", "BENCHMARKS", "Fig1Row", "SuiteBenchmark",
    "library_speedups", "suite_maxima",
]
