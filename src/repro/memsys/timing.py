"""DRAM timing parameter sets.

All times are in seconds. Each parameter set describes one *data bus*
(a DDR channel or an HMC-style vault) and the banks behind it. The values
are drawn from public DDR3-1600 datasheets and from the CACTI-3DD /
HMC-gen1 ballpark the paper cites; they are inputs to the cycle-level bank
model in :mod:`repro.memsys.bank`, not fitted constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple


@dataclass(frozen=True)
class DramTiming:
    """Timing constraints for one bus + its banks.

    Attributes:
        clock_hz: command/data clock of the bus (data is DDR, see
            ``bytes_per_cycle`` which already accounts for both edges).
        t_rcd: ACTIVATE to READ/WRITE delay.
        t_cas: READ to first data (CL).
        t_rp: PRECHARGE to ACTIVATE delay.
        t_ras: ACTIVATE to PRECHARGE minimum.
        t_wr: write recovery (last data to PRECHARGE).
        t_ccd: column-to-column delay (back-to-back bursts, same bank).
        bytes_per_cycle: bytes transferred per bus clock (DDR folded in).
        burst_bytes: bytes moved by one READ/WRITE command.
        row_bytes: size of one DRAM row (row-buffer reach).
        banks: number of banks behind this bus.
    """

    clock_hz: float
    t_rcd: float
    t_cas: float
    t_rp: float
    t_ras: float
    t_wr: float
    t_ccd: float
    bytes_per_cycle: int
    burst_bytes: int
    row_bytes: int
    banks: int

    @property
    def t_ck(self) -> float:
        """One bus clock period in seconds."""
        return 1.0 / self.clock_hz

    @property
    def t_burst(self) -> float:
        """Bus occupancy of a single burst transfer."""
        return self.burst_bytes / self.bytes_per_cycle * self.t_ck

    @property
    def peak_bandwidth(self) -> float:
        """Peak bus bandwidth in bytes/second."""
        return self.bytes_per_cycle * self.clock_hz

    @cached_property
    def drain_constants(self) -> Tuple[float, float, float, float,
                                       float, float, float]:
        """``(t_rcd, t_cas, t_rp, t_ras, t_wr, t_ccd, t_burst)``.

        Hoisted once per drain by the vault controller's fast path so
        the per-access recurrence touches only local floats (the
        instance is frozen, so the tuple can never go stale).
        """
        return (self.t_rcd, self.t_cas, self.t_rp, self.t_ras,
                self.t_wr, self.t_ccd, self.t_burst)

    def scaled_clock(self, clock_hz: float) -> "DramTiming":
        """Return a copy with a different bus clock, keeping absolute
        latencies (tRCD etc. are analog array delays, not cycle counts)."""
        return DramTiming(
            clock_hz=clock_hz,
            t_rcd=self.t_rcd,
            t_cas=self.t_cas,
            t_rp=self.t_rp,
            t_ras=self.t_ras,
            t_wr=self.t_wr,
            t_ccd=self.t_ccd,
            bytes_per_cycle=self.bytes_per_cycle,
            burst_bytes=self.burst_bytes,
            row_bytes=self.row_bytes,
            banks=self.banks,
        )

    def with_row_bytes(self, row_bytes: int) -> "DramTiming":
        """Return a copy with a different row-buffer size (design-space
        knob used by Fig 11)."""
        return DramTiming(
            clock_hz=self.clock_hz,
            t_rcd=self.t_rcd,
            t_cas=self.t_cas,
            t_rp=self.t_rp,
            t_ras=self.t_ras,
            t_wr=self.t_wr,
            t_ccd=self.t_ccd,
            bytes_per_cycle=self.bytes_per_cycle,
            burst_bytes=self.burst_bytes,
            row_bytes=row_bytes,
            banks=self.banks,
        )


_NS = 1e-9

#: One DDR3-1600 channel: 64-bit bus, 800 MHz clock DDR -> 12.8 GB/s peak.
DDR3_1600_CHANNEL = DramTiming(
    clock_hz=800e6,
    t_rcd=13.75 * _NS,
    t_cas=13.75 * _NS,
    t_rp=13.75 * _NS,
    t_ras=35.0 * _NS,
    t_wr=15.0 * _NS,
    t_ccd=5.0 * _NS,
    bytes_per_cycle=16,   # 8 bytes x 2 (DDR)
    burst_bytes=64,       # BL8 on a 64-bit bus
    row_bytes=8192,
    banks=8,
)

#: One HMC-style vault: 32-bit TSV data bus at 1.25 GHz DDR-class signalling
#: -> 32 GB/s peak per vault; 16 vaults give the paper's 510 GB/s class.
HMC_VAULT = DramTiming(
    clock_hz=1.25e9,
    t_rcd=13.75 * _NS,
    t_cas=13.75 * _NS,
    t_rp=13.75 * _NS,
    t_ras=27.5 * _NS,
    t_wr=15.0 * _NS,
    t_ccd=1.0 * _NS,
    bytes_per_cycle=26,   # ~32 GB/s per vault (510 GB/s aggregate / 16)
    burst_bytes=32,       # HMC-class 32 B access granularity
    row_bytes=2048,       # smaller rows in 3D-stacked arrays (CACTI-3DD)
    banks=8,
)
