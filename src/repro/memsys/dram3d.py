"""The 3D-stacked (HMC-like) DRAM device used by MEALib.

Sixteen vaults, each a vertical stack of banks reached through a TSV bus,
give the 510 GB/s-class internal bandwidth the paper's accelerators are
designed against (Table 3). Accelerator tiles sit one per vault on the
accelerator layer; the device object is shared by the functional memory
model (:mod:`repro.memmgmt.physmem`) and the timing model.
"""

from __future__ import annotations

from repro.memsys.device import MemoryDevice
from repro.memsys.energy import HMC_ENERGY, DramEnergy
from repro.memsys.timing import HMC_VAULT, DramTiming

#: Interleave granularity across vaults (HMC block size class).
VAULT_INTERLEAVE_BYTES = 256

#: Number of vaults in one stack.
DEFAULT_VAULTS = 16


class StackedDram(MemoryDevice):
    """One HMC-like memory stack with an accelerator layer underneath."""

    def __init__(self, timing: DramTiming = HMC_VAULT,
                 energy: DramEnergy = HMC_ENERGY,
                 vaults: int = DEFAULT_VAULTS,
                 interleave_bytes: int = VAULT_INTERLEAVE_BYTES,
                 ecc=None):
        super().__init__(timing, energy, units=vaults,
                         interleave_bytes=interleave_bytes, name="hmc-stack",
                         ecc=ecc)

    @property
    def vaults(self) -> int:
        return self.units
