"""Common machinery for multi-unit memory devices.

A *device* is a set of parallel units (HMC vaults or DDR channels), each a
:class:`~repro.memsys.vault.VaultController`. A request trace is split by
the address mapping across units, each unit drains its share concurrently,
and the device-level drain time is the slowest unit. Energy is assembled
from the per-bank event counters plus static power over the drain time.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.memsys.address import AddressMapping
from repro.memsys.bank import BankStats
from repro.memsys.energy import DramEnergy
from repro.memsys.result import MemResult
from repro.memsys.timing import DramTiming
from repro.memsys.vault import VaultController

#: A device-level request: (physical address, is_write).
Request = Tuple[int, bool]


class MemoryDevice:
    """A memory device made of parallel vaults/channels."""

    def __init__(self, timing: DramTiming, energy: DramEnergy, units: int,
                 interleave_bytes: int, reorder_window: int = 8,
                 name: str = "dram", ecc=None):
        self.timing = timing
        self.energy = energy
        self.units = units
        self.name = name
        self.reorder_window = reorder_window
        # Optional SECDED model (repro.faults.ecc.SecdedModel). When
        # attached, every drained trace pays the ECC decode-pipeline
        # overhead; None (the default) leaves the timing untouched.
        self.ecc: Optional[object] = ecc
        self.mapping = AddressMapping(
            interleave_bytes=interleave_bytes,
            units=units,
            banks=timing.banks,
            row_bytes=timing.row_bytes,
        )

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate peak bandwidth in bytes/second."""
        return self.units * self.timing.peak_bandwidth

    @property
    def request_bytes(self) -> int:
        """Payload granularity of one request (one burst)."""
        return self.timing.burst_bytes

    @property
    def total_banks(self) -> int:
        return self.units * self.timing.banks

    def static_power(self) -> float:
        """Background power of the whole device in watts."""
        return self.total_banks * self.energy.p_static_per_bank

    def run_trace(self, requests: Iterable[Request]) -> MemResult:
        """Drain a request trace and report time/energy/bandwidth.

        Each request moves ``request_bytes`` of payload. Requests are
        distributed to units by the address mapping; each unit services
        its share with fresh controller state (a drain models one
        operation executing from a quiescent device).
        """
        reqs = list(requests)
        addrs = np.fromiter((r[0] for r in reqs), dtype=np.int64,
                            count=len(reqs))
        writes = np.fromiter((r[1] for r in reqs), dtype=bool,
                             count=len(reqs))
        return self.run_trace_arrays(addrs, writes)

    def run_trace_arrays(self, addrs: np.ndarray,
                         writes: np.ndarray) -> MemResult:
        """:meth:`run_trace` over parallel (address, is_write) arrays.

        The batch decompose and per-unit split are vectorized (boolean
        masks preserve the trace order within each unit); each unit's
        drain then runs the controller's array fast path. Results are
        element-for-element identical to the scalar walk
        (``tests/memsys/test_vectorized_diff.py``).
        """
        count = int(addrs.size)
        finish = 0.0
        stats = BankStats()
        if count:
            units, banks, rows, _ = self.mapping.decompose_batch(addrs)
            for unit in range(self.units):
                mask = units == unit
                if not mask.any():
                    continue
                controller = VaultController(self.timing,
                                             self.reorder_window)
                result = controller.service_arrays(
                    banks[mask].tolist(), rows[mask].tolist(),
                    writes[mask].tolist())
                finish = max(finish, result.finish_time)
                stats.merge(result.stats)
        bytes_moved = count * self.request_bytes
        dynamic = (stats.activates * self.energy.e_activate
                   + stats.accesses * self.energy.burst_energy(
                       self.request_bytes))
        total_energy = dynamic + self.static_power() * finish
        if self.ecc is not None and bytes_moved:
            overhead = self.ecc.stream_overhead(bytes_moved)
            finish += overhead.time
            total_energy += overhead.energy
        return MemResult(time=finish, energy=total_energy,
                         bytes_moved=bytes_moved, stats=stats)
