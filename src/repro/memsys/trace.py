"""Access-stream specifications, window sampling, and extrapolation.

Operations describe their memory behaviour as a set of :class:`StreamSpec`
objects (sequential scans, strided walks, gathers, blocked walks). The
trace machinery expands a *sampled window* of those streams into burst
requests, drains it on a cycle-level device, and extrapolates linearly to
the full working set. Table 2 working sets reach 1 GB; sampling keeps the
cycle-level model tractable while preserving the row-buffer and
bank-conflict behaviour that determines achieved bandwidth (validated by
``tests/memsys/test_trace.py::test_extrapolation_linearity``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.memsys.device import MemoryDevice, Request
from repro.memsys.result import MemResult

#: Default number of elements sampled per simulation across all streams.
DEFAULT_WINDOW_ELEMS = 65536

#: Elements issued per stream before rotating to the next stream. Models
#: the depth of per-stream buffers in the access generators.
GANG_ELEMS = 64


def _lcg(state: int) -> int:
    """Deterministic 63-bit linear congruential step (for gathers)."""
    return (state * 6364136223846793005 + 1442695040888963407) & (
        (1 << 63) - 1)


@dataclass(frozen=True)
class StreamSpec:
    """One access stream of an operation.

    Attributes:
        base: starting physical address.
        n_elems: number of element touches in the full stream.
        elem_bytes: bytes per touched element.
        is_write: write stream if True.
        stride: byte distance between consecutive touches (defaults to
            ``elem_bytes``, i.e. a dense sequential scan).
        region_bytes: for ``kind='gather'``, the size of the region the
            gather indexes into.
        block_elems: for ``kind='blocked'``, elements per dense block.
        block_stride: for ``kind='blocked'``, byte distance between the
            starts of consecutive blocks.
        kind: ``'seq' | 'strided' | 'gather' | 'blocked'``.
    """

    base: int
    n_elems: int
    elem_bytes: int
    is_write: bool = False
    stride: int = 0
    region_bytes: int = 0
    block_elems: int = 0
    block_stride: int = 0
    kind: str = "seq"

    def __post_init__(self) -> None:
        if self.n_elems < 0:
            raise ValueError("n_elems must be non-negative")
        if self.elem_bytes <= 0:
            raise ValueError("elem_bytes must be positive")
        if self.kind not in ("seq", "strided", "gather", "blocked"):
            raise ValueError(f"unknown stream kind: {self.kind!r}")
        if self.kind == "gather" and self.region_bytes <= 0:
            raise ValueError("gather streams need region_bytes > 0")
        if self.kind == "blocked" and (self.block_elems <= 0
                                       or self.block_stride <= 0):
            raise ValueError("blocked streams need block_elems and "
                             "block_stride > 0")

    @property
    def total_bytes(self) -> int:
        """Useful payload bytes of the full stream."""
        return self.n_elems * self.elem_bytes

    def element_addr(self, i: int) -> int:
        """Physical address of the ``i``-th touched element."""
        if self.kind == "seq":
            return self.base + i * self.elem_bytes
        if self.kind == "strided":
            step = self.stride if self.stride else self.elem_bytes
            return self.base + i * step
        if self.kind == "blocked":
            block, off = divmod(i, self.block_elems)
            return self.base + block * self.block_stride + (
                off * self.elem_bytes)
        # gather: deterministic pseudo-random index into the region
        state = _lcg(i + 0x9E3779B9)
        region_elems = max(1, self.region_bytes // self.elem_bytes)
        return self.base + (state % region_elems) * self.elem_bytes


def seq_read(base: int, n_bytes: int, elem_bytes: int = 4) -> StreamSpec:
    """Convenience: dense sequential read of ``n_bytes``."""
    return StreamSpec(base=base, n_elems=n_bytes // elem_bytes,
                      elem_bytes=elem_bytes, is_write=False)


def seq_write(base: int, n_bytes: int, elem_bytes: int = 4) -> StreamSpec:
    """Convenience: dense sequential write of ``n_bytes``."""
    return StreamSpec(base=base, n_elems=n_bytes // elem_bytes,
                      elem_bytes=elem_bytes, is_write=True)


def _emit_stream_window(stream: StreamSpec, n_sample: int,
                        burst_bytes: int) -> List[Request]:
    """Expand the first ``n_sample`` elements into burst requests.

    Consecutive touches that fall into the same burst-aligned block are
    coalesced — a dense scan costs one request per burst, a wide-strided
    walk costs one request per element. That asymmetry is exactly what
    makes transpose-like patterns slow on DRAM.
    """
    requests: List[Request] = []
    last_block = -1
    for i in range(n_sample):
        addr = stream.element_addr(i)
        block = addr // burst_bytes
        if block != last_block or stream.kind == "gather":
            requests.append((block * burst_bytes, stream.is_write))
            last_block = block
    return requests


def merge_streams(streams: Sequence[StreamSpec], n_samples: Sequence[int],
                  burst_bytes: int) -> List[Request]:
    """Interleave per-stream request windows in proportional round-robin.

    Each stream issues a gang of requests, then the stream that is least
    far through its window goes next — modeling concurrent stream buffers
    draining at matched rates.
    """
    windows = [_emit_stream_window(s, n, burst_bytes)
               for s, n in zip(streams, n_samples)]
    cursors = [0] * len(windows)
    merged: List[Request] = []
    total = sum(len(w) for w in windows)
    while len(merged) < total:
        best = -1
        best_frac = 2.0
        for idx, window in enumerate(windows):
            if cursors[idx] >= len(window):
                continue
            frac = cursors[idx] / len(window)
            if frac < best_frac:
                best_frac = frac
                best = idx
        window = windows[best]
        take = min(GANG_ELEMS, len(window) - cursors[best])
        merged.extend(window[cursors[best]:cursors[best] + take])
        cursors[best] += take
    return merged


def simulate_streams(device: MemoryDevice, streams: Sequence[StreamSpec],
                     window_elems: int = DEFAULT_WINDOW_ELEMS) -> MemResult:
    """Drain ``streams`` on ``device``, sampling a window and extrapolating.

    All streams are shortened by the *same* fraction so their mixing ratio
    (and therefore bank-conflict behaviour) is preserved, then the result
    is scaled back up linearly.
    """
    streams = [s for s in streams if s.n_elems > 0]
    if not streams:
        return MemResult(time=0.0, energy=0.0, bytes_moved=0)
    total_elems = sum(s.n_elems for s in streams)
    fraction = min(1.0, window_elems / total_elems)
    n_samples = [max(1, int(round(s.n_elems * fraction))) for s in streams]
    requests = merge_streams(streams, n_samples, device.request_bytes)
    window_result = device.run_trace(requests)
    sampled_elems = sum(n_samples)
    scale = total_elems / sampled_elems
    return window_result.scaled(scale)
