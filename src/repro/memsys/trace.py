"""Access-stream specifications, window sampling, and extrapolation.

Operations describe their memory behaviour as a set of :class:`StreamSpec`
objects (sequential scans, strided walks, gathers, blocked walks). The
trace machinery expands a *sampled window* of those streams into burst
requests, drains it on a cycle-level device, and extrapolates linearly to
the full working set. Table 2 working sets reach 1 GB; sampling keeps the
cycle-level model tractable while preserving the row-buffer and
bank-conflict behaviour that determines achieved bandwidth (validated by
``tests/memsys/test_trace.py::test_extrapolation_linearity``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.memsys.device import MemoryDevice, Request
from repro.memsys.result import MemResult

#: Default number of elements sampled per simulation across all streams.
DEFAULT_WINDOW_ELEMS = 65536

#: Elements issued per stream before rotating to the next stream. Models
#: the depth of per-stream buffers in the access generators.
GANG_ELEMS = 64


def _lcg(state: int) -> int:
    """Deterministic 63-bit linear congruential step (for gathers)."""
    return (state * 6364136223846793005 + 1442695040888963407) & (
        (1 << 63) - 1)


@dataclass(frozen=True)
class StreamSpec:
    """One access stream of an operation.

    Attributes:
        base: starting physical address.
        n_elems: number of element touches in the full stream.
        elem_bytes: bytes per touched element.
        is_write: write stream if True.
        stride: byte distance between consecutive touches (defaults to
            ``elem_bytes``, i.e. a dense sequential scan).
        region_bytes: for ``kind='gather'``, the size of the region the
            gather indexes into.
        block_elems: for ``kind='blocked'``, elements per dense block.
        block_stride: for ``kind='blocked'``, byte distance between the
            starts of consecutive blocks.
        kind: ``'seq' | 'strided' | 'gather' | 'blocked'``.
    """

    base: int
    n_elems: int
    elem_bytes: int
    is_write: bool = False
    stride: int = 0
    region_bytes: int = 0
    block_elems: int = 0
    block_stride: int = 0
    kind: str = "seq"

    def __post_init__(self) -> None:
        if self.n_elems < 0:
            raise ValueError("n_elems must be non-negative")
        if self.elem_bytes <= 0:
            raise ValueError("elem_bytes must be positive")
        if self.kind not in ("seq", "strided", "gather", "blocked"):
            raise ValueError(f"unknown stream kind: {self.kind!r}")
        if self.kind == "gather" and self.region_bytes <= 0:
            raise ValueError("gather streams need region_bytes > 0")
        if self.kind == "blocked" and (self.block_elems <= 0
                                       or self.block_stride <= 0):
            raise ValueError("blocked streams need block_elems and "
                             "block_stride > 0")

    @property
    def total_bytes(self) -> int:
        """Useful payload bytes of the full stream."""
        return self.n_elems * self.elem_bytes

    def element_addr(self, i: int) -> int:
        """Physical address of the ``i``-th touched element."""
        if self.kind == "seq":
            return self.base + i * self.elem_bytes
        if self.kind == "strided":
            step = self.stride if self.stride else self.elem_bytes
            return self.base + i * step
        if self.kind == "blocked":
            block, off = divmod(i, self.block_elems)
            return self.base + block * self.block_stride + (
                off * self.elem_bytes)
        # gather: deterministic pseudo-random index into the region
        state = _lcg(i + 0x9E3779B9)
        region_elems = max(1, self.region_bytes // self.elem_bytes)
        return self.base + (state % region_elems) * self.elem_bytes


def seq_read(base: int, n_bytes: int, elem_bytes: int = 4) -> StreamSpec:
    """Convenience: dense sequential read of ``n_bytes``."""
    return StreamSpec(base=base, n_elems=n_bytes // elem_bytes,
                      elem_bytes=elem_bytes, is_write=False)


def seq_write(base: int, n_bytes: int, elem_bytes: int = 4) -> StreamSpec:
    """Convenience: dense sequential write of ``n_bytes``."""
    return StreamSpec(base=base, n_elems=n_bytes // elem_bytes,
                      elem_bytes=elem_bytes, is_write=True)


def _element_addrs(stream: StreamSpec, n_sample: int) -> np.ndarray:
    """Addresses of the first ``n_sample`` element touches (int64).

    Vectorized counterpart of :meth:`StreamSpec.element_addr`: the
    sequential/strided/blocked kinds are pure integer arithmetic, and
    the gather kind runs the 63-bit LCG in uint64 — wrapping modulo
    2**64 and masking to 63 bits leaves the low bits (the only ones the
    modulus reduction sees) exactly equal to the scalar path's.
    """
    if n_sample <= 0:
        return np.empty(0, dtype=np.int64)
    idx = np.arange(n_sample, dtype=np.int64)
    if stream.kind == "seq":
        return stream.base + idx * stream.elem_bytes
    if stream.kind == "strided":
        step = stream.stride if stream.stride else stream.elem_bytes
        return stream.base + idx * step
    if stream.kind == "blocked":
        block, off = np.divmod(idx, stream.block_elems)
        return (stream.base + block * stream.block_stride
                + off * stream.elem_bytes)
    # gather: the deterministic LCG over the region
    state = idx.astype(np.uint64) + np.uint64(0x9E3779B9)
    with np.errstate(over="ignore"):
        state = (state * np.uint64(6364136223846793005)
                 + np.uint64(1442695040888963407))
    state &= np.uint64((1 << 63) - 1)
    region_elems = max(1, stream.region_bytes // stream.elem_bytes)
    picks = (state % np.uint64(region_elems)).astype(np.int64)
    return stream.base + picks * stream.elem_bytes


def _emit_window_array(stream: StreamSpec, n_sample: int,
                       burst_bytes: int) -> np.ndarray:
    """Burst-request addresses of one stream's sampled window (int64).

    Consecutive touches that fall into the same burst-aligned block are
    coalesced — a dense scan costs one request per burst, a wide-strided
    walk costs one request per element. That asymmetry is exactly what
    makes transpose-like patterns slow on DRAM.
    """
    addrs = _element_addrs(stream, n_sample)
    if addrs.size == 0:
        return addrs
    blocks = addrs // burst_bytes
    if stream.kind == "gather":
        return blocks * burst_bytes
    keep = np.empty(blocks.size, dtype=bool)
    keep[0] = True
    np.not_equal(blocks[1:], blocks[:-1], out=keep[1:])
    return blocks[keep] * burst_bytes


def _emit_stream_window(stream: StreamSpec, n_sample: int,
                        burst_bytes: int) -> List[Request]:
    """Expand the first ``n_sample`` elements into burst requests."""
    addrs = _emit_window_array(stream, n_sample, burst_bytes)
    w = stream.is_write
    return [(int(a), w) for a in addrs]


def _merge_plan(window_lens: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Gang-granular interleave order: ``(window, start, take)`` chunks.

    Replays the proportional round-robin exactly — the stream least far
    through its window (by the same float fraction comparison) issues
    the next gang — but over whole gangs instead of single requests.
    """
    cursors = [0] * len(window_lens)
    remaining = sum(window_lens)
    plan: List[Tuple[int, int, int]] = []
    while remaining:
        best = -1
        best_frac = 2.0
        for idx, length in enumerate(window_lens):
            if cursors[idx] >= length:
                continue
            frac = cursors[idx] / length
            if frac < best_frac:
                best_frac = frac
                best = idx
        take = min(GANG_ELEMS, window_lens[best] - cursors[best])
        plan.append((best, cursors[best], take))
        cursors[best] += take
        remaining -= take
    return plan


def _merge_window_arrays(streams: Sequence[StreamSpec],
                         n_samples: Sequence[int], burst_bytes: int
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Merged ``(addresses, is_write)`` arrays of the sampled windows."""
    windows = [_emit_window_array(s, n, burst_bytes)
               for s, n in zip(streams, n_samples)]
    plan = _merge_plan([w.size for w in windows])
    total = sum(take for _, _, take in plan)
    addrs = np.empty(total, dtype=np.int64)
    writes = np.empty(total, dtype=bool)
    pos = 0
    for idx, start, take in plan:
        addrs[pos:pos + take] = windows[idx][start:start + take]
        writes[pos:pos + take] = streams[idx].is_write
        pos += take
    return addrs, writes


def merge_streams(streams: Sequence[StreamSpec], n_samples: Sequence[int],
                  burst_bytes: int) -> List[Request]:
    """Interleave per-stream request windows in proportional round-robin.

    Each stream issues a gang of requests, then the stream that is least
    far through its window goes next — modeling concurrent stream buffers
    draining at matched rates.
    """
    addrs, writes = _merge_window_arrays(streams, n_samples, burst_bytes)
    return [(int(a), bool(w)) for a, w in zip(addrs, writes)]


def simulate_streams(device: MemoryDevice, streams: Sequence[StreamSpec],
                     window_elems: int = DEFAULT_WINDOW_ELEMS) -> MemResult:
    """Drain ``streams`` on ``device``, sampling a window and extrapolating.

    All streams are shortened by the *same* fraction so their mixing ratio
    (and therefore bank-conflict behaviour) is preserved, then the result
    is scaled back up linearly.
    """
    streams = [s for s in streams if s.n_elems > 0]
    if not streams:
        return MemResult(time=0.0, energy=0.0, bytes_moved=0)
    total_elems = sum(s.n_elems for s in streams)
    fraction = min(1.0, window_elems / total_elems)
    n_samples = [max(1, int(round(s.n_elems * fraction))) for s in streams]
    addrs, writes = _merge_window_arrays(streams, n_samples,
                                         device.request_bytes)
    window_result = device.run_trace_arrays(addrs, writes)
    sampled_elems = sum(n_samples)
    scale = total_elems / sampled_elems
    return window_result.scaled(scale)
