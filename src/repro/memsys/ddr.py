"""Conventional DDR3 memory systems.

Two flavours back the paper's comparison platforms (Table 3):

* :class:`DdrMemory` with 2 channels — the 25.6 GB/s Haswell / PSAS
  memory system;
* :class:`DdrMemory` with 8 channels — the 102.4 GB/s 2D memory-side
  accelerated system (MSAS, NDA-style rank-level acceleration).
"""

from __future__ import annotations

from repro.memsys.device import MemoryDevice
from repro.memsys.energy import DDR3_ENERGY, DramEnergy
from repro.memsys.timing import DDR3_1600_CHANNEL, DramTiming

#: Channel interleave at cache-line granularity, as on real client parts.
CHANNEL_INTERLEAVE_BYTES = 64


class DdrMemory(MemoryDevice):
    """A multi-channel DDR3 memory system."""

    def __init__(self, channels: int = 2,
                 timing: DramTiming = DDR3_1600_CHANNEL,
                 energy: DramEnergy = DDR3_ENERGY,
                 interleave_bytes: int = CHANNEL_INTERLEAVE_BYTES,
                 name: str = "ddr3"):
        super().__init__(timing, energy, units=channels,
                         interleave_bytes=interleave_bytes, name=name)

    @property
    def channels(self) -> int:
        return self.units


def haswell_memory() -> DdrMemory:
    """The 25.6 GB/s dual-channel DDR3-1600 system of the i7-4770K."""
    return DdrMemory(channels=2, name="ddr3-2ch")


def msas_memory() -> DdrMemory:
    """The 102.4 GB/s 2D memory-side accelerated system (8 channels)."""
    return DdrMemory(channels=8, name="ddr3-8ch")
