"""Memory-system substrate: cycle-level DRAM models and trace machinery.

Public surface:

* :class:`~repro.memsys.timing.DramTiming` and the ``DDR3_1600_CHANNEL`` /
  ``HMC_VAULT`` presets;
* :class:`~repro.memsys.energy.DramEnergy` and presets;
* :class:`~repro.memsys.dram3d.StackedDram` — the MEALib 3D stack;
* :class:`~repro.memsys.ddr.DdrMemory` and the ``haswell_memory`` /
  ``msas_memory`` factories;
* :class:`~repro.memsys.trace.StreamSpec` plus
  :func:`~repro.memsys.trace.simulate_streams`;
* :class:`~repro.memsys.reshape.ReshapeUnit` on the logic layer.
"""

from repro.memsys.address import AddressMapping
from repro.memsys.bank import Bank, BankStats
from repro.memsys.ddr import DdrMemory, haswell_memory, msas_memory
from repro.memsys.device import MemoryDevice
from repro.memsys.dram3d import StackedDram
from repro.memsys.energy import DDR3_ENERGY, HMC_ENERGY, DramEnergy
from repro.memsys.reshape import ReshapeUnit
from repro.memsys.result import MemResult
from repro.memsys.timing import DDR3_1600_CHANNEL, HMC_VAULT, DramTiming
from repro.memsys.trace import (StreamSpec, merge_streams, seq_read,
                                seq_write, simulate_streams)
from repro.memsys.vault import VaultController

__all__ = [
    "AddressMapping", "Bank", "BankStats", "DdrMemory", "haswell_memory",
    "msas_memory", "MemoryDevice", "StackedDram", "DDR3_ENERGY",
    "HMC_ENERGY", "DramEnergy", "ReshapeUnit", "MemResult",
    "DDR3_1600_CHANNEL", "HMC_VAULT", "DramTiming", "StreamSpec",
    "merge_streams", "seq_read", "seq_write", "simulate_streams",
    "VaultController",
]
