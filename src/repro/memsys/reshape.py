"""Data reshape infrastructure on the DRAM logic layer.

The paper places a dedicated reshape unit (after Akin et al., ISCA'15) on
the HMC logic base because layout transforms — linear-to-blocked,
row-major to column-major — are needed both by the CPU and by accelerators
whose datapaths want blocked data (e.g. the FFT core). The unit performs a
*tiled* transpose: it stages a tile in an SRAM buffer so that both the
read and the write side touch DRAM in row-buffer-friendly blocks, instead
of the one-element-per-row pattern of a naive transpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memsys.trace import StreamSpec


@dataclass(frozen=True)
class ReshapeUnit:
    """The logic-layer reshape engine.

    Attributes:
        tile_elems: side of the square staging tile, in elements. The
            SRAM buffer holds ``tile_elems**2`` elements.
        sram_bytes_limit: capacity of the staging buffer.
    """

    tile_elems: int = 64
    sram_bytes_limit: int = 64 * 1024

    def tile_for(self, elem_bytes: int) -> int:
        """Largest tile side that fits the staging SRAM."""
        side = self.tile_elems
        while side > 1 and side * side * elem_bytes > self.sram_bytes_limit:
            side //= 2
        return side

    def transpose_streams(self, src: int, dst: int, rows: int, cols: int,
                          elem_bytes: int) -> List[StreamSpec]:
        """Access streams of a tiled ``rows x cols`` transpose.

        Reads walk the source in ``tile``-row dense blocks (one block per
        source row inside the tile stripe); writes do the same on the
        destination. Both sides therefore move ``tile * elem_bytes`` dense
        bytes per DRAM visit rather than a single element.
        """
        tile = min(self.tile_for(elem_bytes), rows, cols)
        n_elems = rows * cols
        src_row_bytes = cols * elem_bytes
        dst_row_bytes = rows * elem_bytes
        read = StreamSpec(
            base=src, n_elems=n_elems, elem_bytes=elem_bytes,
            is_write=False, kind="blocked", block_elems=tile,
            block_stride=src_row_bytes)
        write = StreamSpec(
            base=dst, n_elems=n_elems, elem_bytes=elem_bytes,
            is_write=True, kind="blocked", block_elems=tile,
            block_stride=dst_row_bytes)
        return [read, write]

    def naive_transpose_streams(self, src: int, dst: int, rows: int,
                                cols: int, elem_bytes: int
                                ) -> List[StreamSpec]:
        """Access streams of an untiled transpose (the CPU-side pattern):
        sequential reads but one-element strided writes that miss the row
        buffer on nearly every access."""
        n_elems = rows * cols
        read = StreamSpec(base=src, n_elems=n_elems, elem_bytes=elem_bytes,
                          is_write=False, kind="seq")
        write = StreamSpec(
            base=dst, n_elems=n_elems, elem_bytes=elem_bytes,
            is_write=True, kind="strided", stride=rows * elem_bytes)
        return [read, write]
