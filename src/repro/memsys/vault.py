"""Vault/channel controller: banks behind one shared data bus.

The controller services an ordered request stream with a small FR-FCFS
reorder window: among the oldest ``window`` pending requests it prefers one
that hits an already-open row, falling back to the oldest request. This is
the scheduling policy real vault controllers (and the paper's in-house
simulator) use to recover row-buffer locality from interleaved streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.memsys.bank import Bank, BankStats
from repro.memsys.timing import DramTiming

#: One request local to a vault/channel: (bank, row, is_write).
LocalRequest = Tuple[int, int, bool]


@dataclass
class VaultResult:
    """Drain outcome for one vault/channel."""

    finish_time: float
    stats: BankStats


class VaultController:
    """Memory controller for the banks behind one data bus."""

    def __init__(self, timing: DramTiming, window: int = 8):
        if window < 1:
            raise ValueError("reorder window must be >= 1")
        self.timing = timing
        self.window = window
        self.banks = [Bank(timing) for _ in range(timing.banks)]
        self._bus_free_at = 0.0

    def service(self, requests: Sequence[LocalRequest],
                start: float = 0.0) -> VaultResult:
        """Drain ``requests`` starting no earlier than ``start``.

        Returns the completion time of the last data burst plus merged
        bank statistics.
        """
        pending: List[LocalRequest] = list(requests)
        now = max(start, self._bus_free_at)
        finish = now
        head = 0
        n = len(pending)
        while head < n:
            limit = min(head + self.window, n)
            pick = head
            for i in range(head, limit):
                bank_idx, row, _ = pending[i]
                if self.banks[bank_idx].row_is_open(row):
                    pick = i
                    break
            bank_idx, row, is_write = pending[pick]
            if pick != head:
                pending[pick] = pending[head]
            head += 1
            done = self.banks[bank_idx].access(
                row, is_write, now, self._bus_free_at)
            self._bus_free_at = done
            finish = max(finish, done)
        stats = BankStats()
        for bank in self.banks:
            stats.merge(bank.stats)
        return VaultResult(finish_time=finish, stats=stats)
