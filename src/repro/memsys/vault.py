"""Vault/channel controller: banks behind one shared data bus.

The controller services an ordered request stream with a small FR-FCFS
reorder window: among the oldest ``window`` pending requests it prefers one
that hits an already-open row, falling back to the oldest request. This is
the scheduling policy real vault controllers (and the paper's in-house
simulator) use to recover row-buffer locality from interleaved streams.

The drain loop here is the flattened twin of :meth:`Bank.access`: bank
state lives in local lists and the per-access arithmetic is inlined, so
a 64K-request window drains without any per-request attribute or method
dispatch. Every float operation happens in exactly the order (and with
exactly the operands) of the reference bank FSM — the timing recurrence
``finish = max(col + t_cas, bus_free) + t_burst`` is a genuine serial
dependence and must not be reassociated, which is why it stays a lean
loop instead of a numpy kernel (see DESIGN.md). Bit-identity against
the reference :class:`Bank` path is pinned by
``tests/memsys/test_vectorized_diff.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.memsys.bank import Bank, BankStats
from repro.memsys.timing import DramTiming

#: One request local to a vault/channel: (bank, row, is_write).
LocalRequest = Tuple[int, int, bool]


@dataclass
class VaultResult:
    """Drain outcome for one vault/channel."""

    finish_time: float
    stats: BankStats


class VaultController:
    """Memory controller for the banks behind one data bus."""

    def __init__(self, timing: DramTiming, window: int = 8):
        if window < 1:
            raise ValueError("reorder window must be >= 1")
        self.timing = timing
        self.window = window
        self.banks = [Bank(timing) for _ in range(timing.banks)]
        self._bus_free_at = 0.0

    def service(self, requests: Sequence[LocalRequest],
                start: float = 0.0) -> VaultResult:
        """Drain ``requests`` starting no earlier than ``start``.

        Returns the completion time of the last data burst plus merged
        bank statistics.
        """
        return self.service_arrays([r[0] for r in requests],
                                   [r[1] for r in requests],
                                   [r[2] for r in requests], start)

    def service_arrays(self, req_banks: Sequence[int],
                       req_rows: Sequence[int],
                       req_writes: Sequence[bool],
                       start: float = 0.0) -> VaultResult:
        """:meth:`service` over parallel (bank, row, is_write) columns.

        The fast path for array-fed traces; accepts lists or numpy
        arrays. State is loaded from (and stored back to) the reference
        :class:`Bank` objects, so interleaving ``service`` and
        ``service_arrays`` calls on one controller is safe.
        """
        (t_rcd, t_cas, t_rp, t_ras, t_wr, t_ccd,
         t_burst) = self.timing.drain_constants
        bank_objs = self.banks
        open_row = [b.open_row for b in bank_objs]
        ready_act = [b._ready_act for b in bank_objs]
        ready_col = [b._ready_col for b in bank_objs]
        ready_pre = [b._ready_pre for b in bank_objs]
        n_hits = [0] * len(bank_objs)
        n_miss = [0] * len(bank_objs)
        n_reads = [0] * len(bank_objs)
        n_writes = [0] * len(bank_objs)
        pending_b = [int(b) for b in req_banks]
        pending_r = [int(r) for r in req_rows]
        pending_w = [bool(w) for w in req_writes]
        bus = self._bus_free_at
        now = start if start > bus else bus
        finish = now
        head = 0
        n = len(pending_b)
        window = self.window
        while head < n:
            limit = head + window
            if limit > n:
                limit = n
            pick = head
            for i in range(head, limit):
                if open_row[pending_b[i]] == pending_r[i]:
                    pick = i
                    break
            bank = pending_b[pick]
            row = pending_r[pick]
            is_write = pending_w[pick]
            if pick != head:
                pending_b[pick] = pending_b[head]
                pending_r[pick] = pending_r[head]
                pending_w[pick] = pending_w[head]
            head += 1
            # inlined Bank.access (same operations, same order)
            if open_row[bank] == row:
                n_hits[bank] += 1
                rc = ready_col[bank]
                col_at = now if now > rc else rc
            else:
                n_miss[bank] += 1
                ra = ready_act[bank]
                if open_row[bank] >= 0:
                    rp = ready_pre[bank]
                    pre_at = now if now > rp else rp
                    act_at = pre_at + t_rp
                    if act_at < ra:
                        act_at = ra
                else:
                    act_at = now if now > ra else ra
                open_row[bank] = row
                ready_pre[bank] = act_at + t_ras
                col_at = act_at + t_rcd
            data_start = col_at + t_cas
            if data_start < bus:
                data_start = bus
            done = data_start + t_burst
            rc = col_at + t_ccd
            if rc > ready_col[bank]:
                ready_col[bank] = rc
            if is_write:
                n_writes[bank] += 1
                rp = done + t_wr
            else:
                n_reads[bank] += 1
                rp = col_at + t_cas
            if rp > ready_pre[bank]:
                ready_pre[bank] = rp
            ra = ready_pre[bank] + t_rp
            if ra > ready_act[bank]:
                ready_act[bank] = ra
            bus = done
            if done > finish:
                finish = done
        self._bus_free_at = bus
        stats = BankStats()
        for idx, b in enumerate(bank_objs):
            b.open_row = open_row[idx]
            b._ready_act = ready_act[idx]
            b._ready_col = ready_col[idx]
            b._ready_pre = ready_pre[idx]
            b.stats.add_counts(n_hits[idx], n_miss[idx], n_reads[idx],
                               n_writes[idx])
            stats.merge(b.stats)
        return VaultResult(finish_time=finish, stats=stats)
