"""Result record returned by every memory-device simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsys.bank import BankStats


@dataclass
class MemResult:
    """Outcome of servicing a request trace on a memory device.

    Attributes:
        time: wall-clock time to drain the trace, in seconds.
        energy: total energy (dynamic + static) in joules.
        bytes_moved: payload bytes transferred.
        stats: merged per-bank event counters.
    """

    time: float
    energy: float
    bytes_moved: int
    stats: BankStats = field(default_factory=BankStats)

    @property
    def bandwidth(self) -> float:
        """Achieved bandwidth in bytes/second."""
        return self.bytes_moved / self.time if self.time > 0 else 0.0

    @property
    def power(self) -> float:
        """Average power in watts."""
        return self.energy / self.time if self.time > 0 else 0.0

    @property
    def energy_per_byte(self) -> float:
        return self.energy / self.bytes_moved if self.bytes_moved else 0.0

    def scaled(self, factor: float) -> "MemResult":
        """Linear extrapolation to a workload ``factor`` times larger.

        Used by the sampled-window methodology: both time and energy of a
        bandwidth-bound stream scale linearly in bytes moved (static power
        scales with time, dynamic energy with bytes — both linear).
        """
        out = MemResult(
            time=self.time * factor,
            energy=self.energy * factor,
            bytes_moved=int(round(self.bytes_moved * factor)),
        )
        scaled_stats = BankStats(
            activates=int(round(self.stats.activates * factor)),
            row_hits=int(round(self.stats.row_hits * factor)),
            row_misses=int(round(self.stats.row_misses * factor)),
            reads=int(round(self.stats.reads * factor)),
            writes=int(round(self.stats.writes * factor)),
        )
        out.stats = scaled_stats
        return out
