"""DRAM energy parameter sets.

Energies are in joules, powers in watts. The constants are in the
published CACTI-3DD / DDR3 datasheet ballpark:

* DDR3 DIMMs land around 15-25 pJ/bit end to end (array + I/O + termination);
* 3D-stacked DRAM accessed through TSVs lands around 3-5 pJ/bit internally
  (no off-chip I/O), which is what gives memory-side accelerators their
  energy advantage in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramEnergy:
    """Energy/power parameters for one DRAM device class.

    Attributes:
        e_activate: energy per ACTIVATE+PRECHARGE pair (whole row).
        e_rw_per_bit: array read/write energy per bit.
        e_io_per_bit: bus/IO energy per bit (off-chip SSTL for DDR,
            TSV for 3D stacks).
        p_static_per_bank: leakage + refresh + peripheral power per bank.
    """

    e_activate: float
    e_rw_per_bit: float
    e_io_per_bit: float
    p_static_per_bank: float

    def burst_energy(self, burst_bytes: int) -> float:
        """Dynamic energy of moving one burst through array + IO."""
        bits = burst_bytes * 8
        return bits * (self.e_rw_per_bit + self.e_io_per_bit)


_PJ = 1e-12
_NJ = 1e-9

#: Conventional DDR3: expensive off-chip I/O dominates.
DDR3_ENERGY = DramEnergy(
    e_activate=18.0 * _NJ,
    e_rw_per_bit=6.0 * _PJ,
    e_io_per_bit=14.0 * _PJ,
    p_static_per_bank=0.055,
)

#: 3D-stacked vault: same array class, but TSV I/O is ~20x cheaper than
#: off-chip SSTL and rows are smaller so activates are cheaper too.
HMC_ENERGY = DramEnergy(
    e_activate=4.5 * _NJ,
    e_rw_per_bit=4.0 * _PJ,
    e_io_per_bit=1.2 * _PJ,
    p_static_per_bank=0.018,
)
