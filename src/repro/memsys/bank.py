"""Cycle-level model of a single DRAM bank with a row buffer.

The bank is a small finite-state machine constrained by the timing
parameters in :class:`repro.memsys.timing.DramTiming`. It tracks which row
is open and the earliest instants at which the next ACTIVATE, column
command and PRECHARGE may legally issue. The enclosing vault/channel owns
the shared data bus; the bank reports when its data transfer *could* start
and the caller resolves bus contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsys.timing import DramTiming


@dataclass
class BankStats:
    """Event counters used by the energy model."""

    activates: int = 0
    row_hits: int = 0
    row_misses: int = 0
    reads: int = 0
    writes: int = 0

    def merge(self, other: "BankStats") -> None:
        self.activates += other.activates
        self.row_hits += other.row_hits
        self.row_misses += other.row_misses
        self.reads += other.reads
        self.writes += other.writes

    def add_counts(self, hits: int, misses: int, reads: int,
                   writes: int) -> None:
        """Fold one drain's batched event counts in (every row miss
        activates, exactly as the per-access FSM counts them)."""
        self.row_hits += hits
        self.row_misses += misses
        self.activates += misses
        self.reads += reads
        self.writes += writes

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


@dataclass
class Bank:
    """One bank: open-row tracking plus timing-constraint bookkeeping."""

    timing: DramTiming
    open_row: int = -1
    _ready_act: float = 0.0      # earliest next ACTIVATE
    _ready_col: float = 0.0      # earliest next READ/WRITE column command
    _ready_pre: float = 0.0      # earliest next PRECHARGE
    stats: BankStats = field(default_factory=BankStats)

    def access(self, row: int, is_write: bool, now: float,
               bus_free_at: float) -> float:
        """Perform one burst access to ``row`` at time ``now``.

        Args:
            row: target row index.
            is_write: write (True) or read (False).
            now: earliest time the command sequence may start.
            bus_free_at: earliest time the shared data bus is available.

        Returns:
            The time at which the data burst *finishes* on the bus. The
            caller must treat ``finish`` as the new bus-free time.
        """
        t = self.timing
        if self.open_row == row:
            self.stats.row_hits += 1
            col_at = max(now, self._ready_col)
        else:
            self.stats.row_misses += 1
            if self.open_row >= 0:
                pre_at = max(now, self._ready_pre)
                act_at = max(pre_at + t.t_rp, self._ready_act)
            else:
                act_at = max(now, self._ready_act)
            self.stats.activates += 1
            self.open_row = row
            self._ready_pre = act_at + t.t_ras
            col_at = act_at + t.t_rcd

        # The data burst must also wait for the shared bus.
        data_start = max(col_at + t.t_cas, bus_free_at)
        finish = data_start + t.t_burst

        self._ready_col = max(self._ready_col, col_at + t.t_ccd)
        if is_write:
            self.stats.writes += 1
            self._ready_pre = max(self._ready_pre, finish + t.t_wr)
        else:
            self.stats.reads += 1
            self._ready_pre = max(self._ready_pre, col_at + t.t_cas)
        self._ready_act = max(self._ready_act, self._ready_pre + t.t_rp)
        return finish

    def row_is_open(self, row: int) -> bool:
        return self.open_row == row
