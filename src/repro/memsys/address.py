"""Physical-address decomposition for simulated DRAM devices.

A physical address is split, low bits first, into::

    [offset within burst] [unit (vault/channel)] [column block] [bank] [row]

Interleaving units (vaults for a 3D stack, channels for a DDR system) at a
small granularity spreads streaming accesses across all units, which is how
both HMC and multi-channel DDR obtain their aggregate bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def _fold(x: int, modulus: int) -> int:
    """XOR-fold all bits of ``x`` down to ``log2(modulus)`` bits.

    Used to permute unit/bank indices with higher address bits, the way
    real memory controllers hash channel and bank selection so that
    power-of-two strides (ubiquitous in matrix code) don't alias every
    access onto one channel or one bank.
    """
    bits = modulus.bit_length() - 1
    if bits == 0:
        return 0
    out = 0
    while x:
        out ^= x & (modulus - 1)
        x >>= bits
    return out


def _fold_array(x: np.ndarray, modulus: int) -> np.ndarray:
    """Vectorized :func:`_fold` over an int64 array (exact: shifts and
    XORs only)."""
    bits = modulus.bit_length() - 1
    out = np.zeros_like(x)
    if bits == 0:
        return out
    x = x.copy()
    while np.any(x):
        out ^= x & (modulus - 1)
        x >>= bits
    return out


@dataclass(frozen=True)
class AddressMapping:
    """Address ↦ (unit, bank, row, column-block) mapping.

    Attributes:
        interleave_bytes: granularity at which consecutive addresses rotate
            across units (vaults/channels).
        units: number of vaults or channels.
        banks: banks per unit.
        row_bytes: bytes per row per bank.
    """

    interleave_bytes: int
    units: int
    banks: int
    row_bytes: int

    def __post_init__(self) -> None:
        for name in ("interleave_bytes", "units", "banks", "row_bytes"):
            if not _is_pow2(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two, got "
                                 f"{getattr(self, name)}")

    @property
    def cols_per_row(self) -> int:
        """Interleave-sized blocks per row."""
        return self.row_bytes // self.interleave_bytes

    def decompose(self, addr: int) -> Tuple[int, int, int, int]:
        """Return ``(unit, bank, row, col)`` for a physical address."""
        if addr < 0:
            raise ValueError(f"negative physical address: {addr}")
        block = addr // self.interleave_bytes
        unit = (block % self.units) ^ _fold(block // self.units, self.units)
        block //= self.units
        col = block % self.cols_per_row
        block //= self.cols_per_row
        bank = block % self.banks
        row = block // self.banks
        # XOR-permute the bank index with folded row bits (and the unit
        # index with folded high bits, above): decorrelates concurrent
        # streams and power-of-two strides that would otherwise alias onto
        # one bank/unit and ping-pong its row buffer.
        bank = bank ^ _fold(row, self.banks)
        return unit, bank, row, col

    def decompose_batch(self, addrs: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray]:
        """Vectorized :meth:`decompose` over an int64 address array.

        Returns ``(units, banks, rows, cols)`` arrays. All operations
        are integer divisions, masks and XOR-folds, so every element is
        exactly what the scalar path would produce
        (``tests/memsys/test_vectorized_diff.py`` pins this).
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size and int(addrs.min()) < 0:
            raise ValueError("negative physical address in batch")
        block = addrs // self.interleave_bytes
        unit = (block % self.units) ^ _fold_array(block // self.units,
                                                  self.units)
        block = block // self.units
        col = block % self.cols_per_row
        block = block // self.cols_per_row
        bank = block % self.banks
        row = block // self.banks
        bank = bank ^ _fold_array(row, self.banks)
        return unit, bank, row, col

    def unit_of(self, addr: int) -> int:
        """Return only the unit (vault/channel) index — the hot path."""
        block = addr // self.interleave_bytes
        return (block % self.units) ^ _fold(block // self.units, self.units)
