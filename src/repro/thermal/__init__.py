"""Per-vault thermal modeling and power-envelope throttling.

A :class:`~repro.thermal.rc.ThermalModel` integrates a lumped RC
network (one node per vault plus the logic layer) forward from the
energy ledger's per-step joule attribution; a
:class:`~repro.thermal.governor.PowerGovernor` enforces per-vault
envelopes on top of it (DVFS throttling with the ``throttle`` ledger
category, critical-threshold offlining through the existing per-vault
reroute path). Vault temperature couples back into resilience through
an Arrhenius factor on the latent cell-flip rate.

Everything here is inert unless a :class:`ThermalConfig` is passed to
:class:`~repro.core.system.MealibSystem` — thermal-off runs are
bit-for-bit and joule-for-joule identical to a system without the
subsystem.
"""

from repro.thermal.governor import (GovernorStats, NOMINAL, OFFLINE,
                                    PowerGovernor, THROTTLED)
from repro.thermal.rc import AMBIENT_K, ThermalConfig, ThermalModel

__all__ = [
    "AMBIENT_K", "GovernorStats", "NOMINAL", "OFFLINE", "PowerGovernor",
    "THROTTLED", "ThermalConfig", "ThermalModel",
]
