"""The power-envelope governor: nominal -> throttled -> offline.

Sits between the :class:`~repro.thermal.rc.ThermalModel` and the
execution stack. After every accelerated step (and every patrol-scrub
pass) the runtime advances the RC network and polls the governor, which
walks each vault through a three-state machine:

* **nominal** — the vault runs at full frequency.
* **throttled** — the vault crossed its envelope: a DVFS-style
  frequency step-down (``throttle_factor``) is applied. The pass
  pipeline runs in vault lockstep, so one throttled serving vault
  stretches the whole pass by the reciprocal factor; the configuration
  unit prices the stretch (extra static energy over the longer drain)
  and the runtime books the excess in the ``throttle`` ledger category,
  leaving the ``accelerator`` share exactly the nominal cost.
* **offline** — the vault crossed its *critical* threshold: its tile is
  taken out of service through the *existing* per-vault degradation
  path (:meth:`~repro.accel.layer.AcceleratorLayer.mark_tile_failed`),
  so its data stripe reroutes to the surviving tiles exactly like a
  hard tile failure and availability stays 1.0. The governor remembers
  which tiles *it* offlined and repairs them (and only them) once the
  vault cools back through the release threshold.

Transitions are hysteretic: a throttled (or offlined) vault is released
only after cooling ``hysteresis`` kelvin below its envelope, so the
state can never oscillate while the temperature wanders within one
envelope band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.accel.layer import AcceleratorLayer
from repro.thermal.rc import ThermalConfig, ThermalModel

#: Vault governor states.
NOMINAL = "nominal"
THROTTLED = "throttled"
OFFLINE = "offline"


@dataclass
class GovernorStats:
    """What the governor did to keep the stack inside its envelope."""

    throttle_events: int = 0        # nominal -> throttled transitions
    offline_events: int = 0         # -> offline transitions
    recoveries: int = 0             # offline -> nominal repairs
    releases: int = 0               # throttled -> nominal releases
    time_throttled: float = 0.0     # stretched step-seconds under DVFS
    time_throttled_by_vault: Dict[int, float] = field(default_factory=dict)

    def note_throttled(self, duration: float,
                       vaults: Sequence[int]) -> None:
        self.time_throttled += duration
        for v in vaults:
            self.time_throttled_by_vault[v] = (
                self.time_throttled_by_vault.get(v, 0.0) + duration)


class PowerGovernor:
    """Per-vault envelope enforcement over a thermal model."""

    def __init__(self, model: ThermalModel, layer: AcceleratorLayer,
                 config: ThermalConfig):
        self.model = model
        self.layer = layer
        self.config = config
        self.state: Dict[int, str] = {v: NOMINAL
                                      for v in range(model.vaults)}
        self.stats = GovernorStats()
        # tiles *this governor* took offline — the only ones it may
        # repair (a genuinely dead tile stays dead however cool it is)
        self._offlined: set = set()
        # Fired after any poll that changed at least one vault's state
        # (throttle, offline, release, recovery). The schedule cache
        # hangs its thermal-epoch invalidation off this hook.
        self.on_state_change: Optional[Callable[[], None]] = None

    # -- queries the execution path makes -------------------------------------

    def throttle_factor(self, vault: int) -> float:
        """DVFS frequency factor of one vault (1.0 when nominal)."""
        if self.state[vault] == THROTTLED:
            return self.config.throttle_factor
        return 1.0

    def throttled_vaults(self, serving: Sequence[int]) -> List[int]:
        """The serving vaults currently under DVFS, ascending."""
        return [v for v in serving if self.state[v] == THROTTLED]

    def pass_slowdown(self, serving: Sequence[int]) -> float:
        """Frequency factor gating a pass over ``serving`` vaults.

        The pass pipeline runs in vault lockstep, so the slowest
        (most throttled) serving vault sets the pace.
        """
        if not serving:
            return 1.0
        return min(self.throttle_factor(v) for v in serving)

    # -- state machine ---------------------------------------------------------

    def poll(self) -> None:
        """Re-evaluate every vault against the current temperatures.

        Called by the runtime after each thermal advance; also once at
        system assembly so forced (sub-ambient) envelopes engage before
        the first execute.
        """
        cfg = self.config
        before = dict(self.state)
        for vault in range(self.model.vaults):
            temp = self.model.temperature(vault)
            state = self.state[vault]
            release = cfg.envelope_of(vault) - cfg.hysteresis
            if state == OFFLINE:
                if vault in self._offlined and temp < release:
                    self.layer.repair_tile(vault)
                    self._offlined.discard(vault)
                    self.state[vault] = NOMINAL
                    self.stats.recoveries += 1
                continue
            if temp >= cfg.critical_of(vault):
                self.state[vault] = OFFLINE
                self.stats.offline_events += 1
                tile = self.layer.tiles[vault]
                if not tile.failed:
                    # thermal emergencies reuse the degradation path:
                    # the vault stripe reroutes like a hard tile failure
                    self.layer.mark_tile_failed(vault)
                    self._offlined.add(vault)
                continue
            if state == NOMINAL and temp > cfg.envelope_of(vault):
                self.state[vault] = THROTTLED
                self.stats.throttle_events += 1
            elif state == THROTTLED and temp < release:
                self.state[vault] = NOMINAL
                self.stats.releases += 1
        if self.state != before and self.on_state_change is not None:
            self.on_state_change()

    @property
    def any_throttled(self) -> bool:
        return any(s == THROTTLED for s in self.state.values())

    @property
    def offline(self) -> List[int]:
        """Vaults currently offline (thermal emergencies), ascending."""
        return sorted(v for v, s in self.state.items() if s == OFFLINE)
