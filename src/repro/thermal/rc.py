"""Per-vault thermal RC network of the accelerated memory stack.

3D-stacked DRAM is thermally limited in practice: the vaults sit between
a heat-spreader on top and the accelerator logic layer below, and the
joules the energy ledger attributes to a step have to go *somewhere*.
This module closes that loop with a lumped RC network:

* one thermal node per vault (the vertical DRAM stack above a tile),
  with heat capacity ``c_vault``;
* one node for the shared logic layer (configuration unit, NoC, and the
  tiles' switch fabric), with capacity ``c_logic``;
* conductances: each vault vertically to the heatsink (``g_sink``),
  laterally to its grid neighbours (``g_lat``, the same 4x4 adjacency
  as the mesh NoC), and vertically to the logic layer (``g_logic``);
  the logic layer drains to the package/board through ``g_logic_sink``.

Heat input is the energy ledger's own per-step attribution: dynamic
joules from accelerator passes, NoC transfers and patrol-scrub walks
are deposited on the vaults (and the logic node) that did the work, and
a temperature-dependent leakage term (``p_leak_ref`` doubling every
``leak_doubling`` kelvin) feeds back — hot vaults leak more, which
makes them hotter.

The network is integrated forward with an explicit-Euler scheme whose
internal step is clamped to the stability bound of the stiffest node,
so callers can hand it arbitrary step durations. All state is plain
float64 numpy — deterministic, so thermal-on golden baselines pin
exactly.

The default capacities are scaled to the simulator's sampled-window
timescale (microsecond-class accelerated steps), giving vault time
constants of tens of microseconds: steady states are reached within a
campaign run instead of after seconds of simulated wall-clock the
sampled traces never cover. The *structure* (vertical stack-to-sink
path dominating, weak lateral spreading, leakage feedback) is what the
governor and the Arrhenius fault coupling consume; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

#: Default ambient / case temperature, kelvin (45 C).
AMBIENT_K = 318.0


@dataclass(frozen=True)
class ThermalConfig:
    """Thermal network, envelope-governor and fault-coupling knobs.

    The RC parameters (capacities in J/K, conductances in W/K) define
    the network; the envelope parameters drive the
    :class:`~repro.thermal.governor.PowerGovernor`; the Arrhenius
    parameters couple vault temperature into the latent-flip rate.

    Attributes:
        enabled: master switch — a disabled config wires nothing, so
            the run is bit-identical to one without a thermal model.
        ambient: heatsink/board temperature, K; also the reference
            temperature of the leakage and Arrhenius terms.
        c_vault: heat capacity of one vault's DRAM stack, J/K.
        c_logic: heat capacity of the logic layer, J/K.
        g_sink: vault-to-heatsink vertical conductance, W/K.
        g_lat: vault-to-vault lateral conductance (grid neighbours), W/K.
        g_logic: vault-to-logic-layer vertical conductance, W/K.
        g_logic_sink: logic-layer-to-board conductance, W/K.
        p_leak_ref: per-vault leakage power at ambient, W.
        leak_doubling: kelvin of temperature rise that doubles leakage.
        dt: upper bound on the internal Euler step, seconds (clamped
            further by the stability bound of the stiffest node).
        envelope: vault thermal envelope, K — crossing it throttles.
        hysteresis: kelvin below the envelope a vault must cool before
            its throttle (or offline) state is released.
        critical: emergency threshold, K — crossing it takes the vault
            offline through the per-vault reroute path.
        throttle_factor: DVFS frequency factor of a throttled vault
            (0 < factor <= 1); the pass pipeline stretches by its
            reciprocal.
        vault_envelopes: per-vault envelope overrides (testing forced
            emergencies, heterogeneous corner vaults).
        vault_criticals: per-vault critical overrides.
        arrhenius_doubling: kelvin of vault temperature rise that
            doubles the latent cell-flip rate.
        arrhenius_cap: upper bound on the Arrhenius factor — also the
            thinning envelope that keeps seeded flip candidates
            identical across throttle policies (see
            :meth:`~repro.faults.injector.FaultInjector.deposit_latent_flips`).
    """

    enabled: bool = True
    ambient: float = AMBIENT_K
    c_vault: float = 2e-6
    c_logic: float = 8e-6
    g_sink: float = 0.5
    g_lat: float = 0.1
    g_logic: float = 0.2
    g_logic_sink: float = 2.0
    p_leak_ref: float = 0.05
    leak_doubling: float = 25.0
    dt: float = 2e-7
    envelope: float = 348.0
    hysteresis: float = 3.0
    critical: float = 368.0
    throttle_factor: float = 0.5
    vault_envelopes: Mapping[int, float] = field(default_factory=dict)
    vault_criticals: Mapping[int, float] = field(default_factory=dict)
    arrhenius_doubling: float = 10.0
    arrhenius_cap: float = 8.0

    def __post_init__(self) -> None:
        for name in ("c_vault", "c_logic", "g_sink", "g_logic_sink",
                     "leak_doubling", "dt", "arrhenius_doubling"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be > 0, got "
                                 f"{getattr(self, name)}")
        for name in ("g_lat", "g_logic", "p_leak_ref"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0, got "
                                 f"{getattr(self, name)}")
        if not 0.0 < self.throttle_factor <= 1.0:
            raise ValueError("throttle_factor must be in (0, 1], got "
                             f"{self.throttle_factor}")
        if self.hysteresis < 0.0:
            raise ValueError("hysteresis must be >= 0")
        if self.critical < self.envelope:
            raise ValueError("critical threshold must not sit below the "
                             "envelope")
        if self.arrhenius_cap < 1.0:
            raise ValueError("arrhenius_cap must be >= 1")

    def envelope_of(self, vault: int) -> float:
        return self.vault_envelopes.get(vault, self.envelope)

    def critical_of(self, vault: int) -> float:
        return self.vault_criticals.get(vault, self.critical)


class ThermalModel:
    """The integrated RC network: per-vault nodes + one logic node."""

    def __init__(self, config: ThermalConfig, vaults: int = 16,
                 cols: int = 4):
        if vaults <= 0 or cols <= 0 or vaults % cols:
            raise ValueError(f"{vaults} vaults do not tile a grid of "
                             f"{cols} columns")
        self.config = config
        self.vaults = vaults
        self.cols = cols
        amb = config.ambient
        self.temps = np.full(vaults, amb, dtype=np.float64)
        self.t_logic = float(amb)
        self.elapsed = 0.0
        #: Per-vault peak temperature seen so far (starts at ambient).
        self.peak: np.ndarray = self.temps.copy()
        self.peak_logic = float(amb)
        # lateral adjacency (grid) as a dense matrix: A @ T sums each
        # node's neighbour temperatures, degree[i] counts them
        adj = np.zeros((vaults, vaults), dtype=np.float64)
        for v in range(vaults):
            r, c = divmod(v, cols)
            rows = vaults // cols
            if c + 1 < cols:
                adj[v, v + 1] = adj[v + 1, v] = 1.0
            if r + 1 < rows:
                adj[v, v + cols] = adj[v + cols, v] = 1.0
        self._adj = adj
        self._degree = adj.sum(axis=1)
        # explicit-Euler stability: dt < C / (sum of conductances at the
        # stiffest node); the 0.4 margin also absorbs the (positive)
        # leakage-feedback slope up to the critical temperature
        g_vault = (config.g_sink + config.g_logic
                   + self._degree.max() * config.g_lat)
        g_log = config.g_logic_sink + vaults * config.g_logic
        self._dt_stable = 0.4 * min(config.c_vault / g_vault,
                                    config.c_logic / max(g_log, 1e-30))

    # -- temperature-dependent terms -----------------------------------------

    def leakage(self, temps: np.ndarray) -> np.ndarray:
        """Per-vault leakage power at the given temperatures, W."""
        cfg = self.config
        if cfg.p_leak_ref <= 0.0:
            return np.zeros_like(temps)
        return cfg.p_leak_ref * np.exp2(
            (temps - cfg.ambient) / cfg.leak_doubling)

    def arrhenius_factor(self, vault: int) -> float:
        """Latent-flip rate multiplier of one vault: doubles every
        ``arrhenius_doubling`` kelvin above ambient, floored at 1 (the
        model never cools below ambient) and capped at
        ``arrhenius_cap``."""
        cfg = self.config
        factor = 2.0 ** ((float(self.temps[vault]) - cfg.ambient)
                         / cfg.arrhenius_doubling)
        return float(min(max(factor, 1.0), cfg.arrhenius_cap))

    def arrhenius_factors(self) -> List[float]:
        return [self.arrhenius_factor(v) for v in range(self.vaults)]

    # -- integration ----------------------------------------------------------

    def advance(self, duration: float,
                vault_power: Sequence[float] = (),
                logic_power: float = 0.0) -> None:
        """Integrate the network forward by ``duration`` seconds.

        ``vault_power`` is the dynamic heat deposited on each vault
        node, in watts, over the whole interval (the step's attributed
        joules divided by its wall time); ``logic_power`` likewise for
        the logic-layer node. Leakage is added internally from the
        instantaneous temperatures.
        """
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        if duration == 0.0:
            return
        cfg = self.config
        power = np.zeros(self.vaults, dtype=np.float64)
        if len(vault_power):
            if len(vault_power) != self.vaults:
                raise ValueError(
                    f"expected {self.vaults} vault powers, got "
                    f"{len(vault_power)}")
            power[:] = vault_power
        if np.any(power < 0.0) or logic_power < 0.0:
            raise ValueError("power inputs must be non-negative")
        dt = min(cfg.dt, self._dt_stable)
        steps = max(1, int(np.ceil(duration / dt)))
        dt = duration / steps
        amb = cfg.ambient
        temps = self.temps
        t_logic = self.t_logic
        for _ in range(steps):
            lat = cfg.g_lat * (self._adj @ temps - self._degree * temps)
            flux = (power + self.leakage(temps)
                    + cfg.g_sink * (amb - temps)
                    + cfg.g_logic * (t_logic - temps)
                    + lat)
            logic_flux = (logic_power
                          + cfg.g_logic * float(np.sum(temps - t_logic))
                          + cfg.g_logic_sink * (amb - t_logic))
            temps = temps + flux * (dt / cfg.c_vault)
            t_logic = t_logic + logic_flux * (dt / cfg.c_logic)
            # the heatsink is an infinite reservoir at ambient: the
            # stack cannot cool below it
            np.maximum(temps, amb, out=temps)
            t_logic = max(t_logic, amb)
        self.temps = temps
        self.t_logic = t_logic
        self.elapsed += duration
        np.maximum(self.peak, temps, out=self.peak)
        self.peak_logic = max(self.peak_logic, t_logic)

    # -- views ----------------------------------------------------------------

    def temperature(self, vault: int) -> float:
        return float(self.temps[vault])

    def peak_temperatures(self) -> Dict[int, float]:
        """Per-vault peak temperature since construction, K."""
        return {v: float(self.peak[v]) for v in range(self.vaults)}

    @property
    def peak_vault_temp(self) -> float:
        """Hottest vault temperature ever reached, K."""
        return float(self.peak.max())

    @property
    def max_temp(self) -> float:
        """Hottest current vault temperature, K."""
        return float(self.temps.max())
