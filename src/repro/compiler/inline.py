"""Call-site inlining of user-defined functions.

The recognizer and the interpreters consume whole programs; a call to
a ``void`` user-defined function is handled by splicing the callee's
body into the call site with the formal parameters substituted by the
actual argument expressions (pointer parameters receive the caller's
buffer expression, value parameters the caller's scalar expression).

Loop variables inside the callee are α-renamed with a per-call-site
suffix so a helper's ``for (i...)`` can never capture — or be captured
by — a loop variable of the calling context (including the OpenMP
nest a call may sit under). The *analysis* side never inlines: it
consumes per-function effect summaries (:mod:`.analysis.summaries`)
at call sites instead; inlining is the code-generation story only,
like LTO inlining below a summary-based IPO pass.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compiler.cast import (AddrOf, Assign, BinOp, Call, Expr,
                                 ExprStmt, For, FuncDef, Ident, Index,
                                 InitList, Sizeof, Stmt, VarDecl)
from repro.compiler.semantics import SemanticError


def substitute_expr(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """``expr`` with every free ``Ident`` in ``mapping`` replaced."""
    if isinstance(expr, Ident):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Call):
        return Call(func=expr.func,
                    args=tuple(substitute_expr(a, mapping)
                               for a in expr.args),
                    loc=expr.loc)
    if isinstance(expr, Index):
        return Index(base=substitute_expr(expr.base, mapping),
                     idx=substitute_expr(expr.idx, mapping))
    if isinstance(expr, AddrOf):
        return AddrOf(operand=substitute_expr(expr.operand, mapping))
    if isinstance(expr, BinOp):
        return BinOp(op=expr.op,
                     left=substitute_expr(expr.left, mapping),
                     right=substitute_expr(expr.right, mapping))
    if isinstance(expr, InitList):
        return InitList(items=tuple(substitute_expr(i, mapping)
                                    for i in expr.items))
    if isinstance(expr, Sizeof):
        return expr
    return expr                             # Num


def _collect_loop_vars(body: Tuple[Stmt, ...]) -> List[str]:
    out: List[str] = []
    for stmt in body:
        if isinstance(stmt, For):
            if stmt.var not in out:
                out.append(stmt.var)
            out.extend(v for v in _collect_loop_vars(stmt.body)
                       if v not in out)
    return out


def _substitute_stmt(stmt: Stmt, mapping: Dict[str, Expr],
                     renames: Dict[str, str]) -> Stmt:
    if isinstance(stmt, VarDecl):
        name = renames.get(stmt.name, stmt.name)
        init = (substitute_expr(stmt.init, mapping)
                if stmt.init is not None else None)
        return VarDecl(ctype=stmt.ctype, name=name, pointer=stmt.pointer,
                       dims=tuple(substitute_expr(d, mapping)
                                  for d in stmt.dims),
                       init=init, loc=stmt.loc)
    if isinstance(stmt, Assign):
        return Assign(target=substitute_expr(stmt.target, mapping),
                      value=substitute_expr(stmt.value, mapping),
                      loc=stmt.loc)
    if isinstance(stmt, ExprStmt):
        return ExprStmt(expr=substitute_expr(stmt.expr, mapping),
                        loc=stmt.loc)
    if isinstance(stmt, For):
        var = renames.get(stmt.var, stmt.var)
        return For(var=var,
                   start=substitute_expr(stmt.start, mapping),
                   bound=substitute_expr(stmt.bound, mapping),
                   step=stmt.step,
                   body=tuple(_substitute_stmt(s, mapping, renames)
                              for s in stmt.body),
                   pragma_omp=stmt.pragma_omp, loc=stmt.loc)
    raise SemanticError(f"unsupported statement in function body: "
                        f"{stmt!r}")


def validate_body(func: FuncDef) -> None:
    """Reject function-body constructs the subset cannot inline.

    Bodies may declare bare scalar loop counters (``int i;``); buffer
    declarations (arrays, pointers) and initialised locals must live
    in the caller and arrive through parameters.
    """
    param_names = {p.name for p in func.params}

    def visit(stmts: Tuple[Stmt, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, VarDecl):
                if stmt.pointer or stmt.dims or stmt.init is not None:
                    raise SemanticError(
                        f"function {func.name!r} declares local "
                        f"buffer/constant {stmt.name!r}; pass buffers "
                        "through pointer parameters instead",
                        loc=stmt.loc)
                if stmt.name in param_names:
                    raise SemanticError(
                        f"function {func.name!r} re-declares its "
                        f"parameter {stmt.name!r}", loc=stmt.loc)
            elif isinstance(stmt, For):
                if stmt.var in param_names:
                    raise SemanticError(
                        f"loop variable {stmt.var!r} shadows a "
                        f"parameter of {func.name!r}", loc=stmt.loc)
                visit(stmt.body)

    visit(func.body)


def inline_body(func: FuncDef, args: Tuple[Expr, ...],
                suffix: str) -> Tuple[Stmt, ...]:
    """The callee's body specialised for one call site.

    ``args`` are the (already substituted, if the caller is itself
    inlined) actual argument expressions; ``suffix`` makes the callee's
    loop variables unique to this call site.
    """
    if len(args) != len(func.params):
        raise SemanticError(
            f"{func.name}() takes {len(func.params)} arguments, got "
            f"{len(args)}")
    validate_body(func)
    renames = {v: f"{v}__{suffix}" for v in _collect_loop_vars(func.body)}
    mapping: Dict[str, Expr] = {old: Ident(name=new)
                                for old, new in renames.items()}
    for param, arg in zip(func.params, args):
        mapping[param.name] = arg
    return tuple(_substitute_stmt(s, mapping, renames)
                 for s in func.body)
