"""AST for the C subset the source-to-source compiler consumes.

The subset covers what the paper's legacy programs (Listing 1 and our
apps) actually use: scalar/pointer/array declarations with optional
brace initialisers, assignments, library calls, ``malloc``/``free``,
canonical ``for`` loops, and ``#pragma omp parallel for`` annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.compiler.diagnostics import SourceLoc


class CParseError(Exception):
    """Raised on source the subset grammar cannot express."""


# -- expressions -------------------------------------------------------------

@dataclass(frozen=True)
class Num:
    value: Union[int, float]


@dataclass(frozen=True)
class Ident:
    name: str


@dataclass(frozen=True)
class Call:
    func: str
    args: Tuple
    #: source position of the callee token; excluded from equality so
    #: structurally identical calls still compare equal.
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class Index:
    """base[idx] — chains naturally: a[i][j] = Index(Index(a, i), j)."""

    base: "Expr"
    idx: "Expr"


@dataclass(frozen=True)
class AddrOf:
    operand: "Expr"


@dataclass(frozen=True)
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Sizeof:
    ctype: str


@dataclass(frozen=True)
class InitList:
    """A brace initialiser: {a, b} or {{...}, {...}}."""

    items: Tuple


Expr = Union[Num, Ident, Call, Index, AddrOf, BinOp, Sizeof, InitList]


# -- statements --------------------------------------------------------------

@dataclass(frozen=True)
class VarDecl:
    ctype: str
    name: str
    pointer: bool = False
    dims: Tuple = ()                 # array dimensions (Exprs)
    init: Optional[Expr] = None
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class Assign:
    target: Expr
    value: Expr
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class ExprStmt:
    expr: Expr
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class For:
    """Canonical loop: for (var = start; var < bound; var += step)."""

    var: str
    start: Expr
    bound: Expr
    step: int
    body: Tuple
    pragma_omp: bool = False
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


def stmt_loc(stmt) -> Optional[SourceLoc]:
    """Source location of any statement node (None if unknown)."""
    return getattr(stmt, "loc", None)


Stmt = Union[VarDecl, Assign, ExprStmt, For]


@dataclass(frozen=True)
class Program:
    """A parsed translation unit: defines + a flat statement list."""

    defines: Tuple = ()              # (name, value) pairs
    stmts: Tuple = ()


def walk_calls(stmts) -> List[Call]:
    """All Call expressions in statement order (loops not unrolled)."""
    out: List[Call] = []

    def visit_expr(e) -> None:
        if isinstance(e, Call):
            out.append(e)
            for a in e.args:
                visit_expr(a)
        elif isinstance(e, Index):
            visit_expr(e.base)
            visit_expr(e.idx)
        elif isinstance(e, AddrOf):
            visit_expr(e.operand)
        elif isinstance(e, BinOp):
            visit_expr(e.left)
            visit_expr(e.right)
        elif isinstance(e, InitList):
            for item in e.items:
                visit_expr(item)

    def visit_stmt(s) -> None:
        if isinstance(s, VarDecl) and s.init is not None:
            visit_expr(s.init)
        elif isinstance(s, Assign):
            visit_expr(s.value)
        elif isinstance(s, ExprStmt):
            visit_expr(s.expr)
        elif isinstance(s, For):
            for inner in s.body:
                visit_stmt(inner)

    for s in stmts:
        visit_stmt(s)
    return out
