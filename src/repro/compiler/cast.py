"""AST for the C subset the source-to-source compiler consumes.

The subset covers what the paper's legacy programs (Listing 1 and our
apps) actually use: scalar/pointer/array declarations with optional
brace initialisers, assignments, library calls, ``malloc``/``free``,
canonical ``for`` loops, ``#pragma omp parallel for`` annotations, and
— since the interprocedural growth — top-level ``void`` function
definitions whose bodies reuse the same statement forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.diagnostics import SourceLoc


class CParseError(Exception):
    """Raised on source the subset grammar cannot express."""


# -- expressions -------------------------------------------------------------

@dataclass(frozen=True)
class Num:
    value: Union[int, float]


@dataclass(frozen=True)
class Ident:
    name: str


@dataclass(frozen=True)
class Call:
    func: str
    args: Tuple["Expr", ...]
    #: source position of the callee token; excluded from equality so
    #: structurally identical calls still compare equal.
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class Index:
    """base[idx] — chains naturally: a[i][j] = Index(Index(a, i), j)."""

    base: "Expr"
    idx: "Expr"


@dataclass(frozen=True)
class AddrOf:
    operand: "Expr"


@dataclass(frozen=True)
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Sizeof:
    ctype: str


@dataclass(frozen=True)
class InitList:
    """A brace initialiser: {a, b} or {{...}, {...}}."""

    items: Tuple["Expr", ...]


Expr = Union[Num, Ident, Call, Index, AddrOf, BinOp, Sizeof, InitList]


# -- statements --------------------------------------------------------------

@dataclass(frozen=True)
class VarDecl:
    ctype: str
    name: str
    pointer: bool = False
    dims: Tuple[Expr, ...] = ()      # array dimensions (Exprs)
    init: Optional[Expr] = None
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class Assign:
    target: Expr
    value: Expr
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class ExprStmt:
    expr: Expr
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class For:
    """Canonical loop: for (var = start; var < bound; var += step)."""

    var: str
    start: Expr
    bound: Expr
    step: int
    body: Tuple["Stmt", ...]
    pragma_omp: bool = False
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


def stmt_loc(stmt: "Stmt") -> Optional[SourceLoc]:
    """Source location of any statement node (None if unknown)."""
    return getattr(stmt, "loc", None)


Stmt = Union[VarDecl, Assign, ExprStmt, For]


# -- functions ---------------------------------------------------------------

@dataclass(frozen=True)
class Param:
    """One formal parameter of a user-defined function.

    Pointer parameters alias a caller buffer; value parameters are
    scalars that must be compile-time resolvable (constants or affine
    in the caller's loop variables) at every call site.
    """

    ctype: str
    name: str
    pointer: bool = False


@dataclass(frozen=True)
class FuncDef:
    """A top-level ``void name(params) { body }`` definition.

    The subset keeps functions ``void`` — they communicate through
    their pointer parameters, exactly how the paper's legacy kernels
    pass buffers to library calls.
    """

    name: str
    params: Tuple[Param, ...]
    body: Tuple[Stmt, ...]
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class Program:
    """A parsed translation unit: defines + functions + main stmts."""

    defines: Tuple[Tuple[str, Union[int, float]], ...] = ()
    stmts: Tuple[Stmt, ...] = ()
    functions: Tuple[FuncDef, ...] = ()

    def function_map(self) -> Dict[str, FuncDef]:
        return {f.name: f for f in self.functions}


def walk_calls(stmts: Sequence[Stmt]) -> List[Call]:
    """All Call expressions in statement order (loops not unrolled)."""
    out: List[Call] = []

    def visit_expr(e: Expr) -> None:
        if isinstance(e, Call):
            out.append(e)
            for a in e.args:
                visit_expr(a)
        elif isinstance(e, Index):
            visit_expr(e.base)
            visit_expr(e.idx)
        elif isinstance(e, AddrOf):
            visit_expr(e.operand)
        elif isinstance(e, BinOp):
            visit_expr(e.left)
            visit_expr(e.right)
        elif isinstance(e, InitList):
            for item in e.items:
                visit_expr(item)

    def visit_stmt(s: Stmt) -> None:
        if isinstance(s, VarDecl) and s.init is not None:
            visit_expr(s.init)
        elif isinstance(s, Assign):
            visit_expr(s.value)
        elif isinstance(s, ExprStmt):
            visit_expr(s.expr)
        elif isinstance(s, For):
            for inner in s.body:
                visit_stmt(inner)

    for s in stmts:
        visit_stmt(s)
    return out
