"""Pass-1 optimisations: accelerator chaining and descriptor grouping.

Two rewrites over the recognizer's schedule, straight from the paper:

* *chaining* — an accelerated call immediately followed by another whose
  input is the first one's output becomes one PASS (the STAP corner
  turn + Doppler FFT, the SAR interpolation + FFT);
* *descriptor grouping* — maximal runs of accelerated steps with no
  intervening host work collapse into a single accelerator descriptor
  (STAP's 17 M library calls end up in 3 descriptors).

Chaining here is *syntactic* (adjacency plus a produced/consumed
buffer); the verified rewrite layer (:mod:`repro.compiler.rewrite`)
re-derives the same fusions with machine-checked legality proofs and
extends them to looped steps.  When that layer ran, ``optimize`` is
called with ``chain=False``: its :class:`FusedStep` nodes pass through
chaining untouched and group into descriptors like chains do (a looped
fused step keeps a descriptor of its own, exactly like a
loop-compacted call).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.compiler.recognizer import AccelCallStep, Schedule
from repro.compiler.rewrite.ir import FusedStep


@dataclass(frozen=True)
class ChainStep:
    """Several accelerated calls fused into one PASS."""

    steps: Tuple[AccelCallStep, ...]

    @property
    def in_bufs(self) -> Tuple[str, ...]:
        return self.steps[0].in_bufs

    @property
    def out_bufs(self) -> Tuple[str, ...]:
        return self.steps[-1].out_bufs

    @property
    def calls(self) -> int:
        return sum(s.calls for s in self.steps)


@dataclass(frozen=True)
class DescriptorStep:
    """A maximal group of accel work lowered to one descriptor."""

    items: Tuple[object, ...]


@dataclass
class TranslatedSchedule:
    """The grouped schedule a translated program executes."""

    env: object
    items: List[object] = field(default_factory=list)

    def descriptor_count(self) -> int:
        return sum(1 for item in self.items
                   if isinstance(item, DescriptorStep))


def _chainable(a: AccelCallStep, b: AccelCallStep) -> bool:
    """b can chain onto a: same (non-)loop shape and a feeds b."""
    if a.trips or b.trips:
        return False            # looped steps keep their own pass
    produced = set(a.out_bufs)
    return bool(produced & set(b.in_bufs))


def chain_pass(schedule: Schedule) -> List[object]:
    """Fuse producer->consumer accelerated neighbours into ChainSteps."""
    out: List[object] = []
    for step in schedule.steps:
        prev = out[-1] if out else None
        if (isinstance(step, AccelCallStep)
                and isinstance(prev, (AccelCallStep, ChainStep))):
            tail = prev.steps[-1] if isinstance(prev, ChainStep) else prev
            if _chainable(tail, step):
                steps = (prev.steps if isinstance(prev, ChainStep)
                         else (prev,)) + (step,)
                out[-1] = ChainStep(steps=steps)
                continue
        out.append(step)
    return out


def group_descriptors(steps: List[object]) -> List[object]:
    """Collapse maximal accel runs into DescriptorSteps.

    A LOOP-compacted step always gets a descriptor of its own (matching
    the paper's one-descriptor-per-OpenMP-nest translation of STAP);
    adjacent non-looped steps, chains, and fused passes share one
    descriptor.
    """
    items: List[object] = []
    run: List[object] = []

    def flush() -> None:
        if run:
            items.append(DescriptorStep(items=tuple(run)))
            run.clear()

    for step in steps:
        if isinstance(step, (AccelCallStep, FusedStep)) and step.looped:
            flush()
            items.append(DescriptorStep(items=(step,)))
        elif isinstance(step, (AccelCallStep, ChainStep, FusedStep)):
            run.append(step)
        else:
            flush()
            items.append(step)
    flush()
    return items


def optimize(schedule: Schedule, chain: bool = True
             ) -> TranslatedSchedule:
    """Run both rewrites; returns the grouped, translated schedule.

    ``chain=False`` skips the syntactic chainer — used when the
    verified rewrite engine already fused everything it could prove.
    """
    chained = chain_pass(schedule) if chain else list(schedule.steps)
    items = group_descriptors(chained)
    return TranslatedSchedule(env=schedule.env, items=items)
