"""Pass-1 optimisations: accelerator chaining and descriptor grouping.

Two rewrites over the recognizer's schedule, straight from the paper:

* *chaining* — an accelerated call immediately followed by another whose
  input is the first one's output becomes one PASS (the STAP corner
  turn + Doppler FFT, the SAR interpolation + FFT);
* *descriptor grouping* — maximal runs of accelerated steps with no
  intervening host work collapse into a single accelerator descriptor
  (STAP's 17 M library calls end up in 3 descriptors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.compiler.recognizer import (AccelCallStep, AllocStep, FreeStep,
                                       HostCallStep, Schedule)


@dataclass(frozen=True)
class ChainStep:
    """Several accelerated calls fused into one PASS."""

    steps: Tuple[AccelCallStep, ...]

    @property
    def in_bufs(self) -> Tuple[str, ...]:
        return self.steps[0].in_bufs

    @property
    def out_bufs(self) -> Tuple[str, ...]:
        return self.steps[-1].out_bufs

    @property
    def calls(self) -> int:
        return sum(s.calls for s in self.steps)


@dataclass(frozen=True)
class DescriptorStep:
    """A maximal group of accel work lowered to one descriptor."""

    items: Tuple


@dataclass
class TranslatedSchedule:
    """The grouped schedule a translated program executes."""

    env: object
    items: List = field(default_factory=list)

    def descriptor_count(self) -> int:
        return sum(1 for item in self.items
                   if isinstance(item, DescriptorStep))


def _chainable(a: AccelCallStep, b: AccelCallStep) -> bool:
    """b can chain onto a: same (non-)loop shape and a feeds b."""
    if a.trips or b.trips:
        return False            # looped steps keep their own pass
    produced = set(a.out_bufs)
    return bool(produced & set(b.in_bufs))


def chain_pass(schedule: Schedule) -> List:
    """Fuse producer->consumer accelerated neighbours into ChainSteps."""
    out: List = []
    for step in schedule.steps:
        if (isinstance(step, AccelCallStep) and out
                and isinstance(out[-1], (AccelCallStep, ChainStep))):
            prev = out[-1]
            tail = prev.steps[-1] if isinstance(prev, ChainStep) else prev
            if _chainable(tail, step):
                steps = (prev.steps if isinstance(prev, ChainStep)
                         else (prev,)) + (step,)
                out[-1] = ChainStep(steps=steps)
                continue
        out.append(step)
    return out


def group_descriptors(steps: List) -> TranslatedSchedule:
    """Collapse maximal accel runs into DescriptorSteps.

    A LOOP-compacted step always gets a descriptor of its own (matching
    the paper's one-descriptor-per-OpenMP-nest translation of STAP);
    adjacent non-looped steps and chains share one descriptor.
    """
    items: List = []
    run: List = []

    def flush() -> None:
        if run:
            items.append(DescriptorStep(items=tuple(run)))
            run.clear()

    for step in steps:
        if isinstance(step, AccelCallStep) and step.looped:
            flush()
            items.append(DescriptorStep(items=(step,)))
        elif isinstance(step, (AccelCallStep, ChainStep)):
            run.append(step)
        else:
            flush()
            items.append(step)
    flush()
    return items


def optimize(schedule: Schedule) -> TranslatedSchedule:
    """Run both rewrites; returns the grouped, translated schedule."""
    chained = chain_pass(schedule)
    items = group_descriptors(chained)
    return TranslatedSchedule(env=schedule.env, items=items)
