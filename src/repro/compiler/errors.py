"""Typed compiler errors carrying structured diagnostics.

``RecognizerError`` and ``SemanticError`` used to be bare-string
exceptions; they are now thin wrappers over a :class:`Diagnostic` so
every failure has a stable code and, where the frontend knows one, a
real source location. ``str(exc)`` keeps the old "line N: message"
shape for compatibility with existing callers and tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.compiler.diagnostics import Diagnostic, Severity, SourceLoc


class CompilerError(Exception):
    """Base for typed compiler failures."""

    default_code = "MEA013"

    def __init__(self, message: str, *, loc: Optional[SourceLoc] = None,
                 code: Optional[str] = None,
                 buffers: Sequence[str] = ()) -> None:
        self.diagnostic = Diagnostic(
            code=code or self.default_code, severity=Severity.ERROR,
            message=message, loc=loc, buffers=tuple(buffers))
        prefix = f"{loc}: " if loc is not None else ""
        super().__init__(f"{prefix}{message}")

    @property
    def loc(self) -> Optional[SourceLoc]:
        return self.diagnostic.loc

    @property
    def code(self) -> str:
        return self.diagnostic.code

    @property
    def message(self) -> str:
        return self.diagnostic.message

    def with_loc(self, loc: Optional[SourceLoc]) -> "CompilerError":
        """A copy of this error anchored at ``loc`` (if it has none)."""
        if self.loc is not None or loc is None:
            return self
        return type(self)(self.message, loc=loc, code=self.code,
                          buffers=self.diagnostic.buffers)


class AnalysisRejected(CompilerError):
    """The safety checker proved the program unsafe to run at all."""

    default_code = "MEA001"
